//! The fault-injection differential suite.
//!
//! Contract under test: scripted faults change *where* chunks live and
//! *what a run costs* — never *what queries answer*. For every fault
//! schedule, every partitioner, and every replication factor `k >= 2`:
//!
//! 1. **bit-identical answers** — after every cycle, the faulted run's
//!    operator answers over a fixed probe region equal the fault-free
//!    twin's bit for bit, across crashes, diverted placements, flaky
//!    repair flows, and mid-recovery crashes;
//! 2. **store-path answers too** — the same answers come back with the
//!    catalog's whole-array oracle stripped, so surviving replica copies
//!    (promoted or repaired) demonstrably hold every cell; a silent
//!    payload loss cannot hide behind the oracle;
//! 3. **full-strength recovery** — the replica census is back at the
//!    copy target by the end of every cycle, and crash cycles report
//!    repair traffic priced through the shared flow solver (bytes and
//!    seconds), with retries when flows are flaky;
//! 4. **typed loss at `k = 1`** — with no replicas a crash orphans
//!    chunks: the store-only path returns `QueryError::NodeLost`, the
//!    catalog-backed path answers exactly but counts degraded reads —
//!    never a panic, never a silent wrong answer;
//! 5. **zero-interference ledger** — a fault-free `k = 2` run is
//!    bit-identical to the `k = 1` run in everything the paper measures
//!    (placements, loads, balance, scaling, moved/inserted bytes);
//!    replication shows up only in the insert-phase flow cost.

use elastic_array_db::prelude::*;
use query_engine::{ops, QueryError};
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::CellBatch;

type Row = (Vec<i64>, Vec<ScalarValue>);

fn config(kind: PartitionerKind, node_capacity: u64, replication: usize) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 4,
        partitioner: kind,
        run_queries: false,
        replication,
        ..RunnerConfig::default()
    }
}

/// A catalog clone with the whole-array oracle stripped, so operators
/// must answer from chunks stored on the cluster's nodes.
fn store_only_catalog(runner: &WorkloadRunner<'_>) -> Catalog {
    let mut cat = runner.catalog().clone();
    cat.array_mut(BROADCAST).unwrap().data = None;
    cat
}

/// Operator answers over AIS cycle 0's fixed probe region in
/// bit-comparable form (floats stored as `to_bits()`), plus the number
/// of degraded reads the probe itself incurred.
#[derive(Debug, PartialEq)]
struct ProbeAnswers {
    subarray: Vec<Row>,
    filter_count: u64,
    distinct_ids: Vec<i64>,
    median_bits: Option<u64>,
    groups: Vec<(Vec<i64>, u64, u64)>,
}

fn probe_answers(cluster: &Cluster, catalog: &Catalog) -> (ProbeAnswers, u64) {
    let ctx = ExecutionContext::new(cluster, catalog);
    let probe = AisWorkload::cycle_region(0);
    let (cells, _) = ops::subarray(&ctx, BROADCAST, &probe, &[]).unwrap();
    let mut subarray = cells.cells.clone();
    subarray.sort_by(|a, b| a.0.cmp(&b.0));
    let (filter_count, _) =
        ops::filter_count(&ctx, BROADCAST, &probe, "speed", &Predicate::ge(10.0)).unwrap();
    let (distinct_ids, _) = ops::distinct_sorted(&ctx, BROADCAST, Some(&probe), "ship_id").unwrap();
    let (q, _) = ops::quantile(&ctx, BROADCAST, Some(&probe), "speed", 0.5, 1.0).unwrap();
    let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![8, 8]);
    let (rows, _) =
        ops::grid_aggregate(&ctx, BROADCAST, Some(&probe), "speed", &spec, ops::AggFn::Sum)
            .unwrap();
    let mut groups: Vec<(Vec<i64>, u64, u64)> =
        rows.iter().map(|r| (r.key.clone(), r.value.to_bits(), r.cells)).collect();
    groups.sort();
    let answers = ProbeAnswers {
        subarray,
        filter_count,
        distinct_ids,
        median_bits: q.value.map(f64::to_bits),
        groups,
    };
    (answers, ctx.degraded_reads())
}

/// The scripted schedule the quick and smoke differentials share: a
/// plain crash with flaky repair flows, a crash landing right after the
/// rebalance phase, and a revival of the first casualty.
fn fault_schedule(k: usize) -> FaultPlan {
    FaultPlan::new(0xE1A5 + k as u64)
        .at(1, FaultKind::Crash(1))
        .at(1, FaultKind::FlakyFlows { p: 0.1 })
        .at(2, FaultKind::CrashDuringRebalance(2))
        .at(3, FaultKind::Revive(1))
}

/// Lockstep faulted-vs-fault-free twin runs under one partitioner.
/// Returns the total repair retries observed (flakiness engagement is
/// asserted in aggregate by the caller — a single small run may
/// legitimately draw zero failures).
fn run_fault_differential(
    w: &AisWorkload,
    kind: PartitionerKind,
    node_capacity: u64,
    k: usize,
) -> u64 {
    assert!(k >= 2, "the bit-identity leg needs surviving copies");
    // Two nodes are down at once by cycle 2; k + 2 initial nodes keep k
    // accepting survivors, so the effective copy target never collapses
    // and crash cycles always have repairs to do.
    let mut faulted = WorkloadRunner::new(w, {
        let mut cfg = config(kind, node_capacity, k);
        cfg.initial_nodes = k + 2;
        cfg.fault_plan = Some(fault_schedule(k));
        cfg
    });
    let mut clean = WorkloadRunner::new(w, {
        let mut cfg = config(kind, node_capacity, k);
        cfg.initial_nodes = k + 2;
        cfg
    });
    let mut retries = 0;
    for c in 0..w.cycles {
        let tag = format!("{kind}/k{k}/cycle{c}");
        let fr = faulted.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: faulted run: {e}"));
        let cr = clean.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: clean run: {e}"));

        // Answers: catalog path, faulted vs fault-free, bit for bit.
        let (want, clean_degraded) = probe_answers(clean.cluster(), clean.catalog());
        let (got, _) = probe_answers(faulted.cluster(), faulted.catalog());
        assert_eq!(got, want, "{tag}: faulted answers differ from the fault-free twin");
        assert_eq!(clean_degraded, 0, "{tag}: fault-free probe must not degrade");

        // Answers: store-only path — replicas alone hold every cell.
        let stripped = store_only_catalog(&faulted);
        let ctx = ExecutionContext::new(faulted.cluster(), &stripped);
        assert!(
            ctx.cells_available(stripped.array(BROADCAST).unwrap()),
            "{tag}: node stores lost cells the census didn't notice"
        );
        let (store_answers, _) = probe_answers(faulted.cluster(), &stripped);
        assert_eq!(store_answers, want, "{tag}: store-only answers differ");

        // Recovery converged within the cycle: census back at target,
        // books consistent (the runner re-verifies them after every
        // recovery pass; this is the end-of-cycle pin).
        let census = faulted.cluster().replica_census();
        assert!(
            census.is_full_strength(),
            "{tag}: census under strength after recovery: {census:?}"
        );
        assert_eq!(fr.under_replicated, 0, "{tag}: report disagrees with census");

        // Cost accounting: crash cycles repaired something and priced
        // it. Before the first fault there is nothing to repair; later
        // quiet cycles may legitimately top replicas back up after the
        // roster grows, so only the pre-fault zero is pinned.
        if c == 1 || c == 2 {
            assert!(fr.repair_bytes > 0, "{tag}: crash cycle moved no repair bytes");
            assert!(fr.phases.repair_secs > 0.0, "{tag}: repair flows cost nothing");
            assert!(fr.crashed_nodes > 0, "{tag}: crash not reflected in the report");
        } else if c == 0 {
            assert_eq!(fr.repair_bytes, 0, "{tag}: phantom repairs before any fault");
            assert_eq!(fr.phases.repair_secs, 0.0, "{tag}: phantom repair cost");
        }
        retries += fr.repair_retries;

        // The fault-free twin never sees the fault machinery.
        assert_eq!(cr.repair_bytes, 0, "{tag}: clean run repaired");
        assert_eq!(cr.crashed_nodes, 0, "{tag}: clean run crashed");
        assert_eq!(cr.degraded_reads, 0, "{tag}: clean run degraded");

        // Replica bytes are a separate ledger: the faulted run's demand
        // and roster track the twin's exactly (a crash promotes copies,
        // so total stored bytes are preserved).
        assert_eq!(fr.nodes, cr.nodes, "{tag}: fault schedule changed scaling");
        assert_eq!(
            fr.demand_gb.to_bits(),
            cr.demand_gb.to_bits(),
            "{tag}: fault schedule changed demand"
        );
        assert_eq!(fr.insert_bytes, cr.insert_bytes, "{tag}: ingest bytes diverged");
    }
    retries
}

/// Leg 1-3 quick version: schedule x all 8 partitioners at k = 2.
#[test]
fn faulted_runs_answer_bit_identically_and_recover_full_strength() {
    let w = AisWorkload {
        cycles: 4,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 1_200,
        ..Default::default()
    };
    let node_capacity = w.cells_per_cycle * 90;
    let mut retries = 0;
    for kind in PartitionerKind::ALL {
        retries += run_fault_differential(&w, kind, node_capacity, 2);
    }
    // Across 8 partitioners' crash repairs at p = 0.1, the flaky-flow
    // fault must have forced at least one backoff retry somewhere.
    assert!(retries > 0, "flaky repair flows never engaged the retry path");
}

/// Leg 4: at k = 1 a crash is typed data loss, not a wrong answer. The
/// catalog-backed run completes exactly (the oracle backstops orphaned
/// chunks as counted degraded reads); the store-only path refuses with
/// `QueryError::NodeLost`.
#[test]
fn k1_crash_is_typed_loss_never_a_wrong_answer() {
    let w = AisWorkload {
        cycles: 3,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 1_200,
        ..Default::default()
    };
    let node_capacity = w.cells_per_cycle * 90;
    // Hash and round-robin spreads guarantee node 1 holds chunks by the
    // crash cycle (space-partitioned schemes may leave a node empty at
    // this scale, which would make the leg vacuous).
    for kind in [PartitionerKind::ConsistentHash, PartitionerKind::RoundRobin] {
        let tag = format!("{kind}/k1-crash");
        // The fault-free k = 1 twin is the answer oracle.
        let mut clean = WorkloadRunner::new(&w, config(kind, node_capacity, 1));
        let mut cfg = config(kind, node_capacity, 1);
        cfg.fault_plan = Some(FaultPlan::new(7).at(1, FaultKind::Crash(1)));
        let mut faulted = WorkloadRunner::new(&w, cfg);
        for c in 0..w.cycles {
            faulted.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: cycle {c}: {e}"));
            clean.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: clean cycle {c}: {e}"));
        }

        // The census reports the orphans as lost — honestly, not as
        // repairable or repaired.
        let census = faulted.cluster().replica_census();
        assert!(census.lost > 0, "{tag}: node 1 held nothing? census {census:?}");

        // Catalog path: exact answers, degraded reads counted.
        let (want, _) = probe_answers(clean.cluster(), clean.catalog());
        let (got, degraded) = probe_answers(faulted.cluster(), faulted.catalog());
        assert_eq!(got, want, "{tag}: oracle-backed answers drifted");
        assert!(degraded > 0, "{tag}: orphaned reads were not counted as degraded");

        // Store-only path: routing any orphan is a typed refusal.
        let stripped = store_only_catalog(&faulted);
        let ctx = ExecutionContext::new(faulted.cluster(), &stripped);
        assert!(
            !ctx.cells_available(stripped.array(BROADCAST).unwrap()),
            "{tag}: availability gate ignored the data loss"
        );
        let err =
            ctx.chunks_in(BROADCAST, None).expect_err("orphaned chunks must not route silently");
        assert!(matches!(err, QueryError::NodeLost(_)), "{tag}: wrong error: {err}");
    }
}

/// Leg 5: replication is a separate ledger. A fault-free k = 2 run
/// pins bit-identical placements, loads, balance, scaling, and byte
/// accounting against the k = 1 run (the pre-replication behavior);
/// only the insert-phase flow cost may (and must) grow, because the
/// replica fan-out rides the same priced flows.
#[test]
fn fault_free_replication_changes_costs_only() {
    let w = AisWorkload {
        cycles: 3,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 1_200,
        ..Default::default()
    };
    let node_capacity = w.cells_per_cycle * 90;
    for kind in PartitionerKind::ALL {
        let mut base = WorkloadRunner::new(&w, config(kind, node_capacity, 1));
        let mut rep = WorkloadRunner::new(&w, config(kind, node_capacity, 2));
        let br = base.run_all().unwrap();
        let rr = rep.run_all().unwrap();
        assert!(br.failures.is_empty() && rr.failures.is_empty());
        for (b, r) in br.cycles.iter().zip(&rr.cycles) {
            let tag = format!("{kind}/cycle{}", b.cycle);
            assert_eq!(r.nodes, b.nodes, "{tag}: replication changed scaling");
            assert_eq!(r.added_nodes, b.added_nodes, "{tag}: scale-out step");
            assert_eq!(r.demand_gb.to_bits(), b.demand_gb.to_bits(), "{tag}: demand");
            assert_eq!(
                r.rsd_after_insert.to_bits(),
                b.rsd_after_insert.to_bits(),
                "{tag}: replication leaked into the balance metric"
            );
            assert_eq!(r.moved_bytes, b.moved_bytes, "{tag}: rebalance plan");
            assert_eq!(r.insert_bytes, b.insert_bytes, "{tag}: ingest accounting");
            for c in [b, r] {
                assert_eq!(c.repair_bytes, 0, "{tag}: fault-free run repaired");
                assert_eq!(c.repair_retries, 0, "{tag}: fault-free run retried");
                assert_eq!(c.crashed_nodes, 0, "{tag}: fault-free run crashed");
                assert_eq!(c.under_replicated, 0, "{tag}: under strength");
                assert_eq!(c.phases.repair_secs, 0.0, "{tag}: phantom repair cost");
            }
        }
        assert_eq!(
            base.cluster().placements().collect::<Vec<_>>(),
            rep.cluster().placements().collect::<Vec<_>>(),
            "{kind}: replication changed primary placements"
        );
        assert_eq!(base.cluster().loads(), rep.cluster().loads(), "{kind}: loads");
        // The replica fan-out rides the priced insert flows, so the
        // insert-phase cost must differ somewhere in the run. (Not
        // necessarily upward per cycle: the contention model amortizes
        // per-chunk overhead across destinations, so fanning out can
        // also shorten a cycle.)
        assert_ne!(
            rr.phase_totals().insert_secs.to_bits(),
            br.phase_totals().insert_secs.to_bits(),
            "{kind}: replica copies moved for free"
        );
    }
}

/// `run_all` under `RecordAndContinue` survives a cycle whose fault
/// refuses (reviving a node that never crashed) and records it, while
/// `Abort` surfaces the same cycle as the run error.
#[test]
fn fault_refusals_respect_the_error_policy() {
    let w = AisWorkload {
        cycles: 3,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 600,
        ..Default::default()
    };
    let kind = PartitionerKind::ConsistentHash;
    let plan = || Some(FaultPlan::new(3).at(1, FaultKind::Revive(0)));

    let mut cfg = config(kind, w.cells_per_cycle * 90, 2);
    cfg.fault_plan = plan();
    let err = WorkloadRunner::new(&w, cfg).run_all().expect_err("Abort must surface");
    assert!(matches!(err, CycleError::Fault { cycle: 1, .. }), "wrong error: {err}");

    let mut cfg = config(kind, w.cells_per_cycle * 90, 2);
    cfg.fault_plan = plan();
    cfg.on_error = ErrorPolicy::RecordAndContinue;
    let report = WorkloadRunner::new(&w, cfg).run_all().unwrap();
    assert_eq!(report.cycles.iter().map(|c| c.cycle).collect::<Vec<_>>(), vec![0, 2]);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].cycle, 1);
    assert!(report.failures[0].error.contains("fault injection"), "{}", report.failures[0].error);
}

// ----------------------------------------------------------- scale-IN --

/// Materialized insert-then-delete script for the scale-IN twin: the
/// first `grow` cycles each insert `cells` cells; every later cycle
/// retracts one of the earlier cycles wholesale — except cycle 0, which
/// survives as the fixed probe region — opening the demand trough that
/// walks the staircase back down.
struct ShrinkWorkload {
    cycles: usize,
    grow: usize,
    cells: usize,
}

const SHRINK: ArrayId = ArrayId(4);

impl ShrinkWorkload {
    fn schema() -> ArraySchema {
        ArraySchema::parse("S<v:double>[x=0:*,64]").unwrap()
    }
}

impl Workload for ShrinkWorkload {
    fn name(&self) -> &'static str {
        "shrink"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(SHRINK, Self::schema(), []));
    }
    fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        let mut batch = CellBatch::new(SHRINK, &Self::schema());
        if cycle < self.grow {
            let mut vals = Vec::with_capacity(1);
            for i in 0..self.cells {
                let x = (cycle * self.cells + i) as i64;
                vals.push(ScalarValue::Double((x * 3) as f64));
                batch.push(&[x], &mut vals);
            }
        } else {
            // Retract cycle `cycle - grow + 1`: cycle 0 is never doomed.
            let old = cycle - self.grow + 1;
            for i in 0..self.cells {
                batch.push_retraction(&[(old * self.cells + i) as i64]);
            }
        }
        Some(vec![batch])
    }
    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![1024])
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

/// Probe over the never-retracted cycle-0 cells, in bit-comparable form.
fn shrink_probe(cluster: &Cluster, catalog: &Catalog, cells: usize) -> (Vec<Row>, u64, Vec<u64>) {
    let ctx = ExecutionContext::new(cluster, catalog);
    let probe = Region::new(vec![0], vec![cells as i64 - 1]);
    let (got, _) = ops::subarray(&ctx, SHRINK, &probe, &[]).unwrap();
    let mut rows = got.cells.clone();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let (count, _) = ops::filter_count(&ctx, SHRINK, &probe, "v", &Predicate::ge(96.0)).unwrap();
    let spec = ops::GroupSpec::coarsened(vec![0], vec![256]);
    let (groups, _) =
        ops::grid_aggregate(&ctx, SHRINK, Some(&probe), "v", &spec, ops::AggFn::Sum).unwrap();
    let mut sums: Vec<u64> = groups.iter().map(|r| r.value.to_bits()).collect();
    sums.sort();
    (rows, count, sums)
}

/// Satellite leg: decommission during a crash/flaky-flow schedule must
/// still produce answers bit-identical to the fault-free shrink twin.
/// The demand trough decides the same scale-IN steps in both runs (a
/// crash changes *where* copies live, never *how many bytes* exist), so
/// the faulted run drains and retires nodes while a casualty is down
/// and repairs are flaky — and every probe answer, on the catalog path
/// and the store-only path, matches the clean twin bit for bit.
#[test]
fn decommission_under_faults_matches_the_fault_free_shrink_twin() {
    // 16 B/cell: 2048 cells fill exactly two 16 KB nodes, so the run
    // climbs the staircase over the grow cycles and the two retraction
    // cycles open the trough that walks it back down.
    let w = ShrinkWorkload { cycles: 5, grow: 3, cells: 2048 };
    let staircase = ScalingPolicy::Staircase(StaircaseConfig {
        node_capacity_gb: 16_384.0 / 1e9,
        samples: 2,
        plan_ahead: 1,
        trigger: 1.0,
        shrink_margin: 0.75,
    });
    let mk = |fault_plan: Option<FaultPlan>| RunnerConfig {
        node_capacity: 16_384,
        initial_nodes: 2,
        run_queries: false,
        replication: 2,
        scaling: staircase.clone(),
        fault_plan,
        ..RunnerConfig::default()
    };
    for kind in [PartitionerKind::ConsistentHash, PartitionerKind::RoundRobin] {
        // Crash one node before the trough, another right as the first
        // decommission runs (two casualties retired around), flaky
        // repair flows throughout the shrink, and a late revival.
        let plan = FaultPlan::new(0x51A8)
            .at(2, FaultKind::Crash(1))
            .at(3, FaultKind::Crash(2))
            .at(3, FaultKind::FlakyFlows { p: 0.1 })
            .at(4, FaultKind::Revive(1));
        let mut cfg = mk(Some(plan));
        cfg.partitioner = kind;
        let mut faulted = WorkloadRunner::new(&w, cfg);
        let mut cfg = mk(None);
        cfg.partitioner = kind;
        let mut clean = WorkloadRunner::new(&w, cfg);

        let mut faulted_removed = 0;
        let mut clean_removed = 0;
        let mut peak = 0;
        for c in 0..w.cycles {
            let tag = format!("{kind}/shrink-twin/cycle{c}");
            let fr = faulted.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: faulted: {e}"));
            let cr = clean.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: clean: {e}"));
            peak = peak.max(cr.nodes);
            faulted_removed += fr.removed_nodes;
            clean_removed += cr.removed_nodes;

            // The fault schedule must not perturb the scaling walk: the
            // trough decides from bytes, and crashes preserve bytes.
            assert_eq!(fr.nodes, cr.nodes, "{tag}: fault schedule changed the staircase");
            assert_eq!(fr.removed_nodes, cr.removed_nodes, "{tag}: scale-IN step diverged");
            assert_eq!(fr.retracted_cells, cr.retracted_cells, "{tag}: retraction accounting");
            assert_eq!(fr.demand_gb.to_bits(), cr.demand_gb.to_bits(), "{tag}: demand");

            // Answers: catalog path and store-only path, bit for bit.
            let want = shrink_probe(clean.cluster(), clean.catalog(), w.cells);
            let got = shrink_probe(faulted.cluster(), faulted.catalog(), w.cells);
            assert_eq!(got, want, "{tag}: faulted answers differ from the fault-free twin");
            let mut stripped = faulted.catalog().clone();
            stripped.array_mut(SHRINK).unwrap().data = None;
            let store_got = shrink_probe(faulted.cluster(), &stripped, w.cells);
            assert_eq!(store_got, want, "{tag}: store-only answers differ");

            // Recovery and retirement settle within the cycle.
            let census = faulted.cluster().replica_census();
            assert!(census.is_full_strength(), "{tag}: census under strength: {census:?}");
        }

        // Both runs walked down from the same peak, below it.
        assert!(peak > 2, "{kind}: the cluster never grew (peak {peak})");
        assert_eq!(clean_removed, faulted_removed, "{kind}: total scale-IN steps");
        assert!(clean_removed > 0, "{kind}: no node was ever released");
        let end = faulted.cluster().active_node_count();
        assert_eq!(end, clean.cluster().active_node_count(), "{kind}: end-state rosters");
        assert!(end < peak, "{kind}: run must end below its {peak}-node peak, got {end}");
    }
}

/// Heavier CI smoke: longer schedules (crash + flaky + rebalance-crash +
/// mid-recovery crash + drain + revive), all 8 partitioners, k in
/// {2, 3}, plus the k = 1 typed-loss legs at scale. Run with
/// `cargo test --release --test fault_recovery -- --ignored fault_smoke`.
#[test]
#[ignore = "heavy: run in release via the fault-smoke CI job"]
fn fault_smoke() {
    let w = AisWorkload {
        cycles: 5,
        scale: 0.05,
        seed: 5,
        cells_per_cycle: 6_000,
        ..Default::default()
    };
    let node_capacity = w.cells_per_cycle * 90;
    let mut retries = 0;
    for k in [2usize, 3] {
        for kind in PartitionerKind::ALL {
            retries += run_fault_differential(&w, kind, node_capacity, k);
        }
    }
    assert!(retries > 0, "flaky repair flows never engaged the retry path");

    // A deeper schedule: drain a survivor, crash two nodes in the same
    // cycle (one mid-recovery), then revive. Two concurrent casualties
    // need k = 3, and a 6-node roster keeps accepting survivors around.
    let w = AisWorkload {
        cycles: 5,
        scale: 0.05,
        seed: 13,
        cells_per_cycle: 6_000,
        ..Default::default()
    };
    for kind in PartitionerKind::ALL {
        let plan = FaultPlan::new(0xD6)
            .at(1, FaultKind::Crash(1))
            .at(1, FaultKind::FlakyFlows { p: 0.1 })
            .at(2, FaultKind::Drain(3))
            .at(3, FaultKind::Crash(0))
            .at(3, FaultKind::CrashDuringRecovery { node: 2, after_jobs: 2 })
            .at(4, FaultKind::Revive(1));
        let mut faulted = WorkloadRunner::new(&w, {
            let mut cfg = config(kind, node_capacity, 3);
            cfg.initial_nodes = 6;
            cfg.fault_plan = Some(plan);
            cfg
        });
        let mut clean = WorkloadRunner::new(&w, {
            let mut cfg = config(kind, node_capacity, 3);
            cfg.initial_nodes = 6;
            cfg
        });
        for c in 0..w.cycles {
            let tag = format!("{kind}/deep/cycle{c}");
            faulted.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: {e}"));
            clean.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: clean: {e}"));
            let (want, _) = probe_answers(clean.cluster(), clean.catalog());
            let (got, _) = probe_answers(faulted.cluster(), faulted.catalog());
            assert_eq!(got, want, "{tag}: answers diverged");
            let stripped = store_only_catalog(&faulted);
            let (store_got, _) = probe_answers(faulted.cluster(), &stripped);
            assert_eq!(store_got, want, "{tag}: store-only answers diverged");
            let census = faulted.cluster().replica_census();
            assert!(census.is_full_strength(), "{tag}: {census:?}");
        }
    }
}
