//! The zone-map pruning differential suite.
//!
//! Contract under test: chunk pruning is a pure *work* optimization —
//! a plan that skips zone-map-refuted chunks must answer every operator
//! family bit-identically to the same plan with pruning disabled, while
//! visiting strictly fewer chunks on selective probes. The differential
//! runs the materialized AIS workload (inserts, dark-vessel
//! retractions, tombstone-GC compactions, capacity-triggered
//! scale-outs and rebalances) across all 8 partitioners and both
//! string encodings, probes the catalog path and the store-only path,
//! and replays a WAL crash/recover cycle to prove zone maps survive
//! the durability codecs still able to prune.
//!
//! Guaranteed-selective probes:
//!
//! * `voyage_id` is generated as `cycle * 1000 + 0..999`, so its
//!   per-chunk `Int` zones partition by cycle and a `>= last_cycle *
//!   1000` predicate refutes every earlier cycle's chunks — numeric
//!   zone pruning must fire on any run with ≥ 2 cycles.
//! * `receiver_id` draws 128 distinct strings; chunks with fewer rows
//!   miss most codes, so an equality probe exercises the dictionary
//!   `code_of` refutation.

use durability::{shared, FsyncPolicy, MemLog};
use elastic_array_db::prelude::*;
use query_engine::ops;
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::DurabilityConfig;

type Row = (Vec<i64>, Vec<ScalarValue>);

fn config(kind: PartitionerKind, node_capacity: u64, encoding: StringEncoding) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 2,
        partitioner: kind,
        scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
        run_queries: false,
        string_encoding: encoding,
        ..RunnerConfig::default()
    }
}

/// Every operator family's answer in bit-comparable form, plus the scan
/// accounting that proves whether pruning fired.
#[derive(Debug, PartialEq)]
struct Answers {
    everything: Vec<Row>,
    voyage_matches: u64,
    receiver_eq: u64,
    receiver_in: u64,
    distinct_ids: Vec<i64>,
    median_bits: Option<u64>,
    groups: Vec<(Vec<i64>, u64, u64)>,
}

/// Scan accounting summed over the probes above.
#[derive(Debug, Default)]
struct ScanWork {
    visited: u64,
    pruned: u64,
    /// Pruned count of the guaranteed-selective voyage probe alone.
    voyage_pruned: u64,
}

fn probe(
    cluster: &Cluster,
    catalog: &Catalog,
    cycles: usize,
    pruning: bool,
) -> (Answers, ScanWork) {
    let ctx = ExecutionContext::new(cluster, catalog).with_pruning(pruning);
    let mut work = ScanWork::default();
    let mut track = |stats: &QueryStats| {
        work.visited += stats.chunks_visited;
        work.pruned += stats.chunks_pruned;
    };

    let all = Region::new(vec![0, -180, 0], vec![i64::MAX / 2, -66, 90]);
    let (cells, stats) = ops::subarray(&ctx, BROADCAST, &all, &[]).unwrap();
    track(&stats);
    let mut everything = cells.cells.clone();
    everything.sort_by(|a, b| a.0.cmp(&b.0));

    // Numeric zone pruning: voyage ids partition by cycle.
    let newest_voyages = Predicate::ge(((cycles - 1) * 1000) as f64);
    let (voyage_matches, stats) =
        ops::filter_count(&ctx, BROADCAST, &all, "voyage_id", &newest_voyages).unwrap();
    track(&stats);
    work.voyage_pruned = stats.chunks_pruned;

    // Dictionary pushdown: equality and IN probes over the 128-receiver
    // string column.
    let (receiver_eq, stats) =
        ops::filter_count(&ctx, BROADCAST, &all, "receiver_id", &Predicate::str_eq("r042"))
            .unwrap();
    track(&stats);
    let (receiver_in, stats) = ops::filter_count(
        &ctx,
        BROADCAST,
        &all,
        "receiver_id",
        &Predicate::str_in(["r007", "r101"]),
    )
    .unwrap();
    track(&stats);

    let region = AisWorkload::cycle_region(0);
    let (distinct_ids, stats) =
        ops::distinct_sorted(&ctx, BROADCAST, Some(&region), "ship_id").unwrap();
    track(&stats);
    let (q, stats) = ops::quantile(&ctx, BROADCAST, Some(&region), "speed", 0.5, 1.0).unwrap();
    track(&stats);
    let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![8, 8]);
    let (rows, stats) =
        ops::grid_aggregate(&ctx, BROADCAST, Some(&region), "speed", &spec, ops::AggFn::Sum)
            .unwrap();
    track(&stats);
    let mut groups: Vec<(Vec<i64>, u64, u64)> =
        rows.iter().map(|r| (r.key.clone(), r.value.to_bits(), r.cells)).collect();
    groups.sort();

    let answers = Answers {
        everything,
        voyage_matches,
        receiver_eq,
        receiver_in,
        distinct_ids,
        median_bits: q.value.map(f64::to_bits),
        groups,
    };
    (answers, work)
}

/// Pruned and unpruned probes over one `(cluster, catalog)` pair must
/// agree bit for bit; the pruned pass must do strictly less scan work.
fn assert_pruning_neutral(cluster: &Cluster, catalog: &Catalog, cycles: usize, tag: &str) {
    let (on, on_work) = probe(cluster, catalog, cycles, true);
    let (off, off_work) = probe(cluster, catalog, cycles, false);
    assert_eq!(on, off, "{tag}: pruning changed an answer");
    assert!(!on.everything.is_empty(), "{tag}: vacuous differential — no cells stored");
    assert!(on.voyage_matches > 0, "{tag}: newest-cycle voyage probe found nothing");
    assert_eq!(off_work.pruned, 0, "{tag}: disabled pruning still pruned");
    assert!(
        on_work.voyage_pruned > 0,
        "{tag}: cycle-partitioned voyage zones refuted nothing (visited {})",
        on_work.visited
    );
    assert!(
        on_work.visited + on_work.pruned == off_work.visited,
        "{tag}: pruned plans must classify exactly the unpruned chunk set \
         (on: {} + {}, off: {})",
        on_work.visited,
        on_work.pruned,
        off_work.visited
    );
    assert!(on_work.visited < off_work.visited, "{tag}: pruning visited as much as a full scan");
}

/// A catalog clone whose whole-array oracle copy is stripped, so every
/// operator answers from the chunks stored on the cluster's nodes —
/// zone maps on the *placed* payloads must prune too.
fn store_only_catalog(runner: &WorkloadRunner<'_>) -> Catalog {
    let mut cat = runner.catalog().clone();
    cat.array_mut(BROADCAST).unwrap().data = None;
    cat
}

/// One full run: inserts + retractions + GC compactions + scale-outs,
/// probed on the catalog path and the store-only path.
fn run_pruning_pair(w: &AisWorkload, kind: PartitionerKind, encoding: StringEncoding) {
    let tag = format!("{kind}/{encoding:?}");
    let node_capacity = w.cells_per_cycle * 90;
    let mut runner = WorkloadRunner::new(w, config(kind, node_capacity, encoding));
    for c in 0..w.cycles {
        runner.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: cycle {c}: {e}"));
    }
    assert!(
        runner.cluster().node_count() > 2,
        "{tag}: run never scaled out — rebalance not covered"
    );

    assert_pruning_neutral(runner.cluster(), runner.catalog(), w.cycles, &tag);
    let stripped = store_only_catalog(&runner);
    assert_pruning_neutral(runner.cluster(), &stripped, w.cycles, &format!("{tag}/store-only"));
}

fn ais(cycles: usize, cells_per_cycle: u64) -> AisWorkload {
    AisWorkload { cycles, scale: 0.05, seed: 21, cells_per_cycle, dark_vessel_rate: 4 }
}

// --------------------------------------------------------------- tests --

/// All 8 partitioners at the default (dictionary) encoding, after a run
/// with retractions, compactions, and rebalances.
#[test]
fn ais_pruning_differential_all_partitioners() {
    let w = ais(3, 1_200);
    for kind in PartitionerKind::ALL {
        run_pruning_pair(&w, kind, StringEncoding::default());
    }
}

/// Dictionary vs plain string storage on two contrasting partitioners;
/// the full matrix runs in release via `scan_smoke`.
#[test]
fn ais_pruning_differential_dict_and_plain() {
    let w = ais(3, 900);
    for kind in [PartitionerKind::HilbertCurve, PartitionerKind::ConsistentHash] {
        for encoding in [StringEncoding::default(), StringEncoding::Plain] {
            run_pruning_pair(&w, kind, encoding);
        }
    }
}

/// Zone maps ride the chunk codec through the WAL checkpoint: crash the
/// durable run at its final record boundary, recover, and demand the
/// recovered state still answers pruned == unpruned with pruning
/// actually firing.
#[test]
fn pruning_survives_a_wal_crash_and_recovery() {
    let w = ais(3, 900);
    let kind = PartitionerKind::ConsistentHash;
    let mut cfg = config(kind, w.cells_per_cycle * 90, StringEncoding::default());
    cfg.durability = Some(DurabilityConfig {
        log: shared(MemLog::new()),
        checkpoint_every: 2,
        fsync_policy: FsyncPolicy::Always,
    });
    let mut live = WorkloadRunner::new(&w, cfg.clone());
    live.run_all().expect("durable run completes");
    let (want, _) = probe(live.cluster(), live.catalog(), w.cycles, false);
    drop(live);

    let rec = WorkloadRunner::recover(&w, cfg, Vec::new()).expect("recovery succeeds");
    assert_eq!(rec.start_cycle(), w.cycles, "recovered mid-run — probes would be vacuous");
    assert_pruning_neutral(rec.cluster(), rec.catalog(), w.cycles, "recovered");
    let (got, _) = probe(rec.cluster(), rec.catalog(), w.cycles, true);
    assert_eq!(got, want, "recovered pruned answers differ from the pre-crash run");
}

/// Heavier CI smoke: the full partitioner × encoding matrix at scale.
/// Run with `cargo test --release --test pruning_differential -- --ignored scan_smoke`.
#[test]
#[ignore = "heavy: run in release via the scan-smoke CI job"]
fn scan_smoke() {
    let w = ais(4, 6_000);
    for kind in PartitionerKind::ALL {
        for encoding in [StringEncoding::default(), StringEncoding::Plain] {
            run_pruning_pair(&w, kind, encoding);
        }
    }
}
