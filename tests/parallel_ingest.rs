//! Differential suite for the sharded multi-threaded ingest path.
//!
//! The contract under test: driving the same chunk stream through the
//! route → place_batch → commit pipeline must produce **bit-identical**
//! placements, loads, and balance census whatever the thread count, for
//! every partitioner — and the incremental census must never drift from
//! the O(nodes) rescan under arbitrary interleavings of batched
//! placement, scale-out, and rebalancing. Also pins the two driver
//! bugfixes that ride along: colliding derived batches surface as errors
//! (not panics), and FixedStep provisioning is closed-form (no silent
//! 64-node cap).

use elastic_array_db::prelude::*;

/// Chunk grid for the differential streams (time × lon × lat).
const GRID: [i64; 3] = [64, 16, 16];

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic stream of `n` distinct chunks spread over two arrays:
/// array 0 is dense-registered, array 1 stays sparse (hash-sharded), and
/// a sprinkle of out-of-extent coordinates exercises the spill maps.
fn stream(n: usize) -> Vec<ChunkDescriptor> {
    let volume = (GRID[0] * GRID[1] * GRID[2]) as usize;
    assert!(n <= 2 * volume, "stream exceeds the two-array grid");
    (0..n)
        .map(|i| {
            let array = ArrayId((i % 2) as u32);
            let j = i / 2;
            // Bijective shuffle within the grid volume.
            let s = (j * 2_654_435_761) % volume;
            let mut t = (s / (GRID[1] * GRID[2]) as usize) as i64;
            let x = ((s / GRID[2] as usize) % GRID[1] as usize) as i64;
            let y = (s % GRID[2] as usize) as i64;
            if j % 97 == 0 {
                t += GRID[0]; // past the registered extent -> spill
            }
            let r = splitmix(i as u64 ^ 0xfeed_f00d);
            let bytes = 1_000 + (r % 65_536) * (r % 7 + 1);
            ChunkDescriptor::new(ChunkKey::new(array, ChunkCoords::new([t, x, y])), bytes, 1)
        })
        .collect()
}

/// Drive `chunks` through the sharded pipeline in batches, returning the
/// final cluster and partitioner.
fn ingest(
    kind: PartitionerKind,
    chunks: &[ChunkDescriptor],
    batch_size: usize,
    threads: usize,
) -> (Cluster, Box<dyn Partitioner>) {
    let mut cluster = Cluster::new(8, u64::MAX, CostModel::default()).unwrap();
    assert!(cluster.register_array(ArrayId(0), &GRID));
    let grid = GridHint::new(GRID.to_vec());
    let mut partitioner = build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());
    for batch in chunks.chunks(batch_size) {
        let prefix = batch_prefix_bytes(batch);
        let epoch = RouteEpoch::for_batch(&cluster, &prefix);
        let routes = route_batch(partitioner.as_ref(), batch, &epoch, threads);
        cluster.place_batch(batch, &routes, threads).expect("stream has no duplicates");
        partitioner.commit(batch, &routes);
    }
    (cluster, partitioner)
}

/// Every partitioner must produce bit-identical placements, loads, and
/// census at 2 and 4 threads versus the sequential pipeline, and its own
/// lookup table must agree with the cluster afterwards.
#[test]
fn parallel_ingest_is_bit_identical_for_every_partitioner() {
    let chunks = stream(4_000);
    for kind in PartitionerKind::ALL {
        let (seq, _) = ingest(kind, &chunks, 512, 1);
        let seq_placements: Vec<_> = seq.placements().collect();
        for threads in [2usize, 4] {
            let (par, partitioner) = ingest(kind, &chunks, 512, threads);
            assert_eq!(par.loads(), seq.loads(), "{kind}: loads differ at {threads} threads");
            assert_eq!(
                par.balance_rsd().to_bits(),
                seq.balance_rsd().to_bits(),
                "{kind}: census differs at {threads} threads"
            );
            let par_placements: Vec<_> = par.placements().collect();
            assert_eq!(par_placements, seq_placements, "{kind}: placements differ");
            for &(key, node) in &par_placements {
                assert_eq!(partitioner.locate(&key), Some(node), "{kind}: locate disagrees");
            }
        }
    }
}

/// The batched pipeline at one thread must also match the classic
/// per-chunk `place` protocol for the order-insensitive schemes (the
/// arrival-order schemes route whole batches against one epoch, which is
/// their documented batch semantics).
#[test]
fn batched_pipeline_matches_per_chunk_protocol() {
    let chunks = stream(2_000);
    for kind in [
        PartitionerKind::ConsistentHash,
        PartitionerKind::ExtendibleHash,
        PartitionerKind::HilbertCurve,
        PartitionerKind::IncrementalQuadtree,
        PartitionerKind::KdTree,
        PartitionerKind::UniformRange,
        PartitionerKind::RoundRobin,
    ] {
        let mut cluster = Cluster::new(8, u64::MAX, CostModel::default()).unwrap();
        assert!(cluster.register_array(ArrayId(0), &GRID));
        let grid = GridHint::new(GRID.to_vec());
        let mut p = build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());
        for desc in &chunks {
            let node = p.place(desc, &cluster);
            cluster.place(*desc, node).unwrap();
        }
        let (batched, _) = ingest(kind, &chunks, 256, 1);
        assert_eq!(batched.loads(), cluster.loads(), "{kind}");
        assert_eq!(
            batched.placements().collect::<Vec<_>>(),
            cluster.placements().collect::<Vec<_>>(),
            "{kind}"
        );
    }
}

/// Census-drift: after a random script of batched placements (sequential
/// and sharded-merged), scale-outs, and rebalances, the O(1) incremental
/// census must agree with the O(nodes) rescan to 1e-12 at every step.
#[test]
fn census_never_drifts_under_random_scripts() {
    for seed in 0..4u64 {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        assert!(cluster.register_array(ArrayId(0), &GRID));
        let grid = GridHint::new(GRID.to_vec());
        let mut partitioner = build_partitioner(
            PartitionerKind::ConsistentHash,
            &cluster,
            &grid,
            &PartitionerConfig::default(),
        );
        let chunks = stream(3_000);
        let mut cursor = 0usize;
        let mut step = 0u64;
        while cursor < chunks.len() {
            step += 1;
            let r = splitmix(seed.wrapping_mul(0x1234_5678).wrapping_add(step));
            match r % 4 {
                // Batched placement, alternating thread counts.
                0..=2 => {
                    let len = (64 + (r >> 8) % 512) as usize;
                    let batch = &chunks[cursor..(cursor + len).min(chunks.len())];
                    cursor += batch.len();
                    let threads = [1usize, 3, 4][(r >> 24) as usize % 3];
                    let prefix = batch_prefix_bytes(batch);
                    let epoch = RouteEpoch::for_batch(&cluster, &prefix);
                    let routes = route_batch(partitioner.as_ref(), batch, &epoch, threads);
                    cluster.place_batch(batch, &routes, threads).unwrap();
                    partitioner.commit(batch, &routes);
                }
                // Scale out + rebalance.
                _ => {
                    if cluster.node_count() < 12 {
                        let new = cluster.add_nodes(1 + (r >> 16) as usize % 2, u64::MAX);
                        let plan = partitioner.scale_out(&cluster, &new);
                        cluster.apply_rebalance(&plan).unwrap();
                    }
                }
            }
            let incremental = cluster.balance_rsd();
            let rescan = relative_std_dev(&cluster.loads());
            assert!(
                (incremental - rescan).abs() <= 1e-12,
                "seed {seed} step {step}: census drifted: {incremental} vs {rescan}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Driver bugfix regressions.
// ---------------------------------------------------------------------

/// A workload whose derived batch re-emits the same chunk key every
/// cycle — the §3.4 "store findings" path colliding with an earlier
/// cycle's product. Used to panic the driver via `expect`.
struct CollidingDerived;

impl Workload for CollidingDerived {
    fn name(&self) -> &'static str {
        "colliding-derived"
    }

    fn cycles(&self) -> usize {
        3
    }

    fn register_arrays(&self, catalog: &mut Catalog) {
        let schema = ArraySchema::parse("A<v:double>[t=0:*,1, x=0:63,1]").unwrap();
        catalog.register(StoredArray::from_descriptors(ArrayId(0), schema, []));
    }

    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        (0..8i64)
            .map(|i| {
                let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([cycle as i64, i]));
                ChunkDescriptor::new(key, 1_000_000, 10)
            })
            .collect()
    }

    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        // The same key every cycle: collides from cycle 1 onward.
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([999, 0]));
        vec![ChunkDescriptor::new(key, 500, 5)]
    }

    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![8, 64])
    }

    fn quad_plane(&self) -> (usize, usize) {
        (0, 1)
    }

    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

fn plain_config(kind: PartitionerKind, node_capacity: u64) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 2,
        partitioner: kind,
        partitioner_config: PartitionerConfig::default(),
        scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
        cost: CostModel::default(),
        run_queries: false,
        ingest_threads: 2,
        string_encoding: StringEncoding::default(),
        ..RunnerConfig::default()
    }
}

/// A derived batch colliding with an earlier cycle's product must surface
/// as `CycleError::Derived`, not a panic, and the offending batch rolls
/// back so the cluster's books stay balanced.
#[test]
fn colliding_derived_batch_is_an_error_not_a_panic() {
    let w = CollidingDerived;
    let mut runner =
        WorkloadRunner::new(&w, plain_config(PartitionerKind::ConsistentHash, 1 << 40));
    let err = runner.run_all().unwrap_err();
    match err {
        CycleError::Derived { cycle, .. } => assert_eq!(cycle, 1, "first collision is cycle 1"),
        other => panic!("expected a derived-batch error, got {other}"),
    }
    // The failed batch rolled back: ledgers still balance.
    let total: u64 = runner.cluster().loads().iter().sum();
    assert_eq!(total, runner.cluster().total_used());
    assert!(
        (runner.cluster().balance_rsd() - relative_std_dev(&runner.cluster().loads())).abs()
            <= 1e-12
    );
}

/// One huge batch that needs far more than the old silent 64-node cap.
struct HugeDay {
    chunks: usize,
    bytes_per_chunk: u64,
}

impl Workload for HugeDay {
    fn name(&self) -> &'static str {
        "huge-day"
    }

    fn cycles(&self) -> usize {
        1
    }

    fn register_arrays(&self, catalog: &mut Catalog) {
        let schema = ArraySchema::parse("H<v:double>[t=0:*,1, x=0:1023,1]").unwrap();
        catalog.register(StoredArray::from_descriptors(ArrayId(0), schema, []));
    }

    fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        (0..self.chunks as i64)
            .map(|i| {
                let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0, i]));
                ChunkDescriptor::new(key, self.bytes_per_chunk, 1)
            })
            .collect()
    }

    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }

    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![2, 1024])
    }

    fn quad_plane(&self) -> (usize, usize) {
        (0, 1)
    }

    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

/// FixedStep used to stop adding nodes after 64 and silently
/// under-provision; the closed form must now cover the whole demand in
/// one cycle, rounded up to a multiple of the step.
#[test]
fn fixed_step_provisions_past_the_old_64_node_cap() {
    // 300 GB of demand on 1 GiB nodes at a 0.8 trigger needs ~350 nodes.
    let w = HugeDay { chunks: 300, bytes_per_chunk: 1_000_000_000 };
    let mut runner =
        WorkloadRunner::new(&w, plain_config(PartitionerKind::ConsistentHash, 1 << 30));
    let report = runner.run_all().unwrap();
    let c = &report.cycles[0];
    assert!(!c.scale_saturated, "375 nodes is well under the safety cap");
    assert_eq!(c.added_nodes % 2, 0, "scale-outs come in steps of `add`");
    // Demand must actually fit under the trigger now — the old loop left
    // the cluster at 2 + 66 nodes here, ~4.5x under-provisioned.
    let usable = 0.8 * c.nodes as f64 * (1u64 << 30) as f64;
    assert!(
        c.demand_gb * 1e9 <= usable,
        "under-provisioned: {} GB demand vs {} usable",
        c.demand_gb,
        usable / 1e9
    );
    assert!(c.nodes > 300, "need hundreds of nodes, got {}", c.nodes);
}

/// When even the safety cap cannot satisfy demand, the driver reports
/// saturation instead of dropping the shortfall on the floor.
#[test]
fn fixed_step_saturation_is_surfaced() {
    // ~10 TB of demand on 1 MB nodes: needs ~12.5M nodes, far past the cap.
    let w = HugeDay { chunks: 10, bytes_per_chunk: 1 << 40 };
    let mut runner = WorkloadRunner::new(&w, plain_config(PartitionerKind::Append, 1 << 20));
    let report = runner.run_all().unwrap();
    let c = &report.cycles[0];
    assert!(c.scale_saturated, "the cap must be reported");
    assert_eq!(c.nodes, 2 + 4096, "adds exactly the per-cycle cap");
}

/// CI smoke for the parallel path at a size where races would surface:
/// the full two-array grid, every partitioner, 4 threads vs sequential.
/// Run with `cargo test --release -- --ignored parallel_smoke`.
#[test]
#[ignore = "CI smoke: heavier differential, run explicitly"]
fn parallel_smoke_full_grid_differential() {
    let chunks = stream(30_000);
    for kind in PartitionerKind::ALL {
        let (seq, _) = ingest(kind, &chunks, 4_096, 1);
        let (par, _) = ingest(kind, &chunks, 4_096, 4);
        assert_eq!(par.loads(), seq.loads(), "{kind}");
        assert_eq!(par.balance_rsd().to_bits(), seq.balance_rsd().to_bits(), "{kind}");
        assert_eq!(
            par.placements().collect::<Vec<_>>(),
            seq.placements().collect::<Vec<_>>(),
            "{kind}"
        );
    }
}
