//! Proves the ingest routing path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! up every structure, then drives the route → place-decision → census
//! loop and asserts the heap was never touched. Storage bookkeeping
//! (descriptor admission into a node's B-tree) is measured separately and
//! must stay amortized — container growth only, not per-chunk.

use elastic_array_db::array::chunk_of;
use elastic_array_db::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn schema_3d() -> ArraySchema {
    ArraySchema::parse("A<v:double>[t=0:*,16, x=0:511,16, y=0:511,16]").unwrap()
}

/// Build one partitioner of each stateless-placement kind (their `place`
/// consults a table without recording anything, so the decision itself
/// must be allocation-free).
fn stateless_kinds() -> Vec<PartitionerKind> {
    vec![
        PartitionerKind::ConsistentHash,
        PartitionerKind::ExtendibleHash,
        PartitionerKind::HilbertCurve,
        PartitionerKind::IncrementalQuadtree,
        PartitionerKind::KdTree,
        PartitionerKind::UniformRange,
    ]
}

#[test]
fn routing_path_never_allocates() {
    let schema = schema_3d();
    let cluster = Cluster::new(8, u64::MAX, CostModel::default()).unwrap();
    let grid = GridHint::new(vec![64, 32, 32]);
    let partitioners: Vec<_> = stateless_kinds()
        .into_iter()
        .map(|kind| build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default()))
        .collect();

    // Warm-up pass: fault in lazily initialized state, then measure.
    let mut sink = 0u64;
    for round in 0..2 {
        let start = allocation_count();
        for i in 0..10_000i64 {
            let cell = [(i % 64) * 16, ((i / 64) % 32) * 16, ((i / 2048) % 32) * 16];
            let coords = chunk_of(&schema, &cell).expect("in bounds");
            let key = ChunkKey::new(ArrayId(0), coords);
            let desc = ChunkDescriptor::new(key, 1024, 16);
            for p in &partitioners {
                sink = sink.wrapping_add(p.locate(&desc.key).map_or(0, |n| u64::from(n.0)));
            }
            sink = sink.wrapping_add(cluster.balance_rsd() as u64);
        }
        let allocs = allocation_count() - start;
        if round == 1 {
            assert_eq!(
                allocs,
                0,
                "routing 10k chunks through {} partitioners allocated {allocs} times",
                partitioners.len()
            );
        }
    }
    assert!(sink != u64::MAX, "keep the loop observable");
}

/// `ExecutionContext::node_of` is the per-chunk lookup every query
/// operator runs; both its hit path and its miss path (which used to
/// build the `Unplaced` error string eagerly via `key.to_string()`) must
/// be allocation-free — the error now carries the `Copy` key and renders
/// lazily.
#[test]
fn query_node_of_lookup_never_allocates() {
    let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
    assert!(cluster.register_array(ArrayId(0), &[32, 32]));
    let schema = ArraySchema::parse("A<v:double>[x=0:511,16, y=0:511,16]").unwrap();
    let mut descs = Vec::new();
    for x in 0..32i64 {
        for y in 0..32i64 {
            let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y]));
            let desc = ChunkDescriptor::new(key, 100, 1);
            cluster.place(desc, NodeId(((x + y) % 4) as u32)).unwrap();
            descs.push(desc);
        }
    }
    let mut catalog = Catalog::new();
    catalog.register(StoredArray::from_descriptors(ArrayId(0), schema, descs));
    let ctx = ExecutionContext::new(&cluster, &catalog);
    let array = catalog.array(ArrayId(0)).unwrap();

    let mut sink = 0u64;
    for round in 0..2 {
        let start = allocation_count();
        for i in 0..10_000i64 {
            // Hit path: a placed chunk.
            let hit = ChunkCoords::new([i % 32, (i / 32) % 32]);
            sink ^= ctx.node_of(array, &hit, None).map_or(0, |n| u64::from(n.0));
            // Miss path: past the registered extents, never placed.
            let miss = ChunkCoords::new([64 + (i % 8), 0]);
            if ctx.node_of(array, &miss, None).is_err() {
                sink = sink.wrapping_add(1);
            }
        }
        let allocs = allocation_count() - start;
        if round == 1 {
            assert_eq!(allocs, 0, "20k node_of lookups allocated {allocs} times");
        }
    }
    assert!(sink != u64::MAX, "keep the loop observable");
}

/// Failover reads are the degraded-mode hot path: a primary that serves
/// metadata while only a replica holds the cells — the repair-lag window
/// after a crash. Routing every read through the replica scan and
/// counting it degraded must stay allocation-free, like the healthy
/// lookup path above (the degraded counter is a `Cell` bump, the holder
/// scan walks a borrowed slice, and `PayloadRead` moves by value).
#[test]
fn failover_payload_reads_never_allocate() {
    use elastic_array_db::array::Chunk;

    let mut cluster = Cluster::with_replication(4, u64::MAX, CostModel::default(), 2).unwrap();
    assert!(cluster.register_array(ArrayId(0), &[32, 32]));
    let schema = ArraySchema::parse("A<v:int32>[x=0:511,16, y=0:511,16]").unwrap();
    let mut descs = Vec::new();
    for x in 0..32i64 {
        for y in 0..32i64 {
            let coords = ChunkCoords::new([x, y]);
            let mut chunk = Chunk::new(&schema, coords);
            chunk.push_cell(&schema, vec![x * 16, y * 16], vec![ScalarValue::Int32(1)]).unwrap();
            let desc = chunk.descriptor(ArrayId(0));
            cluster.place(desc, NodeId(((x + y) % 4) as u32)).unwrap();
            // The payload lives only on a replica holder, so every read
            // below must fail over.
            let holder = cluster.replica_holders(&desc.key)[0];
            cluster.attach_replica_payload(desc.key, holder, chunk).unwrap();
            descs.push(desc);
        }
    }
    let mut catalog = Catalog::new();
    // Store-only: no whole-array oracle to hide behind.
    catalog.register(StoredArray::from_descriptors(ArrayId(0), schema, descs));
    let ctx = ExecutionContext::new(&cluster, &catalog);
    let array = catalog.array(ArrayId(0)).unwrap();

    let mut sink = 0u64;
    for round in 0..2 {
        let start = allocation_count();
        for i in 0..10_000i64 {
            let coords = ChunkCoords::new([i % 32, (i / 32) % 32]);
            sink ^= ctx.chunk_payload(array, &coords).map_or(0, |c| c.cell_count());
            sink ^= ctx.node_of(array, &coords, None).map_or(0, |n| u64::from(n.0));
        }
        let allocs = allocation_count() - start;
        if round == 1 {
            assert_eq!(allocs, 0, "10k failover reads allocated {allocs} times");
        }
    }
    assert_eq!(ctx.degraded_reads(), 20_000, "every payload read was a failover");
    assert!(sink != u64::MAX, "keep the loop observable");
}

/// The materialized (cell-level) ingest path must be allocation-**lean**:
/// O(1) amortized allocations per *row*. The old pipeline allocated two
/// `Vec`s per cell (coordinates + values) before a row ever reached its
/// chunk; the flat-batch path moves columns, so heap traffic scales with
/// *chunks* (plus amortized buffer growth), not rows. Separately, the
/// payload-attach phase must do zero chunk deep-copies: attaching is an
/// `Arc` refcount bump plus one map insert, so its allocation budget is
/// a small constant per chunk — a deep copy would cost at least one
/// allocation per column per chunk (here 1 coord buffer + 3 columns) and
/// blow the bound.
#[test]
fn materialized_flat_ingest_allocations_are_amortized_per_row() {
    use std::sync::Arc;

    let rows_n: i64 = 100_000;
    // 3 attributes, fixed-width only (strings inherently allocate their
    // payloads); 16x16 spatial grid over 64-cell time chunks.
    let schema =
        ArraySchema::parse("M<v:double, q:int32, flag:char>[t=0:*,64, x=0:255,16, y=0:255,16]")
            .unwrap();
    let mut cluster = Cluster::new(8, u64::MAX, CostModel::default()).unwrap();
    assert!(cluster.register_array(ArrayId(0), &[64, 16, 16]));
    let grid = GridHint::new(vec![64, 16, 16]);
    let mut partitioner = build_partitioner(
        PartitionerKind::HilbertCurve,
        &cluster,
        &grid,
        &PartitionerConfig::default(),
    );

    // Emit the flat batch (generation may allocate — untracked).
    let mut batch = CellBuffer::new(&schema);
    let mut vals: Vec<ScalarValue> = Vec::with_capacity(3);
    for i in 0..rows_n {
        let s = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cell = [(s % 8) as i64 * 64, (i % 256), ((i / 256) % 256)];
        vals.extend([
            ScalarValue::Double(i as f64 * 0.5),
            ScalarValue::Int32(i as i32),
            ScalarValue::Char(b'a' + (i % 26) as u8),
        ]);
        batch.push_row(&cell, &mut vals).expect("schema-shaped row");
    }

    // Measured: the whole materialized pipeline — batch validation +
    // routing + sharded chunk build + descriptor derivation + batched
    // placement + payload attach.
    let build_start = allocation_count();
    let mut array = Array::new(ArrayId(0), schema);
    array.insert_batch_owned(batch).expect("in bounds");
    let descriptors = array.descriptors();
    let build_allocs = allocation_count() - build_start;

    let chunks = descriptors.len();
    assert!(chunks >= 256, "want a real chunk population, got {chunks}");
    assert_eq!(array.cell_count(), rows_n as u64);
    assert!(
        (build_allocs as i64) < rows_n / 4,
        "building {rows_n} rows into {chunks} chunks allocated {build_allocs} times \
         — not O(1) amortized per row"
    );

    let place_start = allocation_count();
    let prefix = batch_prefix_bytes(&descriptors);
    let epoch = RouteEpoch::for_batch(&cluster, &prefix);
    let routes = route_batch(partitioner.as_ref(), &descriptors, &epoch, 1);
    cluster.place_batch(&descriptors, &routes, 1).expect("unique chunks");
    partitioner.commit(&descriptors, &routes);
    let place_allocs = allocation_count() - place_start;
    assert!(
        (place_allocs as i64) < rows_n / 4,
        "placing {chunks} chunk descriptors allocated {place_allocs} times"
    );

    // Attach phase in isolation: a refcount bump + map insert per chunk.
    // A deep copy would need >= 4 allocations per chunk (coords + 3
    // columns) and fail this budget.
    let attach_start = allocation_count();
    for (coords, chunk) in array.into_chunks() {
        cluster
            .attach_payload(ChunkKey::new(ArrayId(0), coords), Arc::clone(&chunk))
            .expect("placed above");
    }
    let attach_allocs = allocation_count() - attach_start;
    assert_eq!(cluster.payload_count(), chunks);
    assert!(
        attach_allocs < 3 * chunks,
        "attaching {chunks} payloads allocated {attach_allocs} times — \
         that is a deep copy, not an Arc share"
    );
}

/// The dictionary-encoded string scatter must be allocation-lean like
/// the fixed-width path: O(1) **amortized** allocations per row, with
/// **zero per-value `String` allocations** for under-cap columns. A
/// buffered string row is a `u32` code; scattering it into its chunk is
/// a code copy through a per-chunk remap table, so heap traffic scales
/// with `chunks × distinct strings` (dictionary clones + remap tables +
/// amortized buffer growth), never with rows. The plain-encoded build of
/// the very same rows allocates at least one `String` per value — the
/// contrast leg pins that the budget below is only meetable because the
/// dictionary path really does skip per-row string work.
#[test]
fn dict_scatter_allocations_are_amortized_and_string_free() {
    use elastic_array_db::array::StringEncoding;

    let rows_n: i64 = 100_000;
    // Two string attributes, 32 distinct values each (far under the
    // cap), over a geometry that lands the batch in 64 chunks.
    let schema =
        ArraySchema::parse("D<recv:string, tag:string, v:int32>[t=0:*,64, x=0:255,32, y=0:255,32]")
            .unwrap();
    let emit = |encoding: StringEncoding| {
        let mut batch = CellBuffer::with_encoding(&schema, encoding);
        let mut vals: Vec<ScalarValue> = Vec::with_capacity(3);
        for i in 0..rows_n {
            let cell = [(i % 64), (i % 256), ((i / 256) % 256)];
            vals.extend([
                ScalarValue::Str(format!("r{:03}", i % 32)),
                ScalarValue::Str(format!("tag-{}", (i / 7) % 32)),
                ScalarValue::Int32(i as i32),
            ]);
            batch.push_row(&cell, &mut vals).expect("schema-shaped row");
        }
        batch
    };

    // Dictionary leg: transport-encoded batch into dictionary chunks.
    let batch = emit(StringEncoding::transport());
    let start = allocation_count();
    let mut array = Array::new(ArrayId(0), schema.clone());
    array.insert_batch_owned(batch).expect("in bounds");
    let dict_allocs = allocation_count() - start;
    let chunks = array.chunk_count() as i64;
    assert_eq!(array.cell_count(), rows_n as u64);
    assert!(chunks >= 64, "want a real chunk population, got {chunks}");
    assert!(
        (dict_allocs as i64) < rows_n / 8,
        "dict-encoded scatter of {rows_n} rows into {chunks} chunks allocated \
         {dict_allocs} times — not O(1) amortized per row"
    );
    // Per-value string allocations would cost >= 2 x rows on their own;
    // the whole build must fit in a chunks-and-cardinality budget
    // (2 string columns x (32 dictionary clones + map/table growth) plus
    // per-chunk buffers), which per-row traffic would blow instantly.
    assert!(
        (dict_allocs as i64) < chunks * 120,
        "{dict_allocs} allocations exceed the per-chunk dictionary budget \
         ({chunks} chunks) — something on the scatter path allocates per row"
    );

    // Contrast leg: the plain build of the same rows pays one String
    // move per value — its buffer alone holds 2 x rows Strings, so
    // emitting + building allocates per value. (Emission is included
    // here: a plain CellBuffer cannot intern, so the per-value
    // allocations happen there and are *moved* into the chunks.)
    let start = allocation_count();
    let plain_batch = emit(StringEncoding::Plain);
    let mut plain_array = Array::with_encoding(ArrayId(1), schema.clone(), StringEncoding::Plain);
    plain_array.insert_batch_owned(plain_batch).expect("in bounds");
    let plain_allocs = allocation_count() - start;
    assert_eq!(plain_array.cell_count(), rows_n as u64);
    assert!(
        (plain_allocs as i64) >= 2 * rows_n,
        "plain strings should allocate per value (got {plain_allocs} for {rows_n} rows); \
         if this starts passing, the contrast leg no longer proves anything"
    );
}

#[test]
fn dense_placement_insert_is_allocation_free_after_warmup() {
    let mut cluster = Cluster::new(8, u64::MAX, CostModel::default()).unwrap();
    assert!(cluster.register_array(ArrayId(0), &[64, 32, 32]));
    let grid = GridHint::new(vec![64, 32, 32]);
    let mut partitioner = build_partitioner(
        PartitionerKind::ConsistentHash,
        &cluster,
        &grid,
        &PartitionerConfig::default(),
    );

    let place =
        |cluster: &mut Cluster, partitioner: &mut Box<dyn Partitioner>, t: i64, x: i64, y: i64| {
            let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([t, x, y]));
            let desc = ChunkDescriptor::new(key, 1024, 16);
            let node = partitioner.place(&desc, cluster);
            cluster.place(desc, node).expect("unique");
            cluster.balance_rsd()
        };

    // Warm up: fill half the grid so node B-trees have grown.
    for i in 0..32_768i64 {
        place(&mut cluster, &mut partitioner, i / 1024, (i / 32) % 32, i % 32);
    }

    // Measured: the remaining half. The placement index itself (dense
    // grid) must not allocate at all; the only permitted traffic is the
    // amortized growth of per-node descriptor B-trees, which is well
    // under one allocation per chunk.
    let start = allocation_count();
    let mut acc = 0.0;
    let n = 32_768i64;
    for i in 0..n {
        let t = 32 + i / 1024;
        acc += place(&mut cluster, &mut partitioner, t, (i / 32) % 32, i % 32);
    }
    let allocs = allocation_count() - start;
    assert!(
        (allocs as i64) < n / 4,
        "placing {n} chunks allocated {allocs} times — not amortized container growth"
    );
    assert!(acc >= 0.0);
    assert_eq!(cluster.total_chunks(), 65_536);
}
