//! End-to-end test of the future-work affinity loop (§8): observe which
//! chunk pairs a spatial query keeps co-accessing across node boundaries,
//! co-locate them, and verify the same query gets measurably cheaper.

use elastic_array_db::elastic::AffinityAnalyzer;
use elastic_array_db::prelude::*;
use query_engine::ops;

/// A materialized 12x12 grid (2-cell chunks) scattered round-robin over
/// four nodes — the placement that maximizes cross-node halo traffic.
fn scattered_setup() -> (Cluster, Catalog) {
    let schema = ArraySchema::parse("F<v:double>[x=0:11,2, y=0:11,2]").unwrap();
    let mut array = Array::new(ArrayId(0), schema);
    for x in 0..12i64 {
        for y in 0..12i64 {
            array.insert_cell(vec![x, y], vec![ScalarValue::Double((x + y) as f64)]).unwrap();
        }
    }
    let stored = StoredArray::from_array(array);
    let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
    for (i, desc) in stored.descriptors.values().enumerate() {
        cluster.place(*desc, NodeId((i % 4) as u32)).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register(stored);
    (cluster, catalog)
}

/// Feed the analyzer exactly the pairs the windowed aggregate exchanges:
/// face-adjacent chunks on different nodes.
fn observe_halo_traffic(cluster: &Cluster, catalog: &Catalog, analyzer: &mut AffinityAnalyzer) {
    let array = catalog.array(ArrayId(0)).unwrap();
    for (coords, desc) in &array.descriptors {
        let node = cluster.locate(&desc.key).unwrap();
        for dim in 0..2 {
            for delta in [-1i64, 1] {
                let mut ncoords = *coords;
                ncoords[dim] += delta;
                if let Some(ndesc) = array.descriptors.get(&ncoords) {
                    let nnode = cluster.locate(&ndesc.key).unwrap();
                    if nnode != node {
                        analyzer.observe(&desc.key, &ndesc.key, ndesc.bytes / 6);
                    }
                }
            }
        }
    }
}

#[test]
fn affinity_moves_reduce_window_cost() {
    let (mut cluster, catalog) = scattered_setup();
    let region = Region::new(vec![0, 0], vec![11, 11]);

    let (before_result, before) = ops::window_aggregate(
        &ExecutionContext::new(&cluster, &catalog),
        ArrayId(0),
        &region,
        "v",
        1,
    )
    .unwrap();
    assert!(before.remote_fetches > 0, "scattered placement must pay halo fetches");

    // Observe, propose, apply.
    let mut analyzer = AffinityAnalyzer::new();
    observe_halo_traffic(&cluster, &catalog, &mut analyzer);
    assert!(analyzer.pair_count() > 0);
    let plan = analyzer.propose_moves(&cluster, 1.6, 12);
    assert!(!plan.is_empty(), "hot cross-node pairs must yield advice");
    let savings = analyzer.estimated_savings(&cluster, &plan, &cluster.cost_model().clone());
    cluster.apply_rebalance(&plan).unwrap();

    let (after_result, after) = ops::window_aggregate(
        &ExecutionContext::new(&cluster, &catalog),
        ArrayId(0),
        &region,
        "v",
        1,
    )
    .unwrap();

    // The answer is unchanged; the cost is lower.
    assert_eq!(before_result.mean, after_result.mean, "co-location must not change answers");
    assert!(
        after.remote_fetches < before.remote_fetches,
        "halo fetches should drop: {} -> {}",
        before.remote_fetches,
        after.remote_fetches
    );
    assert!(savings > 0.0, "the analyzer should predict positive savings");
}

#[test]
fn balance_cap_limits_affinity_greed() {
    let (cluster, catalog) = scattered_setup();
    let mut analyzer = AffinityAnalyzer::new();
    observe_halo_traffic(&cluster, &catalog, &mut analyzer);
    // A tight cap accepts few or no moves; a loose one accepts more.
    let tight = analyzer.propose_moves(&cluster, 1.05, 100).len();
    let loose = analyzer.propose_moves(&cluster, 3.0, 100).len();
    assert!(loose >= tight, "looser caps admit at least as many moves");
    // And the tight plan never overloads any node beyond the cap.
    let mut shadow = cluster.clone();
    let plan = analyzer.propose_moves(&cluster, 1.05, 100);
    shadow.apply_rebalance(&plan).unwrap();
    let mean = shadow.total_used() as f64 / shadow.node_count() as f64;
    for load in shadow.loads() {
        assert!(load as f64 <= mean * 1.3, "cap was violated: {load} vs mean {mean}");
    }
}
