//! Integration tests for the leading-staircase provisioner driving a live
//! simulated cluster, plus cross-checks of the tuning machinery against
//! hand-computed scenarios.

use elastic_array_db::elastic::provision::{
    estimate_cost, tune_plan_ahead, ClusterSnapshot, CostModelParams,
};
use elastic_array_db::elastic::{prediction_error, tune_samples};
use elastic_array_db::prelude::*;

/// A synthetic workload with an exactly linear demand ramp.
struct LinearWorkload {
    cycles: usize,
    gb_per_cycle: f64,
}

impl Workload for LinearWorkload {
    fn name(&self) -> &'static str {
        "linear"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        let schema = ArraySchema::parse("L<v:double>[t=0:*,1, x=0:31,1]").unwrap();
        catalog.register(StoredArray::from_descriptors(ArrayId(0), schema, []));
    }
    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        let per_chunk = (self.gb_per_cycle * 1e9 / 32.0) as u64;
        (0..32)
            .map(|x| {
                ChunkDescriptor::new(
                    ChunkKey::new(ArrayId(0), ChunkCoords::new([cycle as i64, x])),
                    per_chunk,
                    per_chunk / 64,
                )
            })
            .collect()
    }
    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![self.cycles as i64, 32]).with_split_priority(vec![1])
    }
    fn quad_plane(&self) -> (usize, usize) {
        (0, 1)
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

/// A materialized insert-then-delete script: `grow` cycles of inserts,
/// then wholesale retraction of every grow cycle except cycle 0, which
/// survives so the shrunken cluster still holds (and balances) data.
struct TroughWorkload {
    cycles: usize,
    grow: usize,
    cells: usize,
}

const TROUGH: ArrayId = ArrayId(7);

impl TroughWorkload {
    fn schema() -> ArraySchema {
        ArraySchema::parse("T<v:double>[x=0:*,64]").unwrap()
    }
}

impl Workload for TroughWorkload {
    fn name(&self) -> &'static str {
        "trough"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(TROUGH, Self::schema(), []));
    }
    fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn cell_batch(&self, cycle: usize) -> Option<Vec<workloads::CellBatch>> {
        let mut batch = workloads::CellBatch::new(TROUGH, &Self::schema());
        if cycle < self.grow {
            let mut vals = Vec::with_capacity(1);
            for i in 0..self.cells {
                let x = (cycle * self.cells + i) as i64;
                vals.push(ScalarValue::Double(x as f64));
                batch.push(&[x], &mut vals);
            }
        } else {
            let old = cycle - self.grow + 1;
            for i in 0..self.cells {
                batch.push_retraction(&[(old * self.cells + i) as i64]);
            }
        }
        Some(vec![batch])
    }
    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![1024])
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

fn staircase_config(p: usize) -> RunnerConfig {
    RunnerConfig {
        node_capacity: 10_000_000_000,
        initial_nodes: 1,
        partitioner: PartitionerKind::ConsistentHash,
        partitioner_config: PartitionerConfig::default(),
        scaling: ScalingPolicy::Staircase(StaircaseConfig {
            node_capacity_gb: 10.0,
            samples: 2,
            plan_ahead: p,
            trigger: 1.0,
            shrink_margin: 0.0,
        }),
        cost: CostModel::default(),
        run_queries: false,
        ingest_threads: 1,
        string_encoding: StringEncoding::default(),
        ..RunnerConfig::default()
    }
}

#[test]
fn staircase_always_covers_demand() {
    let workload = LinearWorkload { cycles: 12, gb_per_cycle: 4.0 };
    for p in [1usize, 3, 6] {
        let mut cfg = staircase_config(p);
        cfg.scaling = ScalingPolicy::Staircase(StaircaseConfig {
            node_capacity_gb: 10.0,
            samples: 2,
            plan_ahead: p,
            trigger: 1.0,
            shrink_margin: 0.0,
        });
        let report = WorkloadRunner::new(&workload, cfg).run_all().unwrap();
        for c in &report.cycles {
            assert!(
                c.demand_gb <= c.nodes as f64 * 10.0 + 1e-9,
                "p={p} cycle {}: demand {:.1} over capacity ({} nodes)",
                c.cycle,
                c.demand_gb,
                c.nodes
            );
        }
    }
}

#[test]
fn eager_horizons_step_larger_and_less_often() {
    let workload = LinearWorkload { cycles: 12, gb_per_cycle: 4.0 };
    let run = |p: usize| {
        let report = WorkloadRunner::new(&workload, staircase_config(p)).run_all().unwrap();
        let events = report.cycles.iter().filter(|c| c.added_nodes > 0).count();
        let max_step = report.cycles.iter().map(|c| c.added_nodes).max().unwrap();
        (events, max_step)
    };
    let (lazy_events, lazy_step) = run(1);
    let (eager_events, eager_step) = run(6);
    assert!(lazy_events > eager_events, "lazy {lazy_events} vs eager {eager_events}");
    assert!(eager_step > lazy_step, "eager steps {eager_step} vs lazy {lazy_step}");
}

#[test]
fn linear_demand_makes_every_window_exact() {
    // On a perfect ramp, Eq. 3's derivative is exact for every s, so the
    // staircase under any window provisions identically.
    let history: Vec<f64> = (1..=20).map(|i| 4.0 * i as f64).collect();
    for s in 1..=4 {
        assert!(prediction_error(&history, s).unwrap() < 1e-9);
    }
    let report = tune_samples(&history, 4);
    assert!(report.errors.iter().all(|e| *e < 1e-9));
}

#[test]
fn cost_model_penalizes_gross_overprovisioning() {
    let snap =
        ClusterSnapshot { nodes: 2, load_gb: 19.0, insert_rate_gb: 4.0, last_query_secs: 60.0 };
    let params = CostModelParams {
        node_capacity_gb: 10.0,
        delta_secs_per_gb: 8.0,
        t_secs_per_gb: 12.0,
        horizon: 10,
    };
    let report = tune_plan_ahead(&[1, 20], &snap, &params);
    let lazy = &report.estimates[0];
    let absurd = &report.estimates[1];
    assert!(
        absurd.node_hours > lazy.node_hours,
        "p=20 ({:.1} nh) must cost more than p=1 ({:.1} nh)",
        absurd.node_hours,
        lazy.node_hours
    );
    assert_eq!(report.best, 1);
}

#[test]
fn estimates_scale_with_the_horizon() {
    let snap =
        ClusterSnapshot { nodes: 2, load_gb: 19.0, insert_rate_gb: 4.0, last_query_secs: 60.0 };
    let mk = |m: usize| CostModelParams {
        node_capacity_gb: 10.0,
        delta_secs_per_gb: 8.0,
        t_secs_per_gb: 12.0,
        horizon: m,
    };
    let short = estimate_cost(2, &snap, &mk(4)).node_hours;
    let long = estimate_cost(2, &snap, &mk(12)).node_hours;
    assert!(long > short * 2.0, "horizon must accumulate cost: {short} vs {long}");
}

/// Acceptance pin for two-sided elasticity: a demand-trough run ends
/// with strictly fewer nodes than its peak, keeps demand covered every
/// cycle of the descent, and the drain-out rebalances well enough that
/// the end-state `balance_rsd()` stays inside the balance band the
/// fault-free run itself maintained while growing.
#[test]
fn demand_trough_releases_nodes_and_stays_balanced() {
    let w = TroughWorkload { cycles: 5, grow: 3, cells: 2048 };
    for kind in [PartitionerKind::ConsistentHash, PartitionerKind::RoundRobin] {
        let cfg = RunnerConfig {
            node_capacity: 16_384,
            initial_nodes: 2,
            partitioner: kind,
            run_queries: false,
            scaling: ScalingPolicy::Staircase(StaircaseConfig {
                node_capacity_gb: 16_384.0 / 1e9,
                samples: 2,
                plan_ahead: 1,
                trigger: 1.0,
                shrink_margin: 0.75,
            }),
            ..RunnerConfig::default()
        };
        let mut runner = WorkloadRunner::new(&w, cfg);
        let report = runner.run_all().unwrap();
        assert!(report.failures.is_empty(), "{kind}: {:?}", report.failures);

        // Strictly fewer nodes than the peak, via real scale-IN steps.
        let peak = report.cycles.iter().map(|c| c.nodes).max().unwrap();
        let end = report.cycles.last().unwrap().nodes;
        let removed: usize = report.cycles.iter().map(|c| c.removed_nodes).sum();
        assert!(peak > 2, "{kind}: the cluster never grew (peak {peak})");
        assert!(end < peak, "{kind}: must end below the {peak}-node peak, got {end}");
        assert_eq!(removed, peak - end, "{kind}: releases must account for the descent");
        assert_eq!(runner.cluster().active_node_count(), end, "{kind}: roster census");

        // Demand stays covered on the way down, shrink steps included.
        for c in &report.cycles {
            assert!(
                c.demand_gb <= c.nodes as f64 * 16_384.0 / 1e9 + 1e-12,
                "{kind} cycle {}: demand {} uncovered by {} nodes",
                c.cycle,
                c.demand_gb,
                c.nodes
            );
        }

        // The survivors were drained onto the remaining roster no worse
        // than the growth phase ever balanced its own inserts.
        let band = report.cycles.iter().map(|c| c.rsd_after_insert).fold(0.0f64, f64::max);
        let rsd = runner.cluster().balance_rsd();
        assert!(
            rsd <= band + 1e-12,
            "{kind}: post-shrink balance {rsd} outside the fault-free band {band}"
        );
        // And the surviving cells are all still there.
        assert!(runner.cluster().total_chunks() > 0, "{kind}: survivors evicted");
        let stored = runner.catalog().array(TROUGH).unwrap();
        let live: u64 = stored.descriptors.values().map(|d| d.cells).sum();
        assert_eq!(live, w.cells as u64, "{kind}: cycle-0 survivors lost in the descent");
    }
}

#[test]
fn provisioner_history_feeds_tuning_mid_run() {
    // Run half the workload, tune s from the controller's own history,
    // then confirm the tuner returns a usable window.
    let workload = LinearWorkload { cycles: 12, gb_per_cycle: 4.0 };
    let mut runner = WorkloadRunner::new(&workload, staircase_config(2));
    for c in 0..6 {
        runner.run_cycle(c).unwrap();
    }
    let history = runner.provisioner().unwrap().history().to_vec();
    assert_eq!(history.len(), 6);
    let report = tune_samples(&history, 4);
    assert!(report.best >= 1 && report.best <= 4);
}
