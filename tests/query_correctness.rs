//! Query answers must be placement-invariant: however an elastic
//! partitioner scatters the chunks, every operator returns exactly the
//! same (naively verifiable) result. Costs change with placement; answers
//! never do.

use elastic_array_db::prelude::*;
use query_engine::ops;

/// A small materialized 2-D array with deterministic values, placed by
/// the given partitioner on a 4-node cluster.
fn setup(kind: PartitionerKind) -> (Cluster, Catalog) {
    let schema = ArraySchema::parse("G<v:double, id:int64>[x=0:15,2, y=0:15,2]").unwrap();
    let mut array = Array::new(ArrayId(0), schema);
    for x in 0..16i64 {
        for y in 0..16i64 {
            // Sparse: skip a diagonal band.
            if (x + y) % 5 == 4 {
                continue;
            }
            array
                .insert_cell(
                    vec![x, y],
                    vec![ScalarValue::Double((x * 16 + y) as f64), ScalarValue::Int64(x % 4)],
                )
                .unwrap();
        }
    }
    let stored = StoredArray::from_array(array);
    let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
    let grid = GridHint::new(vec![8, 8]);
    let mut partitioner = build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());
    for desc in stored.descriptors.values() {
        let node = partitioner.place(desc, &cluster);
        cluster.place(*desc, node).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register(stored);
    (cluster, catalog)
}

/// All cells of the test array, naively enumerated.
fn naive_cells() -> Vec<(i64, i64, f64, i64)> {
    let mut out = Vec::new();
    for x in 0..16i64 {
        for y in 0..16i64 {
            if (x + y) % 5 != 4 {
                out.push((x, y, (x * 16 + y) as f64, x % 4));
            }
        }
    }
    out
}

#[test]
fn subarray_answers_are_placement_invariant() {
    let region = Region::new(vec![2, 3], vec![9, 12]);
    let expected: usize = naive_cells()
        .iter()
        .filter(|(x, y, _, _)| (2..=9).contains(x) && (3..=12).contains(y))
        .count();
    for kind in PartitionerKind::ALL {
        let (cluster, catalog) = setup(kind);
        let ctx = ExecutionContext::new(&cluster, &catalog);
        let (cells, stats) = ops::subarray(&ctx, ArrayId(0), &region, &[]).unwrap();
        assert_eq!(cells.len(), expected, "{kind}: wrong subarray answer");
        assert!(stats.elapsed_secs > 0.0);
    }
}

#[test]
fn quantile_and_distinct_are_placement_invariant() {
    let mut values: Vec<f64> = naive_cells().iter().map(|&(_, _, v, _)| v).collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let naive_median = values[(values.len() - 1) / 2];
    for kind in PartitionerKind::ALL {
        let (cluster, catalog) = setup(kind);
        let ctx = ExecutionContext::new(&cluster, &catalog);
        let (q, _) = ops::quantile(&ctx, ArrayId(0), None, "v", 0.5, 1.0).unwrap();
        let got = q.value.unwrap();
        assert!((got - naive_median).abs() <= 1.0, "{kind}: median {got} vs naive {naive_median}");
        let (ids, _) = ops::distinct_sorted(&ctx, ArrayId(0), None, "id").unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3], "{kind}: distinct ids wrong");
    }
}

#[test]
fn aggregates_are_placement_invariant() {
    let naive_total: f64 = naive_cells().iter().map(|&(_, _, v, _)| v).sum();
    let spec = ops::GroupSpec::coarsened(vec![0], vec![4]);
    for kind in PartitionerKind::ALL {
        let (cluster, catalog) = setup(kind);
        let ctx = ExecutionContext::new(&cluster, &catalog);
        let (rows, _) =
            ops::grid_aggregate(&ctx, ArrayId(0), None, "v", &spec, ops::AggFn::Sum).unwrap();
        assert_eq!(rows.len(), 4, "{kind}: 16/4 = 4 groups");
        let total: f64 = rows.iter().map(|r| r.value).sum();
        assert!((total - naive_total).abs() < 1e-9, "{kind}: sum {total} vs naive {naive_total}");
    }
}

#[test]
fn knn_distances_are_placement_invariant() {
    for kind in PartitionerKind::ALL {
        let (cluster, catalog) = setup(kind);
        let ctx = ExecutionContext::new(&cluster, &catalog);
        let (answers, _) = ops::knn(&ctx, ArrayId(0), &[vec![8, 8]], 4).unwrap();
        // (8,8) is stored ((8+8)%5 == 1), so the nearest neighbour is
        // itself at distance 0; the next are the adjacent stored cells.
        let d = &answers[0].neighbor_dist2;
        assert_eq!(d.len(), 4, "{kind}");
        assert_eq!(d[0], 0.0, "{kind}: self distance");
        assert!(d[1] >= 1.0 && d[3] <= 4.0, "{kind}: neighbours {d:?}");
    }
}

#[test]
fn join_answers_are_placement_invariant() {
    // Build a second co-dimensional array present only on even x.
    for kind in [
        PartitionerKind::RoundRobin,
        PartitionerKind::HilbertCurve,
        PartitionerKind::ConsistentHash,
        PartitionerKind::KdTree,
    ] {
        let (mut cluster, mut catalog) = setup(kind);
        let schema = ArraySchema::parse("H<w:double>[x=0:15,2, y=0:15,2]").unwrap();
        let mut other = Array::new(ArrayId(1), schema);
        for x in (0..16i64).step_by(2) {
            for y in 0..16i64 {
                if (x + y) % 5 != 4 {
                    other.insert_cell(vec![x, y], vec![ScalarValue::Double(1.0)]).unwrap();
                }
            }
        }
        let stored = StoredArray::from_array(other);
        let grid = GridHint::new(vec![8, 8]);
        let mut partitioner =
            build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());
        for desc in stored.descriptors.values() {
            let node = partitioner.place(desc, &cluster);
            cluster.place(*desc, node).unwrap();
        }
        catalog.register(stored);

        let expected: u64 = naive_cells().iter().filter(|(x, _, _, _)| x % 2 == 0).count() as u64;
        let ctx = ExecutionContext::new(&cluster, &catalog);
        let region = Region::new(vec![0, 0], vec![15, 15]);
        let (result, _) =
            ops::positional_join(&ctx, ArrayId(0), ArrayId(1), &region, "v", "w", |a, b| a * b)
                .unwrap();
        assert_eq!(result.matches, expected, "{kind}: join cardinality");
    }
}

#[test]
fn window_mean_is_placement_invariant() {
    let region = Region::new(vec![4, 4], vec![6, 6]);
    let mut reference: Option<f64> = None;
    for kind in PartitionerKind::ALL {
        let (cluster, catalog) = setup(kind);
        let ctx = ExecutionContext::new(&cluster, &catalog);
        let (result, _) = ops::window_aggregate(&ctx, ArrayId(0), &region, "v", 1).unwrap();
        let mean = result.mean.unwrap();
        match reference {
            None => reference = Some(mean),
            Some(r) => assert!((mean - r).abs() < 1e-12, "{kind}: {mean} vs {r}"),
        }
    }
}
