//! End-to-end integration: the full §3.4 workload cycle (ingest →
//! provision/reorganize → query) across every crate, for both use cases
//! and all eight partitioners at reduced scale.

use elastic_array_db::prelude::*;

fn mini_modis() -> ModisWorkload {
    ModisWorkload { days: 6, scale: 0.2, seed: 11, ..Default::default() }
}

fn mini_ais() -> AisWorkload {
    AisWorkload { cycles: 5, scale: 0.2, seed: 12, ..Default::default() }
}

fn mini_config(kind: PartitionerKind) -> RunnerConfig {
    let mut config = RunnerConfig::paper_section62(kind);
    config.node_capacity = 20_000_000_000; // 20 GB nodes at 0.2 scale
    config
}

#[test]
fn every_partitioner_completes_both_workloads() {
    let modis = mini_modis();
    let ais = mini_ais();
    for kind in PartitionerKind::ALL {
        for (name, report) in [
            ("modis", WorkloadRunner::new(&modis, mini_config(kind)).run_all().unwrap()),
            ("ais", WorkloadRunner::new(&ais, mini_config(kind)).run_all().unwrap()),
        ] {
            assert!(!report.cycles.is_empty(), "{kind}/{name}: no cycles");
            // Demand grows monotonically (no-overwrite storage).
            for w in report.cycles.windows(2) {
                assert!(w[1].demand_gb >= w[0].demand_gb, "{kind}/{name}: demand shrank");
                assert!(w[1].nodes >= w[0].nodes, "{kind}/{name}: cluster shrank");
            }
            // All three phases accumulate simulated time.
            let phases = report.phase_totals();
            assert!(phases.insert_secs > 0.0, "{kind}/{name}: no insert time");
            assert!(phases.query_secs > 0.0, "{kind}/{name}: no query time");
            assert!(report.node_hours() > 0.0, "{kind}/{name}: no cost");
            // Suites ran every cycle and produced all six queries.
            for c in &report.cycles {
                let suites = c.suites.as_ref().expect("queries enabled");
                assert!(
                    suites.queries.len() >= 6,
                    "{kind}/{name} cycle {}: only {} queries",
                    c.cycle,
                    suites.queries.len()
                );
                assert!(suites.spj_secs() > 0.0);
                assert!(suites.science_secs() > 0.0);
            }
        }
    }
}

#[test]
fn incremental_schemes_move_less_than_global_ones() {
    let modis = mini_modis();
    let moved = |kind: PartitionerKind| -> u64 {
        WorkloadRunner::new(&modis, mini_config(kind))
            .run_all()
            .unwrap()
            .cycles
            .iter()
            .map(|c| c.moved_bytes)
            .sum()
    };
    let incremental = moved(PartitionerKind::ConsistentHash);
    let global = moved(PartitionerKind::RoundRobin);
    assert!(
        global > incremental,
        "global reshuffles must move more: RR {global} vs CH {incremental}"
    );
    assert_eq!(moved(PartitionerKind::Append), 0, "append never moves data");
}

#[test]
fn reorganization_happens_before_ingest() {
    // §3.4: under-provisioning is resolved before the insert lands, so no
    // cycle may end with demand above capacity when scaling is enabled
    // with a trigger below 1.
    let modis = mini_modis();
    let report =
        WorkloadRunner::new(&modis, mini_config(PartitionerKind::HilbertCurve)).run_all().unwrap();
    for c in &report.cycles {
        let capacity_gb = c.nodes as f64 * 20.0;
        assert!(
            c.demand_gb <= capacity_gb,
            "cycle {}: demand {:.1} GB exceeds capacity {:.1} GB",
            c.cycle,
            c.demand_gb,
            capacity_gb
        );
    }
}

#[test]
fn skew_separates_the_schemes_on_ais() {
    let ais = mini_ais();
    let rsd = |kind: PartitionerKind| -> f64 {
        WorkloadRunner::new(&ais, mini_config(kind)).run_all().unwrap().mean_rsd()
    };
    let round_robin = rsd(PartitionerKind::RoundRobin);
    let uniform_range = rsd(PartitionerKind::UniformRange);
    let append = rsd(PartitionerKind::Append);
    assert!(round_robin < 0.15, "round robin should stay balanced under skew: {round_robin}");
    assert!(
        uniform_range > 3.0 * round_robin,
        "uniform range must be brittle to skew: UR {uniform_range} vs RR {round_robin}"
    );
    assert!(append > 0.3, "append's balance is poor by design: {append}");
}

#[test]
fn staircase_and_fixed_step_agree_on_final_scale() {
    // Both policies must provision enough for the workload's total demand;
    // the staircase may land slightly differently but in the same regime.
    let modis = mini_modis();
    let fixed = WorkloadRunner::new(&modis, mini_config(PartitionerKind::ConsistentHash))
        .run_all()
        .unwrap()
        .cycles
        .last()
        .unwrap()
        .nodes;
    let mut cfg = mini_config(PartitionerKind::ConsistentHash);
    cfg.scaling = ScalingPolicy::Staircase(StaircaseConfig {
        node_capacity_gb: 20.0,
        samples: 2,
        plan_ahead: 2,
        trigger: 1.0,
        shrink_margin: 0.0,
    });
    let staircase =
        WorkloadRunner::new(&modis, cfg).run_all().unwrap().cycles.last().unwrap().nodes;
    let diff = fixed.abs_diff(staircase);
    assert!(diff <= 2, "policies diverge: fixed-step ended at {fixed}, staircase at {staircase}");
}
