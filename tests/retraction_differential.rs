//! The retraction differential suite.
//!
//! Contract under test: a retraction is a *perfect* undo. A workload
//! that inserts cells and later retracts some of them must end up
//! answering every query bit-identically to a twin workload that never
//! inserted the retracted cells at all — across all 8 partitioners,
//! after every scale-out and rebalance either run triggers, for
//! dictionary-encoded and plain string storage, and at replication
//! k ∈ {1, 2}. The runs' *placements and byte accounting* legitimately
//! diverge (the insert+delete run carried the doomed cells for a cycle,
//! so its demand curve and rebalances differ); the *answer space* may
//! not.
//!
//! The never-inserted baseline is constructed mechanically from the
//! retracting workload itself (`SurvivorsOnly`): replay the generator,
//! collect every coordinate any cycle retracts, and emit only the
//! surviving inserts with no retractions. Cells a run retracts are
//! exactly the cells its baseline never sees, so after the *last*
//! retraction lands the two runs describe the same array.

use elastic_array_db::prelude::*;
use query_engine::ops;
use std::collections::{BTreeMap, BTreeSet};
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::modis::{ModisWorkload, BAND1, BAND2};
use workloads::CellBatch;

type Row = (Vec<i64>, Vec<ScalarValue>);

// ------------------------------------------------------------ baseline --

/// The never-inserted twin of a retracting workload: emits the inner
/// generator's cell batches minus every coordinate that any cycle of
/// the run retracts, and emits no retractions itself.
struct SurvivorsOnly<W: Workload> {
    inner: W,
    schemas: BTreeMap<ArrayId, ArraySchema>,
    doomed: BTreeMap<ArrayId, BTreeSet<Vec<i64>>>,
}

impl<W: Workload> SurvivorsOnly<W> {
    fn new(inner: W) -> Self {
        let mut catalog = Catalog::new();
        inner.register_arrays(&mut catalog);
        let mut schemas = BTreeMap::new();
        let mut doomed: BTreeMap<ArrayId, BTreeSet<Vec<i64>>> = BTreeMap::new();
        for cycle in 0..inner.cycles() {
            for batch in inner.cell_batch(cycle).unwrap_or_default() {
                let schema = catalog.array(batch.array).expect("registered array").schema.clone();
                let dims = schema.dimensions.len();
                schemas.entry(batch.array).or_insert(schema);
                let set = doomed.entry(batch.array).or_default();
                for coords in batch.retractions_flat().chunks(dims) {
                    set.insert(coords.to_vec());
                }
            }
        }
        SurvivorsOnly { inner, schemas, doomed }
    }

    /// Total retractions the inner run will issue — the differential is
    /// vacuous if the generator never goes dark.
    fn doomed_cells(&self) -> usize {
        self.doomed.values().map(|s| s.len()).sum()
    }
}

impl<W: Workload> Workload for SurvivorsOnly<W> {
    fn name(&self) -> &'static str {
        "survivors-only"
    }
    fn cycles(&self) -> usize {
        self.inner.cycles()
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        self.inner.register_arrays(catalog);
    }
    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        self.inner.insert_batch(cycle)
    }
    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        let batches = self.inner.cell_batch(cycle)?;
        Some(
            batches
                .into_iter()
                .map(|b| {
                    let schema = &self.schemas[&b.array];
                    let doomed = self.doomed.get(&b.array);
                    let mut out = CellBatch::new(b.array, schema);
                    let mut scratch = Vec::new();
                    for (coords, values) in b.cells() {
                        if doomed.is_some_and(|d| d.contains(&coords)) {
                            continue;
                        }
                        scratch.extend(values);
                        out.push(&coords, &mut scratch);
                    }
                    out
                })
                .collect(),
        )
    }
    fn derived_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        self.inner.derived_batch(cycle)
    }
    fn grid_hint(&self) -> GridHint {
        self.inner.grid_hint()
    }
    fn quad_plane(&self) -> (usize, usize) {
        self.inner.quad_plane()
    }
    fn run_suites(&self, ctx: &ExecutionContext<'_>, cycle: usize) -> SuiteReport {
        self.inner.run_suites(ctx, cycle)
    }
}

// -------------------------------------------------------------- probes --

fn config(
    kind: PartitionerKind,
    node_capacity: u64,
    encoding: StringEncoding,
    k: usize,
) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 2,
        partitioner: kind,
        scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
        run_queries: false,
        string_encoding: encoding,
        replication: k,
        ..RunnerConfig::default()
    }
}

/// Every operator family's answer in bit-comparable form (floats stored
/// as `to_bits()`), over a fixed probe region *and* the whole array —
/// the retracting run and its never-inserted baseline must agree on all
/// of it, so a tombstone leaking into any operator's iteration fails.
#[derive(Debug, PartialEq)]
struct ProbeAnswers {
    everything: Vec<Row>,
    probe_rows: Vec<Row>,
    filter_count: u64,
    distinct_ids: Vec<i64>,
    median_bits: Option<u64>,
    groups: Vec<(Vec<i64>, u64, u64)>,
    knn: Vec<ops::KnnAnswer>,
}

fn ais_probe_answers(w: &AisWorkload, cluster: &Cluster, catalog: &Catalog) -> ProbeAnswers {
    let ctx = ExecutionContext::new(cluster, catalog);
    let all = Region::new(vec![0, -180, 0], vec![i64::MAX / 2, -66, 90]);
    let (cells, _) = ops::subarray(&ctx, BROADCAST, &all, &[]).unwrap();
    let mut everything = cells.cells.clone();
    everything.sort_by(|a, b| a.0.cmp(&b.0));
    let probe = AisWorkload::cycle_region(0);
    let (cells, _) = ops::subarray(&ctx, BROADCAST, &probe, &[]).unwrap();
    let mut probe_rows = cells.cells.clone();
    probe_rows.sort_by(|a, b| a.0.cmp(&b.0));
    let (filter_count, _) =
        ops::filter_count(&ctx, BROADCAST, &probe, "speed", &Predicate::ge(10.0)).unwrap();
    let (distinct_ids, _) = ops::distinct_sorted(&ctx, BROADCAST, Some(&probe), "ship_id").unwrap();
    let (q, _) = ops::quantile(&ctx, BROADCAST, Some(&probe), "speed", 0.5, 1.0).unwrap();
    let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![8, 8]);
    let (rows, _) =
        ops::grid_aggregate(&ctx, BROADCAST, Some(&probe), "speed", &spec, ops::AggFn::Sum)
            .unwrap();
    let mut groups: Vec<(Vec<i64>, u64, u64)> =
        rows.iter().map(|r| (r.key.clone(), r.value.to_bits(), r.cells)).collect();
    groups.sort();
    let (knn, _) = ops::knn(&ctx, BROADCAST, &w.knn_queries(0, 8), 5).unwrap();
    ProbeAnswers {
        everything,
        probe_rows,
        filter_count,
        distinct_ids,
        median_bits: q.value.map(f64::to_bits),
        groups,
        knn,
    }
}

/// A catalog clone whose whole-array oracle copy is stripped, so every
/// operator must answer from the chunks stored on the cluster's nodes.
fn store_only_catalog(runner: &WorkloadRunner<'_>, ids: &[ArrayId]) -> Catalog {
    let mut cat = runner.catalog().clone();
    for &id in ids {
        cat.array_mut(id).unwrap().data = None;
    }
    cat
}

/// The independent raw-cell oracle: the surviving rows of the retracting
/// generator, computed from the batches alone (inserts minus every
/// retracted coordinate) without touching runner, cluster, or catalog.
fn surviving_rows(w: &AisWorkload) -> Vec<Row> {
    let dims = AisWorkload::broadcast_schema().dimensions.len();
    let mut rows: BTreeMap<Vec<i64>, Vec<ScalarValue>> = BTreeMap::new();
    let mut retracted = 0usize;
    for c in 0..w.cycles {
        let batch = w.cell_batch(c).unwrap().remove(0);
        for coords in batch.retractions_flat().chunks(dims) {
            assert!(rows.remove(coords).is_some(), "retraction of a never-inserted cell");
            retracted += 1;
        }
        for (coords, values) in batch.cells() {
            assert!(rows.insert(coords, values).is_none(), "duplicate insert");
        }
    }
    assert!(retracted > 0, "the dark-vessel generator never retracted anything");
    rows.into_iter().collect()
}

// --------------------------------------------------------------- legs --

/// One lockstep pair: the dark-vessel run vs its never-inserted twin,
/// compared at the end of the run (after the final retraction lands the
/// two describe the same array) on the catalog path, the store-only
/// path, and against the independent raw-cell oracle.
fn run_ais_retraction_pair(
    w: &AisWorkload,
    kind: PartitionerKind,
    node_capacity: u64,
    encoding: StringEncoding,
    k: usize,
) {
    let tag = format!("{kind}/{encoding:?}/k{k}");
    let baseline_w = SurvivorsOnly::new(w.clone());
    assert!(baseline_w.doomed_cells() > 0, "{tag}: no vessel went dark — vacuous differential");

    let mut dark = WorkloadRunner::new(w, config(kind, node_capacity, encoding, k));
    let mut baseline = WorkloadRunner::new(&baseline_w, config(kind, node_capacity, encoding, k));
    for c in 0..w.cycles {
        dark.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: dark cycle {c}: {e}"));
        baseline.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: baseline cycle {c}: {e}"));
    }

    // The retracting run stayed full strength through the deletes.
    assert!(dark.cluster().replica_census().is_full_strength(), "{tag}: census under strength");

    // Catalog path: the insert+delete run equals the never-inserted
    // baseline bit for bit, across every operator family.
    let want = ais_probe_answers(w, baseline.cluster(), baseline.catalog());
    let got = ais_probe_answers(w, dark.cluster(), dark.catalog());
    assert_eq!(got, want, "{tag}: insert+delete answers differ from the never-inserted baseline");

    // Both agree with the independent raw-cell oracle.
    let oracle = surviving_rows(w);
    assert_eq!(got.everything, oracle, "{tag}: stored cells differ from the survivor oracle");

    // Store-only path: tombstoned payloads on the nodes answer the same
    // — the catalog's whole-array copy cannot be hiding the deletes.
    let stripped = store_only_catalog(&dark, &[BROADCAST]);
    let store_got = ais_probe_answers(w, dark.cluster(), &stripped);
    assert_eq!(store_got, want, "{tag}: store-only answers differ after retraction");

    // Descriptor books track the retracted payloads exactly.
    let stored = dark.catalog().array(BROADCAST).unwrap();
    let live: u64 = stored.descriptors.values().map(|d| d.cells).sum();
    assert_eq!(live, oracle.len() as u64, "{tag}: descriptor cell totals ignore tombstones");
    for desc in stored.descriptors.values() {
        let payload = dark.cluster().payload(&desc.key).expect("placed chunk has a payload");
        assert_eq!(payload.cell_count(), desc.cells, "{}: live-cell count drifted", desc.key);
        assert_eq!(payload.byte_size(), desc.bytes, "{}: byte accounting drifted", desc.key);
    }
}

fn run_ais_matrix(cells_per_cycle: u64, cycles: usize, kinds: &[PartitionerKind]) {
    let w = AisWorkload { cycles, scale: 0.05, seed: 21, cells_per_cycle, dark_vessel_rate: 4 };
    let node_capacity = cells_per_cycle * 90;
    for &kind in kinds {
        for k in [1usize, 2] {
            for encoding in [StringEncoding::default(), StringEncoding::Plain] {
                run_ais_retraction_pair(&w, kind, node_capacity, encoding, k);
            }
        }
    }
}

// -------------------------------------------------------------- MODIS --

/// MODIS tile-TTL expiry vs its never-inserted twin: positional join,
/// window, and full scans of both bands must agree at end of run.
fn run_modis_ttl_pair(cells_per_cycle: u64, days: usize, kind: PartitionerKind, k: usize) {
    let tag = format!("{kind}/modis-ttl/k{k}");
    let w = ModisWorkload { days, scale: 0.05, seed: 33, cells_per_cycle, ttl_days: 1 };
    let baseline_w = SurvivorsOnly::new(w.clone());
    assert!(baseline_w.doomed_cells() > 0, "{tag}: TTL never expired a tile");

    let node_capacity = cells_per_cycle * 95;
    let encoding = StringEncoding::default();
    let mut ttl = WorkloadRunner::new(&w, config(kind, node_capacity, encoding, k));
    let mut baseline = WorkloadRunner::new(&baseline_w, config(kind, node_capacity, encoding, k));
    for c in 0..days {
        ttl.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: ttl cycle {c}: {e}"));
        baseline.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: baseline cycle {c}: {e}"));
    }

    let scan = |cluster: &Cluster, catalog: &Catalog| {
        let ctx = ExecutionContext::new(cluster, catalog);
        let all = Region::new(vec![0, -180, -90], vec![i64::MAX / 2, 180, 90]);
        let mut bands = Vec::new();
        for id in [BAND1, BAND2] {
            let (cells, _) = ops::subarray(&ctx, id, &all, &[]).unwrap();
            let mut rows = cells.cells.clone();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            bands.push(rows);
        }
        // The surviving day still joins: band1 x band2 NDVI over the
        // last (never-expired) day.
        let day = ModisWorkload::day_region((days - 1) as i64, (days - 1) as i64);
        let ndvi = |b1: f64, b2: f64| (b2 - b1) / (b2 + b1 + 1e-9);
        let (join, _) =
            ops::positional_join(&ctx, BAND1, BAND2, &day, "radiance", "radiance", ndvi).unwrap();
        (bands, join.matches, join.combined_sum.to_bits())
    };
    let want = scan(baseline.cluster(), baseline.catalog());
    let got = scan(ttl.cluster(), ttl.catalog());
    assert_eq!(got, want, "{tag}: TTL-expired answers differ from the never-inserted baseline");
    assert!(want.1 > 0, "{tag}: join oracle found no partners — vacuous");

    let stripped = store_only_catalog(&ttl, &[BAND1, BAND2]);
    let store_got = scan(ttl.cluster(), &stripped);
    assert_eq!(store_got, want, "{tag}: store-only answers differ after TTL expiry");
}

// -------------------------------------------------------------- tests --

/// All 8 partitioners at dict/k=1: the broad sweep.
#[test]
fn ais_retraction_equals_never_inserted_baseline() {
    let w = AisWorkload {
        cycles: 3,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 1_200,
        dark_vessel_rate: 4,
    };
    for kind in PartitionerKind::ALL {
        run_ais_retraction_pair(&w, kind, w.cells_per_cycle * 90, StringEncoding::default(), 1);
    }
}

/// The encoding × replication matrix on two contrasting partitioners
/// (a space partitioner and a hash spread); the full 8-way matrix runs
/// in release via `retraction_smoke`.
#[test]
fn ais_retraction_matrix_dict_plain_k1_k2() {
    run_ais_matrix(900, 3, &[PartitionerKind::HilbertCurve, PartitionerKind::ConsistentHash]);
}

#[test]
fn modis_ttl_expiry_equals_never_inserted_baseline() {
    for kind in [PartitionerKind::UniformRange, PartitionerKind::RoundRobin] {
        run_modis_ttl_pair(900, 3, kind, 1);
    }
    run_modis_ttl_pair(900, 3, PartitionerKind::ConsistentHash, 2);
}

/// Heavier CI smoke: the full partitioner × encoding × replication
/// matrix at scale, plus MODIS TTL. Run with
/// `cargo test --release --test retraction_differential -- --ignored retraction_smoke`.
#[test]
#[ignore = "heavy: run in release via the retraction-smoke CI job"]
fn retraction_smoke() {
    run_ais_matrix(6_000, 4, &PartitionerKind::ALL);
    for kind in PartitionerKind::ALL {
        run_modis_ttl_pair(4_000, 4, kind, 2);
    }
}
