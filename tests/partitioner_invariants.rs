//! Cross-crate property tests: the paper's Table-1 invariants must hold
//! for every partitioner over arbitrary chunk streams and scale-out
//! schedules.

use elastic_array_db::prelude::*;
use proptest::prelude::*;

/// Drive a partitioner over a chunk stream with interleaved scale-outs.
/// Returns the cluster for post-conditions.
fn drive(
    kind: PartitionerKind,
    chunks: &[(i64, i64, i64, u64)],
    scale_points: &[usize],
) -> (Cluster, Box<dyn Partitioner>) {
    let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
    let grid = GridHint::new(vec![64, 32, 32]);
    let mut partitioner = build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());
    for (i, &(t, x, y, bytes)) in chunks.iter().enumerate() {
        if scale_points.contains(&i) && cluster.node_count() < 10 {
            let new = cluster.add_nodes(2, u64::MAX);
            let plan = partitioner.scale_out(&cluster, &new);
            if kind.features().incremental_scale_out {
                assert!(plan.is_incremental(&new), "{kind}: plan must only move data to new nodes");
            }
            cluster.apply_rebalance(&plan).expect("plan applies cleanly");
        }
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([t, x, y]));
        if cluster.locate(&key).is_some() {
            continue; // duplicate coordinate in the random stream
        }
        let desc = ChunkDescriptor::new(key, bytes, bytes / 64 + 1);
        let node = partitioner.place(&desc, &cluster);
        cluster.place(desc, node).expect("placement is fresh");
    }
    (cluster, partitioner)
}

fn chunk_stream() -> impl Strategy<Value = Vec<(i64, i64, i64, u64)>> {
    proptest::collection::vec((0i64..64, 0i64..32, 0i64..32, 1u64..100_000_000), 20..200)
}

fn scale_points() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..200, 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The partitioner's own lookup structure must agree with the cluster's
    /// authoritative placement for every resident chunk, for every scheme.
    #[test]
    fn locate_agrees_with_placement(
        chunks in chunk_stream(),
        scales in scale_points(),
    ) {
        for kind in PartitionerKind::ALL {
            let (cluster, partitioner) = drive(kind, &chunks, &scales);
            for (key, node) in cluster.placements() {
                prop_assert_eq!(
                    partitioner.locate(&key),
                    Some(node),
                    "{} disagrees on {}", kind, key
                );
            }
        }
    }

    /// No bytes are created or destroyed by placement and rebalancing.
    #[test]
    fn bytes_are_conserved(
        chunks in chunk_stream(),
        scales in scale_points(),
    ) {
        for kind in PartitionerKind::ALL {
            let (cluster, _) = drive(kind, &chunks, &scales);
            let per_node: u64 = cluster.loads().iter().sum();
            prop_assert_eq!(per_node, cluster.total_used(), "{} ledger mismatch", kind);
        }
    }

    /// Incremental schemes never touch data on preexisting nodes during
    /// scale-out (asserted inside `drive`), and every scheme keeps serving
    /// lookups afterwards.
    #[test]
    fn scale_out_preserves_service(
        chunks in chunk_stream(),
    ) {
        // Scale out exactly once, halfway through.
        let scales = vec![chunks.len() / 2];
        for kind in PartitionerKind::ALL {
            let (cluster, partitioner) = drive(kind, &chunks, &scales);
            prop_assert!(cluster.node_count() >= 2);
            for (key, _) in cluster.placements() {
                prop_assert!(partitioner.locate(&key).is_some(), "{} lost {}", kind, key);
            }
        }
    }

    /// Fine-grained schemes balance a uniform chunk stream well; Table 1's
    /// trait has observable consequences.
    #[test]
    fn fine_grained_schemes_balance_uniform_streams(
        seed in 0u64..1000,
    ) {
        // A deterministic uniform stream derived from the seed.
        let chunks: Vec<(i64, i64, i64, u64)> = (0..256)
            .map(|i| {
                let v = seed.wrapping_mul(6364136223846793005).wrapping_add(i);
                ((i % 16) as i64, ((v >> 8) % 32) as i64, ((v >> 16) % 32) as i64, 1_000_000)
            })
            .collect();
        for kind in [
            PartitionerKind::RoundRobin,
            PartitionerKind::ConsistentHash,
            PartitionerKind::ExtendibleHash,
        ] {
            let (cluster, _) = drive(kind, &chunks, &[]);
            let rsd = relative_std_dev(&cluster.loads());
            prop_assert!(rsd < 0.6, "{} unbalanced on uniform stream: {}", kind, rsd);
        }
    }
}

/// Append is special-cased: the plan is always empty.
#[test]
fn append_scale_out_is_free() {
    // (t, x) pairs are unique for i < 256, so no duplicate coordinates.
    let chunks: Vec<(i64, i64, i64, u64)> =
        (0..100).map(|i| (i % 16, i / 16, (i * 7) % 32, 10_000_000)).collect();
    let mut cluster = Cluster::new(2, 400_000_000, CostModel::default()).unwrap();
    let grid = GridHint::new(vec![64, 32, 32]);
    let mut p =
        build_partitioner(PartitionerKind::Append, &cluster, &grid, &PartitionerConfig::default());
    for &(t, x, y, bytes) in &chunks[..50] {
        let desc =
            ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([t, x, y])), bytes, 1);
        let node = p.place(&desc, &cluster);
        cluster.place(desc, node).unwrap();
    }
    let new = cluster.add_nodes(2, 400_000_000);
    let plan = p.scale_out(&cluster, &new);
    assert!(plan.is_empty());
    assert_eq!(plan.moved_bytes(), 0);
}

/// Global schemes must converge to near-perfect chunk-count balance after
/// a rebalance, whatever happened before (their defining property).
#[test]
fn global_schemes_rebalance_globally() {
    // Spread the stream across the whole hinted grid so the static
    // uniform-range tree actually has occupied leaves everywhere.
    let chunks: Vec<(i64, i64, i64, u64)> =
        (0..240).map(|i| ((i % 16) * 4, ((i / 16) * 2) % 32, (i * 13) % 32, 1_000_000)).collect();
    for kind in [PartitionerKind::RoundRobin, PartitionerKind::UniformRange] {
        let (cluster, _) = drive(kind, &chunks, &[120]);
        let counts = cluster.chunk_counts();
        let loads: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        let rsd = relative_std_dev(&loads);
        assert!(rsd < 0.5, "{kind} failed to rebalance: {counts:?}");
    }
}
