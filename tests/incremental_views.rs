//! The incremental-view differential suite.
//!
//! Contract under test: a [`MaterializedView`] maintained in O(|Δ|) per
//! cycle holds **bit-identical** state to a from-scratch recompute over
//! the surviving cells — after every scale-out and rebalance, across
//! all 8 partitioners, for dictionary-encoded and plain string storage,
//! at replication k ∈ {1, 2}, through retraction cycles (with the
//! automatic tombstone GC on, at its default threshold), through a
//! scale-in trough that drains the array to nothing, and on a
//! fault-injected twin whose crashes and failovers move bytes around
//! underneath the view.
//!
//! The recompute oracle is mechanical: instantiate a *fresh* copy of
//! the same [`ViewDef`] and feed it one bulk delta per input array,
//! extracted from the catalog's whole-array oracle copy
//! ([`DeltaSet::from_live_cells`]). Because view state depends only on
//! the logical delta stream — never on placement — every leg's
//! snapshots must also agree *across* partitioners, encodings, and
//! replication factors, and the maintained identity view must equal
//! the independent raw-cell oracle computed from the generator's
//! batches alone.

use array_model::DeltaSet;
use elastic_array_db::prelude::*;
use query_engine::view::{
    AggKind, EmitFn, GroupKeyFn, JoinKeyFn, KeyScalar, MapFn, PredFn, RowOp, ValueFn, ViewDef,
    ViewSnapshot,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::modis::{ModisWorkload, BAND1, BAND2};
use workloads::CellBatch;

type Row = (Vec<i64>, Vec<ScalarValue>);

fn config(
    kind: PartitionerKind,
    node_capacity: u64,
    encoding: StringEncoding,
    k: usize,
) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 2,
        partitioner: kind,
        scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
        run_queries: false,
        string_encoding: encoding,
        replication: k,
        ..RunnerConfig::default()
    }
}

// -------------------------------------------------------------- oracle --

/// From-scratch recompute: a fresh view over the same definition, fed
/// one bulk insert-delta per input array from the catalog's whole-array
/// oracle copy. Shares every finalization path with the incremental
/// form, so agreement must be bit-exact, not approximate.
fn recompute(def: &ViewDef, catalog: &Catalog) -> ViewSnapshot {
    let mut fresh = def.instantiate();
    for id in def.inputs() {
        let stored = catalog.array(id).expect("view input is a registered array");
        if let Some(data) = stored.data.as_ref() {
            fresh.apply(id, &DeltaSet::from_live_cells(data));
        }
    }
    fresh.snapshot()
}

/// Check every registered view against its recompute oracle.
fn assert_views_match_recompute(runner: &WorkloadRunner<'_>, tag: &str) {
    for v in runner.views().views() {
        let want = recompute(v.def(), runner.catalog());
        assert_eq!(
            v.snapshot(),
            want,
            "{tag}: view '{}' diverged from from-scratch recompute",
            v.name()
        );
    }
}

/// The independent raw-cell oracle: surviving rows of a retracting
/// generator computed from the batches alone, without touching runner,
/// cluster, catalog, or the view machinery.
fn surviving_rows(w: &impl Workload, array: ArrayId) -> Vec<Row> {
    let mut catalog = Catalog::new();
    w.register_arrays(&mut catalog);
    let dims = catalog.array(array).expect("registered").schema.dimensions.len();
    let mut rows: BTreeMap<Vec<i64>, Vec<ScalarValue>> = BTreeMap::new();
    for c in 0..w.cycles() {
        for batch in w.cell_batch(c).unwrap_or_default() {
            if batch.array != array {
                continue;
            }
            for coords in batch.retractions_flat().chunks(dims) {
                assert!(rows.remove(coords).is_some(), "retraction of a never-inserted cell");
            }
            for (coords, values) in batch.cells() {
                assert!(rows.insert(coords, values).is_none(), "duplicate insert");
            }
        }
    }
    rows.into_iter().collect()
}

// --------------------------------------------------------------- views --

fn numeric(v: &ScalarValue) -> f64 {
    match v {
        ScalarValue::Int32(i) => *i as f64,
        ScalarValue::Int64(i) => *i as f64,
        ScalarValue::Float(f) => *f as f64,
        ScalarValue::Double(d) => *d,
        ScalarValue::Char(c) => *c as f64,
        ScalarValue::Str(_) => 0.0,
    }
}

/// The AIS view set: an identity select (pinned against the raw-cell
/// oracle), a filter+project pipeline, and one grouped aggregate per
/// [`AggKind`] over an 8×8-coarsened lon/lat grid of vessel speeds.
fn ais_views() -> Vec<ViewDef> {
    let mut defs = Vec::new();
    defs.push(ViewDef::select("all-rows", BROADCAST, Vec::new()));

    let fast: PredFn = Arc::new(|_, v| numeric(&v[0]) >= 10.0);
    let project: MapFn =
        Arc::new(|c, v| (c.to_vec(), vec![v[6].clone(), v[0].clone(), v[8].clone()]));
    defs.push(ViewDef::select(
        "fast-vessels",
        BROADCAST,
        vec![RowOp::Filter(fast), RowOp::Map(project)],
    ));

    let grid: GroupKeyFn = Arc::new(|c, _| vec![c[1].div_euclid(8), c[2].div_euclid(8)]);
    let speed: ValueFn = Arc::new(|_, v| numeric(&v[0]));
    for agg in [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
        defs.push(ViewDef::aggregate(
            format!("grid-speed-{agg:?}"),
            BROADCAST,
            Vec::new(),
            grid.clone(),
            speed.clone(),
            agg,
        ));
    }
    defs
}

// ----------------------------------------------------------- AIS legs --

/// One retracting AIS run with the full view set registered: every view
/// must match its recompute oracle *after every cycle*, and the
/// identity view must equal the independent raw-cell oracle at the end.
/// Returns the end-of-run snapshots for cross-leg comparison.
fn run_ais_views(
    w: &AisWorkload,
    kind: PartitionerKind,
    node_capacity: u64,
    encoding: StringEncoding,
    k: usize,
) -> Vec<(String, ViewSnapshot)> {
    let tag = format!("{kind}/{encoding:?}/k{k}");
    let mut runner = WorkloadRunner::new(w, config(kind, node_capacity, encoding, k));
    for def in ais_views() {
        runner.register_view(def);
    }
    let mut delta_rows = 0u64;
    let mut retracted = 0u64;
    for c in 0..w.cycles {
        let report = runner.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: cycle {c}: {e}"));
        delta_rows += report.view_delta_rows;
        retracted += report.retracted_cells;
        assert_views_match_recompute(&runner, &format!("{tag}/cycle{c}"));
    }
    assert!(delta_rows > 0, "{tag}: no deltas reached the views");
    assert!(retracted > 0, "{tag}: no vessel went dark — vacuous differential");

    // The identity view equals the independent raw-cell oracle, with
    // every weight exactly 1.
    let oracle = surviving_rows(w, BROADCAST);
    let got: Vec<Row> = runner
        .views()
        .view("all-rows")
        .expect("registered")
        .output_rows()
        .into_iter()
        .map(|(row, weight)| {
            assert_eq!(weight, 1, "{tag}: duplicate or phantom row in the identity view");
            row
        })
        .collect();
    assert_eq!(got, oracle, "{tag}: identity view differs from the survivor oracle");
    assert!(
        !runner.views().view("fast-vessels").unwrap().output_rows().is_empty(),
        "{tag}: filter view empty — vacuous"
    );

    runner.views().views().iter().map(|v| (v.name().to_string(), v.snapshot())).collect()
}

fn run_ais_matrix(cells_per_cycle: u64, cycles: usize, kinds: &[PartitionerKind], ks: &[usize]) {
    let w = AisWorkload { cycles, scale: 0.05, seed: 21, cells_per_cycle, dark_vessel_rate: 4 };
    let node_capacity = cells_per_cycle * 90;
    let mut reference: Option<Vec<(String, ViewSnapshot)>> = None;
    for &kind in kinds {
        for &k in ks {
            for encoding in [StringEncoding::default(), StringEncoding::Plain] {
                let got = run_ais_views(&w, kind, node_capacity, encoding, k);
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(
                        &got, want,
                        "{kind}/{encoding:?}/k{k}: view state depends on placement"
                    ),
                }
            }
        }
    }
}

// ----------------------------------------------------------- MODIS leg --

/// The MODIS view set: an NDVI hash-join of band 1 against band 2 on
/// full cell coordinates, and a per-day mean radiance over band 1.
fn modis_views() -> Vec<ViewDef> {
    let key: JoinKeyFn = Arc::new(|c, _| c.iter().map(|&x| KeyScalar::Int(x)).collect());
    let emit: EmitFn = Arc::new(|l, r| {
        let (b1, b2) = (numeric(&l.1[1]), numeric(&r.1[1]));
        (l.0.clone(), vec![ScalarValue::Double((b2 - b1) / (b2 + b1 + 1e-9))])
    });
    let ndvi = ViewDef::join("ndvi", BAND1, BAND2, Vec::new(), Vec::new(), key.clone(), key, emit);
    let day: GroupKeyFn = Arc::new(|c, _| vec![c[0].div_euclid(1440)]);
    let radiance: ValueFn = Arc::new(|_, v| numeric(&v[1]));
    let daily =
        ViewDef::aggregate("daily-radiance", BAND1, Vec::new(), day, radiance, AggKind::Avg);
    vec![ndvi, daily]
}

/// MODIS tile-TTL expiry: the join view's indexed per-key state takes
/// retractions on *both* sides (each expired day drops its band-1 and
/// band-2 rows), and must still match recompute every cycle.
fn run_modis_views(cells_per_cycle: u64, days: usize, kind: PartitionerKind, k: usize) {
    let tag = format!("{kind}/modis-ttl/k{k}");
    let w = ModisWorkload { days, scale: 0.05, seed: 33, cells_per_cycle, ttl_days: 1 };
    let mut runner =
        WorkloadRunner::new(&w, config(kind, cells_per_cycle * 95, StringEncoding::default(), k));
    for def in modis_views() {
        runner.register_view(def);
    }
    let mut retracted = 0u64;
    for c in 0..days {
        let report = runner.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: cycle {c}: {e}"));
        retracted += report.retracted_cells;
        assert_views_match_recompute(&runner, &format!("{tag}/cycle{c}"));
    }
    assert!(retracted > 0, "{tag}: TTL never expired a tile — vacuous");
    let ndvi = runner.views().view("ndvi").expect("registered");
    assert!(!ndvi.output_rows().is_empty(), "{tag}: join view found no partners — vacuous");
}

// -------------------------------------------------------- scale-in leg --

/// Grows for `grow` cycles, then retracts one old cycle per cycle until
/// the array is empty — the staircase walks the cluster back down, and
/// the views must drain to empty through scale-in drains and GC
/// compactions.
#[derive(Clone)]
struct GrowShrinkWorkload {
    cycles: usize,
    grow: usize,
    cells: usize,
}

const TROUGH: ArrayId = ArrayId(7);

impl GrowShrinkWorkload {
    fn schema() -> ArraySchema {
        ArraySchema::parse("T<v:double>[x=0:*,64]").unwrap()
    }
}

impl Workload for GrowShrinkWorkload {
    fn name(&self) -> &'static str {
        "grow-shrink"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(TROUGH, Self::schema(), []));
    }
    fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        let mut batch = CellBatch::new(TROUGH, &Self::schema());
        if cycle < self.grow {
            let mut vals = Vec::with_capacity(1);
            for i in 0..self.cells {
                let x = (cycle * self.cells + i) as i64;
                vals.push(ScalarValue::Double((x % 97) as f64 - 48.0));
                batch.push(&[x], &mut vals);
            }
        }
        let old = cycle.wrapping_sub(self.grow);
        if cycle >= self.grow && old < self.grow {
            for i in 0..self.cells {
                batch.push_retraction(&[(old * self.cells + i) as i64]);
            }
        }
        Some(vec![batch])
    }
    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![1024])
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

#[test]
fn scale_in_trough_drains_views_to_empty() {
    // 16 B/cell: 2048 cells fill exactly two 16 KB nodes, so the run
    // climbs the staircase and then walks it back down as deletes land.
    let w = GrowShrinkWorkload { cycles: 6, grow: 3, cells: 2048 };
    let mut cfg = config(PartitionerKind::RoundRobin, 16_384, StringEncoding::default(), 1);
    cfg.scaling = ScalingPolicy::Staircase(StaircaseConfig {
        node_capacity_gb: 16_384.0 / 1e9,
        samples: 2,
        plan_ahead: 1,
        trigger: 1.0,
        shrink_margin: 0.75,
    });
    let mut runner = WorkloadRunner::new(&w, cfg);
    runner.register_view(ViewDef::select("all-rows", TROUGH, Vec::new()));
    let bucket: GroupKeyFn = Arc::new(|c, _| vec![c[0].div_euclid(256)]);
    let value: ValueFn = Arc::new(|_, v| numeric(&v[0]));
    for agg in [AggKind::Sum, AggKind::Min, AggKind::Max] {
        runner.register_view(ViewDef::aggregate(
            format!("bucket-{agg:?}"),
            TROUGH,
            Vec::new(),
            bucket.clone(),
            value.clone(),
            agg,
        ));
    }
    let mut removed = 0usize;
    let mut peak_groups = 0usize;
    for c in 0..w.cycles {
        let report = runner.run_cycle(c).unwrap_or_else(|e| panic!("trough cycle {c}: {e}"));
        removed += report.removed_nodes;
        assert_views_match_recompute(&runner, &format!("trough/cycle{c}"));
        peak_groups =
            peak_groups.max(runner.views().view("bucket-Sum").unwrap().group_rows().len());
    }
    assert!(removed > 0, "the trough never scaled in — the leg is vacuous");
    assert!(peak_groups > 0, "the aggregate views never held a group");
    // Every insert was retracted: every view drained to exactly empty —
    // no leftover group, no weight-zero residue.
    for v in runner.views().views() {
        let snap = v.snapshot();
        assert!(
            snap.rows.is_empty() && snap.groups.is_empty(),
            "view '{}' holds residue after a full drain",
            v.name()
        );
    }
}

// ------------------------------------------------------ faulted twin --

/// The scripted fault schedule the retraction and recovery suites use:
/// a crash with flaky repair flows, a crash right after a rebalance,
/// and a revival of the first casualty.
fn fault_schedule(k: usize) -> FaultPlan {
    FaultPlan::new(0xE1A5 + k as u64)
        .at(1, FaultKind::Crash(1))
        .at(1, FaultKind::FlakyFlows { p: 0.1 })
        .at(2, FaultKind::CrashDuringRebalance(2))
        .at(3, FaultKind::Revive(1))
}

/// Crashes, failovers, and repairs move bytes, never logical cells: the
/// faulted run's views must stay bit-identical to the fault-free twin's
/// (and to recompute) every cycle.
fn run_faulted_twin(w: &AisWorkload, kind: PartitionerKind, k: usize) {
    let tag = format!("{kind}/faulted/k{k}");
    let node_capacity = w.cells_per_cycle * 90;
    let mk = |plan: Option<FaultPlan>| {
        let mut cfg = config(kind, node_capacity, StringEncoding::default(), k);
        cfg.initial_nodes = k + 2;
        cfg.fault_plan = plan;
        cfg
    };
    let mut faulted = WorkloadRunner::new(w, mk(Some(fault_schedule(k))));
    let mut clean = WorkloadRunner::new(w, mk(None));
    for def in ais_views() {
        faulted.register_view(def.clone());
        clean.register_view(def);
    }
    let mut crashed = 0usize;
    for c in 0..w.cycles {
        let fr = faulted.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: faulted cycle {c}: {e}"));
        clean.run_cycle(c).unwrap_or_else(|e| panic!("{tag}: clean cycle {c}: {e}"));
        crashed += fr.crashed_nodes;
        for (fv, cv) in faulted.views().views().iter().zip(clean.views().views()) {
            assert_eq!(
                fv.snapshot(),
                cv.snapshot(),
                "{tag}/cycle{c}: view '{}' saw a fault",
                fv.name()
            );
        }
        assert_views_match_recompute(&faulted, &format!("{tag}/cycle{c}"));
    }
    assert!(crashed > 0, "{tag}: the schedule never crashed a node — vacuous");
}

// -------------------------------------------------------------- tests --

/// All 8 partitioners at dict/k=1: per-cycle recompute agreement plus
/// placement independence (every partitioner ends with the same bits).
#[test]
fn ais_views_match_recompute_across_all_partitioners() {
    run_ais_matrix(1_200, 3, &PartitionerKind::ALL, &[1]);
}

/// The encoding × replication matrix on a space partitioner and a hash
/// spread; the full 8-way matrix runs in release via `delta_smoke`.
#[test]
fn ais_views_encoding_replication_matrix() {
    run_ais_matrix(
        900,
        3,
        &[PartitionerKind::HilbertCurve, PartitionerKind::ConsistentHash],
        &[1, 2],
    );
}

#[test]
fn modis_join_view_matches_recompute_under_ttl_expiry() {
    for kind in [PartitionerKind::UniformRange, PartitionerKind::RoundRobin] {
        run_modis_views(900, 3, kind, 1);
    }
    run_modis_views(900, 3, PartitionerKind::ConsistentHash, 2);
}

#[test]
fn faulted_twin_views_match_fault_free() {
    let w = AisWorkload {
        cycles: 4,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 1_200,
        dark_vessel_rate: 4,
    };
    for kind in [PartitionerKind::HilbertCurve, PartitionerKind::ConsistentHash] {
        run_faulted_twin(&w, kind, 2);
    }
}

/// Heavier CI smoke: the full partitioner matrix at scale for the AIS
/// view set, MODIS TTL joins, and faulted twins. Run with
/// `cargo test --release --test incremental_views -- --ignored delta_smoke`.
#[test]
#[ignore = "heavy: run in release via the delta-smoke CI job"]
fn delta_smoke() {
    run_ais_matrix(4_000, 4, &PartitionerKind::ALL, &[1, 2]);
    for kind in PartitionerKind::ALL {
        run_modis_views(2_000, 4, kind, 2);
    }
    let w = AisWorkload {
        cycles: 4,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 4_000,
        dark_vessel_rate: 4,
    };
    for kind in PartitionerKind::ALL {
        run_faulted_twin(&w, kind, 2);
    }
}
