//! Differential suite for the sharded materialized (cell-level) ingest
//! path.
//!
//! The contract under test: a materialized workload run must be
//! **bit-identical** whatever `ingest_threads` is — cycle reports,
//! placements, node loads, per-node payload stores, and the catalog's
//! whole-array oracle copy all compare equal across thread counts for
//! every partitioner. The sharded chunk build assigns whole chunks to
//! workers (pure in the chunk coordinates) and every chunk receives its
//! rows in batch order, so parallelism can never reorder or split a
//! chunk. Also pins the zero-copy payload contract: each placed chunk's
//! payload is the *same* `Arc` the catalog oracle holds, not a copy.

use elastic_array_db::prelude::*;
use std::sync::Arc;
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::build_cell_array;
use workloads::modis::{ModisWorkload, BAND1, BAND2};
use workloads::synthetic::{SyntheticWorkload, SYNTHETIC};

fn config(kind: PartitionerKind, node_capacity: u64, threads: usize) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 2,
        partitioner: kind,
        partitioner_config: PartitionerConfig::default(),
        scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
        cost: CostModel::default(),
        run_queries: false,
        ingest_threads: threads,
        string_encoding: StringEncoding::default(),
        ..RunnerConfig::default()
    }
}

/// Everything observable about a finished materialized run.
struct Snapshot {
    cycles: Vec<(usize, usize, u64, u64, u64)>,
    placements: Vec<(ChunkKey, NodeId)>,
    loads: Vec<u64>,
    /// Every placed payload, read from its resident node.
    payloads: Vec<(ChunkKey, array_model::Chunk)>,
    /// The catalog oracle's whole-array chunks.
    oracle: Vec<(ChunkCoords, array_model::Chunk)>,
}

/// Run `workload` materialized under `kind` at `threads`, snapshot every
/// observable, and assert the zero-copy payload-sharing invariant.
fn run_snapshot(
    workload: &dyn Workload,
    ids: &[ArrayId],
    kind: PartitionerKind,
    node_capacity: u64,
    threads: usize,
) -> Snapshot {
    let mut runner = WorkloadRunner::new(workload, config(kind, node_capacity, threads));
    let report = runner.run_all().unwrap_or_else(|e| panic!("{kind} x{threads}: {e}"));
    let cycles = report
        .cycles
        .iter()
        .map(|c| {
            (c.nodes, c.added_nodes, c.insert_bytes, c.moved_bytes, c.rsd_after_insert.to_bits())
        })
        .collect();
    let cluster = runner.cluster();
    let mut payloads = Vec::new();
    let mut oracle = Vec::new();
    for &id in ids {
        let stored = runner.catalog().array(id).unwrap();
        assert!(!stored.descriptors.is_empty(), "{kind} x{threads}: nothing ingested for {id}");
        let data = stored.data.as_ref().expect("materialized catalog storage");
        for desc in stored.descriptors.values() {
            let shared = cluster
                .payload_shared(&desc.key)
                .unwrap_or_else(|| panic!("{kind} x{threads}: {} has no payload", desc.key));
            payloads.push((desc.key, shared.as_ref().clone()));
            // Zero-copy: the node store and the catalog oracle hold the
            // SAME chunk object — attach was a refcount bump, and every
            // rebalance moved the handle, never the cells.
            let (_, oracle_arc) = data
                .shared_chunks()
                .find(|(c, _)| **c == desc.key.coords)
                .expect("oracle covers every placed chunk");
            assert!(
                Arc::ptr_eq(shared, oracle_arc),
                "{kind} x{threads}: {} was deep-copied between node store and oracle",
                desc.key
            );
        }
        for (coords, chunk) in data.chunks() {
            oracle.push((*coords, chunk.clone()));
        }
    }
    Snapshot {
        cycles,
        placements: cluster.placements().collect(),
        loads: cluster.loads(),
        payloads,
        oracle,
    }
}

fn assert_identical(kind: PartitionerKind, threads: usize, base: &Snapshot, got: &Snapshot) {
    assert_eq!(got.cycles, base.cycles, "{kind}: cycle reports differ at {threads} threads");
    assert_eq!(got.loads, base.loads, "{kind}: loads differ at {threads} threads");
    assert_eq!(got.placements, base.placements, "{kind}: placements differ at {threads} threads");
    assert_eq!(
        got.payloads, base.payloads,
        "{kind}: node payload stores differ at {threads} threads"
    );
    assert_eq!(got.oracle, base.oracle, "{kind}: catalog oracle differs at {threads} threads");
}

/// All 8 partitioners over a materialized AIS run (string attributes,
/// port skew, scale-outs + payload-carrying rebalances mid-run):
/// everything must be bit-identical across ingest_threads in {1,2,4,8}.
#[test]
fn materialized_runs_are_bit_identical_across_thread_counts() {
    // > PARALLEL_BUILD_MIN_ROWS per cycle so the sharded build engages.
    let w = AisWorkload {
        cycles: 2,
        scale: 0.05,
        seed: 11,
        cells_per_cycle: 6_000,
        ..Default::default()
    };
    for kind in PartitionerKind::ALL {
        let base = run_snapshot(&w, &[BROADCAST], kind, 600_000, 1);
        for threads in [2usize, 4, 8] {
            let got = run_snapshot(&w, &[BROADCAST], kind, 600_000, threads);
            assert_identical(kind, threads, &base, &got);
        }
    }
}

/// The chunk builder itself, differentially: arrays built at any worker
/// count equal the sequential build chunk-for-chunk (coordinates,
/// descriptors, payload bytes, and cell order inside each chunk).
#[test]
fn build_cell_array_matches_sequential_at_every_thread_count() {
    let w =
        SyntheticWorkload { cycles: 1, grid_side: 24, cells_per_cycle: 576, ..Default::default() };
    let schema = w.schema();
    let synth = w.cell_batch(0).unwrap().remove(0);
    let ais = AisWorkload {
        cycles: 1,
        scale: 0.05,
        seed: 3,
        cells_per_cycle: 9_000,
        ..Default::default()
    };
    let ais_batch = ais.cell_batch(0).unwrap().remove(0);
    let cases: Vec<(ArrayId, ArraySchema, CellBuffer)> = vec![
        (SYNTHETIC, schema, synth.into_rows()),
        (BROADCAST, AisWorkload::broadcast_schema(), ais_batch.into_rows()),
    ];
    for (id, schema, rows) in cases {
        let base = build_cell_array(id, schema.clone(), rows.clone(), 1).expect("in bounds");
        for threads in [2usize, 3, 4, 8] {
            let built =
                build_cell_array(id, schema.clone(), rows.clone(), threads).expect("in bounds");
            assert_eq!(built.chunk_count(), base.chunk_count(), "{id} x{threads}");
            assert_eq!(built.descriptors(), base.descriptors(), "{id} x{threads}");
            for (coords, chunk) in base.chunks() {
                assert_eq!(
                    built.chunk(coords),
                    Some(chunk),
                    "{id} x{threads}: chunk {coords} differs"
                );
            }
        }
    }
}

/// Heavier CI smoke: all 8 partitioners, AIS + MODIS + synthetic
/// materialized, ingest_threads in {1, 4, 8}, with scale-outs forcing
/// payload-carrying rebalances. Run with
/// `cargo test --release --test parallel_materialize -- --ignored parallel_materialize_smoke`.
#[test]
#[ignore = "CI smoke: heavier differential, run explicitly"]
fn parallel_materialize_smoke() {
    let ais = AisWorkload {
        cycles: 3,
        scale: 0.05,
        seed: 5,
        cells_per_cycle: 12_000,
        ..Default::default()
    };
    let modis = ModisWorkload {
        days: 3,
        scale: 0.02,
        seed: 9,
        cells_per_cycle: 10_000,
        ..Default::default()
    };
    let synth = SyntheticWorkload {
        cycles: 3,
        grid_side: 64,
        cells_per_cycle: 4_096,
        ..Default::default()
    };
    let runs: Vec<(&dyn Workload, Vec<ArrayId>, u64)> = vec![
        (&ais, vec![BROADCAST], 2_000_000),
        (&modis, vec![BAND1, BAND2], 2_000_000),
        (&synth, vec![SYNTHETIC], 200_000),
    ];
    for (w, ids, capacity) in runs {
        for kind in PartitionerKind::ALL {
            let base = run_snapshot(w, &ids, kind, capacity, 1);
            for threads in [4usize, 8] {
                let got = run_snapshot(w, &ids, kind, capacity, threads);
                assert_identical(kind, threads, &base, &got);
            }
        }
    }
}
