//! The materialized-ingest differential suite.
//!
//! Workload generators emit real `(coords, values)` cells; the driver
//! builds chunks from them, derives descriptors from the actual payloads,
//! places them through each of the 8 partitioners, and attaches the
//! payloads to the receiving nodes. For every operator family (filter,
//! aggregate, join, sort, window — plus the modeling operators) this
//! suite asserts three things:
//!
//! 1. **exact vs oracle** — the cell-exact answer over placed, stored
//!    chunks equals an *independent whole-array oracle* recomputed from
//!    the raw emitted cells (bit-for-bit for discrete and integer-valued
//!    results; 1e-9 relative for genuinely float-accumulated sums, whose
//!    summation order legitimately differs);
//! 2. **elasticity invariance** — the same fixed-region answers are
//!    re-checked after every cycle, across the scale-outs and rebalances
//!    the run triggers, so chunk movement (payloads ride along) can never
//!    change an answer; and the node-store path (catalog oracle copy
//!    stripped) returns identical results *and identical cost stats* to
//!    the catalog path;
//! 3. **model vs exact** — the metadata model the cost path runs on is
//!    validated against the payloads: descriptor `bytes`/`cells` equal
//!    the stored chunks exactly, full-width scans account every stored
//!    byte exactly, and the fixed-width attribute-fraction estimate lands
//!    within a documented, encoding-specific bound of the true column
//!    bytes (see `check_ais_model_tolerances` for the derivation);
//! 4. **encoding invariance** — the same run executed with
//!    dictionary-encoded string columns (the default) and with plain
//!    per-value strings must produce **bit-identical** answers for every
//!    operator family, for all 8 partitioners, at every cycle (so across
//!    every scale-out + rebalance either run triggers). Byte accounting
//!    legitimately differs between the encodings — placement may too —
//!    but the answer space may not.

use elastic_array_db::prelude::*;
use query_engine::ops;
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::modis::{ModisWorkload, BAND1, BAND2};
use workloads::synthetic::{SyntheticWorkload, SYNTHETIC};

use std::collections::{BTreeMap, BTreeSet};

type Row = (Vec<i64>, Vec<ScalarValue>);

fn config(kind: PartitionerKind, node_capacity: u64) -> RunnerConfig {
    config_encoded(kind, node_capacity, StringEncoding::default())
}

fn config_encoded(
    kind: PartitionerKind,
    node_capacity: u64,
    string_encoding: StringEncoding,
) -> RunnerConfig {
    RunnerConfig {
        node_capacity,
        initial_nodes: 2,
        partitioner: kind,
        partitioner_config: PartitionerConfig::default(),
        scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
        cost: CostModel::default(),
        run_queries: false,
        ingest_threads: 1,
        string_encoding,
        ..RunnerConfig::default()
    }
}

fn num(v: &ScalarValue) -> f64 {
    v.as_f64().expect("numeric attribute")
}

/// Every placed chunk of `array_id` must carry a payload whose real bytes
/// and cells equal the descriptor the placement, census, and cost model
/// saw — including after rebalances moved it between nodes.
fn assert_payload_integrity(runner: &WorkloadRunner<'_>, array_id: ArrayId) {
    let stored = runner.catalog().array(array_id).unwrap();
    assert!(!stored.descriptors.is_empty(), "nothing ingested for {array_id}");
    for desc in stored.descriptors.values() {
        let payload = runner
            .cluster()
            .payload(&desc.key)
            .unwrap_or_else(|| panic!("{}: payload missing after rebalances", desc.key));
        assert_eq!(payload.byte_size(), desc.bytes, "{}: descriptor drifted", desc.key);
        assert_eq!(payload.cell_count(), desc.cells, "{}: cell count drifted", desc.key);
    }
}

/// A catalog clone whose whole-array oracle copy is stripped, so every
/// operator must answer from the chunks stored on the cluster's nodes.
fn store_only_catalog(runner: &WorkloadRunner<'_>, ids: &[ArrayId]) -> Catalog {
    let mut cat = runner.catalog().clone();
    for &id in ids {
        cat.array_mut(id).unwrap().data = None;
    }
    cat
}

// ---------------------------------------------------------------- AIS --

/// Every operator family's answer over AIS cycle 0's fixed probe region,
/// captured in bit-comparable form. Float-valued outputs are stored as
/// `to_bits()`, so comparing two snapshots with `assert_eq!` demands
/// **bit-identical** answers — the contract between the dictionary-
/// encoded and plain-string builds of the same run.
#[derive(Debug, PartialEq)]
struct ProbeAnswers {
    subarray: Vec<Row>,
    filter_count: u64,
    distinct_ids: Vec<i64>,
    median_bits: Option<u64>,
    groups: Vec<(Vec<i64>, u64, u64)>,
    trajectory: (u64, u64),
    knn: Vec<ops::KnnAnswer>,
}

/// Collect the probe answers from a run's current placement. Sorting the
/// subarray rows removes the one legitimate order difference (chunk
/// iteration order can differ between placements); every value inside a
/// row — including the decoded strings — must match exactly.
fn ais_probe_answers(w: &AisWorkload, cluster: &Cluster, catalog: &Catalog) -> ProbeAnswers {
    let ctx = ExecutionContext::new(cluster, catalog);
    let probe = AisWorkload::cycle_region(0);
    let (cells, _) = ops::subarray(&ctx, BROADCAST, &probe, &[]).unwrap();
    let mut subarray = cells.cells.clone();
    subarray.sort_by(|a, b| a.0.cmp(&b.0));
    let (filter_count, _) =
        ops::filter_count(&ctx, BROADCAST, &probe, "speed", &Predicate::ge(10.0)).unwrap();
    let (distinct_ids, _) = ops::distinct_sorted(&ctx, BROADCAST, Some(&probe), "ship_id").unwrap();
    let (q, _) = ops::quantile(&ctx, BROADCAST, Some(&probe), "speed", 0.5, 1.0).unwrap();
    let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![8, 8]);
    let (rows, _) =
        ops::grid_aggregate(&ctx, BROADCAST, Some(&probe), "speed", &spec, ops::AggFn::Sum)
            .unwrap();
    let mut groups: Vec<(Vec<i64>, u64, u64)> =
        rows.iter().map(|r| (r.key.clone(), r.value.to_bits(), r.cells)).collect();
    groups.sort();
    let newest = Region::new(vec![3 * 43_200, -180, 0], vec![4 * 43_200 - 1, -66, 90]);
    let (traj, _) = ops::trajectory(&ctx, BROADCAST, &newest, "speed", "course", 0.25).unwrap();
    let (knn, _) = ops::knn(&ctx, BROADCAST, &w.knn_queries(0, 8), 5).unwrap();
    ProbeAnswers {
        subarray,
        filter_count,
        distinct_ids,
        median_bits: q.value.map(f64::to_bits),
        groups,
        trajectory: (traj.projected, traj.collision_candidates),
        knn,
    }
}

/// Oracle + operator checks over AIS cycle 0's fixed probe region. Run
/// after every cycle: later cycles only append later time chunks, so
/// these answers must survive every scale-out + rebalance bit-for-bit.
fn check_ais_probe(
    cluster: &Cluster,
    catalog: &Catalog,
    rows0: &[Row],
    kind: PartitionerKind,
    cycle: usize,
) {
    let ctx = ExecutionContext::new(cluster, catalog);
    let probe = AisWorkload::cycle_region(0);
    let tag = format!("{kind}/cycle{cycle}");

    // filter family: subarray returns exactly the emitted rows.
    let (cells, _) = ops::subarray(&ctx, BROADCAST, &probe, &[]).unwrap();
    let mut got = cells.cells.clone();
    got.sort_by(|a, b| a.0.cmp(&b.0));
    let mut want: Vec<Row> = rows0.to_vec();
    want.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(got, want, "{tag}: subarray disagrees with the raw-cell oracle");

    let (count, _) =
        ops::filter_count(&ctx, BROADCAST, &probe, "speed", &Predicate::ge(10.0)).unwrap();
    let naive = rows0.iter().filter(|(_, v)| num(&v[0]) >= 10.0).count() as u64;
    assert_eq!(count, naive, "{tag}: filter_count");

    // sort family: distinct ship ids and the full-sample median speed.
    let (ids, _) = ops::distinct_sorted(&ctx, BROADCAST, Some(&probe), "ship_id").unwrap();
    let naive_ids: Vec<i64> = rows0
        .iter()
        .map(|(_, v)| v[6].as_i64().unwrap())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    assert_eq!(ids, naive_ids, "{tag}: distinct_sorted");

    let (q, _) = ops::quantile(&ctx, BROADCAST, Some(&probe), "speed", 0.5, 1.0).unwrap();
    let mut speeds: Vec<f64> = rows0.iter().map(|(_, v)| num(&v[0])).collect();
    speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((speeds.len() - 1) as f64 * 0.5).round() as usize;
    assert_eq!(q.value, Some(speeds[idx]), "{tag}: median speed");
    assert_eq!(q.sampled_cells, rows0.len() as u64, "{tag}: full sample covers every cell");

    // aggregate family: coarse port-traffic maps, Count and Sum. Speeds
    // are integer-valued, so the f64 sums are exact in any order.
    let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![8, 8]);
    for agg in [ops::AggFn::Count, ops::AggFn::Sum] {
        let (rows, _) =
            ops::grid_aggregate(&ctx, BROADCAST, Some(&probe), "speed", &spec, agg).unwrap();
        let mut naive: BTreeMap<Vec<i64>, (f64, u64)> = BTreeMap::new();
        for (cell, values) in rows0 {
            let key = vec![cell[1].div_euclid(8), cell[2].div_euclid(8)];
            let e = naive.entry(key).or_default();
            e.0 += num(&values[0]);
            e.1 += 1;
        }
        assert_eq!(rows.len(), naive.len(), "{tag}: group count");
        for row in &rows {
            let &(sum, count) = naive.get(&row.key).expect("oracle has the group");
            let expect = match agg {
                ops::AggFn::Count => count as f64,
                _ => sum,
            };
            assert_eq!(row.value.to_bits(), expect.to_bits(), "{tag}: group {:?}", row.key);
            assert_eq!(row.cells, count, "{tag}: group {:?} cells", row.key);
        }
    }

    // modeling/projection: collision prediction over cycle 0's newest
    // time chunk — pure integer outputs, recomputed from raw cells.
    let newest = Region::new(vec![3 * 43_200, -180, 0], vec![4 * 43_200 - 1, -66, 90]);
    let (traj, _) = ops::trajectory(&ctx, BROADCAST, &newest, "speed", "course", 0.25).unwrap();
    let mut landing: BTreeMap<Vec<i64>, u64> = BTreeMap::new();
    let mut projected = 0u64;
    for (cell, values) in rows0 {
        if !newest.contains_cell(cell) {
            continue;
        }
        let speed = num(&values[0]);
        let course = num(&values[1]).to_radians();
        let mut dest = cell.clone();
        dest[1] += (speed * 0.25 * course.cos()).round() as i64;
        dest[2] += (speed * 0.25 * course.sin()).round() as i64;
        projected += 1;
        *landing.entry(dest).or_default() += 1;
    }
    let collisions: u64 = landing.values().map(|&c| if c >= 2 { c * (c - 1) / 2 } else { 0 }).sum();
    assert_eq!(traj.projected, projected, "{tag}: trajectory projected");
    assert_eq!(traj.collision_candidates, collisions, "{tag}: trajectory collisions");
}

/// Model-vs-exact validation at the end of a run: the metadata estimates
/// the cost path uses must agree with (full-width scans) or bracket
/// (fixed-width attribute fractions) the stored payloads.
///
/// The attribute-fraction bound is re-derived per string encoding. A
/// broadcast row stores 24 coordinate bytes + 37 B of fixed-width
/// attributes; its two strings are a 4 B receiver id and the 8 B
/// `"ais-feed"` provenance constant. The model estimates every string at
/// `fixed_width() = 4` (one dictionary code; dictionary payloads
/// amortize toward zero), so the modeled row is 24 + 37 + 4 + 4 = 69 B:
///
/// * **dictionary-encoded** payloads store 69 B/row of codes plus the
///   per-chunk dictionaries, so the speed-scan estimate
///   `(28 / 69) × descriptor_bytes` overshoots the exact `28 B/row` by
///   the per-row dictionary share. That share is scale-dependent: it is
///   bounded above by the degenerate every-string-distinct case
///   (`89/69 − 1 ≈ 29 %`) and falls toward zero as rows-per-chunk grow
///   (the AIS columns carry ≤ 129 distinct strings per chunk however
///   many rows land there). At this suite's deliberately tiny scale —
///   a few rows per chunk — the measured overshoot is ≈ 13 %.
///   Documented bound: **±20 %**.
/// * **plain** payloads store the full 81 B/row (each string re-stores
///   its payload + a 4 B length) at any scale, so the same estimate
///   overshoots by `81/69 − 1 ≈ 17.4 %`. Documented bound: **±25 %**
///   (the pre-dictionary model estimated strings at 16 B and needed
///   ±35 %).
fn check_ais_model_tolerances(
    runner: &WorkloadRunner<'_>,
    all_rows: &[Row],
    kind: PartitionerKind,
    encoding: StringEncoding,
) {
    let catalog = runner.catalog();
    let cluster = runner.cluster();
    let ctx = ExecutionContext::new(cluster, catalog);
    let broadcast = catalog.array(BROADCAST).unwrap();

    // Descriptor cells are exact: they were derived from the payloads.
    let model_cells: u64 = broadcast.descriptors.values().map(|d| d.cells).sum();
    assert_eq!(model_cells, all_rows.len() as u64, "{kind}: descriptor cell totals");

    // A full-width scan accounts every stored byte exactly — whatever
    // the encoding, descriptors carry the payloads' true byte sizes.
    let everything = Region::new(vec![0, -180, 0], vec![i64::MAX / 2, -66, 90]);
    let (cells, stats) = ops::subarray(&ctx, BROADCAST, &everything, &[]).unwrap();
    assert_eq!(cells.len(), all_rows.len(), "{kind}: full scan returns every cell");
    assert_eq!(stats.bytes_scanned, broadcast.byte_size(), "{kind}: full-width scan bytes");

    // Single-attribute scans use the fixed-width fraction estimate; the
    // encoding-specific bounds are derived in the doc comment above.
    let bound = match encoding {
        StringEncoding::Dict { .. } => 0.20,
        StringEncoding::Plain => 0.25,
    };
    // The deliberately unsatisfiable predicate would be zone-map-refuted
    // in every chunk; disable pruning so the probe measures a full scan.
    let unpruned = ExecutionContext::new(cluster, catalog).with_pruning(false);
    let (_, stats) =
        ops::filter_count(&unpruned, BROADCAST, &everything, "speed", &Predicate::gt(1e18))
            .unwrap();
    let exact_bytes: u64 = all_rows.len() as u64 * (3 * 8 + 4); // coords + int32 speed
    let rel = (stats.bytes_scanned as f64 - exact_bytes as f64).abs() / exact_bytes as f64;
    assert!(
        rel < bound,
        "{kind}/{encoding:?}: attribute-fraction model off by {rel:.3} \
         (model {} vs exact {exact_bytes}, documented bound {bound})",
        stats.bytes_scanned
    );
}

fn run_ais_differential(cells_per_cycle: u64, cycles: usize) {
    let w = AisWorkload { cycles, scale: 0.05, seed: 21, cells_per_cycle, ..Default::default() };
    // ~90 B/row including the derived products; sized so the run crosses
    // the 80 % trigger repeatedly and rebalances move stored chunks.
    let node_capacity = cells_per_cycle * 90;
    let batches: Vec<Vec<Row>> =
        (0..cycles).map(|c| w.cell_batch(c).unwrap().remove(0).cells()).collect();
    let all_rows: Vec<Row> = batches.iter().flatten().cloned().collect();

    let mut knn_reference: Option<Vec<ops::KnnAnswer>> = None;
    for kind in PartitionerKind::ALL {
        let mut runner = WorkloadRunner::new(&w, config(kind, node_capacity));
        // The same run with plain (pre-dictionary) string storage,
        // advanced in lockstep: the dictionary-encoded build's answers
        // must equal the plain build's bit-for-bit at every cycle, even
        // though the two runs' byte accounting — and therefore their
        // placements and rebalances — legitimately diverge.
        let mut plain_runner =
            WorkloadRunner::new(&w, config_encoded(kind, node_capacity, StringEncoding::Plain));
        for c in 0..cycles {
            runner.run_cycle(c).unwrap();
            plain_runner.run_cycle(c).unwrap();
            // The cycle-0 probe answers survive every scale-out +
            // rebalance later cycles trigger.
            check_ais_probe(runner.cluster(), runner.catalog(), &batches[0], kind, c);
            assert_eq!(
                ais_probe_answers(&w, runner.cluster(), runner.catalog()),
                ais_probe_answers(&w, plain_runner.cluster(), plain_runner.catalog()),
                "{kind}/cycle{c}: dict-encoded answers diverge from the plain-string build"
            );
        }
        assert!(runner.cluster().node_count() > 2, "{kind}: the run never scaled out");
        assert_payload_integrity(&runner, BROADCAST);
        assert_payload_integrity(&plain_runner, BROADCAST);
        check_ais_model_tolerances(&runner, &all_rows, kind, StringEncoding::default());
        check_ais_model_tolerances(&plain_runner, &all_rows, kind, StringEncoding::Plain);
        // Dictionary encoding must actually shrink the stored bytes —
        // otherwise the "encoding" under test silently fell back to
        // plain storage.
        let dict_bytes = runner.catalog().array(BROADCAST).unwrap().byte_size();
        let plain_bytes = plain_runner.catalog().array(BROADCAST).unwrap().byte_size();
        assert!(
            dict_bytes < plain_bytes,
            "{kind}: dict bytes {dict_bytes} not below plain bytes {plain_bytes}"
        );

        // Node-store path == catalog path, answers and stats alike.
        let stripped = store_only_catalog(&runner, &[BROADCAST]);
        let probe = AisWorkload::cycle_region(0);
        let full_ctx = ExecutionContext::new(runner.cluster(), runner.catalog());
        let store_ctx = ExecutionContext::new(runner.cluster(), &stripped);
        assert!(store_ctx.cells_available(stripped.array(BROADCAST).unwrap()));
        assert_eq!(
            ops::subarray(&full_ctx, BROADCAST, &probe, &[]).unwrap(),
            ops::subarray(&store_ctx, BROADCAST, &probe, &[]).unwrap(),
            "{kind}: store-backed subarray diverges from the catalog path"
        );
        assert_eq!(
            ops::distinct_sorted(&full_ctx, BROADCAST, Some(&probe), "ship_id").unwrap(),
            ops::distinct_sorted(&store_ctx, BROADCAST, Some(&probe), "ship_id").unwrap(),
            "{kind}: store-backed distinct diverges"
        );
        // And the store path still re-verifies against the raw oracle.
        check_ais_probe(runner.cluster(), &stripped, &batches[0], kind, cycles);

        // kNN is a pure function of the descriptors + cells, so answers
        // are identical whatever the partitioner scattered.
        let queries = w.knn_queries(0, 8);
        let (answers, _) = ops::knn(&full_ctx, BROADCAST, &queries, 5).unwrap();
        let dist_pool: BTreeSet<u64> = all_rows
            .iter()
            .flat_map(|(cell, _)| {
                queries.iter().map(move |q| {
                    cell.iter()
                        .zip(q)
                        .map(|(a, b)| (*a - *b) as f64 * (*a - *b) as f64)
                        .sum::<f64>()
                        .to_bits()
                })
            })
            .collect();
        for a in &answers {
            assert!(!a.neighbor_dist2.is_empty(), "{kind}: knn found no neighbours");
            assert!(
                a.neighbor_dist2.windows(2).all(|w| w[0] <= w[1]),
                "{kind}: knn distances not ascending"
            );
            for d in &a.neighbor_dist2 {
                assert!(
                    dist_pool.contains(&d.to_bits()),
                    "{kind}: knn distance {d} matches no stored cell"
                );
            }
        }
        match &knn_reference {
            None => knn_reference = Some(answers),
            Some(r) => assert_eq!(&answers, r, "{kind}: knn answers are placement-dependent"),
        }
    }
}

// -------------------------------------------------------------- MODIS --

fn modis_rows(w: &ModisWorkload, cycles: usize) -> (Vec<Vec<Row>>, Vec<Vec<Row>>) {
    let mut band1 = Vec::new();
    let mut band2 = Vec::new();
    for c in 0..cycles {
        let mut batches = w.cell_batch(c).unwrap();
        band2.push(batches.remove(1).cells());
        band1.push(batches.remove(0).cells());
    }
    (band1, band2)
}

/// Join + window + rolling-aggregate + k-means over materialized MODIS
/// bands, differentially verified after every cycle.
fn check_modis_probe(
    cluster: &Cluster,
    catalog: &Catalog,
    band1_all: &[Row],
    band2_day0: &[Row],
    kind: PartitionerKind,
    cycle: usize,
) {
    let ctx = ExecutionContext::new(cluster, catalog);
    let tag = format!("{kind}/cycle{cycle}");
    let day0 = ModisWorkload::day_region(0, 0);
    let band1_day0: Vec<&Row> = band1_all.iter().filter(|(c, _)| day0.contains_cell(c)).collect();

    // join family: the vegetation-index positional join. Matches are
    // discrete (exact); the NDVI sum is float-accumulated in chunk order,
    // so the independent oracle agrees to 1e-9 relative.
    let ndvi = |b1: f64, b2: f64| (b2 - b1) / (b2 + b1 + 1e-9);
    let (join, _) =
        ops::positional_join(&ctx, BAND1, BAND2, &day0, "radiance", "radiance", ndvi).unwrap();
    let right: BTreeMap<&[i64], f64> =
        band2_day0.iter().map(|(c, v)| (c.as_slice(), num(&v[1]))).collect();
    let mut matches = 0u64;
    let mut sum = 0.0;
    for (cell, values) in &band1_day0 {
        if let Some(&rv) = right.get(cell.as_slice()) {
            matches += 1;
            sum += ndvi(num(&values[1]), rv);
        }
    }
    assert!(matches > 0, "{tag}: join oracle found no partners");
    assert_eq!(join.matches, matches, "{tag}: join cardinality");
    let rel = (join.combined_sum - sum).abs() / sum.abs().max(1e-12);
    assert!(rel < 1e-9, "{tag}: join sum {} vs oracle {sum}", join.combined_sum);

    // window family: brute-force halo window over day 0 (the region stops
    // one minute short of the day boundary so the r=1 halo never reaches
    // into chunks later cycles append).
    let wregion = Region::new(vec![0, -180, -90], vec![1438, 180, 90]);
    let (win, _) = ops::window_aggregate(&ctx, BAND1, &wregion, "radiance", 1).unwrap();
    let grown = Region::new(vec![-1, -181, -91], vec![1439, 181, 91]);
    let points: BTreeMap<Vec<i64>, f64> = band1_all
        .iter()
        .filter(|(c, _)| grown.contains_cell(c))
        .map(|(c, v)| (c.clone(), num(&v[1])))
        .collect();
    let mut total = 0.0;
    let mut outputs = 0u64;
    for cell in points.keys() {
        if !wregion.contains_cell(cell) {
            continue;
        }
        let mut sum = 0.0;
        let mut n = 0u64;
        for dt in -1..=1i64 {
            for dlon in -1..=1i64 {
                for dlat in -1..=1i64 {
                    let probe = vec![cell[0] + dt, cell[1] + dlon, cell[2] + dlat];
                    if let Some(v) = points.get(&probe) {
                        sum += v;
                        n += 1;
                    }
                }
            }
        }
        if n > 0 {
            total += sum / n as f64;
            outputs += 1;
        }
    }
    assert_eq!(win.outputs, outputs, "{tag}: window outputs");
    let mean = win.mean.expect("materialized window");
    let oracle_mean = total / outputs as f64;
    let rel = (mean - oracle_mean).abs() / oracle_mean.abs().max(1e-12);
    assert!(rel < 1e-9, "{tag}: window mean {mean} vs oracle {oracle_mean}");

    // aggregate family again, through the rolling variant (same answers,
    // extra predecessor fetches on the cost side).
    let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![30, 30]);
    let (rows, _) =
        ops::rolling_aggregate(&ctx, BAND1, Some(&day0), "si_value", &spec, ops::AggFn::Avg, 0)
            .unwrap();
    let mut naive: BTreeMap<Vec<i64>, (f64, u64)> = BTreeMap::new();
    for (cell, values) in &band1_day0 {
        let key = vec![cell[1].div_euclid(30), cell[2].div_euclid(30)];
        let e = naive.entry(key).or_default();
        e.0 += num(&values[0]);
        e.1 += 1;
    }
    assert_eq!(rows.len(), naive.len(), "{tag}: rolling group count");
    for row in &rows {
        let &(sum, count) = naive.get(&row.key).expect("oracle group");
        // si_value is integer-valued: sum and the single division are
        // exact in any order.
        assert_eq!(row.value.to_bits(), (sum / count as f64).to_bits(), "{tag}: {:?}", row.key);
    }

    // modeling: k-means clusters every cell of the region — the point
    // count is oracle-checked; centroids are checked for internal
    // consistency (finite, inside the region's bounding box).
    let (km, _) = ops::kmeans(&ctx, BAND1, &day0, "radiance", 3, 5).unwrap();
    assert_eq!(km.points, band1_day0.len() as u64, "{tag}: kmeans point count");
    assert!(!km.centroids.is_empty(), "{tag}: kmeans produced no centroids");
    for c in &km.centroids {
        assert!(c.iter().all(|x| x.is_finite()), "{tag}: non-finite centroid {c:?}");
    }
}

fn run_modis_differential(cells_per_cycle: u64, days: usize) {
    let w = ModisWorkload { days, scale: 0.05, seed: 33, cells_per_cycle, ..Default::default() };
    let node_capacity = cells_per_cycle * 95;
    let (band1, band2) = modis_rows(&w, days);

    for kind in PartitionerKind::ALL {
        let mut runner = WorkloadRunner::new(&w, config(kind, node_capacity));
        let mut band1_so_far: Vec<Row> = Vec::new();
        for (c, day_rows) in band1.iter().enumerate() {
            runner.run_cycle(c).unwrap();
            band1_so_far.extend(day_rows.iter().cloned());
            check_modis_probe(
                runner.cluster(),
                runner.catalog(),
                &band1_so_far,
                &band2[0],
                kind,
                c,
            );
        }
        assert!(runner.cluster().node_count() > 2, "{kind}: the run never scaled out");
        assert_payload_integrity(&runner, BAND1);
        assert_payload_integrity(&runner, BAND2);

        // The node-store path answers identically with the catalog's
        // oracle copies stripped from *both* join sides.
        let stripped = store_only_catalog(&runner, &[BAND1, BAND2]);
        check_modis_probe(runner.cluster(), &stripped, &band1_so_far, &band2[0], kind, days);

        // join family, lookup flavour: a small replicated build side
        // registered alongside; every band-1 pixel probes platform_id=1,
        // which the build side holds twice.
        let mut cat = runner.catalog().clone();
        let vschema = ArraySchema::parse("V<id:int64>[vid=0:2,3]").unwrap();
        let mut build = Array::new(ArrayId(99), vschema);
        for (vid, id) in [(0i64, 1i64), (1, 1), (2, 7)] {
            build.insert_cell(vec![vid], vec![ScalarValue::Int64(id)]).unwrap();
        }
        cat.register(StoredArray::from_array(build).replicated());
        let ctx = ExecutionContext::new(runner.cluster(), &cat);
        let (lookup, stats) =
            ops::lookup_join(&ctx, BAND1, ArrayId(99), None, "platform_id", "id").unwrap();
        assert_eq!(lookup.matches, 2 * band1_so_far.len() as u64, "{kind}: lookup join");
        assert_eq!(stats.bytes_shuffled, 0, "{kind}: replicated build side never ships");
    }
}

// ---------------------------------------------------------- synthetic --

fn run_synthetic_differential(cells_per_cycle: u64, cycles: usize) {
    let w = SyntheticWorkload { cycles, cells_per_cycle, ..Default::default() };
    let node_capacity = cells_per_cycle * 40;
    let batches: Vec<Vec<Row>> =
        (0..cycles).map(|c| w.cell_batch(c).unwrap().remove(0).cells()).collect();

    for kind in PartitionerKind::ALL {
        let mut runner = WorkloadRunner::new(&w, config(kind, node_capacity));
        for c in 0..cycles {
            runner.run_cycle(c).unwrap();
            let ctx = ExecutionContext::new(runner.cluster(), runner.catalog());
            // Fixed probe: the cycle-0 plane, re-checked as the cluster
            // grows. One cell per chunk here, so the op's chunk-order
            // accumulation equals the coordinate-sorted oracle order and
            // even the double-valued sum is bit-exact.
            let plane = Region::new(vec![0, 0, 0], vec![0, w.grid_side - 1, w.grid_side - 1]);
            let (cells, _) = ops::subarray(&ctx, SYNTHETIC, &plane, &[]).unwrap();
            let mut got = cells.cells.clone();
            got.sort_by(|a, b| a.0.cmp(&b.0));
            let mut want = batches[0].clone();
            want.sort_by(|a, b| a.0.cmp(&b.0));
            assert_eq!(got, want, "{kind}/cycle{c}: synthetic subarray");

            let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![4, 4]);
            let (rows, _) =
                ops::grid_aggregate(&ctx, SYNTHETIC, Some(&plane), "v", &spec, ops::AggFn::Sum)
                    .unwrap();
            let mut naive: BTreeMap<Vec<i64>, f64> = BTreeMap::new();
            for (cell, values) in &want {
                *naive.entry(vec![cell[1].div_euclid(4), cell[2].div_euclid(4)]).or_default() +=
                    num(&values[0]);
            }
            assert_eq!(rows.len(), naive.len(), "{kind}/cycle{c}: synthetic groups");
            for row in &rows {
                let expect = naive.get(&row.key).expect("oracle group");
                assert_eq!(
                    row.value.to_bits(),
                    expect.to_bits(),
                    "{kind}/cycle{c}: synthetic sum for {:?}",
                    row.key
                );
            }
        }
        assert!(runner.cluster().node_count() > 2, "{kind}: synthetic never scaled out");
        assert_payload_integrity(&runner, SYNTHETIC);
    }
}

// -------------------------------------------------------------- tests --

#[test]
fn ais_differential_all_partitioners() {
    run_ais_differential(1_200, 3);
}

#[test]
fn modis_differential_all_partitioners() {
    run_modis_differential(900, 3);
}

#[test]
fn synthetic_differential_all_partitioners() {
    run_synthetic_differential(150, 4);
}

/// The heavier release-mode differential CI runs in the
/// `materialized_smoke` job: same assertions, bigger arrays, one extra
/// cycle of scale-outs.
#[test]
#[ignore = "heavy: run in release via the materialized_smoke CI job"]
fn materialized_smoke() {
    run_ais_differential(8_000, 4);
    run_modis_differential(5_000, 4);
    run_synthetic_differential(250, 6);
}

/// The dictionary-encoding differential at CI smoke scale, run in
/// release by the `dict-smoke` job: the string-bearing AIS run, with
/// enough rows that every port chunk's receiver dictionary saturates its
/// 128 distinct ids, compared dict-vs-plain at every cycle (the
/// comparison is built into `run_ais_differential`), plus a spill
/// exercise: a run whose chunk columns use a tiny cardinality cap must
/// spill to plain storage per chunk and *still* answer bit-identically.
#[test]
#[ignore = "heavy: run in release via the dict-smoke CI job"]
fn dict_smoke() {
    run_ais_differential(10_000, 4);

    // Spill leg: cap far below the 128 distinct receiver ids, so every
    // busy chunk's receiver column crosses the cap and spills while the
    // constant provenance column stays dictionary-encoded.
    let w = AisWorkload {
        cycles: 3,
        scale: 0.05,
        seed: 21,
        cells_per_cycle: 6_000,
        ..Default::default()
    };
    let batches: Vec<Vec<Row>> =
        (0..3).map(|c| w.cell_batch(c).unwrap().remove(0).cells()).collect();
    for kind in [PartitionerKind::HilbertCurve, PartitionerKind::ConsistentHash] {
        let mut capped = WorkloadRunner::new(
            &w,
            config_encoded(kind, 6_000 * 90, StringEncoding::Dict { cap: 8 }),
        );
        let mut plain =
            WorkloadRunner::new(&w, config_encoded(kind, 6_000 * 90, StringEncoding::Plain));
        for c in 0..3 {
            capped.run_cycle(c).unwrap();
            plain.run_cycle(c).unwrap();
            check_ais_probe(capped.cluster(), capped.catalog(), &batches[0], kind, c);
            assert_eq!(
                ais_probe_answers(&w, capped.cluster(), capped.catalog()),
                ais_probe_answers(&w, plain.cluster(), plain.catalog()),
                "{kind}/cycle{c}: spilled dict answers diverge from the plain build"
            );
        }
        assert_payload_integrity(&capped, BROADCAST);
        // The cap really bit: at least one chunk's receiver column must
        // have spilled to plain storage while provenance stayed encoded.
        let stored = capped.catalog().array(BROADCAST).unwrap();
        let data = stored.data.as_ref().expect("materialized catalog storage");
        let receiver_idx = 8;
        let provenance_idx = 9;
        assert!(
            data.chunks().any(|(_, ch)| ch.column(receiver_idx).unwrap().as_dict().is_none()),
            "{kind}: no receiver column spilled under cap 8"
        );
        assert!(
            data.chunks().all(|(_, ch)| ch.column(provenance_idx).unwrap().as_dict().is_some()),
            "{kind}: the single-string provenance column must never spill"
        );
    }
}
