//! What-if tuning of the sampling parameter `s` (paper §5.2, Algorithm 1).
//!
//! The tuner replays the observed demand history: for every candidate
//! window `s`, it slides over the history, estimates the derivative from
//! the last `s` points, predicts the next demand change, and scores the
//! candidate by mean absolute prediction error. Bursty workloads (AIS,
//! with its seasonal shipping patterns) favour small `s`; steady ones
//! (MODIS) favour larger windows that smooth noise.

use serde::{Deserialize, Serialize};

/// Result of running Algorithm 1 over a demand history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleTuningReport {
    /// Mean absolute prediction error (GB) for each s = 1..=ψ.
    /// `errors[k]` is the error of window `s = k + 1`; `NaN` when the
    /// history is too short to evaluate that window.
    pub errors: Vec<f64>,
    /// The winning window (1-based), i.e. the argmin of `errors`.
    pub best: usize,
}

/// Mean absolute error of one window `s` predicting demand deltas over
/// `history` (the inner loop of Algorithm 1). Returns `None` when the
/// history is too short (needs at least `s + 2` observations).
pub fn prediction_error(history: &[f64], s: usize) -> Option<f64> {
    assert!(s >= 1, "window must be at least 1");
    let d = history.len();
    if d < s + 2 {
        return None;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    // Paper indexing: for i in s+1..=d evaluate Δest against Δ_i = l_{i+1} − l_i,
    // which needs l_{i+1}; with 0-based indexing i runs over [s, d-1).
    for i in s..d - 1 {
        let delta_est = (history[i] - history[i - s]) / s as f64;
        let delta_actual = history[i + 1] - history[i];
        total += (delta_actual - delta_est).abs();
        count += 1;
    }
    Some(total / count as f64)
}

/// Algorithm 1: evaluate windows `s = 1..=psi` on `history`, returning the
/// per-window mean errors and the argmin. Windows the history cannot
/// support score `NaN` and are never selected.
pub fn tune_samples(history: &[f64], psi: usize) -> SampleTuningReport {
    assert!(psi >= 1, "must explore at least s = 1");
    let errors: Vec<f64> =
        (1..=psi).map(|s| prediction_error(history, s).unwrap_or(f64::NAN)).collect();
    let best = errors
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.is_nan())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs here"))
        .map(|(i, _)| i + 1)
        .unwrap_or(1);
    SampleTuningReport { errors, best }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_growth_is_perfectly_predicted_by_any_window() {
        let history: Vec<f64> = (0..12).map(|i| 10.0 * i as f64).collect();
        for s in 1..=4 {
            let err = prediction_error(&history, s).unwrap();
            assert!(err < 1e-9, "s={s} err={err}");
        }
    }

    #[test]
    fn alternating_demand_favours_windows_matching_the_period() {
        // Demand grows by 0, 20, 0, 20, ... — a period-2 pattern. A window
        // of 2 averages a full period (Δest = 10 always, error 10), while
        // s = 1 swings between 0 and 20 (error 20).
        let mut history = vec![0.0];
        for i in 0..14 {
            let inc = if i % 2 == 0 { 0.0 } else { 20.0 };
            history.push(history.last().unwrap() + inc);
        }
        let e1 = prediction_error(&history, 1).unwrap();
        let e2 = prediction_error(&history, 2).unwrap();
        assert!(e2 < e1, "period-matching window must win: e1={e1} e2={e2}");
        let report = tune_samples(&history, 4);
        assert!(report.best == 2 || report.best == 4, "even windows win: {report:?}");
    }

    #[test]
    fn volatile_recent_shifts_favour_small_windows() {
        // A sudden regime change: old slope 1, new slope 30. Small windows
        // adapt fastest.
        let mut history: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut last = *history.last().unwrap();
        for _ in 0..4 {
            last += 30.0;
            history.push(last);
        }
        let e1 = prediction_error(&history, 1).unwrap();
        let e4 = prediction_error(&history, 4).unwrap();
        assert!(e1 < e4, "e1={e1} e4={e4}");
    }

    #[test]
    fn short_history_yields_nan_slots() {
        let history = [1.0, 2.0, 3.0];
        let report = tune_samples(&history, 4);
        assert!(!report.errors[0].is_nan()); // s=1 evaluable with 3 points
        assert!(report.errors[2].is_nan());
        assert!(report.errors[3].is_nan());
        assert_eq!(report.best, 1);
    }

    #[test]
    fn empty_history_defaults_to_one() {
        let report = tune_samples(&[], 3);
        assert_eq!(report.best, 1);
        assert!(report.errors.iter().all(|e| e.is_nan()));
    }
}
