//! Analytical scale-out cost model for tuning the planning horizon `p`
//! (paper §5.2, Equations 5–9).
//!
//! The tuner simulates `m` future workload cycles for each candidate `p`,
//! pricing every cycle's insert (Eq. 6), rebalance (Eq. 7), and query
//! workload (Eq. 8) and weighting by the projected node count (Eq. 9).
//! A lazy horizon reorganizes often; an eager one over-provisions. The
//! candidate with the fewest projected node-hours wins.

use serde::{Deserialize, Serialize};

/// Workload-independent constants of the analytical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModelParams {
    /// Node capacity `c` in GB.
    pub node_capacity_gb: f64,
    /// δ — seconds per GB of local I/O (derived empirically; the harness
    /// feeds in the simulator's constant).
    pub delta_secs_per_gb: f64,
    /// t — seconds per GB of network transfer.
    pub t_secs_per_gb: f64,
    /// m — how many future cycles to simulate.
    pub horizon: usize,
}

/// The cluster state the projection starts from (the paper's iteration d,
/// when demand first reaches capacity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// N₀ — nodes currently provisioned.
    pub nodes: usize,
    /// l₀ — current storage demand in GB.
    pub load_gb: f64,
    /// μ — insert rate in GB per cycle (slope of the last s cycles).
    pub insert_rate_gb: f64,
    /// w₀ — the last observed query-workload latency, in seconds.
    pub last_query_secs: f64,
}

/// Per-cycle projection detail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleEstimate {
    /// Projected load l_i (Eq. 5).
    pub load_gb: f64,
    /// Projected node count N_{i,p}.
    pub nodes: usize,
    /// Insert time I_{i,p} in seconds (Eq. 6).
    pub insert_secs: f64,
    /// Rebalance time r_{i,p} in seconds (Eq. 7).
    pub reorg_secs: f64,
    /// Query latency w_{i,p} in seconds (Eq. 8).
    pub query_secs: f64,
}

/// The full projection for one candidate `p`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// The candidate planning horizon.
    pub plan_ahead: usize,
    /// Per-cycle detail, `horizon` entries.
    pub cycles: Vec<CycleEstimate>,
    /// Eq. 9 objective, in node-hours.
    pub node_hours: f64,
    /// Number of scale-out events in the projection.
    pub reorg_count: usize,
}

/// Project `m` cycles under planning horizon `p` (Eqs. 5–9).
pub fn estimate_cost(p: usize, snap: &ClusterSnapshot, params: &CostModelParams) -> CostEstimate {
    assert!(snap.nodes >= 1, "cluster has at least one node");
    assert!(params.node_capacity_gb > 0.0);
    let c = params.node_capacity_gb;
    let mu = snap.insert_rate_gb.max(0.0);
    let l0 = snap.load_gb;
    let n0 = snap.nodes as f64;

    let mut cycles = Vec::with_capacity(params.horizon);
    let mut prev_nodes = snap.nodes;
    let mut node_seconds = 0.0;
    let mut reorgs = 0usize;
    for i in 1..=params.horizon {
        // Eq. 5: projected load.
        let l_i = l0 + mu * i as f64;
        // Node-count recurrence: hold while capacity suffices, otherwise
        // provision for p cycles beyond i.
        let nodes = if l_i <= prev_nodes as f64 * c {
            prev_nodes
        } else {
            ((l0 + mu * (i + p) as f64) / c).ceil().max(prev_nodes as f64 + 1.0) as usize
        };
        let n_i = nodes as f64;
        // Eq. 6: the coordinator writes 1/N locally at δ and ships the
        // rest over the network at t.
        let insert_secs =
            mu * params.delta_secs_per_gb / n_i + mu * (n_i - 1.0) / n_i * params.t_secs_per_gb;
        // Eq. 7: rebalancing ships the new nodes' share of the data.
        let added = nodes.saturating_sub(prev_nodes);
        let reorg_secs = if added > 0 {
            reorgs += 1;
            l_i / n_i * added as f64 * params.t_secs_per_gb
        } else {
            0.0
        };
        // Eq. 8: base latency scaled by load growth and parallelism.
        let query_secs = if l0 > 0.0 {
            snap.last_query_secs * (l_i / l0) * (n0 / n_i)
        } else {
            snap.last_query_secs
        };
        node_seconds += n_i * (insert_secs + reorg_secs + query_secs);
        cycles.push(CycleEstimate { load_gb: l_i, nodes, insert_secs, reorg_secs, query_secs });
        prev_nodes = nodes;
    }
    CostEstimate { plan_ahead: p, cycles, node_hours: node_seconds / 3600.0, reorg_count: reorgs }
}

/// The tuner's report: one estimate per candidate, plus the argmin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanAheadReport {
    /// Cost projections, in candidate order.
    pub estimates: Vec<CostEstimate>,
    /// The winning planning horizon.
    pub best: usize,
}

/// Compare candidate horizons and pick the cheapest (Eq. 9 argmin).
pub fn tune_plan_ahead(
    candidates: &[usize],
    snap: &ClusterSnapshot,
    params: &CostModelParams,
) -> PlanAheadReport {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let estimates: Vec<CostEstimate> =
        candidates.iter().map(|&p| estimate_cost(p, snap, params)).collect();
    let best = estimates
        .iter()
        .min_by(|a, b| a.node_hours.partial_cmp(&b.node_hours).expect("costs are finite"))
        .expect("non-empty")
        .plan_ahead;
    PlanAheadReport { estimates, best }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostModelParams {
        CostModelParams {
            node_capacity_gb: 100.0,
            delta_secs_per_gb: 8.0,
            t_secs_per_gb: 12.0,
            horizon: 8,
        }
    }

    fn snapshot() -> ClusterSnapshot {
        ClusterSnapshot { nodes: 2, load_gb: 200.0, insert_rate_gb: 45.0, last_query_secs: 1200.0 }
    }

    #[test]
    fn lazy_horizon_reorganizes_more_often() {
        let lazy = estimate_cost(1, &snapshot(), &params());
        let eager = estimate_cost(6, &snapshot(), &params());
        assert!(
            lazy.reorg_count > eager.reorg_count,
            "lazy {} vs eager {}",
            lazy.reorg_count,
            eager.reorg_count
        );
    }

    #[test]
    fn eager_horizon_provisions_more_nodes() {
        let lazy = estimate_cost(1, &snapshot(), &params());
        let eager = estimate_cost(6, &snapshot(), &params());
        let max_nodes = |e: &CostEstimate| e.cycles.iter().map(|c| c.nodes).max().unwrap();
        assert!(max_nodes(&eager) >= max_nodes(&lazy));
        let avg_nodes = |e: &CostEstimate| {
            e.cycles.iter().map(|c| c.nodes as f64).sum::<f64>() / e.cycles.len() as f64
        };
        assert!(avg_nodes(&eager) > avg_nodes(&lazy));
    }

    #[test]
    fn load_projection_is_linear() {
        let est = estimate_cost(3, &snapshot(), &params());
        for (i, c) in est.cycles.iter().enumerate() {
            let expect = 200.0 + 45.0 * (i + 1) as f64;
            assert!((c.load_gb - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn insert_cost_matches_eq6() {
        // With N fixed, Eq. 6 is closed-form. First cycle: l=245 > 200 so
        // a scale-out happens; check the formula with that cycle's N.
        let est = estimate_cost(1, &snapshot(), &params());
        let c0 = est.cycles[0];
        let n = c0.nodes as f64;
        let expect = 45.0 * 8.0 / n + 45.0 * (n - 1.0) / n * 12.0;
        assert!((c0.insert_secs - expect).abs() < 1e-9);
    }

    #[test]
    fn query_latency_scales_with_load_and_parallelism() {
        let est = estimate_cost(3, &snapshot(), &params());
        let c = est.cycles.last().unwrap();
        let expect = 1200.0 * (c.load_gb / 200.0) * (2.0 / c.nodes as f64);
        assert!((c.query_secs - expect).abs() < 1e-9);
    }

    #[test]
    fn tuner_picks_a_middle_ground() {
        // With the paper-like setup, the extremes should not both win;
        // we at least require the tuner to be consistent with its own
        // estimates.
        let report = tune_plan_ahead(&[1, 3, 6], &snapshot(), &params());
        let best_est = report.estimates.iter().find(|e| e.plan_ahead == report.best).unwrap();
        for e in &report.estimates {
            assert!(best_est.node_hours <= e.node_hours + 1e-9);
        }
    }

    #[test]
    fn zero_growth_never_scales() {
        let snap = ClusterSnapshot {
            nodes: 2,
            load_gb: 150.0,
            insert_rate_gb: 0.0,
            last_query_secs: 100.0,
        };
        let est = estimate_cost(3, &snap, &params());
        assert_eq!(est.reorg_count, 0);
        assert!(est.cycles.iter().all(|c| c.nodes == 2));
    }
}
