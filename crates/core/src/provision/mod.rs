//! Elastic provisioning for array databases (paper §5).
//!
//! * [`StaircaseProvisioner`] — the leading-staircase PD control loop that
//!   decides when and by how much to scale out (Equations 2–4, Figure 3).
//! * [`tune_samples`] — the what-if analysis of Algorithm 1, fitting the
//!   derivative window `s` to a workload's demand history.
//! * [`tune_plan_ahead`] — the analytical cost model of Equations 5–9,
//!   choosing the planning horizon `p` that minimizes node-hours.

mod cost_model;
mod staircase;
mod tuning;

pub use cost_model::{
    estimate_cost, tune_plan_ahead, ClusterSnapshot, CostEstimate, CostModelParams, CycleEstimate,
    PlanAheadReport,
};
pub use staircase::{ProvisionDecision, StaircaseConfig, StaircaseProvisioner};
pub use tuning::{prediction_error, tune_samples, SampleTuningReport};
