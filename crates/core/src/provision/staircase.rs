//! The leading staircase: a PD control loop for cluster scale-out
//! (paper §5.1, Figure 3).
//!
//! At each batch of inserts the controller compares demand against
//! capacity. Its **proportional** term is the provisioning error
//! `p_i = l_i − N·c` (Eq. 2); its **derivative** term is the demand slope
//! over the last `s` workload cycles, `Δ = (l_i − l_{i−s}) / s` (Eq. 3).
//! When the cluster is over capacity it provisions
//! `k = ⌈(p_i + pΔ) / c⌉` new nodes (Eq. 4), raising capacity to serve the
//! next `p` workload iterations. The staircase only ever climbs: scientific
//! stores grow monotonically, so nodes are never coalesced.

use serde::{Deserialize, Serialize};

/// Tunables of the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaircaseConfig {
    /// Per-node storage capacity `c` in GB (paper §6.1 uses 100 GB).
    pub node_capacity_gb: f64,
    /// Derivative window `s`: how many past cycles the slope looks at.
    pub samples: usize,
    /// Planning horizon `p`: how many future cycles each step provisions.
    pub plan_ahead: usize,
    /// Capacity fraction at which the proportional term trips. 1.0 is the
    /// paper's behaviour (scale exactly when demand exceeds capacity);
    /// lower values scale out with headroom to spare.
    pub trigger: f64,
}

impl StaircaseConfig {
    /// The paper's experimental defaults (c = 100 GB, s = 4, p = 3).
    pub fn paper_defaults() -> Self {
        StaircaseConfig { node_capacity_gb: 100.0, samples: 4, plan_ahead: 3, trigger: 1.0 }
    }
}

/// The controller's verdict for one insert batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisionDecision {
    /// Capacity suffices; no change.
    Stay,
    /// Add this many nodes before ingesting.
    ScaleOut {
        /// Number of nodes to provision (k in Eq. 4).
        add_nodes: usize,
    },
}

/// Leading-staircase provisioner state: the demand history plus config.
#[derive(Debug, Clone)]
pub struct StaircaseProvisioner {
    config: StaircaseConfig,
    /// Observed storage demand l_1..l_i (GB), one entry per workload cycle.
    history: Vec<f64>,
}

impl StaircaseProvisioner {
    /// Create a controller with the given configuration.
    pub fn new(config: StaircaseConfig) -> Self {
        assert!(config.node_capacity_gb > 0.0, "capacity must be positive");
        assert!(config.samples >= 1, "derivative needs at least one sample");
        assert!(config.trigger > 0.0, "trigger must be positive");
        StaircaseProvisioner { config, history: Vec::new() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StaircaseConfig {
        &self.config
    }

    /// Retune the derivative window (e.g. after running Algorithm 1).
    pub fn set_samples(&mut self, samples: usize) {
        assert!(samples >= 1);
        self.config.samples = samples;
    }

    /// Retune the planning horizon (e.g. after running the cost model).
    pub fn set_plan_ahead(&mut self, plan_ahead: usize) {
        self.config.plan_ahead = plan_ahead;
    }

    /// Record the observed storage demand after a workload cycle completes.
    pub fn observe(&mut self, load_gb: f64) {
        self.history.push(load_gb);
    }

    /// Demand history so far (for tuning).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The derivative term Δ (Eq. 3) for a prospective demand `load_gb`,
    /// using at most the configured window (shrinks while history is
    /// short).
    pub fn derivative(&self, load_gb: f64) -> f64 {
        if self.history.is_empty() {
            // First cycle: the whole load arrived in one step.
            return load_gb.max(0.0);
        }
        let s = self.config.samples.min(self.history.len());
        let past = self.history[self.history.len() - s];
        (load_gb - past) / s as f64
    }

    /// Evaluate the control loop (Eqs. 2–4) for the demand `load_gb` that
    /// the incoming insert will produce on a cluster of `current_nodes`.
    pub fn decide(&self, current_nodes: usize, load_gb: f64) -> ProvisionDecision {
        let c = self.config.node_capacity_gb;
        let homogeneous = vec![c; current_nodes];
        self.decide_heterogeneous(&homogeneous, c, load_gb)
    }

    /// The paper's §5.1 generalization: "this approach easily generalizes
    /// to a heterogeneous cluster by assigning individual capacities to
    /// the nodes." The proportional term compares demand against the sum
    /// of the existing nodes' capacities; the step is sized in units of
    /// the capacity new nodes will arrive with.
    pub fn decide_heterogeneous(
        &self,
        node_capacities_gb: &[f64],
        new_node_capacity_gb: f64,
        load_gb: f64,
    ) -> ProvisionDecision {
        assert!(new_node_capacity_gb > 0.0, "new nodes must have capacity");
        // Eq. 2: proportional term, against the (possibly derated) capacity.
        let capacity: f64 = node_capacities_gb.iter().sum::<f64>() * self.config.trigger;
        let p_i = load_gb - capacity;
        if p_i <= 0.0 {
            return ProvisionDecision::Stay;
        }
        // Eq. 3: derivative over the last s cycles.
        let delta = self.derivative(load_gb).max(0.0);
        // Eq. 4: nodes to add, covering the error plus p cycles of growth.
        let k = ((p_i + self.config.plan_ahead as f64 * delta) / new_node_capacity_gb).ceil();
        ProvisionDecision::ScaleOut { add_nodes: (k as usize).max(1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provisioner(s: usize, p: usize) -> StaircaseProvisioner {
        StaircaseProvisioner::new(StaircaseConfig {
            node_capacity_gb: 100.0,
            samples: s,
            plan_ahead: p,
            trigger: 1.0,
        })
    }

    #[test]
    fn stays_under_capacity() {
        let mut pv = provisioner(2, 1);
        pv.observe(50.0);
        assert_eq!(pv.decide(2, 150.0), ProvisionDecision::Stay);
        assert_eq!(pv.decide(2, 200.0), ProvisionDecision::Stay); // exactly at capacity
    }

    #[test]
    fn proportional_term_covers_excess() {
        // 2 nodes (200 GB), demand 250 GB, flat history (Δ from window):
        // history 210, 230 -> s=2: Δ = (250-210)/2 = 20; p=0 -> k = ceil(50/100)=1
        let mut pv = provisioner(2, 0);
        pv.observe(210.0);
        pv.observe(230.0);
        assert_eq!(pv.decide(2, 250.0), ProvisionDecision::ScaleOut { add_nodes: 1 });
    }

    #[test]
    fn derivative_term_scales_with_plan_ahead() {
        // Same state, growing demand 40 GB/cycle; p=6 -> k = ceil((50 + 6*20)/100)=2
        let mut lazy = provisioner(2, 0);
        let mut eager = provisioner(2, 6);
        for pv in [&mut lazy, &mut eager] {
            pv.observe(210.0);
            pv.observe(230.0);
        }
        let ProvisionDecision::ScaleOut { add_nodes: k_lazy } = lazy.decide(2, 250.0) else {
            panic!("must scale")
        };
        let ProvisionDecision::ScaleOut { add_nodes: k_eager } = eager.decide(2, 250.0) else {
            panic!("must scale")
        };
        assert!(k_eager > k_lazy, "eager {k_eager} vs lazy {k_lazy}");
        assert_eq!(k_eager, 2);
    }

    #[test]
    fn eq4_matches_hand_computation() {
        // N=4 (400 GB), l=470, history window s=3 with l_{i-3}=350:
        // Δ = 40, p = 3: k = ceil((70 + 120)/100) = 2.
        let mut pv = provisioner(3, 3);
        for l in [350.0, 390.0, 430.0] {
            pv.observe(l);
        }
        assert_eq!(pv.decide(4, 470.0), ProvisionDecision::ScaleOut { add_nodes: 2 });
    }

    #[test]
    fn short_history_shrinks_the_window() {
        let mut pv = provisioner(4, 1);
        pv.observe(100.0);
        // Only one sample: Δ = (260 - 100) / 1
        assert!((pv.derivative(260.0) - 160.0).abs() < 1e-12);
        // No history at all: Δ = the incoming load
        let fresh = provisioner(4, 1);
        assert!((fresh.derivative(50.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn trigger_derates_capacity() {
        let mut pv = StaircaseProvisioner::new(StaircaseConfig {
            node_capacity_gb: 100.0,
            samples: 1,
            plan_ahead: 0,
            trigger: 0.8,
        });
        pv.observe(150.0);
        // 2 nodes * 100 GB * 0.8 = 160 GB effective capacity.
        assert!(matches!(pv.decide(2, 170.0), ProvisionDecision::ScaleOut { .. }));
        assert_eq!(pv.decide(2, 155.0), ProvisionDecision::Stay);
    }

    #[test]
    fn heterogeneous_capacities_sum_into_the_proportional_term() {
        let mut pv = provisioner(1, 0);
        pv.observe(100.0);
        // 50 + 150 + 100 = 300 GB of mixed capacity.
        let caps = vec![50.0, 150.0, 100.0];
        assert_eq!(pv.decide_heterogeneous(&caps, 100.0, 290.0), ProvisionDecision::Stay);
        // 310 GB demand: 10 GB over; new nodes come in 25 GB units ->
        // ceil((10 + 0)/25) = 1.
        assert_eq!(
            pv.decide_heterogeneous(&caps, 25.0, 310.0),
            ProvisionDecision::ScaleOut { add_nodes: 1 }
        );
        // Big deficit with small new nodes: ceil(60/25) = 3.
        assert_eq!(
            pv.decide_heterogeneous(&caps, 25.0, 360.0),
            ProvisionDecision::ScaleOut { add_nodes: 3 }
        );
    }

    #[test]
    fn homogeneous_decide_matches_heterogeneous_equivalent() {
        let mut pv = provisioner(2, 3);
        for l in [350.0, 390.0, 430.0] {
            pv.observe(l);
        }
        let direct = pv.decide(4, 470.0);
        let via_hetero = pv.decide_heterogeneous(&[100.0; 4], 100.0, 470.0);
        assert_eq!(direct, via_hetero);
    }

    #[test]
    fn staircase_never_asks_to_shrink() {
        let mut pv = provisioner(2, 3);
        for l in [100.0, 90.0, 80.0] {
            pv.observe(l);
        }
        // Demand falling but under capacity: Stay, never negative.
        assert_eq!(pv.decide(4, 70.0), ProvisionDecision::Stay);
    }
}
