//! The leading staircase: a PD control loop for cluster scale-out
//! (paper §5.1, Figure 3).
//!
//! At each batch of inserts the controller compares demand against
//! capacity. Its **proportional** term is the provisioning error
//! `p_i = l_i − N·c` (Eq. 2); its **derivative** term is the demand slope
//! over the last `s` workload cycles, `Δ = (l_i − l_{i−s}) / s` (Eq. 3).
//! When the cluster is over capacity it provisions
//! `k = ⌈(p_i + pΔ) / c⌉` new nodes (Eq. 4), raising capacity to serve the
//! next `p` workload iterations.
//!
//! The paper's staircase only ever climbs — scientific stores grow
//! monotonically, so nodes are never coalesced. This reproduction extends
//! the controller with the symmetric **scale-IN** step for retracting
//! workloads: when demand (projected `p` cycles forward with the same
//! derivative term) would still fit under a *shrunken* cluster derated by
//! an extra hysteresis factor [`StaircaseConfig::shrink_margin`], the
//! controller asks to release nodes. The margin keeps the add and remove
//! thresholds strictly apart, so a load sitting exactly at the post-shrink
//! capacity boundary never flaps back into a `ScaleOut`.

use serde::{Deserialize, Serialize};

/// Tunables of the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaircaseConfig {
    /// Per-node storage capacity `c` in GB (paper §6.1 uses 100 GB).
    pub node_capacity_gb: f64,
    /// Derivative window `s`: how many past cycles the slope looks at.
    pub samples: usize,
    /// Planning horizon `p`: how many future cycles each step provisions.
    pub plan_ahead: usize,
    /// Capacity fraction at which the proportional term trips. 1.0 is the
    /// paper's behaviour (scale exactly when demand exceeds capacity);
    /// lower values scale out with headroom to spare.
    pub trigger: f64,
    /// Hysteresis band for scale-IN, as a fraction in `[0, 1)` of the
    /// scale-OUT threshold. Nodes are released only while the projected
    /// demand (`l + p·Δ`, the same planning horizon scale-OUT uses) still
    /// fits under the **shrunken** cluster's capacity derated to
    /// `trigger × shrink_margin`. Because the margin is strictly below
    /// 1, every shrink leaves the surviving capacity strictly above the
    /// scale-OUT trip point — the thresholds never coincide, so the
    /// controller cannot flap between adding and removing the same node.
    /// `0.0` disables scale-IN entirely (the paper's climb-only
    /// staircase).
    pub shrink_margin: f64,
}

impl StaircaseConfig {
    /// The paper's experimental defaults (c = 100 GB, s = 4, p = 3), with
    /// scale-IN enabled at a 3/4 hysteresis band.
    pub fn paper_defaults() -> Self {
        StaircaseConfig {
            node_capacity_gb: 100.0,
            samples: 4,
            plan_ahead: 3,
            trigger: 1.0,
            shrink_margin: 0.75,
        }
    }

    /// The paper's climb-only behaviour: defaults with scale-IN disabled.
    pub fn climb_only() -> Self {
        StaircaseConfig { shrink_margin: 0.0, ..StaircaseConfig::paper_defaults() }
    }
}

/// The controller's verdict for one insert batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisionDecision {
    /// Capacity suffices; no change.
    Stay,
    /// Add this many nodes before ingesting.
    ScaleOut {
        /// Number of nodes to provision (k in Eq. 4).
        add_nodes: usize,
    },
    /// Release this many nodes: projected demand fits under the shrunken
    /// cluster's derated capacity with the hysteresis margin to spare.
    ScaleIn {
        /// Number of nodes to decommission (never the whole cluster).
        remove_nodes: usize,
    },
}

/// Leading-staircase provisioner state: the demand history plus config.
#[derive(Debug, Clone)]
pub struct StaircaseProvisioner {
    config: StaircaseConfig,
    /// Observed storage demand l_1..l_i (GB), one entry per workload cycle.
    history: Vec<f64>,
}

impl StaircaseProvisioner {
    /// Create a controller with the given configuration.
    pub fn new(config: StaircaseConfig) -> Self {
        assert!(config.node_capacity_gb > 0.0, "capacity must be positive");
        assert!(config.samples >= 1, "derivative needs at least one sample");
        assert!(config.trigger > 0.0, "trigger must be positive");
        assert!(
            (0.0..1.0).contains(&config.shrink_margin),
            "shrink margin must sit strictly below the scale-out threshold"
        );
        StaircaseProvisioner { config, history: Vec::new() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StaircaseConfig {
        &self.config
    }

    /// Retune the derivative window (e.g. after running Algorithm 1).
    pub fn set_samples(&mut self, samples: usize) {
        assert!(samples >= 1);
        self.config.samples = samples;
    }

    /// Retune the planning horizon (e.g. after running the cost model).
    pub fn set_plan_ahead(&mut self, plan_ahead: usize) {
        self.config.plan_ahead = plan_ahead;
    }

    /// Record the observed storage demand after a workload cycle completes.
    pub fn observe(&mut self, load_gb: f64) {
        self.history.push(load_gb);
    }

    /// Demand history so far (for tuning).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The derivative term Δ (Eq. 3) for a prospective demand `load_gb`,
    /// using at most the configured window (shrinks while history is
    /// short).
    pub fn derivative(&self, load_gb: f64) -> f64 {
        if self.history.is_empty() {
            // First cycle: the whole load arrived in one step.
            return load_gb.max(0.0);
        }
        let s = self.config.samples.min(self.history.len());
        let past = self.history[self.history.len() - s];
        (load_gb - past) / s as f64
    }

    /// Evaluate the control loop (Eqs. 2–4) for the demand `load_gb` that
    /// the incoming insert will produce on a cluster of `current_nodes`.
    pub fn decide(&self, current_nodes: usize, load_gb: f64) -> ProvisionDecision {
        let c = self.config.node_capacity_gb;
        let homogeneous = vec![c; current_nodes];
        self.decide_heterogeneous(&homogeneous, c, load_gb)
    }

    /// The paper's §5.1 generalization: "this approach easily generalizes
    /// to a heterogeneous cluster by assigning individual capacities to
    /// the nodes." The proportional term compares demand against the sum
    /// of the existing nodes' capacities; the step is sized in units of
    /// the capacity new nodes will arrive with.
    ///
    /// A demand sitting exactly at the trip point (`p_i == 0`) stays put
    /// — the cluster is full, not over — so a shrink that lands the load
    /// precisely on the surviving capacity can never bounce straight back
    /// into a `ScaleOut`. (With a positive
    /// [`StaircaseConfig::shrink_margin`] the shrink itself already
    /// leaves strict headroom; the `<=` boundary makes the no-flap
    /// guarantee independent of the margin.)
    ///
    /// Scale-IN mirrors the same control terms: nodes are released from
    /// the **tail** of `node_capacities_gb` (join order, the newest
    /// hardware first) while `l + p·Δ` still fits under the remaining
    /// capacity derated to `trigger × shrink_margin`, and at least one
    /// node always survives.
    pub fn decide_heterogeneous(
        &self,
        node_capacities_gb: &[f64],
        new_node_capacity_gb: f64,
        load_gb: f64,
    ) -> ProvisionDecision {
        assert!(new_node_capacity_gb > 0.0, "new nodes must have capacity");
        // Eq. 2: proportional term, against the (possibly derated) capacity.
        let capacity: f64 = node_capacities_gb.iter().sum::<f64>() * self.config.trigger;
        let p_i = load_gb - capacity;
        if p_i > 0.0 {
            // Eq. 3: derivative over the last s cycles.
            let delta = self.derivative(load_gb).max(0.0);
            // Eq. 4: nodes to add, covering the error plus p cycles of growth.
            let k = ((p_i + self.config.plan_ahead as f64 * delta) / new_node_capacity_gb).ceil();
            return ProvisionDecision::ScaleOut { add_nodes: (k as usize).max(1) };
        }
        // Scale-IN: release tail nodes while the demand projected
        // plan_ahead cycles forward still fits under the shrunken,
        // margin-derated capacity. Δ clamps at zero, so a falling demand
        // is judged by where it is now, not where the trough might go.
        let margin = self.config.trigger * self.config.shrink_margin;
        if margin <= 0.0 || node_capacities_gb.len() <= 1 {
            return ProvisionDecision::Stay;
        }
        let delta = self.derivative(load_gb).max(0.0);
        let projected = load_gb + self.config.plan_ahead as f64 * delta;
        let mut remaining: f64 = node_capacities_gb.iter().sum();
        let mut remove = 0usize;
        for &cap in node_capacities_gb.iter().rev() {
            if remove + 1 >= node_capacities_gb.len() {
                break; // the cluster keeps at least one node
            }
            if projected <= (remaining - cap) * margin {
                remaining -= cap;
                remove += 1;
            } else {
                break;
            }
        }
        if remove > 0 {
            ProvisionDecision::ScaleIn { remove_nodes: remove }
        } else {
            ProvisionDecision::Stay
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provisioner(s: usize, p: usize) -> StaircaseProvisioner {
        StaircaseProvisioner::new(StaircaseConfig {
            node_capacity_gb: 100.0,
            samples: s,
            plan_ahead: p,
            trigger: 1.0,
            shrink_margin: 0.0,
        })
    }

    fn shrinker(s: usize, p: usize, margin: f64) -> StaircaseProvisioner {
        StaircaseProvisioner::new(StaircaseConfig {
            node_capacity_gb: 100.0,
            samples: s,
            plan_ahead: p,
            trigger: 1.0,
            shrink_margin: margin,
        })
    }

    #[test]
    fn stays_under_capacity() {
        let mut pv = provisioner(2, 1);
        pv.observe(50.0);
        assert_eq!(pv.decide(2, 150.0), ProvisionDecision::Stay);
        assert_eq!(pv.decide(2, 200.0), ProvisionDecision::Stay); // exactly at capacity
    }

    #[test]
    fn proportional_term_covers_excess() {
        // 2 nodes (200 GB), demand 250 GB, flat history (Δ from window):
        // history 210, 230 -> s=2: Δ = (250-210)/2 = 20; p=0 -> k = ceil(50/100)=1
        let mut pv = provisioner(2, 0);
        pv.observe(210.0);
        pv.observe(230.0);
        assert_eq!(pv.decide(2, 250.0), ProvisionDecision::ScaleOut { add_nodes: 1 });
    }

    #[test]
    fn derivative_term_scales_with_plan_ahead() {
        // Same state, growing demand 40 GB/cycle; p=6 -> k = ceil((50 + 6*20)/100)=2
        let mut lazy = provisioner(2, 0);
        let mut eager = provisioner(2, 6);
        for pv in [&mut lazy, &mut eager] {
            pv.observe(210.0);
            pv.observe(230.0);
        }
        let ProvisionDecision::ScaleOut { add_nodes: k_lazy } = lazy.decide(2, 250.0) else {
            panic!("must scale")
        };
        let ProvisionDecision::ScaleOut { add_nodes: k_eager } = eager.decide(2, 250.0) else {
            panic!("must scale")
        };
        assert!(k_eager > k_lazy, "eager {k_eager} vs lazy {k_lazy}");
        assert_eq!(k_eager, 2);
    }

    #[test]
    fn eq4_matches_hand_computation() {
        // N=4 (400 GB), l=470, history window s=3 with l_{i-3}=350:
        // Δ = 40, p = 3: k = ceil((70 + 120)/100) = 2.
        let mut pv = provisioner(3, 3);
        for l in [350.0, 390.0, 430.0] {
            pv.observe(l);
        }
        assert_eq!(pv.decide(4, 470.0), ProvisionDecision::ScaleOut { add_nodes: 2 });
    }

    #[test]
    fn short_history_shrinks_the_window() {
        let mut pv = provisioner(4, 1);
        pv.observe(100.0);
        // Only one sample: Δ = (260 - 100) / 1
        assert!((pv.derivative(260.0) - 160.0).abs() < 1e-12);
        // No history at all: Δ = the incoming load
        let fresh = provisioner(4, 1);
        assert!((fresh.derivative(50.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn trigger_derates_capacity() {
        let mut pv = StaircaseProvisioner::new(StaircaseConfig {
            node_capacity_gb: 100.0,
            samples: 1,
            plan_ahead: 0,
            trigger: 0.8,
            shrink_margin: 0.0,
        });
        pv.observe(150.0);
        // 2 nodes * 100 GB * 0.8 = 160 GB effective capacity.
        assert!(matches!(pv.decide(2, 170.0), ProvisionDecision::ScaleOut { .. }));
        assert_eq!(pv.decide(2, 155.0), ProvisionDecision::Stay);
    }

    #[test]
    fn heterogeneous_capacities_sum_into_the_proportional_term() {
        let mut pv = provisioner(1, 0);
        pv.observe(100.0);
        // 50 + 150 + 100 = 300 GB of mixed capacity.
        let caps = vec![50.0, 150.0, 100.0];
        assert_eq!(pv.decide_heterogeneous(&caps, 100.0, 290.0), ProvisionDecision::Stay);
        // 310 GB demand: 10 GB over; new nodes come in 25 GB units ->
        // ceil((10 + 0)/25) = 1.
        assert_eq!(
            pv.decide_heterogeneous(&caps, 25.0, 310.0),
            ProvisionDecision::ScaleOut { add_nodes: 1 }
        );
        // Big deficit with small new nodes: ceil(60/25) = 3.
        assert_eq!(
            pv.decide_heterogeneous(&caps, 25.0, 360.0),
            ProvisionDecision::ScaleOut { add_nodes: 3 }
        );
    }

    #[test]
    fn homogeneous_decide_matches_heterogeneous_equivalent() {
        let mut pv = provisioner(2, 3);
        for l in [350.0, 390.0, 430.0] {
            pv.observe(l);
        }
        let direct = pv.decide(4, 470.0);
        let via_hetero = pv.decide_heterogeneous(&[100.0; 4], 100.0, 470.0);
        assert_eq!(direct, via_hetero);
    }

    #[test]
    fn climb_only_staircase_never_asks_to_shrink() {
        // shrink_margin = 0.0 is the paper's monotone staircase.
        let mut pv = provisioner(2, 3);
        for l in [100.0, 90.0, 80.0] {
            pv.observe(l);
        }
        assert_eq!(pv.decide(4, 70.0), ProvisionDecision::Stay);
    }

    #[test]
    fn demand_trough_releases_tail_nodes() {
        let mut pv = shrinker(2, 0, 0.75);
        for l in [90.0, 80.0] {
            pv.observe(l);
        }
        // 4 nodes, load 70: 300·0.75 = 225, 200·0.75 = 150, 100·0.75 = 75
        // all cover it, and the one-node floor stops the walk there.
        assert_eq!(pv.decide(4, 70.0), ProvisionDecision::ScaleIn { remove_nodes: 3 });
        // Load 80 busts the one-node band (75): only two go.
        assert_eq!(pv.decide(4, 80.0), ProvisionDecision::ScaleIn { remove_nodes: 2 });
    }

    /// The satellite boundary: a load sitting exactly at capacity is
    /// "full", not "over" — so a shrink that lands demand on the
    /// surviving capacity can never flap straight back into a ScaleOut.
    #[test]
    fn shrink_never_retriggers_scale_out() {
        let mut pv = shrinker(1, 0, 0.75);
        pv.observe(70.0);
        let ProvisionDecision::ScaleIn { remove_nodes } = pv.decide(4, 70.0) else {
            panic!("the trough must shrink")
        };
        let survivors = 4 - remove_nodes;
        assert!(
            !matches!(pv.decide(survivors, 70.0), ProvisionDecision::ScaleOut { .. }),
            "re-deciding on the shrunken cluster must not add nodes back"
        );
        // Exactly at capacity: Stay. One notch over: ScaleOut.
        assert_eq!(pv.decide(1, 100.0), ProvisionDecision::Stay);
        assert!(matches!(pv.decide(1, 100.1), ProvisionDecision::ScaleOut { .. }));
    }

    #[test]
    fn growth_projection_suppresses_the_shrink() {
        // Same low load; the steep climber projects l + p·Δ over the
        // shrunken band and keeps its nodes, the flat twin lets go.
        let mut climbing = shrinker(1, 3, 0.75);
        climbing.observe(40.0); // Δ = 30, projected = 70 + 90 = 160
        assert_eq!(climbing.decide(2, 70.0), ProvisionDecision::Stay);
        let mut flat = shrinker(1, 3, 0.75);
        flat.observe(70.0); // Δ = 0, projected = 70 ≤ 100·0.75
        assert_eq!(flat.decide(2, 70.0), ProvisionDecision::ScaleIn { remove_nodes: 1 });
    }

    #[test]
    fn heterogeneous_shrink_releases_from_the_tail() {
        let mut pv = shrinker(1, 0, 0.5);
        pv.observe(100.0);
        // Tail-first: dropping the two 50 GB nodes leaves 200·0.5 = 100,
        // which still covers the load (boundary inclusive); the 200 GB
        // head node is the one-node floor.
        assert_eq!(
            pv.decide_heterogeneous(&[200.0, 50.0, 50.0], 100.0, 100.0),
            ProvisionDecision::ScaleIn { remove_nodes: 2 }
        );
    }

    #[test]
    fn scale_in_never_releases_the_last_node() {
        let mut pv = shrinker(1, 0, 0.9);
        pv.observe(0.0);
        // Zero demand on a single node: nothing to release.
        assert_eq!(pv.decide(1, 0.0), ProvisionDecision::Stay);
    }
}
