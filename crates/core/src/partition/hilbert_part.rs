//! Hilbert Curve partitioner (paper §4.2).
//!
//! Chunks are serialized along a Hilbert space-filling curve over chunk
//! space, and each node owns one contiguous range of curve positions.
//! When the cluster scales out, the most heavily loaded node splits its
//! range at the **byte-weighted median** of its resident chunks — a
//! chunk-granularity, skew-aware split that keeps curve (and therefore
//! spatial) neighbours together.

use super::{GridHint, Partitioner, PartitionerKind, RouteEpoch};
use array_model::{ChunkDescriptor, ChunkKey, HilbertOrder};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// Hilbert-range partitioner state.
#[derive(Debug, Clone)]
pub struct HilbertCurve {
    order: HilbertOrder,
    /// Which chunk dimensions feed the curve (see [`GridHint::curve_dims`]).
    curve_dims: Vec<usize>,
    /// Ascending interior split points; range `i` is
    /// `[boundaries[i-1], boundaries[i])` over the curve index space.
    boundaries: Vec<u128>,
    /// Owner of each range; `owners.len() == boundaries.len() + 1`.
    owners: Vec<NodeId>,
}

impl HilbertCurve {
    /// Build for the initial nodes, splitting the curve index space into
    /// equal ranges (data-independent — no data has arrived yet).
    pub fn new(nodes: &[NodeId], grid: &GridHint) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let extents: Vec<u64> =
            grid.curve_dims.iter().map(|&d| grid.chunk_counts[d] as u64).collect();
        let order = HilbertOrder::from_extents(&extents);
        let space = order.index_space();
        let n = nodes.len() as u128;
        let boundaries: Vec<u128> = (1..nodes.len() as u128).map(|i| i * (space / n)).collect();
        HilbertCurve {
            order,
            curve_dims: grid.curve_dims.clone(),
            boundaries,
            owners: nodes.to_vec(),
        }
    }

    fn range_of(&self, index: u128) -> usize {
        self.boundaries.partition_point(|&b| b <= index)
    }

    fn owner_of_index(&self, index: u128) -> NodeId {
        self.owners[self.range_of(index)]
    }

    /// The curve index of a chunk key: its curve-dimension coordinates
    /// serialized along the Hilbert curve. Chunks at the same curve
    /// position (e.g. one lon/lat cell across time) share an index, so
    /// they stay co-located. Allocation-free: the projection is built
    /// inline.
    fn index_of(&self, key: &ChunkKey) -> u128 {
        let mut projected = array_model::ChunkCoords::zeros(self.curve_dims.len());
        for (slot, &d) in projected.as_mut_slice().iter_mut().zip(&self.curve_dims) {
            *slot = key.coords.index(d);
        }
        self.order.index_of(&projected)
    }

    /// Range bounds `[lo, hi)` of the range at position `pos`.
    fn range_bounds(&self, pos: usize) -> (u128, u128) {
        let lo = if pos == 0 { 0 } else { self.boundaries[pos - 1] };
        let hi = if pos == self.boundaries.len() {
            self.order.index_space()
        } else {
            self.boundaries[pos]
        };
        (lo, hi)
    }

    /// Number of ranges (== node count). Exposed for tests.
    pub fn range_count(&self) -> usize {
        self.owners.len()
    }
}

impl Partitioner for HilbertCurve {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::HilbertCurve
    }

    fn table_snapshot(&self) -> Vec<u8> {
        // Order and curve dims are config-derived; the range table
        // (boundaries + owners) mutates at every split.
        let mut w = durability::ByteWriter::new();
        w.put_usize(self.boundaries.len());
        for &b in &self.boundaries {
            w.put_u128(b);
        }
        super::put_nodes(&mut w, &self.owners);
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        let n = r.usize("hilbert boundary count")?;
        let mut boundaries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            boundaries.push(r.u128("hilbert boundary")?);
        }
        let owners = super::read_nodes(&mut r, "hilbert owners")?;
        if owners.len() != boundaries.len() + 1 {
            return Err(durability::CodecError::Invalid {
                context: "hilbert owners",
                detail: format!(
                    "{} owners for {} boundaries (want boundaries + 1)",
                    owners.len(),
                    boundaries.len()
                ),
            });
        }
        self.boundaries = boundaries;
        self.owners = owners;
        r.finish("hilbert snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, _ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        self.owner_of_index(self.index_of(&desc.key))
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        Some(self.owner_of_index(self.index_of(key)))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        let mut plan = RebalancePlan::empty();
        let mut loads: BTreeMap<NodeId, u64> =
            cluster.nodes().map(|n| (n.id, n.used_bytes())).collect();
        for &fresh in new_nodes {
            // Skew-aware: split the most heavily loaded preexisting node.
            let victim = *loads
                .iter()
                .filter(|(n, _)| !new_nodes.contains(n))
                .max_by(|a, b| a.1.cmp(b.1).then(b.0 .0.cmp(&a.0 .0)))
                .expect("cluster has preexisting nodes")
                .0;
            let pos = self
                .owners
                .iter()
                .position(|&o| o == victim)
                .expect("every node owns exactly one range");
            let (lo, hi) = self.range_bounds(pos);

            // Victim's chunks, netted against moves already planned in
            // this scale-out, sorted along the curve.
            let moved_keys: std::collections::HashSet<&ChunkKey> =
                plan.moves.iter().map(|m| &m.key).collect();
            let mut resident: Vec<(u128, u64, ChunkKey)> = cluster
                .node(victim)
                .ok()
                .map(|node| {
                    node.descriptors()
                        .filter(|d| !moved_keys.contains(&d.key))
                        .map(|d| (self.index_of(&d.key), d.bytes, d.key))
                        .collect()
                })
                .unwrap_or_default();
            resident.sort();

            // Byte-weighted median over the curve order. The split must be
            // strictly above the first resident index so at least one chunk
            // stays with the victim.
            let total: u64 = resident.iter().map(|(_, b, _)| *b).sum();
            let mut split = None;
            if total > 0 && resident.len() >= 2 {
                let first = resident[0].0;
                let mut acc = 0u64;
                for (idx, bytes, _) in &resident {
                    if acc * 2 >= total && *idx > first {
                        split = Some(*idx);
                        break;
                    }
                    acc += bytes;
                }
                if split.is_none() {
                    // Weight concentrated at the tail (or duplicate indices):
                    // split before the last distinct curve position.
                    split = resident.iter().rev().map(|(i, _, _)| *i).find(|&i| i > first);
                }
            }
            // Fall back to the index-space midpoint when the victim holds
            // too little data to compute a meaningful median.
            let split = match split {
                Some(s) => s,
                None => {
                    if hi - lo < 2 {
                        // Range cannot be subdivided further; skip this node.
                        continue;
                    }
                    lo + (hi - lo) / 2
                }
            };
            debug_assert!(split > lo && split < hi);

            // Insert the new range: victim keeps [lo, split), fresh node
            // takes [split, hi).
            self.boundaries.insert(pos, split);
            self.owners.insert(pos + 1, fresh);

            let mut moved = 0u64;
            for (idx, bytes, key) in resident {
                if idx >= split {
                    plan.push(key, victim, fresh, bytes);
                    moved += bytes;
                }
            }
            *loads.entry(victim).or_default() -= moved;
            *loads.entry(fresh).or_default() += moved;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn grid() -> GridHint {
        GridHint::new(vec![16, 16])
    }

    fn desc(x: i64, y: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y])), bytes, 1)
    }

    fn insert_grid(p: &mut HilbertCurve, cluster: &mut Cluster, weight: impl Fn(i64, i64) -> u64) {
        for x in 0..16 {
            for y in 0..16 {
                let d = desc(x, y, weight(x, y));
                let n = p.place(&d, cluster);
                cluster.place(d, n).unwrap();
            }
        }
    }

    #[test]
    fn initial_ranges_cover_space() {
        let cluster = Cluster::new(3, u64::MAX, CostModel::default()).unwrap();
        let p = HilbertCurve::new(&cluster.node_ids(), &grid());
        assert_eq!(p.range_count(), 3);
        // Every corner of the grid must resolve to some node.
        for (x, y) in [(0i64, 0i64), (15, 0), (0, 15), (15, 15)] {
            let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y]));
            assert!(p.locate(&key).is_some());
        }
    }

    #[test]
    fn point_skew_split_moves_half_the_bytes() {
        // All the weight sits in one corner (point skew, like AIS ports).
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = HilbertCurve::new(&cluster.node_ids(), &grid());
        insert_grid(&mut p, &mut cluster, |x, y| if x < 4 && y < 4 { 1000 } else { 1 });
        let before = cluster.loads();
        let heavy = if before[0] >= before[1] { 0usize } else { 1 };
        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_incremental(&new));
        cluster.apply_rebalance(&plan).unwrap();
        let after = cluster.loads();
        // The heavy node shed a substantial share of its bytes.
        let shed = before[heavy] - after[heavy];
        let frac = shed as f64 / before[heavy] as f64;
        assert!(frac > 0.25 && frac < 0.75, "shed fraction {frac}");
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }

    #[test]
    fn ranges_preserve_curve_contiguity() {
        // Chunks on the same node must form a contiguous run of curve
        // indices — the property that makes the scheme spatially clustered.
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = HilbertCurve::new(&cluster.node_ids(), &grid());
        insert_grid(&mut p, &mut cluster, |_, _| 10);
        let new = cluster.add_nodes(2, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        cluster.apply_rebalance(&plan).unwrap();

        let mut assignments: Vec<(u128, NodeId)> =
            cluster.placements().map(|(k, n)| (p.index_of(&k), n)).collect();
        assignments.sort();
        let mut seen = Vec::new();
        for (_, n) in assignments {
            if seen.last() != Some(&n) {
                assert!(!seen.contains(&n), "node {n} owns non-contiguous curve ranges");
                seen.push(n);
            }
        }
    }

    #[test]
    fn empty_victim_splits_at_midpoint_without_moves() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = HilbertCurve::new(&cluster.node_ids(), &grid());
        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_empty());
        assert_eq!(p.range_count(), 3);
    }

    #[test]
    fn two_bands_colocate_join_partners() {
        // Two arrays with identical chunk coords land on the same node —
        // the property the MODIS vegetation-index join relies on.
        let cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let p = HilbertCurve::new(&cluster.node_ids(), &grid());
        for x in 0..16 {
            for y in 0..16 {
                let a = ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y]));
                let b = ChunkKey::new(ArrayId(1), ChunkCoords::new([x, y]));
                assert_eq!(p.locate(&a), p.locate(&b));
            }
        }
    }
}
