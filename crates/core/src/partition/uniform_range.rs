//! Uniform Range partitioner (paper §4.2).
//!
//! A tall, *static* balanced binary tree of height `h` subdivides the
//! chunk grid into `l = 2^h` leaf regions, cycling dimensions and halving
//! ranges at each level. Leaves, sorted by traversal order, are assigned
//! to nodes in contiguous blocks of `l / n` — preserving n-dimensional
//! clustering with good (data-independent) balance. Scaling out
//! recomputes every leaf's block, a **global** reorganization that may
//! ship chunks between preexisting nodes.
//!
//! Because the tree never looks at the data, the scheme is brittle under
//! skew: a hot leaf cannot be subdivided further (the paper's AIS results
//! show exactly this failure mode).

use super::{GridHint, Partitioner, PartitionerKind, RouteEpoch};
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};

/// Uniform Range partitioner state.
#[derive(Debug, Clone)]
pub struct UniformRange {
    grid: GridHint,
    height: u32,
    nodes: Vec<NodeId>,
}

impl UniformRange {
    /// Build with `l = 2^height` leaves over `grid` for the initial nodes.
    pub fn new(nodes: &[NodeId], grid: &GridHint, height: u32) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!((1..32).contains(&height), "height must be in [1, 32)");
        UniformRange { grid: grid.clone(), height, nodes: nodes.to_vec() }
    }

    /// Number of leaves `l`.
    pub fn leaf_count(&self) -> u64 {
        1u64 << self.height
    }

    /// Leaf index of a chunk coordinate: descend the implicit balanced
    /// tree, halving the active range on the cycling dimension at each
    /// level. Leaf indices accumulate the descent bits, so consecutive
    /// leaf indices are traversal-order neighbours in array space.
    fn leaf_of(&self, coords: &[i64]) -> u64 {
        // Stack scratch: the active range per dimension. Allocation-free —
        // this runs once per placed chunk.
        let ndims = self.grid.ndims();
        debug_assert!(ndims <= array_model::MAX_DIMS);
        let mut lo = [0i64; array_model::MAX_DIMS];
        let mut hi = [0i64; array_model::MAX_DIMS];
        hi[..ndims].copy_from_slice(&self.grid.chunk_counts);
        let mut leaf: u64 = 0;
        for depth in 0..self.height {
            let dim = self.grid.split_dim(depth as usize);
            let mid = lo[dim] + (hi[dim] - lo[dim]) / 2;
            // Clamp out-of-hint coordinates into the rightmost leaf.
            let c = coords[dim].clamp(lo[dim], hi[dim].max(lo[dim] + 1) - 1);
            // Degenerate (width-1) ranges always descend left, keeping the
            // leaf numbering stable.
            if hi[dim] - lo[dim] >= 2 && c >= mid {
                leaf = (leaf << 1) | 1;
                lo[dim] = mid;
            } else {
                leaf <<= 1;
                hi[dim] = mid.max(lo[dim] + 1);
            }
        }
        leaf
    }

    /// The node owning leaf `leaf` under the current roster: contiguous
    /// blocks of `l / n` leaves per node.
    fn node_of_leaf(&self, leaf: u64) -> NodeId {
        let l = self.leaf_count();
        let n = self.nodes.len() as u64;
        // floor(leaf * n / l) yields n contiguous blocks of near-equal size.
        let idx = (u128::from(leaf) * u128::from(n) / u128::from(l)) as usize;
        self.nodes[idx.min(self.nodes.len() - 1)]
    }

    fn home(&self, key: &ChunkKey) -> NodeId {
        self.node_of_leaf(self.leaf_of(key.coords.as_slice()))
    }
}

impl Partitioner for UniformRange {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::UniformRange
    }

    fn table_snapshot(&self) -> Vec<u8> {
        // Grid and height come from config; only the roster (which grows
        // at every scale-out) is data-dependent.
        let mut w = durability::ByteWriter::new();
        super::put_nodes(&mut w, &self.nodes);
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        self.nodes = super::read_nodes(&mut r, "uniform range nodes")?;
        if self.nodes.is_empty() {
            return Err(durability::CodecError::Invalid {
                context: "uniform range nodes",
                detail: "empty node roster".to_string(),
            });
        }
        r.finish("uniform range snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, _ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        self.home(&desc.key)
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        Some(self.home(key))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        self.nodes.extend_from_slice(new_nodes);
        // Linear pass over the leaves via the resident chunks: every chunk
        // whose leaf block changed owner moves (possibly old -> old).
        let mut plan = RebalancePlan::empty();
        for (key, current) in cluster.placements() {
            let target = self.home(&key);
            if target != current {
                let bytes = cluster
                    .node(current)
                    .expect("placement points at live node")
                    .descriptor(&key)
                    .expect("placement is authoritative")
                    .bytes;
                plan.push(key, current, target, bytes);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::{relative_std_dev, CostModel};

    fn grid() -> GridHint {
        GridHint::new(vec![16, 16])
    }

    fn desc(x: i64, y: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y])), bytes, 1)
    }

    fn insert_grid(p: &mut UniformRange, cluster: &mut Cluster, weight: impl Fn(i64, i64) -> u64) {
        for x in 0..16 {
            for y in 0..16 {
                let d = desc(x, y, weight(x, y));
                let n = p.place(&d, cluster);
                cluster.place(d, n).unwrap();
            }
        }
    }

    #[test]
    fn uniform_data_balances_well() {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let mut p = UniformRange::new(&cluster.node_ids(), &grid(), 8);
        insert_grid(&mut p, &mut cluster, |_, _| 10);
        let rsd = relative_std_dev(&cluster.loads());
        assert!(rsd < 0.05, "uniform range should balance uniform data: {rsd}");
    }

    #[test]
    fn skewed_data_breaks_it() {
        // The paper's AIS finding: a hot corner overloads one block.
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let mut p = UniformRange::new(&cluster.node_ids(), &grid(), 8);
        insert_grid(&mut p, &mut cluster, |x, y| if x < 4 && y < 4 { 1000 } else { 1 });
        let rsd = relative_std_dev(&cluster.loads());
        assert!(rsd > 0.5, "skew should show up as imbalance: {rsd}");
    }

    #[test]
    fn scale_out_is_global_and_rebalances() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = UniformRange::new(&cluster.node_ids(), &grid(), 8);
        insert_grid(&mut p, &mut cluster, |_, _| 10);
        let new = cluster.add_nodes(2, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(!plan.is_incremental(&new), "uniform range reshuffles globally");
        cluster.apply_rebalance(&plan).unwrap();
        let rsd = relative_std_dev(&cluster.loads());
        assert!(rsd < 0.05, "rebalance restores uniform balance: {rsd}");
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }

    #[test]
    fn leaves_cluster_dimension_space() {
        // Chunks in the same small spatial box should mostly share a node
        // when blocks are large (few nodes).
        let cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let p = UniformRange::new(&cluster.node_ids(), &grid(), 8);
        let owner = |x: i64, y: i64| p.locate(&desc(x, y, 0).key).unwrap();
        // The left half of x-space is one node, the right half the other
        // (first split cycles dim 0).
        assert_eq!(owner(0, 0), owner(3, 9));
        assert_ne!(owner(0, 0), owner(15, 0));
    }

    #[test]
    fn higher_trees_balance_more_finely() {
        // 3 nodes on a 2^h tree: rounding imbalance shrinks as h grows.
        let imbalance = |h: u32| {
            let mut cluster = Cluster::new(3, u64::MAX, CostModel::default()).unwrap();
            let mut p = UniformRange::new(&cluster.node_ids(), &grid(), h);
            insert_grid(&mut p, &mut cluster, |_, _| 10);
            relative_std_dev(&cluster.loads())
        };
        assert!(imbalance(8) <= imbalance(2) + 1e-9);
    }

    #[test]
    fn out_of_hint_coordinates_clamp() {
        let cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let p = UniformRange::new(&cluster.node_ids(), &grid(), 8);
        // Far beyond the 16-chunk hint: must still resolve deterministically.
        let far = ChunkKey::new(ArrayId(0), ChunkCoords::new([1000, 1000]));
        assert!(p.locate(&far).is_some());
    }
}
