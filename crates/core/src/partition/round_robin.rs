//! Round Robin: the paper's baseline (§6.1).
//!
//! Chunk `i` (by arrival order) lives on node `i mod k`. Every node gets
//! an equal share of chunks, but scale-out changes `k` and therefore the
//! home of most chunks — a *global* reorganization that may ship data
//! between preexisting nodes.
//!
//! Routing is order-sensitive but pure: the chunk's batch ordinal plus
//! the table's sequence counter determine its home, so many threads can
//! route one batch concurrently; [`Partitioner::commit`] then advances
//! the counter and records the sequence numbers.

use super::{Partitioner, PartitionerKind, RouteEpoch};
use crate::partition::seq_index::SeqIndex;
use crate::partition::GridHint;
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};

/// Round Robin partitioner state.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    nodes: Vec<NodeId>,
    next_seq: u64,
    /// Sequence number of every placed chunk: dense per-array grids with
    /// hash spill, O(1) on the hot path.
    seq_of: SeqIndex,
}

impl RoundRobin {
    /// Build for the cluster's initial nodes; `grid` sizes the dense
    /// sequence index.
    pub fn new(nodes: &[NodeId], grid: &GridHint) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        RoundRobin { nodes: nodes.to_vec(), next_seq: 0, seq_of: SeqIndex::new(&grid.chunk_counts) }
    }

    fn home(&self, seq: u64) -> NodeId {
        self.nodes[(seq % self.nodes.len() as u64) as usize]
    }
}

impl Partitioner for RoundRobin {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::RoundRobin
    }

    fn table_snapshot(&self) -> Vec<u8> {
        let mut w = durability::ByteWriter::new();
        super::put_nodes(&mut w, &self.nodes);
        w.put_u64(self.next_seq);
        self.seq_of.snapshot_into(&mut w);
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        self.nodes = super::read_nodes(&mut r, "round robin nodes")?;
        self.next_seq = r.u64("round robin next seq")?;
        self.seq_of.restore_from(&mut r)?;
        r.finish("round robin snapshot tail")
    }

    fn route(&self, _desc: &ChunkDescriptor, ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        self.home(self.next_seq + ordinal as u64)
    }

    fn commit(&mut self, batch: &[ChunkDescriptor], _routes: &[NodeId]) {
        for desc in batch {
            self.seq_of.insert(desc.key, self.next_seq);
            self.next_seq += 1;
        }
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        self.seq_of.get(key).map(|seq| self.home(seq))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        self.nodes.extend_from_slice(new_nodes);
        // Recompute i mod k for every resident chunk; emit the diff.
        let mut plan = RebalancePlan::empty();
        for (key, current) in cluster.placements() {
            let seq = self.seq_of.get(&key).expect("round robin saw every placement");
            let target = self.home(seq);
            if target != current {
                let bytes = cluster
                    .node(current)
                    .expect("placement points at live node")
                    .descriptor(&key)
                    .expect("placement is authoritative")
                    .bytes;
                plan.push(key, current, target, bytes);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn grid() -> GridHint {
        GridHint::new(vec![64])
    }

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn run(p: &mut RoundRobin, cluster: &mut Cluster, start: i64, count: i64, bytes: u64) {
        for i in start..start + count {
            let d = desc(i, bytes);
            let n = p.place(&d, cluster);
            cluster.place(d, n).unwrap();
        }
    }

    #[test]
    fn equal_chunk_counts() {
        let mut cluster = Cluster::new(4, 1000, CostModel::default()).unwrap();
        let mut p = RoundRobin::new(&cluster.node_ids(), &grid());
        run(&mut p, &mut cluster, 0, 20, 10);
        assert_eq!(cluster.chunk_counts(), vec![5, 5, 5, 5]);
    }

    #[test]
    fn scale_out_is_global() {
        let mut cluster = Cluster::new(2, 1000, CostModel::default()).unwrap();
        let mut p = RoundRobin::new(&cluster.node_ids(), &grid());
        run(&mut p, &mut cluster, 0, 12, 10);
        let new = cluster.add_nodes(1, 1000);
        let plan = p.scale_out(&cluster, &new);
        // chunks keep home only when i mod 2 == i mod 3, i.e. i mod 6 in {0,1}:
        // 4 of 12 stay, 8 move.
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_incremental(&new), "round robin reshuffles globally");
        cluster.apply_rebalance(&plan).unwrap();
        assert_eq!(cluster.chunk_counts(), vec![4, 4, 4]);
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }

    #[test]
    fn locate_tracks_reassignment() {
        let mut cluster = Cluster::new(2, 1000, CostModel::default()).unwrap();
        let mut p = RoundRobin::new(&cluster.node_ids(), &grid());
        run(&mut p, &mut cluster, 0, 6, 10);
        let before = p.locate(&desc(3, 0).key).unwrap();
        assert_eq!(before, NodeId(1)); // 3 mod 2
        let new = cluster.add_nodes(2, 1000);
        let plan = p.scale_out(&cluster, &new);
        cluster.apply_rebalance(&plan).unwrap();
        assert_eq!(p.locate(&desc(3, 0).key), Some(NodeId(3))); // 3 mod 4
    }

    #[test]
    fn batch_ordinals_continue_the_sequence() {
        // Routing a batch against one epoch must produce the same homes
        // as placing its chunks one at a time.
        let cluster = Cluster::new(3, 1000, CostModel::default()).unwrap();
        let mut a = RoundRobin::new(&cluster.node_ids(), &grid());
        let mut b = RoundRobin::new(&cluster.node_ids(), &grid());
        let batch: Vec<ChunkDescriptor> = (0..10).map(|i| desc(i, 10)).collect();
        let epoch = RouteEpoch::single(&cluster);
        let routes: Vec<NodeId> =
            batch.iter().enumerate().map(|(i, d)| a.route(d, i, &epoch)).collect();
        a.commit(&batch, &routes);
        let singles: Vec<NodeId> = batch.iter().map(|d| b.place(d, &cluster)).collect();
        assert_eq!(routes, singles);
        // And a second batch continues where the first stopped.
        assert_eq!(a.route(&desc(10, 1), 0, &epoch), b.place(&desc(10, 1), &cluster));
    }
}
