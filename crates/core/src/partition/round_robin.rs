//! Round Robin: the paper's baseline (§6.1).
//!
//! Chunk `i` (by arrival order) lives on node `i mod k`. Every node gets
//! an equal share of chunks, but scale-out changes `k` and therefore the
//! home of most chunks — a *global* reorganization that may ship data
//! between preexisting nodes.

use super::{Partitioner, PartitionerKind};
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// Round Robin partitioner state.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    nodes: Vec<NodeId>,
    next_seq: u64,
    seq_of: BTreeMap<ChunkKey, u64>,
}

impl RoundRobin {
    /// Build for the cluster's initial nodes.
    pub fn new(nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        RoundRobin { nodes: nodes.to_vec(), next_seq: 0, seq_of: BTreeMap::new() }
    }

    fn home(&self, seq: u64) -> NodeId {
        self.nodes[(seq % self.nodes.len() as u64) as usize]
    }
}

impl Partitioner for RoundRobin {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::RoundRobin
    }

    fn place(&mut self, desc: &ChunkDescriptor, _cluster: &Cluster) -> NodeId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_of.insert(desc.key, seq);
        self.home(seq)
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        self.seq_of.get(key).map(|&seq| self.home(seq))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        self.nodes.extend_from_slice(new_nodes);
        // Recompute i mod k for every resident chunk; emit the diff.
        let mut plan = RebalancePlan::empty();
        for (key, current) in cluster.placements() {
            let seq = *self.seq_of.get(&key).expect("round robin saw every placement");
            let target = self.home(seq);
            if target != current {
                let bytes = cluster
                    .node(current)
                    .expect("placement points at live node")
                    .descriptor(&key)
                    .expect("placement is authoritative")
                    .bytes;
                plan.push(key, current, target, bytes);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn run(p: &mut RoundRobin, cluster: &mut Cluster, start: i64, count: i64, bytes: u64) {
        for i in start..start + count {
            let d = desc(i, bytes);
            let n = p.place(&d, cluster);
            cluster.place(d, n).unwrap();
        }
    }

    #[test]
    fn equal_chunk_counts() {
        let mut cluster = Cluster::new(4, 1000, CostModel::default()).unwrap();
        let mut p = RoundRobin::new(&cluster.node_ids());
        run(&mut p, &mut cluster, 0, 20, 10);
        assert_eq!(cluster.chunk_counts(), vec![5, 5, 5, 5]);
    }

    #[test]
    fn scale_out_is_global() {
        let mut cluster = Cluster::new(2, 1000, CostModel::default()).unwrap();
        let mut p = RoundRobin::new(&cluster.node_ids());
        run(&mut p, &mut cluster, 0, 12, 10);
        let new = cluster.add_nodes(1, 1000);
        let plan = p.scale_out(&cluster, &new);
        // chunks keep home only when i mod 2 == i mod 3, i.e. i mod 6 in {0,1}:
        // 4 of 12 stay, 8 move.
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_incremental(&new), "round robin reshuffles globally");
        cluster.apply_rebalance(&plan).unwrap();
        assert_eq!(cluster.chunk_counts(), vec![4, 4, 4]);
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }

    #[test]
    fn locate_tracks_reassignment() {
        let mut cluster = Cluster::new(2, 1000, CostModel::default()).unwrap();
        let mut p = RoundRobin::new(&cluster.node_ids());
        run(&mut p, &mut cluster, 0, 6, 10);
        let before = p.locate(&desc(3, 0).key).unwrap();
        assert_eq!(before, NodeId(1)); // 3 mod 2
        let new = cluster.add_nodes(2, 1000);
        let plan = p.scale_out(&cluster, &new);
        cluster.apply_rebalance(&plan).unwrap();
        assert_eq!(p.locate(&desc(3, 0).key), Some(NodeId(3))); // 3 mod 4
    }
}
