//! Elastic partitioners for scientific arrays (paper §4).
//!
//! A [`Partitioner`] owns the chunk→node assignment policy for a growing
//! cluster. Placement is split into two phases so batches can be routed
//! from many threads:
//!
//! * **routing** — [`Partitioner::route`] is read-only (`&self`, and the
//!   trait requires `Send + Sync`): it answers "which node?" for one chunk
//!   against an **epoch snapshot** of the partitioning table and the
//!   cluster ([`RouteEpoch`]). Within a batch, every chunk routes against
//!   the same epoch; order-sensitive schemes receive the chunk's batch
//!   `ordinal` and the epoch's byte prefix sums instead of observing live
//!   state.
//! * **commit** — [`Partitioner::commit`] applies the batch's table
//!   mutations (sequence-map inserts, cursor advances) sequentially, once
//!   the cluster has durably placed the batch. Table-structural changes
//!   (tree splits, directory doublings, ring arcs) only ever happen in
//!   [`Partitioner::scale_out`], which remains sequential.
//!
//! The single-chunk driver protocol still works — [`Partitioner::place`]
//! is a provided method that routes a one-chunk epoch and commits it
//! immediately:
//!
//! 1. for each incoming chunk: `let node = p.place(&desc, &cluster);`
//!    followed immediately by `cluster.place(desc, node)`;
//! 2. when the cluster scales out: `cluster.add_nodes(..)`, then
//!    `let plan = p.scale_out(&cluster, &new_nodes);` followed by
//!    `cluster.apply_rebalance(&plan)`.
//!
//! Batch drivers instead call [`route_batch`] (optionally fanning routing
//! across threads), then `Cluster::place_batch`, then
//! [`Partitioner::commit`].
//!
//! [`Partitioner::locate`] answers chunk lookups from the partitioner's own
//! table (ring walk, directory probe, tree descent, ...) and must agree
//! with the cluster's placement map at all times — the test suites assert
//! this invariant for every scheme.

mod append;
mod consistent_hash;
mod extendible_hash;
mod hilbert_part;
mod kdtree;
mod quadtree;
mod round_robin;
mod seq_index;
mod uniform_range;

pub use append::Append;
pub use consistent_hash::ConsistentHash;
pub use extendible_hash::ExtendibleHash;
pub use hilbert_part::HilbertCurve;
pub use kdtree::KdTree;
pub use quadtree::IncrementalQuadtree;
pub use round_robin::RoundRobin;
pub use uniform_range::UniformRange;

use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four traits of elastic data placement (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionerFeatures {
    /// Scale-out only transfers data from preexisting nodes to new ones.
    pub incremental_scale_out: bool,
    /// Assigns one chunk at a time rather than subdividing planes.
    pub fine_grained: bool,
    /// Uses the observed data distribution to drive repartitioning.
    pub skew_aware: bool,
    /// Keeps contiguous array regions on the same host.
    pub n_dimensional_clustering: bool,
}

/// Which partitioning scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PartitionerKind {
    /// Spill-over range partitioning by insert order.
    Append,
    /// Consistent hashing on a ring of virtual nodes.
    ConsistentHash,
    /// Extendible hashing with bit-suffix buckets.
    ExtendibleHash,
    /// Ranges over the Hilbert space-filling curve.
    HilbertCurve,
    /// The incremental quadtree of §4.2.
    IncrementalQuadtree,
    /// K-d tree with byte-weighted median splits.
    KdTree,
    /// The paper's baseline: chunk i → node i mod k.
    RoundRobin,
    /// Static tall binary tree with l/n leaf blocks.
    UniformRange,
}

impl PartitionerKind {
    /// All schemes, in the order the paper's figures list them.
    pub const ALL: [PartitionerKind; 8] = [
        PartitionerKind::Append,
        PartitionerKind::ConsistentHash,
        PartitionerKind::ExtendibleHash,
        PartitionerKind::HilbertCurve,
        PartitionerKind::IncrementalQuadtree,
        PartitionerKind::KdTree,
        PartitionerKind::RoundRobin,
        PartitionerKind::UniformRange,
    ];

    /// Table 1's feature matrix.
    pub fn features(self) -> PartitionerFeatures {
        use PartitionerKind::*;
        match self {
            Append => PartitionerFeatures {
                incremental_scale_out: true,
                fine_grained: true,
                skew_aware: false,
                n_dimensional_clustering: false,
            },
            ConsistentHash => PartitionerFeatures {
                incremental_scale_out: true,
                fine_grained: true,
                skew_aware: false,
                n_dimensional_clustering: false,
            },
            ExtendibleHash => PartitionerFeatures {
                incremental_scale_out: true,
                fine_grained: true,
                skew_aware: true,
                n_dimensional_clustering: false,
            },
            HilbertCurve => PartitionerFeatures {
                incremental_scale_out: true,
                fine_grained: true,
                skew_aware: true,
                n_dimensional_clustering: true,
            },
            IncrementalQuadtree => PartitionerFeatures {
                incremental_scale_out: true,
                fine_grained: false,
                skew_aware: true,
                n_dimensional_clustering: true,
            },
            KdTree => PartitionerFeatures {
                incremental_scale_out: true,
                fine_grained: false,
                skew_aware: true,
                n_dimensional_clustering: true,
            },
            RoundRobin => PartitionerFeatures {
                incremental_scale_out: false,
                fine_grained: true,
                skew_aware: false,
                n_dimensional_clustering: false,
            },
            UniformRange => PartitionerFeatures {
                incremental_scale_out: false,
                fine_grained: false,
                skew_aware: false,
                n_dimensional_clustering: true,
            },
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        use PartitionerKind::*;
        match self {
            Append => "Append",
            ConsistentHash => "Cons. Hash",
            ExtendibleHash => "Extend. Hash",
            HilbertCurve => "Hilbert Curve",
            IncrementalQuadtree => "Incr. Quadtree",
            KdTree => "K-d Tree",
            RoundRobin => "Round Robin",
            UniformRange => "Uniform Range",
        }
    }
}

impl fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Describes the chunk grid that range partitioners subdivide: the number
/// of chunks along each dimension. Unbounded dimensions supply an expected
/// extent (e.g. days of data anticipated); exceeding the hint degrades
/// balance but never correctness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridHint {
    /// Chunk count (or expected chunk count) per dimension.
    pub chunk_counts: Vec<i64>,
    /// The order in which tree-structured partitioners (K-d Tree, Uniform
    /// Range) cycle dimensions when splitting. Defaults to declaration
    /// order; workloads with an unbounded, monotonically-growing dimension
    /// (time) should list their bounded spatial dimensions first —
    /// splitting an append-only dimension at its midpoint strands every
    /// *future* insert on one side of the plane.
    pub split_priority: Vec<usize>,
    /// The dimensions the Hilbert partitioner serializes. Defaults to all
    /// dimensions; workloads with an append-only time dimension should
    /// restrict the curve to the spatial dimensions, so that every insert
    /// batch spreads across the whole curve instead of landing in the
    /// "new time" corner of the embedding cube.
    pub curve_dims: Vec<usize>,
}

impl GridHint {
    /// Build a hint; every dimension needs at least one chunk.
    pub fn new(chunk_counts: Vec<i64>) -> Self {
        assert!(!chunk_counts.is_empty(), "grid needs at least one dimension");
        assert!(chunk_counts.iter().all(|&c| c >= 1), "chunk counts must be >= 1");
        let split_priority = (0..chunk_counts.len()).collect();
        let curve_dims = (0..chunk_counts.len()).collect();
        GridHint { chunk_counts, split_priority, curve_dims }
    }

    /// Restrict the Hilbert curve to a subset of dimensions.
    pub fn with_curve_dims(mut self, dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "curve needs at least one dimension");
        assert!(dims.iter().all(|&d| d < self.chunk_counts.len()), "curve dim out of range");
        self.curve_dims = dims;
        self
    }

    /// Override the dimension-cycling order for splits. May list a
    /// *subset* of dimensions: an append-only time dimension is usually
    /// omitted, because any split plane through it strands all future
    /// inserts on one side.
    pub fn with_split_priority(mut self, priority: Vec<usize>) -> Self {
        assert!(!priority.is_empty(), "priority must list at least one dim");
        assert!(priority.iter().all(|&d| d < self.chunk_counts.len()), "priority dim out of range");
        let mut sorted = priority.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), priority.len(), "priority must not repeat dims");
        self.split_priority = priority;
        self
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.chunk_counts.len()
    }

    /// The dimension to split at tree depth `depth`.
    pub fn split_dim(&self, depth: usize) -> usize {
        self.split_priority[depth % self.split_priority.len()]
    }
}

/// Tuning knobs shared by the partitioner constructors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionerConfig {
    /// Virtual nodes per host on the consistent-hash ring.
    pub virtual_nodes: u32,
    /// Height of Uniform Range's static tree (l = 2^h leaves).
    pub uniform_height: u32,
    /// The two dimensions the quadtree quarters (defaults to the last two,
    /// which are the spatial lon/lat dims in both of the paper's schemas).
    pub quad_plane: Option<(usize, usize)>,
    /// Fraction of a node Append fills before spilling to the next.
    pub append_fill: f64,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        PartitionerConfig {
            virtual_nodes: 64,
            uniform_height: 9,
            quad_plane: None,
            append_fill: 1.0,
        }
    }
}

/// The epoch snapshot a batch routes against: the cluster at batch start
/// plus the batch's byte prefix sums.
///
/// Routing is read-only, so every thread of a fan-out shares one epoch.
/// Order-sensitive schemes (Append) reconstruct "how many bytes arrived
/// before me" from `prefix_bytes` instead of watching live node loads —
/// which makes their decisions a pure function of (table, epoch, ordinal)
/// and therefore identical whatever the thread count.
#[derive(Debug, Clone, Copy)]
pub struct RouteEpoch<'a> {
    cluster: &'a Cluster,
    /// `prefix_bytes[i]` = Σ bytes of batch chunks `0..i`. Empty for
    /// single-chunk epochs (prefix 0).
    prefix_bytes: &'a [u64],
}

impl<'a> RouteEpoch<'a> {
    /// Epoch for a single-chunk placement (prefix 0), allocation-free.
    pub fn single(cluster: &'a Cluster) -> Self {
        RouteEpoch { cluster, prefix_bytes: &[] }
    }

    /// Epoch for a whole batch; `prefix_bytes` from [`batch_prefix_bytes`].
    pub fn for_batch(cluster: &'a Cluster, prefix_bytes: &'a [u64]) -> Self {
        RouteEpoch { cluster, prefix_bytes }
    }

    /// The cluster as of the epoch (loads exclude the in-flight batch).
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// Bytes of the batch that precede `ordinal` in arrival order.
    #[inline]
    pub fn prefix_bytes(&self, ordinal: usize) -> u64 {
        self.prefix_bytes.get(ordinal).copied().unwrap_or(0)
    }
}

/// Exclusive byte prefix sums of a batch: `out[i]` = Σ `batch[0..i].bytes`.
pub fn batch_prefix_bytes(batch: &[ChunkDescriptor]) -> Vec<u64> {
    let mut acc = 0u64;
    batch
        .iter()
        .map(|d| {
            let p = acc;
            acc = acc.saturating_add(d.bytes);
            p
        })
        .collect()
}

/// Route a whole batch, writing `out[i] = p.route(batch[i], i, epoch)`,
/// fanning out over up to `threads` OS threads (contiguous slices of the
/// batch). The result is independent of `threads` because routing is a
/// pure function of (table, epoch, ordinal).
pub fn route_batch(
    p: &dyn Partitioner,
    batch: &[ChunkDescriptor],
    epoch: &RouteEpoch<'_>,
    threads: usize,
) -> Vec<NodeId> {
    let mut out = vec![NodeId(0); batch.len()];
    let threads = threads.max(1);
    if threads == 1 || batch.len() < 2 * threads {
        for (i, (d, slot)) in batch.iter().zip(out.iter_mut()).enumerate() {
            *slot = p.route(d, i, epoch);
        }
        return out;
    }
    let stride = batch.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, (bs, os)) in batch.chunks(stride).zip(out.chunks_mut(stride)).enumerate() {
            let base = ci * stride;
            scope.spawn(move || {
                for (j, d) in bs.iter().enumerate() {
                    os[j] = p.route(d, base + j, epoch);
                }
            });
        }
    });
    out
}

/// Snapshot helper: a length-prefixed `NodeId` list.
pub(super) fn put_nodes(w: &mut durability::ByteWriter, nodes: &[NodeId]) {
    w.put_usize(nodes.len());
    for n in nodes {
        w.put_u32(n.0);
    }
}

/// Restore helper: decode a list written by [`put_nodes`].
pub(super) fn read_nodes(
    r: &mut durability::ByteReader<'_>,
    context: &'static str,
) -> Result<Vec<NodeId>, durability::CodecError> {
    let n = r.usize(context)?;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(NodeId(r.u32(context)?));
    }
    Ok(out)
}

/// The elastic partitioner interface (see module docs for the protocol).
pub trait Partitioner: Send + Sync {
    /// Which scheme this is.
    fn kind(&self) -> PartitionerKind;

    /// Table 1 feature set.
    fn features(&self) -> PartitionerFeatures {
        self.kind().features()
    }

    /// Choose the destination node for the chunk at position `ordinal` of
    /// the current batch, against `epoch`. Read-only: callable from many
    /// threads at once; must be a pure function of (table, epoch,
    /// ordinal, desc).
    fn route(&self, desc: &ChunkDescriptor, ordinal: usize, epoch: &RouteEpoch<'_>) -> NodeId;

    /// Sequentially fold one routed batch's table mutations (sequence
    /// maps, cursor advances) into the partitioning table. Stateless
    /// schemes need nothing. Called once per batch, after the cluster has
    /// placed it; `routes` are the values [`Partitioner::route`] produced.
    fn commit(&mut self, batch: &[ChunkDescriptor], routes: &[NodeId]) {
        let _ = (batch, routes);
    }

    /// Single-chunk placement: route a one-chunk epoch and commit it.
    /// The classic sequential driver loop uses this.
    fn place(&mut self, desc: &ChunkDescriptor, cluster: &Cluster) -> NodeId {
        let epoch = RouteEpoch::single(cluster);
        let node = self.route(desc, 0, &epoch);
        self.commit(std::slice::from_ref(desc), std::slice::from_ref(&node));
        node
    }

    /// Answer a chunk lookup from the partitioner's own table.
    fn locate(&self, key: &ChunkKey) -> Option<NodeId>;

    /// React to freshly added nodes with a rebalance plan. Called after
    /// `cluster.add_nodes`; the caller applies the returned plan.
    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan;

    /// Serialize the **data-dependent** partitioning table (sequence
    /// maps, split trees, range boundaries — everything the workload's
    /// history shaped). Config-derived structure (grid hints, virtual
    /// node counts, planes) is *not* included: recovery rebuilds the
    /// partitioner from the same config via [`build_partitioner`] and
    /// then lays this snapshot over it with
    /// [`Partitioner::table_restore`], after which routing decisions are
    /// bit-identical to the crashed process's.
    fn table_snapshot(&self) -> Vec<u8>;

    /// Restore the table from a [`Partitioner::table_snapshot`] payload
    /// taken from a partitioner of the same kind and config.
    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError>;
}

/// Construct a partitioner of `kind` for a cluster's current nodes.
pub fn build_partitioner(
    kind: PartitionerKind,
    cluster: &Cluster,
    grid: &GridHint,
    config: &PartitionerConfig,
) -> Box<dyn Partitioner> {
    let nodes = cluster.node_ids();
    match kind {
        PartitionerKind::Append => Box::new(Append::new(&nodes, config.append_fill, grid)),
        PartitionerKind::ConsistentHash => {
            Box::new(ConsistentHash::new(&nodes, config.virtual_nodes))
        }
        PartitionerKind::ExtendibleHash => Box::new(ExtendibleHash::new(&nodes)),
        PartitionerKind::HilbertCurve => Box::new(HilbertCurve::new(&nodes, grid)),
        PartitionerKind::IncrementalQuadtree => {
            let plane = config.quad_plane.unwrap_or_else(|| default_plane(grid));
            Box::new(IncrementalQuadtree::new(&nodes, grid, plane))
        }
        PartitionerKind::KdTree => Box::new(KdTree::new(&nodes, grid)),
        PartitionerKind::RoundRobin => Box::new(RoundRobin::new(&nodes, grid)),
        PartitionerKind::UniformRange => {
            Box::new(UniformRange::new(&nodes, grid, config.uniform_height))
        }
    }
}

/// The default quadtree plane: the last two dimensions (lon/lat in the
/// paper's schemas, where time comes first).
fn default_plane(grid: &GridHint) -> (usize, usize) {
    let n = grid.ndims();
    if n >= 2 {
        (n - 2, n - 1)
    } else {
        (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_feature_matrix_matches_paper() {
        use PartitionerKind::*;
        // Row by row from Table 1.
        let t = |k: PartitionerKind| k.features();
        assert_eq!(
            (
                t(Append).incremental_scale_out,
                t(Append).fine_grained,
                t(Append).skew_aware,
                t(Append).n_dimensional_clustering
            ),
            (true, true, false, false)
        );
        assert_eq!(
            (
                t(ConsistentHash).incremental_scale_out,
                t(ConsistentHash).fine_grained,
                t(ConsistentHash).skew_aware,
                t(ConsistentHash).n_dimensional_clustering
            ),
            (true, true, false, false)
        );
        assert_eq!(
            (
                t(ExtendibleHash).incremental_scale_out,
                t(ExtendibleHash).fine_grained,
                t(ExtendibleHash).skew_aware,
                t(ExtendibleHash).n_dimensional_clustering
            ),
            (true, true, true, false)
        );
        assert_eq!(
            (
                t(HilbertCurve).incremental_scale_out,
                t(HilbertCurve).fine_grained,
                t(HilbertCurve).skew_aware,
                t(HilbertCurve).n_dimensional_clustering
            ),
            (true, true, true, true)
        );
        assert_eq!(
            (
                t(IncrementalQuadtree).incremental_scale_out,
                t(IncrementalQuadtree).fine_grained,
                t(IncrementalQuadtree).skew_aware,
                t(IncrementalQuadtree).n_dimensional_clustering
            ),
            (true, false, true, true)
        );
        assert_eq!(
            (
                t(KdTree).incremental_scale_out,
                t(KdTree).fine_grained,
                t(KdTree).skew_aware,
                t(KdTree).n_dimensional_clustering
            ),
            (true, false, true, true)
        );
        assert_eq!(
            (
                t(UniformRange).incremental_scale_out,
                t(UniformRange).fine_grained,
                t(UniformRange).skew_aware,
                t(UniformRange).n_dimensional_clustering
            ),
            (false, false, false, true)
        );
        assert!(!t(RoundRobin).incremental_scale_out);
        assert!(!t(RoundRobin).skew_aware);
    }

    #[test]
    fn grid_hint_validates() {
        let g = GridHint::new(vec![14, 30, 15]);
        assert_eq!(g.ndims(), 3);
    }

    #[test]
    #[should_panic(expected = "chunk counts")]
    fn grid_hint_rejects_zero() {
        let _ = GridHint::new(vec![0, 3]);
    }

    #[test]
    fn default_plane_is_spatial_dims() {
        assert_eq!(default_plane(&GridHint::new(vec![14, 30, 15])), (1, 2));
        assert_eq!(default_plane(&GridHint::new(vec![8, 8])), (0, 1));
    }
}
