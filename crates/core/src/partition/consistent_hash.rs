//! Consistent Hash (paper §4.2, citing Karger et al. [24]).
//!
//! Nodes and chunks hash onto a ring; a chunk belongs to the first node
//! clockwise from its hash. Each node contributes many *virtual nodes* to
//! smooth the ring. Adding a node claims arcs only from preexisting nodes,
//! so scale-out is incremental by construction; placement ignores chunk
//! sizes and array space, so the scheme is neither skew-aware nor
//! clustered.

use super::{Partitioner, PartitionerKind, RouteEpoch};
use crate::hashing::{hash_chunk_key, hash_ring_point};
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// Consistent-hash ring partitioner.
#[derive(Debug, Clone)]
pub struct ConsistentHash {
    ring: BTreeMap<u64, NodeId>,
    virtual_nodes: u32,
}

impl ConsistentHash {
    /// Build a ring with `virtual_nodes` points per host.
    pub fn new(nodes: &[NodeId], virtual_nodes: u32) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(virtual_nodes >= 1, "need at least one virtual node");
        let mut ch = ConsistentHash { ring: BTreeMap::new(), virtual_nodes };
        for &n in nodes {
            ch.insert_node(n);
        }
        ch
    }

    fn insert_node(&mut self, node: NodeId) {
        for replica in 0..self.virtual_nodes {
            // Linear-probe hash collisions (astronomically unlikely) so
            // every replica lands on the ring deterministically.
            let mut point = hash_ring_point(node.0, replica);
            while self.ring.contains_key(&point) {
                point = point.wrapping_add(1);
            }
            self.ring.insert(point, node);
        }
    }

    /// Walk the ring clockwise from `hash` to the first virtual node.
    fn owner(&self, hash: u64) -> NodeId {
        match self.ring.range(hash..).next() {
            Some((_, &node)) => node,
            None => *self.ring.values().next().expect("ring is never empty"),
        }
    }
}

impl Partitioner for ConsistentHash {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::ConsistentHash
    }

    fn table_snapshot(&self) -> Vec<u8> {
        // The ring verbatim: scale-out inserts points incrementally, so
        // the ring is history-dependent, not derivable from config alone.
        let mut w = durability::ByteWriter::new();
        w.put_usize(self.ring.len());
        for (&point, &node) in &self.ring {
            w.put_u64(point);
            w.put_u32(node.0);
        }
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        let n = r.usize("ring point count")?;
        let mut ring = BTreeMap::new();
        for _ in 0..n {
            let point = r.u64("ring point")?;
            let node = NodeId(r.u32("ring owner")?);
            ring.insert(point, node);
        }
        self.ring = ring;
        r.finish("ring snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, _ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        self.owner(hash_chunk_key(&desc.key))
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        Some(self.owner(hash_chunk_key(key)))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        for &n in new_nodes {
            self.insert_node(n);
        }
        // Chunks whose ring owner changed migrate; ownership can only have
        // moved to a new node, so the plan is incremental by construction.
        let mut plan = RebalancePlan::empty();
        for (key, current) in cluster.placements() {
            let target = self.owner(hash_chunk_key(&key));
            if target != current {
                let bytes = cluster
                    .node(current)
                    .expect("placement points at live node")
                    .descriptor(&key)
                    .expect("placement is authoritative")
                    .bytes;
                plan.push(key, current, target, bytes);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::{relative_std_dev, CostModel};

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn run(p: &mut ConsistentHash, cluster: &mut Cluster, start: i64, count: i64, bytes: u64) {
        for i in start..start + count {
            let d = desc(i, bytes);
            let n = p.place(&d, cluster);
            cluster.place(d, n).unwrap();
        }
    }

    #[test]
    fn spreads_uniform_chunks_evenly() {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let mut p = ConsistentHash::new(&cluster.node_ids(), 64);
        run(&mut p, &mut cluster, 0, 2000, 10);
        let counts = cluster.chunk_counts();
        let loads: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        assert!(relative_std_dev(&loads) < 0.25, "ring too uneven: {counts:?}");
    }

    #[test]
    fn scale_out_is_incremental() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = ConsistentHash::new(&cluster.node_ids(), 64);
        run(&mut p, &mut cluster, 0, 500, 10);
        let new = cluster.add_nodes(2, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(!plan.is_empty(), "new nodes must claim some arcs");
        assert!(plan.is_incremental(&new), "consistent hashing only moves to new nodes");
        cluster.apply_rebalance(&plan).unwrap();
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
        // Roughly half the data should have moved to the two new nodes.
        let moved: f64 = plan.moved_bytes() as f64 / 5000.0;
        assert!(moved > 0.25 && moved < 0.75, "moved fraction {moved}");
    }

    #[test]
    fn placement_is_deterministic() {
        let cluster = Cluster::new(3, u64::MAX, CostModel::default()).unwrap();
        let mut a = ConsistentHash::new(&cluster.node_ids(), 32);
        let mut b = ConsistentHash::new(&cluster.node_ids(), 32);
        for i in 0..100 {
            let d = desc(i, 1);
            assert_eq!(a.place(&d, &cluster), b.place(&d, &cluster));
        }
    }

    #[test]
    fn more_virtual_nodes_smooth_the_ring() {
        let cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let imbalance = |vnodes: u32| {
            let mut p = ConsistentHash::new(&cluster.node_ids(), vnodes);
            let mut counts = vec![0u64; 4];
            for i in 0..4000 {
                let d = desc(i, 1);
                counts[p.place(&d, &cluster).0 as usize] += 1;
            }
            relative_std_dev(&counts)
        };
        assert!(imbalance(128) < imbalance(1));
    }
}
