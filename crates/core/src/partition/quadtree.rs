//! Incremental Quadtree partitioner (paper §4.2, citing Finkel & Bentley [20]).
//!
//! A quadtree recursively quarters a 2-D plane of the array (lon/lat in
//! both of the paper's schemas). A *classical* quadtree cannot scale out
//! incrementally — splitting a host would need three new machines — so the
//! paper's variant assigns each host a partition that lives at exactly one
//! tree level:
//!
//! * if the most loaded host owns a single region, the region is
//!   **quartered** and the quarter or edge-adjacent pair of quarters whose
//!   bytes are closest to half of the host's storage moves to the new node;
//! * if the host already owns a set of quarters, the adjacent pair (or
//!   single quarter) closest to halving its storage moves instead, with no
//!   further subdivision.

use super::{GridHint, Partitioner, PartitionerKind, RouteEpoch};
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// One quad cell: at `level`, the plane is a 2^level × 2^level grid and
/// this region is cell `(x, y)` of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QuadRegion {
    level: u32,
    x: u64,
    y: u64,
}

impl QuadRegion {
    /// The four children one level down.
    fn quarters(self) -> [QuadRegion; 4] {
        let QuadRegion { level, x, y } = self;
        [
            QuadRegion { level: level + 1, x: x * 2, y: y * 2 },
            QuadRegion { level: level + 1, x: x * 2 + 1, y: y * 2 },
            QuadRegion { level: level + 1, x: x * 2, y: y * 2 + 1 },
            QuadRegion { level: level + 1, x: x * 2 + 1, y: y * 2 + 1 },
        ]
    }

    /// Does this region contain plane point `(px, py)` of a `side`-sized
    /// embedding (side = 2^max_bits)?
    fn contains(&self, px: u64, py: u64, max_bits: u32) -> bool {
        let shift = max_bits - self.level;
        (px >> shift) == self.x && (py >> shift) == self.y
    }

    /// Edge adjacency at equal level.
    fn adjacent(&self, other: &QuadRegion) -> bool {
        self.level == other.level && self.x.abs_diff(other.x) + self.y.abs_diff(other.y) == 1
    }
}

/// Incremental Quadtree partitioner state.
#[derive(Debug, Clone)]
pub struct IncrementalQuadtree {
    /// Which two dimensions form the quartered plane.
    plane: (usize, usize),
    /// The plane is embedded in a 2^max_bits square.
    max_bits: u32,
    /// Actual grid extents on the plane (the embedding square is padded
    /// beyond them; padded space holds no data and must not count as
    /// splittable area).
    extent: (u64, u64),
    /// Disjoint region cover; a host may own several regions (its
    /// "partition"), all at a single level.
    regions: Vec<(QuadRegion, NodeId)>,
}

impl IncrementalQuadtree {
    /// Build for the initial nodes over `grid`, quartering on `plane`.
    pub fn new(nodes: &[NodeId], grid: &GridHint, plane: (usize, usize)) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(plane.0 != plane.1, "plane dimensions must differ");
        assert!(
            plane.0 < grid.ndims() && plane.1 < grid.ndims(),
            "plane dimensions must exist in the grid"
        );
        let ex = grid.chunk_counts[plane.0].max(1) as u64;
        let ey = grid.chunk_counts[plane.1].max(1) as u64;
        let longest = ex.max(ey).max(2);
        let max_bits = 64 - (longest - 1).leading_zeros();
        let root = QuadRegion { level: 0, x: 0, y: 0 };
        let mut qt = IncrementalQuadtree {
            plane,
            max_bits,
            extent: (ex, ey),
            regions: vec![(root, nodes[0])],
        };
        // Bootstrap additional initial nodes with area-weighted splits
        // (no data exists yet, so bytes degenerate to areas).
        for &fresh in &nodes[1..] {
            let victim = qt.largest_area_host();
            qt.split_host(victim, fresh, &[]);
        }
        qt
    }

    fn plane_point(&self, key: &ChunkKey) -> (u64, u64) {
        let limit = if self.max_bits >= 64 { u64::MAX } else { (1u64 << self.max_bits) - 1 };
        let px = (key.coords.index(self.plane.0).max(0) as u64).min(limit);
        let py = (key.coords.index(self.plane.1).max(0) as u64).min(limit);
        (px, py)
    }

    fn owner_of(&self, key: &ChunkKey) -> NodeId {
        let (px, py) = self.plane_point(key);
        // Regions are disjoint and cover the plane: exactly one matches.
        self.regions
            .iter()
            .find(|(r, _)| r.contains(px, py, self.max_bits))
            .expect("region cover is complete")
            .1
    }

    fn host_regions(&self, host: NodeId) -> Vec<QuadRegion> {
        self.regions.iter().filter(|(_, n)| *n == host).map(|(r, _)| *r).collect()
    }

    /// The data-bearing cells a region covers: intersection of the quad
    /// cell with the real grid extents.
    fn occupied_area(&self, r: &QuadRegion) -> u128 {
        let side = 1u64 << (self.max_bits - r.level);
        let x0 = r.x * side;
        let y0 = r.y * side;
        let ox = self.extent.0.saturating_sub(x0).min(side);
        let oy = self.extent.1.saturating_sub(y0).min(side);
        u128::from(ox) * u128::from(oy)
    }

    fn largest_area_host(&self) -> NodeId {
        let mut area: BTreeMap<NodeId, u128> = BTreeMap::new();
        for (r, n) in &self.regions {
            *area.entry(*n).or_default() += self.occupied_area(r);
        }
        *area.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0 .0.cmp(&a.0 .0))).expect("regions exist").0
    }

    /// Split `victim`, moving the chosen regions to `fresh`. `chunks` are
    /// the victim's resident chunks as `(plane_x, plane_y, bytes)`; when
    /// empty (bootstrap), occupied area stands in for bytes. Returns the
    /// regions that changed hands.
    ///
    /// The selection follows §4.2: a single-region partition is quartered
    /// and the quarter or edge-adjacent pair closest to half the storage
    /// moves; a multi-region partition gives up its best quarter/pair.
    /// When no subset at the current level comes anywhere near halving the
    /// victim (one region dominates — "areas of skew"), the whole
    /// partition is pushed one level deeper and the selection repeats, so
    /// each host's partition still resides at exactly one tree level.
    fn split_host(
        &mut self,
        victim: NodeId,
        fresh: NodeId,
        chunks: &[(u64, u64, u64)],
    ) -> Vec<QuadRegion> {
        debug_assert!(!self.host_regions(victim).is_empty(), "victim must own regions");
        loop {
            let owned = self.host_regions(victim);

            // Candidates: the four children when a single region remains,
            // otherwise the current quarters.
            let candidates: Vec<QuadRegion> = if owned.len() == 1 {
                let parent = owned[0];
                if parent.level >= self.max_bits {
                    // Cannot subdivide further; hand over the whole region.
                    self.reassign(&[parent], fresh);
                    return vec![parent];
                }
                self.refine(victim, &[parent]);
                parent.quarters().to_vec()
            } else {
                owned.clone()
            };

            let weight = |r: &QuadRegion| -> u128 {
                if chunks.is_empty() {
                    self.occupied_area(r)
                } else {
                    chunks
                        .iter()
                        .filter(|&&(px, py, _)| r.contains(px, py, self.max_bits))
                        .map(|&(_, _, b)| u128::from(b))
                        .sum()
                }
            };
            let total: u128 = candidates.iter().map(weight).sum();
            let half = total / 2;

            // Enumerate singles and edge-adjacent pairs; keep at least one
            // candidate with the victim. Ties on closeness-to-half break
            // toward moving fewer bytes — cheaper, and under point skew it
            // sheds the light quarters first.
            let mut best: Option<(u128, u128, Vec<QuadRegion>)> = None;
            let mut consider = |subset: Vec<QuadRegion>| {
                if subset.len() >= candidates.len() {
                    return; // victim must keep something
                }
                let w: u128 = subset.iter().map(&weight).sum();
                let score = w.abs_diff(half);
                match &best {
                    Some((s, bw, _)) if (*s, *bw) <= (score, w) => {}
                    _ => best = Some((score, w, subset)),
                }
            };
            for (i, a) in candidates.iter().enumerate() {
                consider(vec![*a]);
                for b in candidates.iter().skip(i + 1) {
                    if a.adjacent(b) {
                        consider(vec![*a, *b]);
                    }
                }
            }
            let Some((score, _, chosen)) = best else {
                return Vec::new();
            };
            // Accept anything within 35 % of a perfect halving, or when the
            // partition cannot be pushed deeper.
            let can_refine = candidates.iter().all(|r| r.level < self.max_bits);
            if total == 0 || score * 20 <= total * 7 || !can_refine {
                self.reassign(&chosen, fresh);
                return chosen;
            }
            // One region dominates: refine the whole partition one level
            // and re-select among the children.
            self.refine(victim, &candidates);
        }
    }

    /// Replace each of `victim`'s listed regions with its four quarters.
    fn refine(&mut self, victim: NodeId, regions: &[QuadRegion]) {
        for r in regions {
            debug_assert!(r.level < self.max_bits);
            self.regions.retain(|(existing, _)| existing != r);
            for q in r.quarters() {
                self.regions.push((q, victim));
            }
        }
    }

    fn reassign(&mut self, regions: &[QuadRegion], to: NodeId) {
        for (r, n) in &mut self.regions {
            if regions.contains(r) {
                *n = to;
            }
        }
    }

    /// Number of regions in the cover (tests/ablation).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

impl Partitioner for IncrementalQuadtree {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::IncrementalQuadtree
    }

    fn table_snapshot(&self) -> Vec<u8> {
        // Plane, max_bits, and extent are config-derived; the region
        // cover mutates on every refine/reassign.
        let mut w = durability::ByteWriter::new();
        w.put_usize(self.regions.len());
        for &(r, node) in &self.regions {
            w.put_u32(r.level);
            w.put_u64(r.x);
            w.put_u64(r.y);
            w.put_u32(node.0);
        }
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        let n = r.usize("quad region count")?;
        let mut regions = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let level = r.u32("quad region level")?;
            if level > self.max_bits {
                return Err(durability::CodecError::Invalid {
                    context: "quad region level",
                    detail: format!("level {level} exceeds max_bits {}", self.max_bits),
                });
            }
            let x = r.u64("quad region x")?;
            let y = r.u64("quad region y")?;
            let node = NodeId(r.u32("quad region owner")?);
            regions.push((QuadRegion { level, x, y }, node));
        }
        if regions.is_empty() {
            return Err(durability::CodecError::Invalid {
                context: "quad region count",
                detail: "empty region cover".to_string(),
            });
        }
        self.regions = regions;
        r.finish("quad snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, _ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        self.owner_of(&desc.key)
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        Some(self.owner_of(key))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        let mut plan = RebalancePlan::empty();
        let mut loads: BTreeMap<NodeId, u64> =
            cluster.nodes().map(|n| (n.id, n.used_bytes())).collect();
        for &fresh in new_nodes {
            let victim = *loads
                .iter()
                .filter(|(n, _)| !new_nodes.contains(n))
                .max_by(|a, b| a.1.cmp(b.1).then(b.0 .0.cmp(&a.0 .0)))
                .expect("cluster has preexisting nodes")
                .0;

            // Victim's chunks, net of earlier planned moves.
            let moved_keys: std::collections::HashSet<&ChunkKey> =
                plan.moves.iter().map(|m| &m.key).collect();
            let resident: Vec<(ChunkKey, u64)> = cluster
                .node(victim)
                .ok()
                .map(|node| {
                    node.descriptors()
                        .filter(|d| !moved_keys.contains(&d.key))
                        .map(|d| (d.key, d.bytes))
                        .collect()
                })
                .unwrap_or_default();

            if self.host_regions(victim).is_empty() {
                // A maximally-subdivided victim handed over its last region
                // earlier; it cannot be split again.
                continue;
            }
            let chunk_points: Vec<(u64, u64, u64)> = resident
                .iter()
                .map(|(key, bytes)| {
                    let (px, py) = self.plane_point(key);
                    (px, py, *bytes)
                })
                .collect();

            let moved_regions = self.split_host(victim, fresh, &chunk_points);

            let mut moved = 0u64;
            for (key, bytes) in resident {
                let (px, py) = self.plane_point(&key);
                if moved_regions.iter().any(|r| r.contains(px, py, self.max_bits)) {
                    plan.push(key, victim, fresh, bytes);
                    moved += bytes;
                }
            }
            *loads.entry(victim).or_default() -= moved;
            *loads.entry(fresh).or_default() += moved;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn grid() -> GridHint {
        // (time, lon, lat) like the paper's schemas; plane = (1, 2).
        GridHint::new(vec![4, 16, 16])
    }

    fn desc(t: i64, x: i64, y: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([t, x, y])), bytes, 1)
    }

    fn insert_grid(
        p: &mut IncrementalQuadtree,
        cluster: &mut Cluster,
        weight: impl Fn(i64, i64) -> u64,
    ) {
        for x in 0..16 {
            for y in 0..16 {
                let d = desc(0, x, y, weight(x, y));
                let n = p.place(&d, cluster);
                cluster.place(d, n).unwrap();
            }
        }
    }

    #[test]
    fn bootstrap_partitions_whole_plane() {
        let cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let p = IncrementalQuadtree::new(&cluster.node_ids(), &grid(), (1, 2));
        let mut owners = std::collections::BTreeSet::new();
        for x in 0..16 {
            for y in 0..16 {
                owners.insert(p.locate(&desc(0, x, y, 0).key).unwrap());
            }
        }
        assert_eq!(owners.len(), 2, "both initial nodes own plane regions");
    }

    #[test]
    fn time_dimension_is_ignored_by_the_plane() {
        let cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let p = IncrementalQuadtree::new(&cluster.node_ids(), &grid(), (1, 2));
        for t in 0..4 {
            assert_eq!(
                p.locate(&desc(t, 3, 7, 0).key),
                p.locate(&desc(0, 3, 7, 0).key),
                "same lon/lat must colocate across time"
            );
        }
    }

    #[test]
    fn repeated_splits_zoom_into_the_hotspot() {
        // Point skew in one corner, like a port. A single high-level split
        // cannot halve it (the paper notes the quadtree "starts with a
        // high-level split, putting it on par with Uniform Range"), but
        // successive skew-aware splits subdivide the hot quarter and
        // balance improves.
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let mut p = IncrementalQuadtree::new(&cluster.node_ids(), &grid(), (1, 2));
        insert_grid(&mut p, &mut cluster, |x, y| if x < 4 && y < 4 { 1000 } else { 1 });

        for round in 0..4 {
            let new = cluster.add_nodes(1, u64::MAX);
            let plan = p.scale_out(&cluster, &new);
            assert!(plan.is_incremental(&new), "round {round}");
            cluster.apply_rebalance(&plan).unwrap();
            for (key, node) in cluster.placements() {
                assert_eq!(p.locate(&key), Some(node));
            }
            if round == 0 {
                // The refinement loop zooms straight into the hotspot: the
                // very first split already halves the loaded host.
                let rsd = cluster_sim::relative_std_dev(&cluster.loads());
                assert!(rsd < 0.2, "first split should nearly halve: rsd {rsd}");
            }
        }
        // The hot 4x4 corner must now span more than one owner.
        let mut hot_owners = std::collections::BTreeSet::new();
        for x in 0..4 {
            for y in 0..4 {
                hot_owners.insert(p.locate(&desc(0, x, y, 0).key).unwrap());
            }
        }
        assert!(hot_owners.len() > 1, "hotspot was never subdivided");
        // Residual imbalance is bounded by the non-power-of-two effect the
        // paper describes (some partitions are the result of fewer splits).
        let rsd_final = cluster_sim::relative_std_dev(&cluster.loads());
        assert!(rsd_final < 0.45, "final rsd {rsd_final}");
    }

    #[test]
    fn partitions_stay_at_one_level() {
        // After several splits every host's regions share a single level —
        // the invariant §4.2 calls out.
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = IncrementalQuadtree::new(&cluster.node_ids(), &grid(), (1, 2));
        insert_grid(&mut p, &mut cluster, |x, y| 1 + (x * y) as u64);
        for _ in 0..3 {
            let new = cluster.add_nodes(2, u64::MAX);
            let plan = p.scale_out(&cluster, &new);
            cluster.apply_rebalance(&plan).unwrap();
        }
        for node in cluster.nodes() {
            let regions = p.host_regions(node.id);
            if regions.is_empty() {
                continue;
            }
            let level = regions[0].level;
            assert!(regions.iter().all(|r| r.level == level), "host {} spans levels", node.id);
        }
    }

    #[test]
    fn pair_selection_prefers_half_split() {
        // One region with 3 quarters heavy and 1 light: the best halving is
        // a pair. Weights: q0=40, q1=40, q2=10, q3=10 (total 100, half 50):
        // best single = 40 (off 10), pair (q0,q2)=50 (off 0) -> pair wins.
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let mut p = IncrementalQuadtree::new(&cluster.node_ids(), &grid(), (1, 2));
        // q0 = sw (x<8,y<8), q1 = se (x>=8,y<8), q2 = nw, q3 = ne
        let weight = |x: i64, y: i64| match (x < 8, y < 8) {
            (true, true) => 40u64,
            (false, true) => 40,
            (true, false) => 10,
            (false, false) => 10,
        };
        // One chunk per quadrant keeps arithmetic exact.
        for (x, y) in [(0, 0), (15, 0), (0, 15), (15, 15)] {
            let d = desc(0, x, y, weight(x, y));
            let n = p.place(&d, &cluster);
            cluster.place(d, n).unwrap();
        }
        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        cluster.apply_rebalance(&plan).unwrap();
        let loads = cluster.loads();
        assert_eq!(loads[0], 50, "victim keeps exactly half");
        assert_eq!(loads[1], 50, "newcomer receives exactly half");
    }
}
