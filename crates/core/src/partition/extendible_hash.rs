//! Extendible Hash (paper §4.2, citing Fagin et al. [19]).
//!
//! Chunks hash to 64 bits; a node owns one or more *buckets*, each a
//! `(pattern, depth)` pair matching every hash whose low `depth` bits
//! equal `pattern`. The buckets always form a complete prefix cover of
//! the hash space. At scale-out the partitioner finds the most heavily
//! loaded node (skew-awareness), picks its heaviest bucket, and splits it
//! on the next more significant bit — the half with the new bit set moves
//! to the new node.

use super::{Partitioner, PartitionerKind, RouteEpoch};
use crate::hashing::hash_chunk_key;
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// A bucket: owns hashes `h` with `h & mask(depth) == pattern`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Bucket {
    depth: u32,
    pattern: u64,
}

impl Bucket {
    fn mask(depth: u32) -> u64 {
        if depth >= 64 {
            u64::MAX
        } else {
            (1u64 << depth) - 1
        }
    }

    fn matches(&self, hash: u64) -> bool {
        hash & Self::mask(self.depth) == self.pattern
    }
}

/// Extendible-hash partitioner state.
#[derive(Debug, Clone)]
pub struct ExtendibleHash {
    /// Complete prefix cover of the hash space.
    buckets: BTreeMap<Bucket, NodeId>,
}

impl ExtendibleHash {
    /// Build with one bucket per initial node (padding the cover by
    /// splitting round-robin when the node count is not a power of two).
    pub fn new(nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        // Start with the root bucket and split until we have one bucket
        // per node, always splitting the shallowest bucket — this yields
        // the most uniform initial cover.
        let mut buckets: Vec<Bucket> = vec![Bucket { depth: 0, pattern: 0 }];
        while buckets.len() < nodes.len() {
            buckets.sort_unstable();
            let victim = buckets.iter().copied().min_by_key(|b| b.depth).expect("non-empty");
            buckets.retain(|b| *b != victim);
            let (a, b) = split_bucket(victim);
            buckets.push(a);
            buckets.push(b);
        }
        buckets.sort_unstable();
        let map = buckets.into_iter().zip(nodes.iter().copied()).collect::<BTreeMap<_, _>>();
        ExtendibleHash { buckets: map }
    }

    fn owner(&self, hash: u64) -> NodeId {
        // The cover is complete and prefix-free: exactly one bucket matches.
        for (bucket, &node) in &self.buckets {
            if bucket.matches(hash) {
                return node;
            }
        }
        unreachable!("bucket cover must be complete")
    }

    /// Buckets held by `node`.
    fn buckets_of(&self, node: NodeId) -> Vec<Bucket> {
        self.buckets.iter().filter(|(_, &n)| n == node).map(|(b, _)| *b).collect()
    }

    /// Number of buckets (for tests/ablation).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

fn split_bucket(b: Bucket) -> (Bucket, Bucket) {
    assert!(b.depth < 63, "bucket depth exhausted");
    let low = Bucket { depth: b.depth + 1, pattern: b.pattern };
    let high = Bucket { depth: b.depth + 1, pattern: b.pattern | (1u64 << b.depth) };
    (low, high)
}

impl Partitioner for ExtendibleHash {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::ExtendibleHash
    }

    fn table_snapshot(&self) -> Vec<u8> {
        // The bucket cover mutates on every split, so it is written
        // verbatim as (depth, pattern, owner) triples.
        let mut w = durability::ByteWriter::new();
        w.put_usize(self.buckets.len());
        for (bucket, &node) in &self.buckets {
            w.put_u32(bucket.depth);
            w.put_u64(bucket.pattern);
            w.put_u32(node.0);
        }
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        let n = r.usize("bucket count")?;
        let mut buckets = BTreeMap::new();
        for _ in 0..n {
            let depth = r.u32("bucket depth")?;
            let pattern = r.u64("bucket pattern")?;
            let node = NodeId(r.u32("bucket owner")?);
            buckets.insert(Bucket { depth, pattern }, node);
        }
        self.buckets = buckets;
        r.finish("bucket snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, _ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        self.owner(hash_chunk_key(&desc.key))
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        Some(self.owner(hash_chunk_key(key)))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        let mut plan = RebalancePlan::empty();
        // Track per-node byte loads locally so consecutive splits within
        // one scale-out see the effect of earlier splits.
        let mut loads: BTreeMap<NodeId, u64> =
            cluster.nodes().map(|n| (n.id, n.used_bytes())).collect();
        for &fresh in new_nodes {
            // Skew-aware victim choice: the most loaded preexisting node.
            // New nodes are never victims, so data flows only old -> new.
            let victim = *loads
                .iter()
                .filter(|(n, _)| !new_nodes.contains(n))
                .max_by(|a, b| a.1.cmp(b.1).then(b.0 .0.cmp(&a.0 .0)))
                .expect("cluster has nodes")
                .0;
            // Weigh the victim's buckets by resident bytes.
            let victim_buckets = self.buckets_of(victim);
            debug_assert!(!victim_buckets.is_empty());
            let mut bucket_bytes: BTreeMap<Bucket, u64> =
                victim_buckets.iter().map(|&b| (b, 0)).collect();
            let mut chunk_homes: Vec<(ChunkKey, u64, Bucket)> = Vec::new();
            let moved_keys: std::collections::HashSet<&ChunkKey> =
                plan.moves.iter().map(|m| &m.key).collect();
            if let Ok(node) = cluster.node(victim) {
                for d in node.descriptors() {
                    // Skip chunks already re-routed by an earlier split in
                    // this same scale-out.
                    if moved_keys.contains(&d.key) {
                        continue;
                    }
                    let h = hash_chunk_key(&d.key);
                    if let Some(&b) = victim_buckets.iter().find(|b| b.matches(h)) {
                        *bucket_bytes.entry(b).or_default() += d.bytes;
                        chunk_homes.push((d.key, d.bytes, b));
                    }
                }
            }
            // Split the heaviest bucket on its next significant bit.
            let (&heavy, _) = bucket_bytes
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .expect("victim owns at least one bucket");
            let (low, high) = split_bucket(heavy);
            self.buckets.remove(&heavy);
            self.buckets.insert(low, victim);
            self.buckets.insert(high, fresh);
            // Chunks matching the high half migrate to the new node.
            let mut moved = 0u64;
            for (key, bytes, home) in &chunk_homes {
                if *home == heavy {
                    let h = hash_chunk_key(key);
                    if high.matches(h) {
                        plan.push(*key, victim, fresh, *bytes);
                        moved += bytes;
                    }
                }
            }
            *loads.entry(victim).or_default() -= moved;
            *loads.entry(fresh).or_default() += moved;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn run(p: &mut ExtendibleHash, cluster: &mut Cluster, start: i64, count: i64, bytes: u64) {
        for i in start..start + count {
            let d = desc(i, bytes);
            let n = p.place(&d, cluster);
            cluster.place(d, n).unwrap();
        }
    }

    #[test]
    fn initial_cover_is_complete() {
        for n in 1..=8usize {
            let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            let p = ExtendibleHash::new(&nodes);
            assert_eq!(p.bucket_count(), n);
            // Every hash must resolve.
            for h in [0u64, 1, u64::MAX, 0xdead_beef] {
                let _ = p.owner(h);
            }
        }
    }

    #[test]
    fn scale_out_splits_most_loaded_and_stays_incremental() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = ExtendibleHash::new(&cluster.node_ids());
        run(&mut p, &mut cluster, 0, 400, 10);
        let before = cluster.loads();
        let heavy = if before[0] >= before[1] { NodeId(0) } else { NodeId(1) };
        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_incremental(&new));
        assert!(plan.moves.iter().all(|m| m.from == heavy), "splits the most loaded node");
        cluster.apply_rebalance(&plan).unwrap();
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
        // Victim shed roughly half its bytes.
        let after = cluster.loads();
        let shed = before[heavy.0 as usize] - after[heavy.0 as usize];
        let frac = shed as f64 / before[heavy.0 as usize] as f64;
        assert!(frac > 0.2 && frac < 0.8, "split fraction {frac}");
    }

    #[test]
    fn repeated_scale_outs_keep_lookup_consistent() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = ExtendibleHash::new(&cluster.node_ids());
        let mut next = 0i64;
        for round in 0..3 {
            run(&mut p, &mut cluster, next, 200, 10);
            next += 200;
            let new = cluster.add_nodes(2, u64::MAX);
            let plan = p.scale_out(&cluster, &new);
            assert!(plan.is_incremental(&new), "round {round}");
            cluster.apply_rebalance(&plan).unwrap();
            for (key, node) in cluster.placements() {
                assert_eq!(p.locate(&key), Some(node));
            }
        }
        assert_eq!(cluster.node_count(), 8);
        assert!(cluster.chunk_counts().iter().all(|&c| c > 0), "every node got data");
    }

    #[test]
    fn skewed_bytes_drive_victim_choice() {
        // Put massive chunks wherever node 0's bucket matches; the first
        // split must target node 0's space even though chunk counts are even.
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = ExtendibleHash::new(&cluster.node_ids());
        for i in 0..100 {
            let d0 = desc(i, 1);
            let owner = p.place(&d0, &cluster);
            let bytes = if owner == NodeId(0) { 1000 } else { 1 };
            let d = ChunkDescriptor::new(d0.key, bytes, 1);
            cluster.place(d, owner).unwrap();
        }
        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.moves.iter().all(|m| m.from == NodeId(0)));
        assert!(plan.moved_bytes() > 0);
    }
}
