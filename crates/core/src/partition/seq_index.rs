//! Dense per-array **sequence grids** for the arrival-order partitioners.
//!
//! Append and Round Robin both key their partitioning tables by insert
//! sequence number and must map a chunk key back to its sequence on every
//! lookup and scale-out. They used to keep that map in a
//! `BTreeMap<ChunkKey, u64>` — a tree descent plus amortized node splits
//! per placed chunk, the reason both trailed the table-free schemes by
//! ~2× on the ingest bench. This mirrors the cluster's dense placement
//! index instead: per array, a flat row-major `Vec<u64>` of sequence
//! numbers sized from the workload's grid hint, lazily allocated on the
//! array's first insert, with a hash-map spill for out-of-hint
//! coordinates, mismatched dimensionality, and oversized or out-of-range
//! arrays. Insert and lookup are O(1) array reads on the hot path.

use array_model::{ChunkCoords, ChunkKey, MAX_DIMS};
use std::collections::HashMap;

/// Vacant-slot sentinel: sequence numbers are placement counters and
/// cannot plausibly reach 2^64 − 1.
const VACANT: u64 = u64::MAX;

/// Largest dense grid we will allocate, in slots (16M slots = 128 MB).
const DENSE_SLOT_CAP: i128 = 1 << 24;

/// Highest `ArrayId` that gets its own lazily allocated grid.
const ARRAY_ID_CAP: u32 = 4096;

/// Chunk-key → insert-sequence map, dense over the hinted grid.
#[derive(Debug, Clone)]
pub(super) struct SeqIndex {
    /// Hinted extents shared by every array this workload routes.
    extents: [i64; MAX_DIMS],
    ndims: u8,
    /// Slot volume of the hinted grid, or `None` when the hint is too
    /// large to back densely (everything spills).
    volume: Option<usize>,
    /// Lazily allocated per-array grids, indexed by `ArrayId.0`.
    grids: Vec<Option<Vec<u64>>>,
    /// Everything that cannot live in a grid.
    spill: HashMap<ChunkKey, u64>,
}

impl SeqIndex {
    /// Build for a workload's hinted chunk counts.
    pub(super) fn new(chunk_counts: &[i64]) -> Self {
        let mut extents = [1i64; MAX_DIMS];
        let ndims = chunk_counts.len().min(MAX_DIMS);
        extents[..ndims].copy_from_slice(&chunk_counts[..ndims]);
        let volume: i128 = chunk_counts.iter().map(|&e| i128::from(e.max(1))).product();
        let volume = (chunk_counts.len() <= MAX_DIMS
            && !chunk_counts.is_empty()
            && chunk_counts.iter().all(|&e| e >= 1)
            && volume <= DENSE_SLOT_CAP)
            .then_some(volume as usize);
        SeqIndex { extents, ndims: ndims as u8, volume, grids: Vec::new(), spill: HashMap::new() }
    }

    #[inline]
    fn linearize(&self, coords: &ChunkCoords) -> Option<usize> {
        if coords.ndims() != self.ndims as usize {
            return None;
        }
        let mut lin: usize = 0;
        for (d, &c) in coords.iter().enumerate() {
            let extent = self.extents[d];
            if c < 0 || c >= extent {
                return None;
            }
            lin = lin * extent as usize + c as usize;
        }
        Some(lin)
    }

    /// Record `seq` for `key`. O(1); allocates only on an array's first
    /// dense insert (the grid) or on spill-map growth.
    pub(super) fn insert(&mut self, key: ChunkKey, seq: u64) {
        if key.array.0 < ARRAY_ID_CAP {
            if let (Some(volume), Some(lin)) = (self.volume, self.linearize(&key.coords)) {
                let idx = key.array.0 as usize;
                if idx >= self.grids.len() {
                    self.grids.resize(idx + 1, None);
                }
                let grid = self.grids[idx].get_or_insert_with(|| vec![VACANT; volume]);
                grid[lin] = seq;
                return;
            }
        }
        self.spill.insert(key, seq);
    }

    /// Serialize the **occupied** entries (dense grids are written
    /// sparsely — slot index + sequence — so an almost-empty 16M-slot
    /// grid costs bytes proportional to what it holds). The grid shape
    /// itself is config-derived and not written; restore targets a fresh
    /// index built from the same chunk counts.
    pub(super) fn snapshot_into(&self, w: &mut durability::ByteWriter) {
        let occupied: Vec<(usize, &Vec<u64>)> =
            self.grids.iter().enumerate().filter_map(|(i, g)| g.as_ref().map(|g| (i, g))).collect();
        w.put_usize(occupied.len());
        for (idx, grid) in occupied {
            w.put_usize(idx);
            let live = grid.iter().filter(|&&s| s != VACANT).count();
            w.put_usize(live);
            for (lin, &seq) in grid.iter().enumerate().filter(|(_, &s)| s != VACANT) {
                w.put_usize(lin);
                w.put_u64(seq);
            }
        }
        // Deterministic spill order: sort by key.
        let mut spill: Vec<(&ChunkKey, &u64)> = self.spill.iter().collect();
        spill.sort_by_key(|(k, _)| **k);
        w.put_usize(spill.len());
        for (key, &seq) in spill {
            key.encode_into(w);
            w.put_u64(seq);
        }
    }

    /// Restore entries from [`SeqIndex::snapshot_into`] onto this index,
    /// which must have been built with the same chunk counts (so grid
    /// volumes agree).
    pub(super) fn restore_from(
        &mut self,
        r: &mut durability::ByteReader<'_>,
    ) -> Result<(), durability::CodecError> {
        use durability::CodecError;
        let n_grids = r.usize("seq index grid count")?;
        for _ in 0..n_grids {
            let idx = r.usize("seq index array slot")?;
            let Some(volume) = self.volume else {
                return Err(CodecError::Invalid {
                    context: "seq index array slot",
                    detail: "snapshot has dense grids, this hint backs none".to_string(),
                });
            };
            if idx >= ARRAY_ID_CAP as usize {
                return Err(CodecError::Invalid {
                    context: "seq index array slot",
                    detail: format!("slot {idx} exceeds the array id cap"),
                });
            }
            if idx >= self.grids.len() {
                self.grids.resize(idx + 1, None);
            }
            let grid = self.grids[idx].get_or_insert_with(|| vec![VACANT; volume]);
            let live = r.usize("seq index entry count")?;
            for _ in 0..live {
                let lin = r.usize("seq index slot")?;
                let seq = r.u64("seq index seq")?;
                if lin >= grid.len() {
                    return Err(CodecError::Invalid {
                        context: "seq index slot",
                        detail: format!("slot {lin} outside grid volume {}", grid.len()),
                    });
                }
                grid[lin] = seq;
            }
        }
        let n_spill = r.usize("seq index spill count")?;
        for _ in 0..n_spill {
            let key = ChunkKey::decode_from(r)?;
            let seq = r.u64("seq index spill seq")?;
            self.spill.insert(key, seq);
        }
        Ok(())
    }

    /// The sequence recorded for `key`, if any. O(1).
    pub(super) fn get(&self, key: &ChunkKey) -> Option<u64> {
        if key.array.0 < ARRAY_ID_CAP {
            if let (Some(_), Some(lin)) = (self.volume, self.linearize(&key.coords)) {
                return match self.grids.get(key.array.0 as usize)? {
                    Some(grid) => match grid[lin] {
                        VACANT => None,
                        seq => Some(seq),
                    },
                    None => None,
                };
            }
        }
        self.spill.get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::ArrayId;

    fn key(array: u32, coords: &[i64]) -> ChunkKey {
        ChunkKey::new(ArrayId(array), ChunkCoords::new(coords))
    }

    #[test]
    fn dense_roundtrip_and_vacancy() {
        let mut idx = SeqIndex::new(&[8, 8]);
        assert_eq!(idx.get(&key(0, &[3, 4])), None);
        idx.insert(key(0, &[3, 4]), 17);
        idx.insert(key(1, &[3, 4]), 99); // second array, own grid
        assert_eq!(idx.get(&key(0, &[3, 4])), Some(17));
        assert_eq!(idx.get(&key(1, &[3, 4])), Some(99));
        assert_eq!(idx.get(&key(2, &[3, 4])), None, "unallocated array");
    }

    #[test]
    fn out_of_hint_coordinates_spill() {
        let mut idx = SeqIndex::new(&[4, 4]);
        idx.insert(key(0, &[100, 0]), 1);
        idx.insert(key(0, &[-1, 2]), 2);
        idx.insert(key(0, &[1]), 3); // wrong arity
        assert_eq!(idx.get(&key(0, &[100, 0])), Some(1));
        assert_eq!(idx.get(&key(0, &[-1, 2])), Some(2));
        assert_eq!(idx.get(&key(0, &[1])), Some(3));
    }

    #[test]
    fn oversized_hints_and_huge_array_ids_spill() {
        let mut big = SeqIndex::new(&[1 << 20, 1 << 20]);
        big.insert(key(0, &[5, 5]), 7);
        assert_eq!(big.get(&key(0, &[5, 5])), Some(7));

        let mut idx = SeqIndex::new(&[8]);
        idx.insert(key(u32::MAX - 1, &[2]), 4);
        assert_eq!(idx.get(&key(u32::MAX - 1, &[2])), Some(4));
    }
}
