//! Append: spill-over range partitioning by insert order (paper §4.2).
//!
//! New chunks go to the first node that is not yet at its fill target;
//! when the current target fills, the coordinator spills to the next node
//! in join order. The partitioning table is a list of insert-sequence
//! ranges, one per node, so adding a node is O(1) and scale-out moves no
//! data at all — at the price of poor balance and no dimensional locality.

use super::{Partitioner, PartitionerKind};
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// Append partitioner state.
#[derive(Debug, Clone)]
pub struct Append {
    /// Nodes in join order; `cursor` indexes the current fill target.
    nodes: Vec<NodeId>,
    cursor: usize,
    /// Fraction of capacity filled before spilling to the next node.
    fill: f64,
    /// Insert sequence counter.
    next_seq: u64,
    /// The range table: `(first_seq, node)` entries, ascending by seq.
    ranges: Vec<(u64, NodeId)>,
    /// Sequence number of every placed chunk (for lookups).
    seq_of: BTreeMap<ChunkKey, u64>,
}

impl Append {
    /// Build for the cluster's initial nodes. `fill` ∈ (0, 1] is the
    /// fraction of a node's capacity used before spilling.
    pub fn new(nodes: &[NodeId], fill: f64) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(fill > 0.0 && fill <= 1.0, "fill must be in (0, 1]");
        Append {
            nodes: nodes.to_vec(),
            cursor: 0,
            fill,
            next_seq: 0,
            ranges: Vec::new(),
            seq_of: BTreeMap::new(),
        }
    }

    fn current_target(&mut self, cluster: &Cluster) -> NodeId {
        // Advance past nodes that have reached their fill target. The last
        // node absorbs overflow (the provisioner should have scaled out).
        while self.cursor + 1 < self.nodes.len() {
            let node = self.nodes[self.cursor];
            let n = cluster.node(node).expect("append tracks live nodes");
            let target = (n.capacity_bytes as f64 * self.fill) as u64;
            if n.used_bytes() < target {
                break;
            }
            self.cursor += 1;
        }
        self.nodes[self.cursor]
    }
}

impl Partitioner for Append {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::Append
    }

    fn place(&mut self, desc: &ChunkDescriptor, cluster: &Cluster) -> NodeId {
        let node = self.current_target(cluster);
        let seq = self.next_seq;
        self.next_seq += 1;
        // Open a new range entry on a node's first write.
        match self.ranges.last() {
            Some(&(_, last_node)) if last_node == node => {}
            _ => self.ranges.push((seq, node)),
        }
        self.seq_of.insert(desc.key, seq);
        node
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        let seq = *self.seq_of.get(key)?;
        // Binary search the range table: the entry with the largest
        // first_seq <= seq owns the chunk.
        let idx = self.ranges.partition_point(|&(start, _)| start <= seq);
        debug_assert!(idx > 0, "placed chunk must fall in some range");
        Some(self.ranges[idx - 1].1)
    }

    fn scale_out(&mut self, _cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        // Constant-time: append the new nodes to the roster; they become
        // fill targets when their predecessors fill. No data moves.
        self.nodes.extend_from_slice(new_nodes);
        RebalancePlan::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn run(p: &mut Append, cluster: &mut Cluster, start: i64, count: i64, bytes: u64) {
        for i in start..start + count {
            let d = desc(i, bytes);
            let n = p.place(&d, cluster);
            cluster.place(d, n).unwrap();
        }
    }

    #[test]
    fn fills_nodes_in_join_order() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0);
        run(&mut p, &mut cluster, 0, 4, 30); // 120 bytes total
                                             // Node 0 takes 30+30+30 (90 < 100), the 4th lands on node 0 too
                                             // (90 < 100 still true before placement), then spills.
        assert_eq!(cluster.loads()[0], 120);
        run(&mut p, &mut cluster, 4, 2, 30);
        assert_eq!(cluster.loads(), vec![120, 60]);
    }

    #[test]
    fn scale_out_moves_nothing() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0);
        run(&mut p, &mut cluster, 0, 8, 30);
        let new = cluster.add_nodes(2, 100);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_empty());
        // New nodes are used once earlier ones fill.
        run(&mut p, &mut cluster, 8, 4, 60);
        assert!(cluster.loads()[2] > 0);
    }

    #[test]
    fn locate_agrees_with_cluster() {
        let mut cluster = Cluster::new(3, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0);
        run(&mut p, &mut cluster, 0, 10, 40);
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node), "mismatch for {key}");
        }
        assert_eq!(p.locate(&desc(99, 0).key), None);
    }

    #[test]
    fn last_node_absorbs_overflow() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0);
        run(&mut p, &mut cluster, 0, 10, 100); // way past total capacity
        assert_eq!(cluster.loads()[0], 100);
        assert_eq!(cluster.loads()[1], 900);
    }

    #[test]
    fn fill_factor_spills_early() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 0.5);
        run(&mut p, &mut cluster, 0, 4, 25);
        // Node 0 reaches 50 (its 0.5 target) after two chunks.
        assert_eq!(cluster.loads(), vec![50, 50]);
    }
}
