//! Append: spill-over range partitioning by insert order (paper §4.2).
//!
//! New chunks go to the first node that is not yet at its fill target;
//! when the current target fills, the coordinator spills to the next node
//! in join order. The partitioning table is a list of insert-sequence
//! ranges, one per node, so adding a node is O(1) and scale-out moves no
//! data at all — at the price of poor balance and no dimensional locality.
//!
//! Routing is order-sensitive, so the read-only [`Partitioner::route`]
//! phase reconstructs the batch's fill state from the epoch instead of
//! watching live loads: node quotas form a *staircase* of remaining
//! capacities (from the cursor onward, against epoch-start loads), and a
//! chunk preceded by `P` batch bytes lands on the first step whose
//! cumulative quota exceeds `P`. A chunk that straddles a step boundary
//! overflows its node and correspondingly reduces the next node's share —
//! the batched analogue of the old live-load spill — and the last node
//! absorbs everything past the staircase. For one-chunk epochs (`P = 0`)
//! this degenerates exactly to the classic "first node under its fill
//! target" walk.

use super::{GridHint, Partitioner, PartitionerKind, RouteEpoch};
use crate::partition::seq_index::SeqIndex;
use array_model::{ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};

/// Append partitioner state.
#[derive(Debug, Clone)]
pub struct Append {
    /// Nodes in join order; `cursor` indexes the current fill target.
    nodes: Vec<NodeId>,
    cursor: usize,
    /// Fraction of capacity filled before spilling to the next node.
    fill: f64,
    /// Insert sequence counter.
    next_seq: u64,
    /// The range table: `(first_seq, node)` entries, ascending by seq.
    ranges: Vec<(u64, NodeId)>,
    /// Sequence number of every placed chunk (for lookups): dense
    /// per-array grids with hash spill, O(1) on the hot path.
    seq_of: SeqIndex,
}

impl Append {
    /// Build for the cluster's initial nodes. `fill` ∈ (0, 1] is the
    /// fraction of a node's capacity used before spilling; `grid` sizes
    /// the dense sequence index.
    pub fn new(nodes: &[NodeId], fill: f64, grid: &GridHint) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(fill > 0.0 && fill <= 1.0, "fill must be in (0, 1]");
        Append {
            nodes: nodes.to_vec(),
            cursor: 0,
            fill,
            next_seq: 0,
            ranges: Vec::new(),
            seq_of: SeqIndex::new(&grid.chunk_counts),
        }
    }

    /// A node's fill target in bytes.
    fn target(&self, cluster: &Cluster, node: NodeId) -> u64 {
        let n = cluster.node(node).expect("append tracks live nodes");
        (n.capacity_bytes as f64 * self.fill) as u64
    }
}

impl Partitioner for Append {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::Append
    }

    fn table_snapshot(&self) -> Vec<u8> {
        let mut w = durability::ByteWriter::new();
        super::put_nodes(&mut w, &self.nodes);
        w.put_usize(self.cursor);
        w.put_u64(self.next_seq);
        w.put_usize(self.ranges.len());
        for &(seq, node) in &self.ranges {
            w.put_u64(seq);
            w.put_u32(node.0);
        }
        self.seq_of.snapshot_into(&mut w);
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        self.nodes = super::read_nodes(&mut r, "append nodes")?;
        self.cursor = r.usize("append cursor")?;
        self.next_seq = r.u64("append next seq")?;
        let n = r.usize("append range count")?;
        self.ranges = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let seq = r.u64("append range seq")?;
            let node = NodeId(r.u32("append range node")?);
            self.ranges.push((seq, node));
        }
        self.seq_of.restore_from(&mut r)?;
        r.finish("append snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, ordinal: usize, epoch: &RouteEpoch<'_>) -> NodeId {
        let _ = desc;
        let cluster = epoch.cluster();
        let prefix = epoch.prefix_bytes(ordinal);
        // Walk the staircase of remaining quotas from the cursor; the
        // last node absorbs overflow (the provisioner should have scaled
        // out). Allocation-free, O(nodes) worst case, and usually one
        // step: the batch's prefix lands on the current fill target.
        let mut cum = 0u64;
        let mut i = self.cursor.min(self.nodes.len() - 1);
        loop {
            if i + 1 >= self.nodes.len() {
                return self.nodes[i];
            }
            let node = self.nodes[i];
            let n = cluster.node(node).expect("append tracks live nodes");
            let remaining = self.target(cluster, node).saturating_sub(n.used_bytes());
            cum = cum.saturating_add(remaining);
            if prefix < cum {
                return node;
            }
            i += 1;
        }
    }

    fn commit(&mut self, batch: &[ChunkDescriptor], routes: &[NodeId]) {
        for (desc, &node) in batch.iter().zip(routes) {
            let seq = self.next_seq;
            self.next_seq += 1;
            // Open a new range entry on a node's first write.
            match self.ranges.last() {
                Some(&(_, last_node)) if last_node == node => {}
                _ => self.ranges.push((seq, node)),
            }
            self.seq_of.insert(desc.key, seq);
        }
        // Routes walk the roster monotonically, so the last route is the
        // furthest fill target reached; persist it as the new cursor.
        if let Some(last) = routes.last() {
            if let Some(pos) = self.nodes.iter().position(|n| n == last) {
                self.cursor = self.cursor.max(pos);
            }
        }
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        let seq = self.seq_of.get(key)?;
        // Binary search the range table: the entry with the largest
        // first_seq <= seq owns the chunk.
        let idx = self.ranges.partition_point(|&(start, _)| start <= seq);
        debug_assert!(idx > 0, "placed chunk must fall in some range");
        Some(self.ranges[idx - 1].1)
    }

    fn scale_out(&mut self, _cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        // Constant-time: append the new nodes to the roster; they become
        // fill targets when their predecessors fill. No data moves.
        self.nodes.extend_from_slice(new_nodes);
        RebalancePlan::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn grid() -> GridHint {
        GridHint::new(vec![64])
    }

    fn desc(i: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([i])), bytes, 1)
    }

    fn run(p: &mut Append, cluster: &mut Cluster, start: i64, count: i64, bytes: u64) {
        for i in start..start + count {
            let d = desc(i, bytes);
            let n = p.place(&d, cluster);
            cluster.place(d, n).unwrap();
        }
    }

    #[test]
    fn fills_nodes_in_join_order() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0, &grid());
        run(&mut p, &mut cluster, 0, 4, 30); // 120 bytes total
                                             // Node 0 takes 30+30+30 (90 < 100), the 4th lands on node 0 too
                                             // (90 < 100 still true before placement), then spills.
        assert_eq!(cluster.loads()[0], 120);
        run(&mut p, &mut cluster, 4, 2, 30);
        assert_eq!(cluster.loads(), vec![120, 60]);
    }

    #[test]
    fn scale_out_moves_nothing() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0, &grid());
        run(&mut p, &mut cluster, 0, 8, 30);
        let new = cluster.add_nodes(2, 100);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_empty());
        // New nodes are used once earlier ones fill.
        run(&mut p, &mut cluster, 8, 4, 60);
        assert!(cluster.loads()[2] > 0);
    }

    #[test]
    fn locate_agrees_with_cluster() {
        let mut cluster = Cluster::new(3, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0, &grid());
        run(&mut p, &mut cluster, 0, 10, 40);
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node), "mismatch for {key}");
        }
        assert_eq!(p.locate(&desc(99, 0).key), None);
    }

    #[test]
    fn last_node_absorbs_overflow() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0, &grid());
        run(&mut p, &mut cluster, 0, 10, 100); // way past total capacity
        assert_eq!(cluster.loads()[0], 100);
        assert_eq!(cluster.loads()[1], 900);
    }

    #[test]
    fn fill_factor_spills_early() {
        let mut cluster = Cluster::new(2, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 0.5, &grid());
        run(&mut p, &mut cluster, 0, 4, 25);
        // Node 0 reaches 50 (its 0.5 target) after two chunks.
        assert_eq!(cluster.loads(), vec![50, 50]);
    }

    #[test]
    fn batch_routing_walks_the_quota_staircase() {
        // Routed as one epoch: the prefix sums alone must spill the batch
        // across nodes exactly like live sequential fills would.
        let mut cluster = Cluster::new(3, 100, CostModel::default()).unwrap();
        let mut p = Append::new(&cluster.node_ids(), 1.0, &grid());
        let batch: Vec<ChunkDescriptor> = (0..6).map(|i| desc(i, 40)).collect();
        let prefix = super::super::batch_prefix_bytes(&batch);
        let epoch = RouteEpoch::for_batch(&cluster, &prefix);
        let routes: Vec<NodeId> =
            batch.iter().enumerate().map(|(i, d)| p.route(d, i, &epoch)).collect();
        // Quotas of 100 per node: prefixes 0,40,80 -> n0; 120,160 -> n1
        // (40 of overflow from chunk 2 eats into n1's share); 200 -> n2.
        assert_eq!(
            routes,
            vec![NodeId(0); 3]
                .into_iter()
                .chain([NodeId(1), NodeId(1), NodeId(2)])
                .collect::<Vec<_>>()
        );
        cluster.place_batch(&batch, &routes, 1).unwrap();
        p.commit(&batch, &routes);
        // Cursor persisted: the next single placement continues on node 2.
        assert_eq!(p.place(&desc(10, 10), &cluster), NodeId(2));
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }
}
