//! K-d Tree partitioner (paper §4.2, citing Bentley [9]).
//!
//! The partitioning table is a binary tree over chunk-index space: leaves
//! are hosts, internal nodes are split planes. When a machine joins, the
//! most heavily loaded host splits at the **byte-weighted median** of its
//! chunks along the next dimension in the cycle, handing the upper half to
//! the newcomer. Lookup is a logarithmic tree descent (Figure 2).

use super::{GridHint, Partitioner, PartitionerKind, RouteEpoch};
use array_model::{ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, NodeId, RebalancePlan};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Tree {
    Leaf {
        host: NodeId,
        depth: u32,
        lo: Vec<i64>,
        hi: Vec<i64>, // exclusive, in chunk-index space
    },
    Internal {
        dim: usize,
        split: i64, // coords[dim] < split -> left
        left: Box<Tree>,
        right: Box<Tree>,
    },
}

/// K-d tree partitioner state.
#[derive(Debug, Clone)]
pub struct KdTree {
    root: Tree,
    /// Dimension-cycling order for splits (see [`GridHint::split_priority`]).
    priority: Vec<usize>,
}

impl KdTree {
    /// Build for the initial nodes by midpoint splits (no data yet),
    /// cycling dimensions exactly as later skew-aware splits will.
    pub fn new(nodes: &[NodeId], grid: &GridHint) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let ndims = grid.ndims();
        let lo = vec![0i64; ndims];
        let hi = grid.chunk_counts.clone();
        let mut tree = KdTree {
            root: Tree::Leaf { host: nodes[0], depth: 0, lo, hi },
            priority: grid.split_priority.clone(),
        };
        for &fresh in &nodes[1..] {
            // Before data arrives, split the shallowest (largest) leaf at
            // its midpoint.
            let victim = tree.shallowest_leaf_host();
            tree.split_leaf_midpoint(victim, fresh);
        }
        tree
    }

    fn descend(&self, coords: &[i64]) -> NodeId {
        let mut cur = &self.root;
        loop {
            match cur {
                Tree::Leaf { host, .. } => return *host,
                Tree::Internal { dim, split, left, right } => {
                    cur = if coords[*dim] < *split { left } else { right };
                }
            }
        }
    }

    fn shallowest_leaf_host(&self) -> NodeId {
        fn walk(t: &Tree, best: &mut Option<(u32, NodeId)>) {
            match t {
                Tree::Leaf { host, depth, .. } => {
                    if best.is_none() || depth < &best.unwrap().0 {
                        *best = Some((*depth, *host));
                    }
                }
                Tree::Internal { left, right, .. } => {
                    walk(left, best);
                    walk(right, best);
                }
            }
        }
        let mut best = None;
        walk(&self.root, &mut best);
        best.expect("tree has leaves").1
    }

    /// Find the (unique) leaf owned by `host` and split it at the midpoint
    /// of the cycling dimension. Used during bootstrap and as the fallback
    /// when a victim holds no data.
    fn split_leaf_midpoint(&mut self, host: NodeId, fresh: NodeId) -> bool {
        fn walk(t: &mut Tree, host: NodeId, fresh: NodeId, priority: &[usize]) -> bool {
            match t {
                Tree::Leaf { host: h, depth, lo, hi } if *h == host => {
                    // Pick the first cycling dimension with room to split.
                    for probe in 0..priority.len() {
                        let dim = priority[(*depth as usize + probe) % priority.len()];
                        if hi[dim] - lo[dim] >= 2 {
                            let split = lo[dim] + (hi[dim] - lo[dim]) / 2;
                            replace_with_split(t, dim, split, fresh);
                            return true;
                        }
                    }
                    false
                }
                Tree::Leaf { .. } => false,
                Tree::Internal { left, right, .. } => {
                    walk(left, host, fresh, priority) || walk(right, host, fresh, priority)
                }
            }
        }
        let priority = self.priority.clone();
        walk(&mut self.root, host, fresh, &priority)
    }

    /// Split `host`'s leaf at `split` along `dim` (data-driven path).
    fn split_leaf_at(&mut self, host: NodeId, dim: usize, split: i64, fresh: NodeId) -> bool {
        fn walk(t: &mut Tree, host: NodeId, dim: usize, split: i64, fresh: NodeId) -> bool {
            match t {
                Tree::Leaf { host: h, lo, hi, .. } if *h == host => {
                    if split <= lo[dim] || split >= hi[dim] {
                        return false;
                    }
                    replace_with_split(t, dim, split, fresh);
                    true
                }
                Tree::Leaf { .. } => false,
                Tree::Internal { left, right, .. } => {
                    walk(left, host, dim, split, fresh) || walk(right, host, dim, split, fresh)
                }
            }
        }
        walk(&mut self.root, host, dim, split, fresh)
    }

    fn leaf_info(&self, host: NodeId) -> Option<(u32, Vec<i64>, Vec<i64>)> {
        fn walk(t: &Tree, host: NodeId) -> Option<(u32, Vec<i64>, Vec<i64>)> {
            match t {
                Tree::Leaf { host: h, depth, lo, hi } if *h == host => {
                    Some((*depth, lo.clone(), hi.clone()))
                }
                Tree::Leaf { .. } => None,
                Tree::Internal { left, right, .. } => {
                    walk(left, host).or_else(|| walk(right, host))
                }
            }
        }
        walk(&self.root, host)
    }

    /// Tree depth of the deepest leaf — lookups are O(depth).
    pub fn depth(&self) -> u32 {
        fn walk(t: &Tree) -> u32 {
            match t {
                Tree::Leaf { depth, .. } => *depth,
                Tree::Internal { left, right, .. } => walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }
}

fn put_tree(w: &mut durability::ByteWriter, t: &Tree) {
    match t {
        Tree::Leaf { host, depth, lo, hi } => {
            w.put_u8(0);
            w.put_u32(host.0);
            w.put_u32(*depth);
            w.put_usize(lo.len());
            for &v in lo {
                w.put_i64(v);
            }
            w.put_usize(hi.len());
            for &v in hi {
                w.put_i64(v);
            }
        }
        Tree::Internal { dim, split, left, right } => {
            w.put_u8(1);
            w.put_usize(*dim);
            w.put_i64(*split);
            put_tree(w, left);
            put_tree(w, right);
        }
    }
}

fn read_tree(r: &mut durability::ByteReader<'_>) -> Result<Tree, durability::CodecError> {
    fn read_box(
        r: &mut durability::ByteReader<'_>,
        context: &'static str,
    ) -> Result<Vec<i64>, durability::CodecError> {
        let n = r.usize(context)?;
        if n > array_model::MAX_DIMS {
            return Err(durability::CodecError::Invalid {
                context,
                detail: format!("{n} dims exceed MAX_DIMS {}", array_model::MAX_DIMS),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.i64(context)?);
        }
        Ok(out)
    }
    match r.u8("kd tree node tag")? {
        0 => Ok(Tree::Leaf {
            host: NodeId(r.u32("kd leaf host")?),
            depth: r.u32("kd leaf depth")?,
            lo: read_box(r, "kd leaf lo")?,
            hi: read_box(r, "kd leaf hi")?,
        }),
        1 => Ok(Tree::Internal {
            dim: r.usize("kd split dim")?,
            split: r.i64("kd split plane")?,
            left: Box::new(read_tree(r)?),
            right: Box::new(read_tree(r)?),
        }),
        tag => Err(durability::CodecError::Invalid {
            context: "kd tree node tag",
            detail: format!("unknown tag {tag}"),
        }),
    }
}

fn replace_with_split(t: &mut Tree, dim: usize, split: i64, fresh: NodeId) {
    if let Tree::Leaf { host, depth, lo, hi } = t {
        let mut left_hi = hi.clone();
        left_hi[dim] = split;
        let mut right_lo = lo.clone();
        right_lo[dim] = split;
        let left = Tree::Leaf { host: *host, depth: *depth + 1, lo: lo.clone(), hi: left_hi };
        let right = Tree::Leaf { host: fresh, depth: *depth + 1, lo: right_lo, hi: hi.clone() };
        *t = Tree::Internal { dim, split, left: Box::new(left), right: Box::new(right) };
    } else {
        unreachable!("only leaves are replaced");
    }
}

impl Partitioner for KdTree {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::KdTree
    }

    fn table_snapshot(&self) -> Vec<u8> {
        // The split priority is config-derived; the tree itself (every
        // split plane chosen from data medians) is written recursively.
        let mut w = durability::ByteWriter::new();
        put_tree(&mut w, &self.root);
        w.into_bytes()
    }

    fn table_restore(&mut self, bytes: &[u8]) -> Result<(), durability::CodecError> {
        let mut r = durability::ByteReader::new(bytes);
        self.root = read_tree(&mut r)?;
        r.finish("kd tree snapshot tail")
    }

    fn route(&self, desc: &ChunkDescriptor, _ordinal: usize, _epoch: &RouteEpoch<'_>) -> NodeId {
        // Indices beyond the grid hint still route deterministically: the
        // tree's rightmost leaves have open upper bounds in effect because
        // descent only compares against split planes.
        self.descend(desc.key.coords.as_slice())
    }

    fn locate(&self, key: &ChunkKey) -> Option<NodeId> {
        Some(self.descend(key.coords.as_slice()))
    }

    fn scale_out(&mut self, cluster: &Cluster, new_nodes: &[NodeId]) -> RebalancePlan {
        let mut plan = RebalancePlan::empty();
        let mut loads: BTreeMap<NodeId, u64> =
            cluster.nodes().map(|n| (n.id, n.used_bytes())).collect();
        for &fresh in new_nodes {
            let victim = *loads
                .iter()
                .filter(|(n, _)| !new_nodes.contains(n))
                .max_by(|a, b| a.1.cmp(b.1).then(b.0 .0.cmp(&a.0 .0)))
                .expect("cluster has preexisting nodes")
                .0;
            let Some((depth, lo, hi)) = self.leaf_info(victim) else {
                continue;
            };
            // Victim's chunks, net of earlier planned moves.
            let moved_keys: std::collections::HashSet<&ChunkKey> =
                plan.moves.iter().map(|m| &m.key).collect();
            let resident: Vec<(ChunkCoords, u64, ChunkKey)> = cluster
                .node(victim)
                .ok()
                .map(|node| {
                    node.descriptors()
                        .filter(|d| !moved_keys.contains(&d.key))
                        .map(|d| (d.key.coords, d.bytes, d.key))
                        .collect()
                })
                .unwrap_or_default();
            let total: u64 = resident.iter().map(|(_, b, _)| *b).sum();

            // Cycle dimensions starting at depth % ndims until one admits a
            // byte-weighted median split.
            let mut done = false;
            if total > 0 && resident.len() >= 2 {
                for probe in 0..self.priority.len() {
                    let dim = self.priority[(depth as usize + probe) % self.priority.len()];
                    let mut coords_sorted: Vec<(i64, u64)> =
                        resident.iter().map(|(c, b, _)| (c[dim], *b)).collect();
                    coords_sorted.sort_unstable();
                    let first = coords_sorted[0].0;
                    let mut acc = 0u64;
                    let mut split = None;
                    for &(coord, bytes) in &coords_sorted {
                        if acc * 2 >= total && coord > first {
                            split = Some(coord);
                            break;
                        }
                        acc += bytes;
                    }
                    if split.is_none() {
                        split = coords_sorted.iter().rev().map(|&(c, _)| c).find(|&c| c > first);
                    }
                    let Some(split) = split else { continue };
                    // The split must be interior to the leaf's box on this
                    // dimension (hint overflow can put chunks outside).
                    if split <= lo[dim] || (hi[dim] > lo[dim] && split >= hi[dim]) {
                        continue;
                    }
                    if !self.split_leaf_at(victim, dim, split, fresh) {
                        continue;
                    }
                    let mut moved = 0u64;
                    for (coords, bytes, key) in &resident {
                        if coords[dim] >= split {
                            plan.push(*key, victim, fresh, *bytes);
                            moved += bytes;
                        }
                    }
                    *loads.entry(victim).or_default() -= moved;
                    *loads.entry(fresh).or_default() += moved;
                    done = true;
                    break;
                }
            }
            if !done && self.split_leaf_midpoint(victim, fresh) {
                // No byte-weighted median existed (e.g. the victim holds a
                // single chunk), so the leaf split at its midpoint. Any
                // resident chunk that now descends to the fresh leaf must
                // still move — the table and the placement may never
                // disagree.
                let mut moved = 0u64;
                for (coords, bytes, key) in &resident {
                    if self.descend(coords.as_slice()) == fresh {
                        plan.push(*key, victim, fresh, *bytes);
                        moved += bytes;
                    }
                }
                *loads.entry(victim).or_default() -= moved;
                *loads.entry(fresh).or_default() += moved;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};
    use cluster_sim::CostModel;

    fn desc(x: i64, y: i64, bytes: u64) -> ChunkDescriptor {
        ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y])), bytes, 1)
    }

    fn grid() -> GridHint {
        GridHint::new(vec![10, 10])
    }

    fn insert_grid(p: &mut KdTree, cluster: &mut Cluster, weight: impl Fn(i64, i64) -> u64) {
        for x in 0..10 {
            for y in 0..10 {
                let w = weight(x, y);
                if w == 0 {
                    continue;
                }
                let d = desc(x, y, w);
                let n = p.place(&d, cluster);
                cluster.place(d, n).unwrap();
            }
        }
    }

    #[test]
    fn figure2_style_initial_split() {
        // Two nodes: the domain splits on dim 0 at its midpoint, like the
        // x < 5 root split of Figure 2.
        let cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let p = KdTree::new(&cluster.node_ids(), &grid());
        let left = p.locate(&desc(0, 0, 0).key).unwrap();
        let right = p.locate(&desc(9, 0, 0).key).unwrap();
        assert_ne!(left, right);
        assert_eq!(p.locate(&desc(4, 9, 0).key), Some(left));
        assert_eq!(p.locate(&desc(5, 0, 0).key), Some(right));
    }

    #[test]
    fn skew_aware_split_halves_the_loaded_host() {
        // Left half holds all the weight; adding a node must split the
        // left host, not the right one.
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = KdTree::new(&cluster.node_ids(), &grid());
        insert_grid(&mut p, &mut cluster, |x, _| if x < 5 { 100 } else { 1 });
        let left_host = p.locate(&desc(0, 0, 0).key).unwrap();
        let before = cluster.node(left_host).unwrap().used_bytes();

        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_incremental(&new));
        assert!(plan.moves.iter().all(|m| m.from == left_host));
        cluster.apply_rebalance(&plan).unwrap();
        let after = cluster.node(left_host).unwrap().used_bytes();
        let frac = (before - after) as f64 / before as f64;
        assert!(frac > 0.3 && frac < 0.7, "moved fraction {frac}");
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }

    #[test]
    fn splits_cycle_dimensions() {
        // After the root x-split, splitting a host must cut on y (Figure 2's
        // second split).
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = KdTree::new(&cluster.node_ids(), &grid());
        insert_grid(&mut p, &mut cluster, |x, _| if x < 5 { 100 } else { 1 });
        let new = cluster.add_nodes(1, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        cluster.apply_rebalance(&plan).unwrap();
        // The left half is now split by y: two x<5 chunks with different y
        // can land on different hosts.
        let a = p.locate(&desc(0, 0, 0).key).unwrap();
        let b = p.locate(&desc(0, 9, 0).key).unwrap();
        assert_ne!(a, b, "second split should cut the y dimension");
    }

    #[test]
    fn empty_victim_falls_back_to_midpoint() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = KdTree::new(&cluster.node_ids(), &grid());
        let new = cluster.add_nodes(2, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        assert!(plan.is_empty());
        // All four nodes should own disjoint regions.
        let mut owners = std::collections::BTreeSet::new();
        for x in 0..10 {
            for y in 0..10 {
                owners.insert(p.locate(&desc(x, y, 0).key).unwrap());
            }
        }
        assert_eq!(owners.len(), 4);
    }

    #[test]
    fn lookup_depth_is_logarithmic() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = KdTree::new(&cluster.node_ids(), &grid());
        insert_grid(&mut p, &mut cluster, |_, _| 10);
        for _ in 0..3 {
            let new = cluster.add_nodes(2, u64::MAX);
            let plan = p.scale_out(&cluster, &new);
            cluster.apply_rebalance(&plan).unwrap();
        }
        assert_eq!(cluster.node_count(), 8);
        // 8 hosts: a balanced k-d tree has depth ~3; allow slack for skew.
        assert!(p.depth() <= 6, "depth {} too deep for 8 hosts", p.depth());
        for (key, node) in cluster.placements() {
            assert_eq!(p.locate(&key), Some(node));
        }
    }
}
