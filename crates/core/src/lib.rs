//! # elastic-core
//!
//! The primary contribution of *Incremental Elasticity for Array Databases*
//! (Duggan & Stonebraker, SIGMOD 2014), reimplemented in Rust:
//!
//! * **Elastic partitioners** (§4) — eight data-placement schemes for
//!   n-dimensional array chunks on an expanding shared-nothing cluster,
//!   classified by Table 1's four traits (incremental scale-out,
//!   fine-grained partitioning, skew-awareness, n-dimensional clustering).
//! * **The leading staircase provisioner** (§5) — a proportional-derivative
//!   control loop that decides *when* to add nodes and *how many*, plus the
//!   what-if tuner for its sampling window `s` (Algorithm 1) and the
//!   analytical node-hour cost model for its planning horizon `p`
//!   (Equations 5–9).
//! * **Chunk affinity analysis** (§8's future work) — co-access
//!   observations ranked into co-location advice under a balance cap.

#![warn(missing_docs)]

pub mod affinity;
pub mod hashing;
pub mod partition;
pub mod provision;

pub use affinity::{AffinityAnalyzer, AffinityEdge, PairStats};
pub use partition::{
    batch_prefix_bytes, build_partitioner, route_batch, Append, ConsistentHash, ExtendibleHash,
    GridHint, HilbertCurve, IncrementalQuadtree, KdTree, Partitioner, PartitionerConfig,
    PartitionerFeatures, PartitionerKind, RoundRobin, RouteEpoch, UniformRange,
};
pub use provision::{
    prediction_error, tune_plan_ahead, tune_samples, CostModelParams, PlanAheadReport,
    ProvisionDecision, SampleTuningReport, StaircaseConfig, StaircaseProvisioner,
};
