//! Workload-aware chunk affinity (the paper's future work, §8):
//! "more tightly integrate workloads with data placement … and the
//! individual chunks that stand to benefit most directly from residing on
//! the same server."
//!
//! The analyzer consumes *co-access observations* — every time a query
//! needs two chunks together (a halo exchange, a join pair, a rolling
//! window's predecessor fetch), the executor reports the pair and the
//! bytes involved. Pairs that repeatedly straddle two nodes are candidates
//! for co-location: [`AffinityAnalyzer::propose_moves`] greedily relocates
//! the cheaper side of the hottest cross-node pairs, subject to a node
//! over-load cap, and [`AffinityAnalyzer::estimated_savings`] prices the
//! network time the workload would stop paying every cycle.

use array_model::ChunkKey;
use cluster_sim::{gb, Cluster, CostModel, NodeId, RebalancePlan};
use std::collections::BTreeMap;

/// Accumulated statistics for one (unordered) chunk pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    /// How many times the pair was co-accessed.
    pub count: u64,
    /// Total bytes shipped between the pair's hosts for those accesses.
    pub bytes: u64,
}

/// A co-access candidate, ranked by what co-location would save.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffinityEdge {
    /// First chunk (the smaller key; pairs are unordered).
    pub a: ChunkKey,
    /// Second chunk.
    pub b: ChunkKey,
    /// Accumulated statistics.
    pub stats: PairStats,
}

/// Collects co-access observations and turns them into placement advice.
#[derive(Debug, Clone, Default)]
pub struct AffinityAnalyzer {
    edges: BTreeMap<(ChunkKey, ChunkKey), PairStats>,
}

impl AffinityAnalyzer {
    /// An empty analyzer.
    pub fn new() -> Self {
        AffinityAnalyzer::default()
    }

    /// Record one co-access of `a` and `b` that shipped `bytes` between
    /// their hosts. Order does not matter; self-pairs are ignored.
    /// Allocation-free apart from map growth: keys are `Copy`.
    pub fn observe(&mut self, a: &ChunkKey, b: &ChunkKey, bytes: u64) {
        if a == b {
            return;
        }
        let key = if a <= b { (*a, *b) } else { (*b, *a) };
        let entry = self.edges.entry(key).or_default();
        entry.count += 1;
        entry.bytes += bytes;
    }

    /// Number of distinct pairs observed.
    pub fn pair_count(&self) -> usize {
        self.edges.len()
    }

    /// The `limit` hottest pairs by shipped bytes (ties by count).
    pub fn hottest_pairs(&self, limit: usize) -> Vec<AffinityEdge> {
        let mut edges: Vec<AffinityEdge> = self
            .edges
            .iter()
            .map(|(&(a, b), stats)| AffinityEdge { a, b, stats: *stats })
            .collect();
        edges.sort_by(|x, y| {
            y.stats
                .bytes
                .cmp(&x.stats.bytes)
                .then(y.stats.count.cmp(&x.stats.count))
                .then(x.a.cmp(&y.a))
        });
        edges.truncate(limit);
        edges
    }

    /// Greedy co-location: walk the hottest cross-node pairs and move the
    /// smaller chunk next to its partner, as long as the destination stays
    /// under `max_load_factor × (cluster mean load)`. Returns at most
    /// `max_moves` moves. The plan is advice — callers apply it with
    /// [`Cluster::apply_rebalance`] like any other plan.
    pub fn propose_moves(
        &self,
        cluster: &Cluster,
        max_load_factor: f64,
        max_moves: usize,
    ) -> RebalancePlan {
        assert!(max_load_factor >= 1.0, "cap below the mean forbids every move");
        let mean_load = cluster.total_used() as f64 / cluster.node_count().max(1) as f64;
        let cap = (mean_load * max_load_factor) as u64;

        // Working copies so successive moves see each other's effects.
        let mut loads: BTreeMap<NodeId, u64> =
            cluster.nodes().map(|n| (n.id, n.used_bytes())).collect();
        let mut location: BTreeMap<&ChunkKey, NodeId> = BTreeMap::new();
        let mut sizes: BTreeMap<&ChunkKey, u64> = BTreeMap::new();
        for node in cluster.nodes() {
            for desc in node.descriptors() {
                location.insert(&desc.key, node.id);
                sizes.insert(&desc.key, desc.bytes);
            }
        }

        let mut plan = RebalancePlan::empty();
        let mut moved: BTreeMap<ChunkKey, NodeId> = BTreeMap::new();
        for edge in self.hottest_pairs(usize::MAX) {
            if plan.len() >= max_moves {
                break;
            }
            let loc = |k: &ChunkKey| moved.get(k).copied().or_else(|| location.get(k).copied());
            let (Some(na), Some(nb)) = (loc(&edge.a), loc(&edge.b)) else {
                continue; // pair references chunks not (yet) resident
            };
            if na == nb {
                continue; // already co-located
            }
            // Move the smaller chunk toward the bigger one's host.
            let (sa, sb) = (
                sizes.get(&edge.a).copied().unwrap_or(0),
                sizes.get(&edge.b).copied().unwrap_or(0),
            );
            let (key, from, to, bytes) =
                if sa <= sb { (edge.a, na, nb, sa) } else { (edge.b, nb, na, sb) };
            if moved.contains_key(&key) {
                continue; // each chunk moves at most once per proposal
            }
            let dst_load = loads.get(&to).copied().unwrap_or(0);
            if dst_load + bytes > cap {
                continue; // would overload the destination
            }
            *loads.entry(from).or_default() -= bytes;
            *loads.entry(to).or_default() += bytes;
            moved.insert(key, to);
            plan.push(key, from, to, bytes);
        }
        plan
    }

    /// Network seconds per workload cycle the plan saves: for every pair
    /// that becomes co-located, its observed shipped bytes (and per-access
    /// latency) stop crossing the wire.
    pub fn estimated_savings(
        &self,
        cluster: &Cluster,
        plan: &RebalancePlan,
        cost: &CostModel,
    ) -> f64 {
        // Final locations after the plan.
        let mut location: BTreeMap<ChunkKey, NodeId> = cluster.placements().collect();
        for m in &plan.moves {
            location.insert(m.key, m.to);
        }
        let mut saved = 0.0;
        for ((a, b), stats) in &self.edges {
            let (Some(na), Some(nb)) = (location.get(a), location.get(b)) else {
                continue;
            };
            let was_split = cluster.locate(a) != cluster.locate(b);
            if was_split && na == nb {
                saved += gb(stats.bytes) * cost.net_secs_per_gb
                    + stats.count as f64 * cost.net_latency_secs;
            }
        }
        saved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords, ChunkDescriptor};
    use cluster_sim::CostModel;

    fn key(i: i64) -> ChunkKey {
        ChunkKey::new(ArrayId(0), ChunkCoords::new([i]))
    }

    fn cluster_with(pairs: &[(i64, u64, u32)]) -> Cluster {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        for &(i, bytes, node) in pairs {
            cluster.place(ChunkDescriptor::new(key(i), bytes, 1), NodeId(node)).unwrap();
        }
        cluster
    }

    #[test]
    fn observations_accumulate_unordered() {
        let mut az = AffinityAnalyzer::new();
        az.observe(&key(1), &key(2), 100);
        az.observe(&key(2), &key(1), 50);
        az.observe(&key(1), &key(1), 999); // self-pair ignored
        assert_eq!(az.pair_count(), 1);
        let top = az.hottest_pairs(10);
        assert_eq!(top[0].stats.count, 2);
        assert_eq!(top[0].stats.bytes, 150);
    }

    #[test]
    fn hottest_pairs_rank_by_bytes() {
        let mut az = AffinityAnalyzer::new();
        az.observe(&key(1), &key(2), 10);
        az.observe(&key(3), &key(4), 1000);
        az.observe(&key(5), &key(6), 100);
        let top = az.hottest_pairs(2);
        assert_eq!(top[0].a, key(3));
        assert_eq!(top[1].a, key(5));
    }

    #[test]
    fn proposal_colocates_the_hot_pair() {
        // Chunks 1 (node 0) and 2 (node 1) are co-accessed constantly;
        // chunk 2 is smaller, so it should move to node 0.
        let cluster = cluster_with(&[(1, 1000, 0), (2, 10, 1), (3, 500, 2)]);
        let mut az = AffinityAnalyzer::new();
        for _ in 0..5 {
            az.observe(&key(1), &key(2), 200);
        }
        let plan = az.propose_moves(&cluster, 10.0, 8);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.moves[0].key, key(2));
        assert_eq!(plan.moves[0].from, NodeId(1));
        assert_eq!(plan.moves[0].to, NodeId(0));
    }

    #[test]
    fn load_cap_blocks_overloading_moves() {
        // Destination already holds nearly everything: the cap forbids
        // piling more onto it.
        let cluster = cluster_with(&[(1, 10_000, 0), (2, 5_000, 1)]);
        let mut az = AffinityAnalyzer::new();
        az.observe(&key(1), &key(2), 1_000);
        // mean load = 3750; cap 1.2x = 4500 < 10_000 + 5_000.
        let plan = az.propose_moves(&cluster, 1.2, 8);
        assert!(plan.is_empty(), "cap must hold: {plan:?}");
        // A looser cap admits the move.
        let plan = az.propose_moves(&cluster, 8.0, 8);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn each_chunk_moves_at_most_once() {
        // Chunk 2 is hot with partners on two different nodes; it must not
        // be planned twice.
        let cluster = cluster_with(&[(1, 1000, 0), (2, 10, 1), (3, 1000, 2)]);
        let mut az = AffinityAnalyzer::new();
        az.observe(&key(1), &key(2), 500);
        az.observe(&key(3), &key(2), 400);
        let plan = az.propose_moves(&cluster, 10.0, 8);
        let moves_of_2 = plan.moves.iter().filter(|m| m.key == key(2)).count();
        assert_eq!(moves_of_2, 1);
    }

    #[test]
    fn savings_price_the_healed_pairs() {
        let cluster = cluster_with(&[(1, 1000, 0), (2, 10, 1)]);
        let mut az = AffinityAnalyzer::new();
        az.observe(&key(1), &key(2), 1_000_000_000); // 1 GB shipped
        let plan = az.propose_moves(&cluster, 10.0, 8);
        let cost = CostModel::default();
        let saved = az.estimated_savings(&cluster, &plan, &cost);
        // 1 GB * 12 s/GB + 1 access * latency.
        assert!((saved - (12.0 + cost.net_latency_secs)).abs() < 1e-9, "saved {saved}");
        // No plan, no savings.
        assert_eq!(az.estimated_savings(&cluster, &RebalancePlan::empty(), &cost), 0.0);
    }

    #[test]
    fn max_moves_bounds_the_plan() {
        let cluster = cluster_with(&[
            (1, 100, 0),
            (2, 10, 1),
            (3, 100, 2),
            (4, 10, 3),
            (5, 100, 0),
            (6, 10, 1),
        ]);
        let mut az = AffinityAnalyzer::new();
        az.observe(&key(1), &key(2), 300);
        az.observe(&key(3), &key(4), 200);
        az.observe(&key(5), &key(6), 100);
        let plan = az.propose_moves(&cluster, 10.0, 2);
        assert_eq!(plan.len(), 2);
    }
}
