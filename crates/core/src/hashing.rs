//! Deterministic, dependency-free hashing for the hash partitioners.
//!
//! Placement must be reproducible across runs and platforms, so the hash
//! partitioners use an in-tree FNV-1a (for byte streams) and SplitMix64
//! (for integer mixing) instead of `std`'s randomized `DefaultHasher`.

use array_model::ChunkKey;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: decorrelates sequential integers.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a chunk key to 64 bits.
///
/// Deliberately hashes the chunk **coordinates only**, not the array
/// identity: SciDB assigns chunks to instances by hashing their position,
/// so equally-shaped arrays (e.g. the two MODIS bands) co-locate their
/// join partners. The hash partitioners inherit that behaviour.
pub fn hash_chunk_key(key: &ChunkKey) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(key.coords.ndims() as u64);
    for &c in key.coords.as_slice() {
        eat(c as u64);
    }
    splitmix64(h)
}

/// Hash a (node, replica) pair onto the consistent-hash ring.
pub fn hash_ring_point(node: u32, replica: u32) -> u64 {
    splitmix64((u64::from(node) << 32) | u64::from(replica))
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chunk_key_hash_is_stable_and_sensitive() {
        let k1 = ChunkKey::new(ArrayId(0), ChunkCoords::new([1, 2, 3]));
        let k2 = ChunkKey::new(ArrayId(0), ChunkCoords::new([1, 2, 4]));
        assert_eq!(hash_chunk_key(&k1), hash_chunk_key(&k1));
        assert_ne!(hash_chunk_key(&k1), hash_chunk_key(&k2));
    }

    #[test]
    fn equal_coords_colocate_across_arrays() {
        // SciDB-style: the two MODIS bands hash identically at the same
        // chunk position, keeping the vegetation-index join local.
        let band1 = ChunkKey::new(ArrayId(0), ChunkCoords::new([1, 2, 3]));
        let band2 = ChunkKey::new(ArrayId(1), ChunkCoords::new([1, 2, 3]));
        assert_eq!(hash_chunk_key(&band1), hash_chunk_key(&band2));
    }

    #[test]
    fn ring_points_spread() {
        // 4 nodes x 64 replicas should produce 256 distinct points.
        let mut pts: Vec<u64> =
            (0..4).flat_map(|n| (0..64).map(move |r| hash_ring_point(n, r))).collect();
        pts.sort_unstable();
        pts.dedup();
        assert_eq!(pts.len(), 256);
    }

    #[test]
    fn splitmix_decorrelates() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
