//! Partitioner table snapshot/restore: the recovery path lays a
//! [`Partitioner::table_snapshot`] over a config-rebuilt partitioner and
//! must get bit-identical routing back — for every scheme, after real
//! placement history and a scale-out have shaped the table.

use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, CostModel};
use elastic_core::partition::{
    build_partitioner, GridHint, PartitionerConfig, PartitionerKind, RouteEpoch,
};

fn desc(x: i64, y: i64, bytes: u64) -> ChunkDescriptor {
    ChunkDescriptor::new(ChunkKey::new(ArrayId(0), ChunkCoords::new([x, y])), bytes, 1)
}

#[test]
fn every_partitioner_round_trips_its_table() {
    let grid = GridHint::new(vec![16, 16]);
    let config = PartitionerConfig::default();
    for kind in PartitionerKind::ALL {
        // Shape the table with real history: placements, a scale-out with
        // skewed bytes, then more placements against the grown roster.
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = build_partitioner(kind, &cluster, &grid, &config);
        for x in 0..16 {
            for y in 0..8 {
                let bytes = if x < 4 && y < 4 { 500 } else { 10 };
                let d = desc(x, y, bytes);
                let n = p.place(&d, &cluster);
                cluster.place(d, n).unwrap();
            }
        }
        let new = cluster.add_nodes(2, u64::MAX);
        let plan = p.scale_out(&cluster, &new);
        cluster.apply_rebalance(&plan).unwrap();
        for x in 0..16 {
            for y in 8..16 {
                let d = desc(x, y, 10);
                let n = p.place(&d, &cluster);
                cluster.place(d, n).unwrap();
            }
        }

        // Recovery recipe: same kind + config + roster, snapshot on top.
        let snapshot = p.table_snapshot();
        let mut q = build_partitioner(kind, &cluster, &grid, &config);
        q.table_restore(&snapshot).unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));

        // Every historical placement resolves identically...
        for (key, _) in cluster.placements() {
            assert_eq!(p.locate(&key), q.locate(&key), "{kind}: locate diverged for {key}");
        }
        // ...and future routing decisions agree too (unseen coordinates).
        let epoch = RouteEpoch::single(&cluster);
        for x in 0..16 {
            let d = desc(x, 100 + x, 25);
            assert_eq!(
                p.route(&d, 0, &epoch),
                q.route(&d, 0, &epoch),
                "{kind}: routing diverged for unseen chunk"
            );
        }
        // A second snapshot of the restored table is byte-identical.
        assert_eq!(snapshot, q.table_snapshot(), "{kind}: snapshot not idempotent");
    }
}

#[test]
fn corrupt_snapshots_fail_typed_never_panic() {
    let grid = GridHint::new(vec![16, 16]);
    let config = PartitionerConfig::default();
    for kind in PartitionerKind::ALL {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut p = build_partitioner(kind, &cluster, &grid, &config);
        for x in 0..8 {
            let d = desc(x, x, 10);
            let n = p.place(&d, &cluster);
            cluster.place(d, n).unwrap();
        }
        let snapshot = p.table_snapshot();
        // Every strict prefix must be rejected with a typed error.
        for cut in 0..snapshot.len() {
            let mut q = build_partitioner(kind, &cluster, &grid, &config);
            assert!(
                q.table_restore(&snapshot[..cut]).is_err(),
                "{kind}: truncation at {cut} accepted"
            );
        }
        // Trailing garbage is rejected too (finish() catches it).
        let mut padded = snapshot.clone();
        padded.push(0xAB);
        let mut q = build_partitioner(kind, &cluster, &grid, &config);
        assert!(q.table_restore(&padded).is_err(), "{kind}: trailing byte accepted");
    }
}
