//! A configurable synthetic workload for experimentation and testing.
//!
//! The paper's two use cases pin down specific distributions; this module
//! lets a user sweep the space between them — uniform to point-skewed
//! chunk sizes, flat to trending insert volume — while reusing the same
//! cycle driver and a compact query suite.

use crate::rand_util::{lognormal, rng_for, zipf_weight};
use crate::spec::{CellBatch, SuiteReport, Workload};
use array_model::{
    ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey, Region, ScalarValue,
};
use elastic_core::GridHint;
use query_engine::{ops, Catalog, ExecutionContext, StoredArray};
use serde::{Deserialize, Serialize};

/// The synthetic array's id.
pub const SYNTHETIC: ArrayId = ArrayId(100);

/// How chunk bytes distribute over the spatial grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpatialDistribution {
    /// Log-normal sizes, no spatial structure (MODIS-like when σ is small).
    Uniform {
        /// Log-space standard deviation (0 = all chunks equal).
        sigma: f64,
    },
    /// Zipf-ranked hotspots (AIS-like when the exponent is steep).
    Zipf {
        /// Number of hotspot cells.
        hotspots: usize,
        /// Zipf exponent over hotspot ranks (≈1.4 reproduces 85-in-5).
        exponent: f64,
    },
}

/// A fully configurable cyclic workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticWorkload {
    /// Number of workload cycles.
    pub cycles: usize,
    /// Spatial grid (chunks per side); the array is 3-D: (time, x, y).
    pub grid_side: i64,
    /// Bytes inserted per cycle.
    pub bytes_per_cycle: u64,
    /// Per-cycle volume growth factor (1.0 = flat, >1 trending).
    pub growth: f64,
    /// Spatial size distribution.
    pub distribution: SpatialDistribution,
    /// RNG seed.
    pub seed: u64,
    /// Cells emitted per cycle by the materialized (cell-level) ingest
    /// mode; `0` keeps the workload metadata-only. The grid's chunk
    /// interval is 1, so each emitted cell materializes one chunk at the
    /// heaviest-weighted positions of the cycle's spatial field.
    pub cells_per_cycle: u64,
}

impl Default for SyntheticWorkload {
    fn default() -> Self {
        SyntheticWorkload {
            cycles: 8,
            grid_side: 16,
            bytes_per_cycle: 10_000_000_000,
            growth: 1.0,
            distribution: SpatialDistribution::Uniform { sigma: 0.3 },
            seed: 7,
            cells_per_cycle: 0,
        }
    }
}

impl SyntheticWorkload {
    /// The schema: one measure over (time, x, y).
    pub fn schema(&self) -> ArraySchema {
        ArraySchema::parse(&format!(
            "Synthetic<v:double>[t=0:*,1, x=0:{max},1, y=0:{max},1]",
            max = self.grid_side - 1
        ))
        .expect("synthetic schema is valid")
    }

    fn cell_weight(&self, x: i64, y: i64) -> f64 {
        match self.distribution {
            SpatialDistribution::Uniform { sigma } => {
                let mut rng = rng_for(self.seed, &[1, x, y]);
                lognormal(&mut rng, 1.0, sigma.max(0.0))
            }
            SpatialDistribution::Zipf { hotspots, exponent } => {
                // Hotspot cells are pseudo-randomly scattered; everything
                // else gets a small background weight.
                let mut w = 1e-4;
                for rank in 0..hotspots {
                    let mut rng = rng_for(self.seed, &[2, rank as i64]);
                    let hx = (rand::Rng::gen::<u64>(&mut rng) % self.grid_side as u64) as i64;
                    let hy = (rand::Rng::gen::<u64>(&mut rng) % self.grid_side as u64) as i64;
                    if hx == x && hy == y {
                        w += zipf_weight(rank as u64 + 1, exponent);
                    }
                }
                w
            }
        }
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &'static str {
        "Synthetic"
    }

    fn cycles(&self) -> usize {
        self.cycles
    }

    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(SYNTHETIC, self.schema(), []));
    }

    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        let volume = self.bytes_per_cycle as f64 * self.growth.powi(cycle as i32);
        let mut weights = Vec::with_capacity((self.grid_side * self.grid_side) as usize);
        let mut total = 0.0;
        for x in 0..self.grid_side {
            for y in 0..self.grid_side {
                let w = self.cell_weight(x, y);
                weights.push((x, y, w));
                total += w;
            }
        }
        weights
            .into_iter()
            .map(|(x, y, w)| {
                let bytes = (volume * w / total) as u64;
                ChunkDescriptor::new(
                    ChunkKey::new(SYNTHETIC, ChunkCoords::new([cycle as i64, x, y])),
                    bytes,
                    bytes / 64 + 1,
                )
            })
            .collect()
    }

    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }

    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        if self.cells_per_cycle == 0 {
            return None;
        }
        // Rank the cycle's spatial positions by the same weight field the
        // metadata mode samples sizes from, and materialize one cell at
        // each of the heaviest positions — skew carries over into which
        // chunks exist and how large the hot region is.
        let mut weights: Vec<(i64, i64, f64)> = Vec::new();
        for x in 0..self.grid_side {
            for y in 0..self.grid_side {
                weights.push((x, y, self.cell_weight(x, y)));
            }
        }
        weights.sort_by(|a, b| {
            b.2.partial_cmp(&a.2).expect("finite weights").then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        let take = (self.cells_per_cycle as usize).min(weights.len());
        let mut batch = CellBatch::new(SYNTHETIC, &self.schema());
        let mut vals: Vec<ScalarValue> = Vec::with_capacity(1);
        for &(x, y, _) in &weights[..take] {
            let mut rng = rng_for(self.seed, &[3, cycle as i64, x, y]);
            let v = lognormal(&mut rng, 100.0, 0.5);
            vals.push(ScalarValue::Double(v));
            batch.push(&[cycle as i64, x, y], &mut vals);
        }
        Some(vec![batch])
    }

    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![self.cycles as i64, self.grid_side, self.grid_side])
            .with_split_priority(vec![1, 2])
            .with_curve_dims(vec![1, 2])
    }

    fn run_suites(&self, ctx: &ExecutionContext<'_>, cycle: usize) -> SuiteReport {
        let mut report = SuiteReport::default();
        let c = cycle as i64;
        let full = Region::new(vec![0, 0, 0], vec![c, self.grid_side - 1, self.grid_side - 1]);
        if let Ok((_, stats)) = ops::subarray(ctx, SYNTHETIC, &full, &["v"]) {
            report.push("spj/selection", stats);
        }
        let newest = Region::new(vec![c, 0, 0], vec![c, self.grid_side - 1, self.grid_side - 1]);
        let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![4, 4]);
        if let Ok((_, stats)) =
            ops::grid_aggregate(ctx, SYNTHETIC, Some(&newest), "v", &spec, ops::AggFn::Count)
        {
            report.push("science/statistics", stats);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{RunnerConfig, ScalingPolicy, WorkloadRunner};
    use cluster_sim::CostModel;
    use elastic_core::{PartitionerConfig, PartitionerKind};

    fn config(kind: PartitionerKind) -> RunnerConfig {
        RunnerConfig {
            node_capacity: 25_000_000_000,
            initial_nodes: 2,
            partitioner: kind,
            partitioner_config: PartitionerConfig::default(),
            scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
            cost: CostModel::default(),
            run_queries: true,
            ingest_threads: 1,
            string_encoding: array_model::StringEncoding::default(),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn uniform_volume_is_exactly_partitioned() {
        let w = SyntheticWorkload::default();
        let batch = w.insert_batch(0);
        assert_eq!(batch.len(), 256);
        let total: u64 = batch.iter().map(|d| d.bytes).sum();
        let target = w.bytes_per_cycle;
        assert!(
            (total as f64 - target as f64).abs() < target as f64 * 0.01,
            "volume off target: {total} vs {target}"
        );
    }

    #[test]
    fn growth_compounds() {
        let w = SyntheticWorkload { growth: 1.5, ..Default::default() };
        let v0: u64 = w.insert_batch(0).iter().map(|d| d.bytes).sum();
        let v2: u64 = w.insert_batch(2).iter().map(|d| d.bytes).sum();
        let ratio = v2 as f64 / v0 as f64;
        assert!((ratio - 2.25).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn zipf_mode_produces_heavy_skew() {
        let w = SyntheticWorkload {
            distribution: SpatialDistribution::Zipf { hotspots: 8, exponent: 1.4 },
            ..Default::default()
        };
        let mut sizes: Vec<u64> = w.insert_batch(0).iter().map(|d| d.bytes).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top8: u64 = sizes[..8].iter().sum();
        assert!(
            top8 as f64 / total as f64 > 0.8,
            "hotspots should dominate: {}",
            top8 as f64 / total as f64
        );
    }

    #[test]
    fn runs_end_to_end_with_the_driver() {
        let w = SyntheticWorkload { cycles: 5, ..Default::default() };
        let report =
            WorkloadRunner::new(&w, config(PartitionerKind::HilbertCurve)).run_all().unwrap();
        assert_eq!(report.cycles.len(), 5);
        assert!(report.cycles.last().unwrap().nodes > 2, "must scale out");
        for c in &report.cycles {
            let suites = c.suites.as_ref().unwrap();
            assert_eq!(suites.queries.len(), 2);
        }
    }

    #[test]
    fn skewed_and_uniform_modes_separate_partitioners() {
        let uniform = SyntheticWorkload { cycles: 5, ..Default::default() };
        let skewed = SyntheticWorkload {
            cycles: 5,
            distribution: SpatialDistribution::Zipf { hotspots: 6, exponent: 1.5 },
            ..Default::default()
        };
        let rsd = |w: &SyntheticWorkload, kind| {
            WorkloadRunner::new(w, config(kind)).run_all().unwrap().mean_rsd()
        };
        // Uniform Range handles the uniform mode fine but collapses on the
        // skewed one (its static tree cannot react to hotspots). A
        // skew-aware splitter copes far better with the same input.
        let ur_uniform = rsd(&uniform, PartitionerKind::UniformRange);
        let ur_skewed = rsd(&skewed, PartitionerKind::UniformRange);
        assert!(ur_skewed > 2.0 * ur_uniform, "UR: {ur_uniform} vs {ur_skewed}");
        let hilbert_skewed = rsd(&skewed, PartitionerKind::HilbertCurve);
        assert!(
            hilbert_skewed < ur_skewed,
            "skew-aware Hilbert ({hilbert_skewed}) should beat static UR ({ur_skewed})"
        );
        // Note: with only ~6 atomic hotspot columns, even fine-grained
        // schemes cannot balance *bytes* — there are fewer heavy units
        // than nodes. That is the paper's point-skew regime.
    }
}
