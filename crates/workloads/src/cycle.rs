//! The cyclic workload driver (paper §3.4): ingest → (provision +
//! reorganize) → query, repeated per cycle, with node-hour accounting
//! (Equation 1).
//!
//! Two scaling policies drive the experiments:
//!
//! * [`ScalingPolicy::FixedStep`] — the §6.2 partitioner schedule: start
//!   small, add a fixed number of nodes whenever demand crosses the
//!   capacity trigger;
//! * [`ScalingPolicy::Staircase`] — the §6.3 leading-staircase controller.

use crate::durable::{self, DurabilityConfig};
use crate::faults::{ErrorPolicy, FaultKind, FaultPlan};
use crate::spec::{CellBatch, SuiteReport, Workload};
use array_model::{
    Array, ArrayError, ArrayId, ArraySchema, CellBuffer, ChunkCoords, ChunkDescriptor, ChunkKey,
    DeltaSet, StringEncoding,
};
use cluster_sim::{
    gb, Cluster, ClusterError, CostModel, Flakiness, FlowSet, MidCrash, NodeHoursLedger, NodeId,
    PhaseBreakdown, RebalancePlan,
};
use durability::{
    frame_record, ByteReader, ByteWriter, DurabilityError, FsyncPolicy, RecordReader, SharedLog,
};
use elastic_core::{
    batch_prefix_bytes, build_partitioner, route_batch, Partitioner, PartitionerConfig,
    PartitionerKind, ProvisionDecision, RouteEpoch, StaircaseConfig, StaircaseProvisioner,
};
use query_engine::view::{ViewDef, ViewRegistry};
use query_engine::{Catalog, ExecutionContext};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// What went wrong while driving a cycle. Workload batches are supposed to
/// be collision-free, but a buggy (or adversarial) generator that re-emits
/// a chunk key — e.g. a derived batch overlapping an earlier cycle's
/// products — now surfaces here instead of panicking the driver; the
/// cluster itself rolls the offending batch back.
#[derive(Debug, Clone, PartialEq)]
pub enum CycleError {
    /// The insert batch failed to place.
    Ingest {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying cluster rejection (typically a duplicate chunk).
        source: ClusterError,
    },
    /// The derived (query-product) batch failed to place.
    Derived {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying cluster rejection.
        source: ClusterError,
    },
    /// A scale-out rebalance plan was inconsistent with the placement.
    Reorg {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying cluster rejection.
        source: ClusterError,
    },
    /// A materialized cell batch could not be built into chunks (cell out
    /// of the declared space, wrong arity or attribute types, or a chunk
    /// position revisited across cycles).
    Materialize {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying array-model rejection.
        source: ArrayError,
    },
    /// A materialized cell batch targeted an array id the workload never
    /// registered in the catalog.
    UnknownArray {
        /// Cycle that failed.
        cycle: usize,
        /// The unregistered array id the batch named.
        array: ArrayId,
    },
    /// A scheduled fault could not be injected (crashing the last serving
    /// node, draining a non-healthy node, reviving a node that is not
    /// crashed, or naming a node outside the roster).
    Fault {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying cluster rejection.
        source: ClusterError,
    },
    /// Post-recovery verification failed: the replica index and the node
    /// stores disagree after a repair pass — the recovery subsystem left
    /// the books inconsistent.
    Recovery {
        /// Cycle that failed.
        cycle: usize,
        /// The bookkeeping violation the audit found.
        source: ClusterError,
    },
    /// The cycle's retraction script could not be applied to the
    /// cluster's stored payloads (a chunk lost its payload, or the
    /// shrink left the books inconsistent).
    Retract {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying cluster rejection.
        source: ClusterError,
    },
    /// A scale-in decommission failed mid-drain. The cluster cancels
    /// the drain itself (the node returns to service); the error
    /// records why the release was abandoned.
    ScaleIn {
        /// Cycle that failed.
        cycle: usize,
        /// Underlying cluster rejection.
        source: ClusterError,
    },
    /// The durability subsystem failed: a write-ahead append or
    /// checkpoint could not be stored, a recovered log was torn or
    /// corrupt beyond repair, or a replayed cycle diverged byte-for-byte
    /// from what the log recorded. Divergence is always surfaced here —
    /// recovery never returns a state it could not prove.
    Durability {
        /// Cycle that failed (the cycle being logged or replayed).
        cycle: usize,
        /// Underlying durability failure.
        source: DurabilityError,
    },
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::Ingest { cycle, source } => {
                write!(f, "cycle {cycle}: insert batch rejected: {source}")
            }
            CycleError::Derived { cycle, source } => {
                write!(f, "cycle {cycle}: derived batch rejected: {source}")
            }
            CycleError::Reorg { cycle, source } => {
                write!(f, "cycle {cycle}: rebalance plan rejected: {source}")
            }
            CycleError::Materialize { cycle, source } => {
                write!(f, "cycle {cycle}: cell batch rejected: {source}")
            }
            CycleError::UnknownArray { cycle, array } => {
                write!(f, "cycle {cycle}: cell batch targets {array}, which is not in the catalog")
            }
            CycleError::Fault { cycle, source } => {
                write!(f, "cycle {cycle}: fault injection refused: {source}")
            }
            CycleError::Recovery { cycle, source } => {
                write!(f, "cycle {cycle}: post-recovery audit failed: {source}")
            }
            CycleError::Retract { cycle, source } => {
                write!(f, "cycle {cycle}: retraction script rejected: {source}")
            }
            CycleError::ScaleIn { cycle, source } => {
                write!(f, "cycle {cycle}: scale-in decommission failed: {source}")
            }
            CycleError::Durability { cycle, source } => {
                write!(f, "cycle {cycle}: durability: {source}")
            }
        }
    }
}

impl std::error::Error for CycleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CycleError::Ingest { source, .. }
            | CycleError::Derived { source, .. }
            | CycleError::Reorg { source, .. }
            | CycleError::Fault { source, .. }
            | CycleError::Recovery { source, .. }
            | CycleError::Retract { source, .. }
            | CycleError::ScaleIn { source, .. } => Some(source),
            CycleError::Materialize { source, .. } => Some(source),
            CycleError::Durability { source, .. } => Some(source),
            CycleError::UnknownArray { .. } => None,
        }
    }
}

/// When and how the cluster grows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// Never scale (baseline for tests).
    Fixed,
    /// Add `add` nodes whenever projected demand exceeds
    /// `trigger × total capacity` (the Figure 4–7 schedule uses
    /// `add = 2, trigger = 0.8`).
    FixedStep {
        /// Nodes added per scale-out event.
        add: usize,
        /// Demand fraction of capacity that trips a scale-out.
        trigger: f64,
    },
    /// The §5 leading-staircase PD controller.
    Staircase(StaircaseConfig),
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Per-node capacity in bytes (paper: 100 GB).
    pub node_capacity: u64,
    /// Nodes at cycle 0 (paper: 2).
    pub initial_nodes: usize,
    /// Which partitioner to drive.
    pub partitioner: PartitionerKind,
    /// Partitioner tunables.
    pub partitioner_config: PartitionerConfig,
    /// Scaling policy.
    pub scaling: ScalingPolicy,
    /// Cost constants.
    pub cost: CostModel,
    /// Run the query suites each cycle (disable for placement-only runs).
    pub run_queries: bool,
    /// OS threads for the sharded ingest fan-out (routing + placement).
    /// `1` runs the same phases inline; results are identical either way.
    pub ingest_threads: usize,
    /// Physical representation of string columns in materialized chunks.
    /// The default dictionary-encodes them; [`StringEncoding::Plain`]
    /// stores one heap `String` per value. Query answers are identical
    /// either way (pinned by `tests/materialized_queries.rs`); byte
    /// accounting, and therefore placement, legitimately differs.
    pub string_encoding: StringEncoding,
    /// Copies kept of every chunk (`k`). The default `1` is the paper's
    /// single-copy model and is bit-identical to the pre-replication
    /// runner (pinned by `tests/fault_recovery.rs`); `k ≥ 2` adds
    /// deterministically routed replicas that crashes fail over to.
    pub replication: usize,
    /// Scheduled fault injection; `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// What [`WorkloadRunner::run_all`] does when a cycle fails.
    pub on_error: ErrorPolicy,
    /// Automatic tombstone GC: a placed chunk whose tombstone count
    /// reaches this fraction of its physical rows is compacted in the
    /// retraction step (store and oracle copies in lockstep), bounding
    /// the space amplification on-demand compaction left unbounded.
    /// `f64::INFINITY` disables the sweep. The default `0.5` keeps a
    /// chunk's dead rows below half its storage.
    pub gc_tombstone_ratio: f64,
    /// Second, byte-denominated GC trigger: a placed chunk whose
    /// dangling dictionary bytes (interned strings no live row
    /// references — tombstoning frees only the 4-byte code, the string
    /// stays until compaction) reach this count is compacted in the
    /// retraction step, even when its *row* ratio is still below
    /// [`RunnerConfig::gc_tombstone_ratio`]. Catches the churn shape
    /// where a few huge strings die early in a chunk that keeps
    /// accumulating live rows. `u64::MAX` (the default) disables it.
    pub gc_dangling_dict_bytes: u64,
    /// Crash-consistent durability: when set, every cycle's logical
    /// events are written ahead to the configured log and the full
    /// runner state checkpoints periodically, so
    /// [`WorkloadRunner::recover`] can rebuild the exact pre-crash
    /// state. `None` (the default) runs purely in memory with zero
    /// logging overhead.
    pub durability: Option<DurabilityConfig>,
}

impl RunnerConfig {
    /// The §6.2 experimental setup for a given partitioner: 2 nodes,
    /// 100 GB each, +2 nodes at 80 % demand, queries on.
    pub fn paper_section62(partitioner: PartitionerKind) -> Self {
        RunnerConfig { partitioner, ..RunnerConfig::default() }
    }
}

impl Default for RunnerConfig {
    /// [`RunnerConfig::paper_section62`] with the consistent-hash
    /// partitioner: the baseline every experiment varies from.
    fn default() -> Self {
        RunnerConfig {
            node_capacity: 100_000_000_000,
            initial_nodes: 2,
            partitioner: PartitionerKind::ConsistentHash,
            partitioner_config: PartitionerConfig::default(),
            scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
            cost: CostModel::default(),
            run_queries: true,
            ingest_threads: 1,
            string_encoding: StringEncoding::default(),
            replication: 1,
            fault_plan: None,
            on_error: ErrorPolicy::default(),
            gc_tombstone_ratio: 0.5,
            gc_dangling_dict_bytes: u64::MAX,
            durability: None,
        }
    }
}

/// What happened in one workload cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleReport {
    /// Cycle index (0-based).
    pub cycle: usize,
    /// Nodes in service after any scale-out or scale-in this cycle
    /// (retired nodes keep their roster slot but are not counted).
    pub nodes: usize,
    /// Nodes added this cycle (0 when no scale-out).
    pub added_nodes: usize,
    /// Nodes drained and retired by a scale-in this cycle.
    pub removed_nodes: usize,
    /// Total stored demand after the cycle, in GB.
    pub demand_gb: f64,
    /// Insert / reorg / query durations.
    pub phases: PhaseBreakdown,
    /// Relative standard deviation of node loads right after the insert.
    pub rsd_after_insert: f64,
    /// Bytes relocated by the reorganization.
    pub moved_bytes: u64,
    /// Bytes ingested.
    pub insert_bytes: u64,
    /// Cells tombstoned by this cycle's retraction script.
    pub retracted_cells: u64,
    /// Chunks the retraction script emptied outright and the driver
    /// evicted from the placement.
    pub evicted_chunks: usize,
    /// Bytes still carried by those evicted chunks (dangling dictionary
    /// entries and the like — fully-retracted plain columns evict at
    /// zero bytes, since every cell's bytes were already freed).
    pub evicted_bytes: u64,
    /// True when the scaling policy wanted more nodes than its per-cycle
    /// safety cap allows: demand exceeded the trigger level even after
    /// this cycle's scale-out. Previously this was dropped silently.
    pub scale_saturated: bool,
    /// Nodes in the `Crashed` state when the cycle ended.
    pub crashed_nodes: usize,
    /// Chunks still below the effective copy target when the cycle ended
    /// (zero once recovery converges; includes chunks lost outright).
    pub under_replicated: usize,
    /// Bytes moved by this cycle's repair flows.
    pub repair_bytes: u64,
    /// Failed repair attempts that were retried with backoff.
    pub repair_retries: u64,
    /// Query-phase chunk reads served by something other than a healthy
    /// primary (replica failover or the catalog oracle).
    pub degraded_reads: u64,
    /// Chunks the automatic tombstone GC compacted this cycle (store
    /// and oracle copies counted once).
    pub gc_compacted_chunks: usize,
    /// Net bytes the GC compactions reclaimed (negative if a spill
    /// reversal grew a rebuilt column).
    pub gc_reclaimed_bytes: i64,
    /// Delta rows (inserts + retractions) consumed by registered
    /// incremental views this cycle.
    pub view_delta_rows: u64,
    /// Output rows/groups those view updates changed.
    pub view_rows_changed: u64,
    /// Per-query benchmark results (when queries ran).
    pub suites: Option<SuiteReport>,
}

/// A cycle [`WorkloadRunner::run_all`] abandoned under
/// [`ErrorPolicy::RecordAndContinue`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedCycle {
    /// The cycle that failed.
    pub cycle: usize,
    /// The rendered [`CycleError`].
    pub error: String,
}

/// Full-run summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheme that produced the run.
    pub partitioner: PartitionerKind,
    /// Per-cycle detail.
    pub cycles: Vec<CycleReport>,
    /// Cycles that failed and were skipped — empty under
    /// [`ErrorPolicy::Abort`] (the run errors instead) and on clean runs.
    pub failures: Vec<FailedCycle>,
}

impl RunReport {
    /// Mean balance (RSD) across inserts, as Figure 4's labels report.
    pub fn mean_rsd(&self) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().map(|c| c.rsd_after_insert).sum::<f64>() / self.cycles.len() as f64
    }

    /// Total seconds in each phase across the run.
    pub fn phase_totals(&self) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::default();
        for c in &self.cycles {
            out.insert_secs += c.phases.insert_secs;
            out.reorg_secs += c.phases.reorg_secs;
            out.query_secs += c.phases.query_secs;
            out.repair_secs += c.phases.repair_secs;
        }
        out
    }

    /// Total SPJ-suite seconds (Figure 5).
    pub fn spj_secs(&self) -> f64 {
        self.cycles.iter().filter_map(|c| c.suites.as_ref()).map(SuiteReport::spj_secs).sum()
    }

    /// Total Science-suite seconds (Figure 5).
    pub fn science_secs(&self) -> f64 {
        self.cycles.iter().filter_map(|c| c.suites.as_ref()).map(SuiteReport::science_secs).sum()
    }

    /// Total chunks skipped by zone-map pruning across every suite run —
    /// how much scan work the vectorized layer refuted before payloads.
    pub fn chunks_pruned(&self) -> u64 {
        self.cycles.iter().filter_map(|c| c.suites.as_ref()).map(SuiteReport::chunks_pruned).sum()
    }

    /// Per-cycle elapsed seconds of one named query (Figures 6 and 7).
    pub fn query_series(&self, name: &str) -> Vec<f64> {
        self.cycles
            .iter()
            .map(|c| c.suites.as_ref().and_then(|s| s.query(name)).map_or(0.0, |q| q.elapsed_secs))
            .collect()
    }

    /// Equation 1 node-hours for the whole run.
    pub fn node_hours(&self) -> f64 {
        let mut ledger = NodeHoursLedger::new();
        for c in &self.cycles {
            ledger.record(c.nodes, c.phases);
        }
        ledger.node_hours()
    }
}

/// Below this row count a parallel build cannot win: thread spawn and
/// merge overhead dwarf the copying, so small batches run inline.
const PARALLEL_BUILD_MIN_ROWS: usize = 4_096;

/// Deterministically assign a chunk to one of `workers` build workers.
/// Pure in the chunk coordinates, so every row of a chunk lands on the
/// same worker whatever the row order — a chunk is always built whole by
/// exactly one thread. Uses the in-tree `splitmix64` fold (the same
/// deterministic hashing discipline as the hash partitioners) — cheap
/// enough to run once per row in the serial pre-fan-out pass, unlike a
/// fresh `DefaultHasher` per coordinate.
fn build_worker_of(coords: &ChunkCoords, workers: usize) -> usize {
    let mut h = coords.ndims() as u64;
    for &c in coords.as_slice() {
        h = elastic_core::hashing::splitmix64(h ^ c as u64);
    }
    (h % workers as u64) as usize
}

/// Build one flat cell batch into an [`Array`] of real chunks, fanning
/// the chunk construction out over up to `threads` scoped workers.
///
/// The batch is validated once (shape via [`CellBuffer::matches`], bounds
/// via [`CellBuffer::route`]), then rows are sharded by their owning
/// chunk (`chunk_of` is pure in the cell) onto workers that build
/// **disjoint** chunk sets; the per-worker arrays merge through
/// [`Array::absorb`] into one deterministic, row-major result. Every
/// chunk receives its rows in batch order regardless of which worker
/// built it, so the output is **bit-identical** to the sequential build
/// at every thread count.
///
/// The batch is consumed: the single-threaded path moves its
/// variable-width values straight into the chunks
/// ([`Array::insert_batch_owned`] — zero per-value allocations), while
/// the sharded path clones from the shared buffer (workers cannot move
/// out of a batch they all read) and drops it afterwards.
pub fn build_cell_array(
    id: ArrayId,
    schema: ArraySchema,
    rows: CellBuffer,
    threads: usize,
) -> Result<Array, ArrayError> {
    build_cell_array_encoded(id, schema, rows, threads, StringEncoding::default())
}

/// [`build_cell_array`] with an explicit storage-side string encoding:
/// the default dictionary-encodes chunk string columns (a batch whose
/// transport is also dictionary-encoded scatters them as `u32` code
/// remaps); [`StringEncoding::Plain`] reproduces the one-`String`-per-
/// value representation for differential comparison.
pub fn build_cell_array_encoded(
    id: ArrayId,
    schema: ArraySchema,
    rows: CellBuffer,
    threads: usize,
    encoding: StringEncoding,
) -> Result<Array, ArrayError> {
    let mut fresh = Array::with_encoding(id, schema, encoding);
    let workers = threads.max(1);
    if workers == 1 || rows.len() < PARALLEL_BUILD_MIN_ROWS {
        // Inline build: one validation + route pass, values moved.
        fresh.insert_batch_owned(rows)?;
        return Ok(fresh);
    }
    rows.matches(&fresh.schema)?;
    let routed = rows.route(&fresh.schema)?;
    // Bucket row indices by owning worker (pure in the chunk), keeping
    // batch order within each bucket.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); workers];
    for (r, coords) in routed.iter().enumerate() {
        buckets[build_worker_of(coords, workers)].push(r as u32);
    }
    let parts: Vec<Array> = std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                let schema = fresh.schema.clone();
                let routed = &routed;
                let rows = &rows;
                scope.spawn(move || {
                    let mut part = Array::with_encoding(id, schema, encoding);
                    part.insert_routed_rows(rows, routed, bucket)
                        .expect("batch was validated against this same schema");
                    part
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("build worker panicked")).collect()
    });
    for part in parts {
        // Worker chunk sets are disjoint by construction, so every merge
        // is a wholesale move of fresh positions.
        fresh.absorb(part)?;
    }
    Ok(fresh)
}

enum WorkloadRef<'w> {
    Borrowed(&'w dyn Workload),
    Owned(Box<dyn Workload>),
}

impl WorkloadRef<'_> {
    fn get(&self) -> &dyn Workload {
        match self {
            WorkloadRef::Borrowed(w) => *w,
            WorkloadRef::Owned(w) => w.as_ref(),
        }
    }
}

/// The runner's live durability wiring (present when
/// [`RunnerConfig::durability`] is set).
struct DurableState {
    log: SharedLog,
    checkpoint_every: usize,
    fsync: FsyncPolicy,
    /// [`durable::config_fingerprint`] of this run, written as the log's
    /// genesis record and cross-checked on recovery.
    fingerprint: u64,
    /// Whether the genesis record has been appended (lazily, at the
    /// first cycle — construction stays infallible).
    genesis_written: bool,
}

/// Drives one workload against one partitioner and scaling policy.
pub struct WorkloadRunner<'w> {
    workload: WorkloadRef<'w>,
    config: RunnerConfig,
    cluster: Cluster,
    catalog: Catalog,
    partitioner: Box<dyn Partitioner>,
    provisioner: Option<StaircaseProvisioner>,
    views: ViewRegistry,
    durable: Option<DurableState>,
    /// Replay mode: the logged record payloads of the cycle being
    /// re-executed. Each recomputed record is byte-compared against the
    /// front of this queue instead of being appended.
    replay: Option<VecDeque<Vec<u8>>>,
    /// First cycle [`WorkloadRunner::run_all`] executes — `0` for a
    /// fresh runner, the first un-logged cycle after a recovery.
    start_cycle: usize,
}

impl<'w> WorkloadRunner<'w> {
    /// Set up the cluster, catalog, partitioner, and (if configured)
    /// provisioner, borrowing the workload.
    pub fn new(workload: &'w dyn Workload, config: RunnerConfig) -> Self {
        Self::build(WorkloadRef::Borrowed(workload), config)
    }

    /// Like [`WorkloadRunner::new`] but taking ownership of the workload
    /// (useful where a borrow cannot outlive its scope).
    pub fn new_owned(
        workload: impl Workload + 'static,
        config: RunnerConfig,
    ) -> WorkloadRunner<'static> {
        WorkloadRunner::build(WorkloadRef::Owned(Box::new(workload)), config)
    }

    fn build(workload: WorkloadRef<'_>, config: RunnerConfig) -> WorkloadRunner<'_> {
        let mut cluster = Cluster::with_replication(
            config.initial_nodes,
            config.node_capacity,
            config.cost.clone(),
            config.replication,
        )
        .expect("initial node count is positive");
        let mut catalog = Catalog::new();
        workload.get().register_arrays(&mut catalog);
        // Register every array's chunk-grid extents so the cluster's
        // placement index runs dense (O(1), allocation-free) instead of
        // hashing. Unbounded dimensions take the workload's grid hint as
        // their expected extent — exceeding it only spills to a hash map.
        let hint = workload.get().grid_hint();
        for stored in catalog.arrays() {
            let extents: Vec<i64> = stored
                .schema
                .dimensions
                .iter()
                .enumerate()
                .map(|(d, dim)| {
                    dim.chunk_count()
                        .or_else(|| {
                            (stored.schema.ndims() == hint.ndims()).then(|| hint.chunk_counts[d])
                        })
                        .unwrap_or(1024)
                        .max(1)
                })
                .collect();
            cluster.register_array(stored.id, &extents);
        }
        let mut pconfig = config.partitioner_config.clone();
        if pconfig.quad_plane.is_none() {
            pconfig.quad_plane = Some(workload.get().quad_plane());
        }
        let partitioner =
            build_partitioner(config.partitioner, &cluster, &workload.get().grid_hint(), &pconfig);
        let provisioner = match &config.scaling {
            ScalingPolicy::Staircase(cfg) => Some(StaircaseProvisioner::new(*cfg)),
            _ => None,
        };
        let durable = config.durability.as_ref().map(|d| DurableState {
            log: d.log.clone(),
            checkpoint_every: d.checkpoint_every,
            fsync: d.fsync_policy,
            fingerprint: durable::config_fingerprint(
                &config,
                workload.get().name(),
                workload.get().cycles(),
            ),
            genesis_written: false,
        });
        WorkloadRunner {
            workload,
            config,
            cluster,
            catalog,
            partitioner,
            provisioner,
            views: ViewRegistry::new(),
            durable,
            replay: None,
            start_cycle: 0,
        }
    }

    /// Register an incremental materialized view. From now on each
    /// cycle's logical deltas — retractions first, then the cycle's
    /// inserts — are folded into the view in O(|Δ|) instead of the view
    /// being recomputed. Registering mid-run starts the view empty: it
    /// reflects changes from the *next* cycle on (seed it from the
    /// catalog oracle via [`array_model::DeltaSet::from_live_cells`] to
    /// backfill).
    pub fn register_view(&mut self, def: ViewDef) {
        self.views.register(def);
    }

    /// The registered incremental views and their current state.
    pub fn views(&self) -> &ViewRegistry {
        &self.views
    }

    /// Run just the §3.3 benchmark suites for `cycle` against the current
    /// placement (no ingest, no scale-out, no derived storage).
    pub fn run_suites_only(&self, cycle: usize) -> SuiteReport {
        let ctx = ExecutionContext::new(&self.cluster, &self.catalog);
        self.workload.get().run_suites(&ctx, cycle)
    }

    /// The cluster (for inspection between cycles).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The catalog (for inspection between cycles — e.g. running operators
    /// directly against the current placement).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The provisioner, when the staircase policy is active.
    pub fn provisioner(&self) -> Option<&StaircaseProvisioner> {
        self.provisioner.as_ref()
    }

    /// The live partitioner (for inspection — the recovery differential
    /// suites probe its routing table for bit-identity).
    pub fn partitioner(&self) -> &dyn Partitioner {
        self.partitioner.as_ref()
    }

    /// First cycle [`WorkloadRunner::run_all`] will execute: `0` for a
    /// fresh runner, the first cycle *after* the recovered prefix for a
    /// runner built by [`WorkloadRunner::recover`].
    pub fn start_cycle(&self) -> usize {
        self.start_cycle
    }

    fn durability_err(cycle: usize, source: DurabilityError) -> CycleError {
        CycleError::Durability { cycle, source }
    }

    /// Append the genesis record if this is a durable runner touching an
    /// empty log for the first time. Replayed runners already consumed
    /// genesis during [`WorkloadRunner::recover`]'s scan.
    fn wal_genesis(&mut self, cycle: usize) -> Result<(), CycleError> {
        if self.replay.is_some() {
            return Ok(());
        }
        let Some(d) = self.durable.as_mut() else { return Ok(()) };
        if d.genesis_written {
            return Ok(());
        }
        let framed = frame_record(&durable::genesis_payload(d.fingerprint));
        let mut log = d.log.lock().expect("log mutex poisoned");
        log.append(&framed).map_err(|e| Self::durability_err(cycle, e))?;
        if d.fsync == FsyncPolicy::Always {
            log.flush().map_err(|e| Self::durability_err(cycle, e))?;
        }
        drop(log);
        d.genesis_written = true;
        Ok(())
    }

    /// The write-ahead choke point: every logical record the cycle
    /// produces flows through here *before* the transition it describes
    /// is applied. Live mode appends (and under
    /// [`FsyncPolicy::Always`], flushes); replay mode recomputes the
    /// payload via `make` and byte-compares it against the logged
    /// record — any divergence is a typed
    /// [`DurabilityError::Mismatch`]. With durability off, `make` is
    /// never called: the hot path pays one branch.
    fn wal_record(
        &mut self,
        cycle: usize,
        make: impl FnOnce() -> Vec<u8>,
    ) -> Result<(), CycleError> {
        if let Some(queue) = self.replay.as_mut() {
            let Some(logged) = queue.pop_front() else {
                return Err(Self::durability_err(
                    cycle,
                    DurabilityError::Mismatch {
                        what: format!("cycle {cycle} record stream"),
                        expected: "another logged record".to_string(),
                        actual: "log exhausted mid-cycle".to_string(),
                    },
                ));
            };
            let recomputed = make();
            if recomputed != logged {
                return Err(Self::durability_err(
                    cycle,
                    DurabilityError::Mismatch {
                        what: format!("cycle {cycle} {} record", durable::tag_name(&logged)),
                        expected: format!(
                            "{} bytes logged ({})",
                            logged.len(),
                            durable::tag_name(&logged)
                        ),
                        actual: format!(
                            "{} bytes recomputed ({})",
                            recomputed.len(),
                            durable::tag_name(&recomputed)
                        ),
                    },
                ));
            }
            return Ok(());
        }
        let Some(d) = self.durable.as_mut() else { return Ok(()) };
        let framed = frame_record(&make());
        let mut log = d.log.lock().expect("log mutex poisoned");
        log.append(&framed).map_err(|e| Self::durability_err(cycle, e))?;
        if d.fsync == FsyncPolicy::Always {
            log.flush().map_err(|e| Self::durability_err(cycle, e))?;
        }
        Ok(())
    }

    /// Commit the cycle: append (or replay-verify) the `CycleEnd`
    /// record, flush per the fsync policy, and checkpoint if the cycle
    /// count says so. In replay mode also demands the logged cycle's
    /// record queue is fully consumed — extra logged records the rerun
    /// did not produce are divergence too.
    fn wal_commit(&mut self, cycle: usize) -> Result<(), CycleError> {
        self.wal_record(cycle, || durable::cycle_end_payload(cycle as u64))?;
        if let Some(queue) = self.replay.as_ref() {
            if !queue.is_empty() {
                return Err(Self::durability_err(
                    cycle,
                    DurabilityError::Mismatch {
                        what: format!("cycle {cycle} record stream"),
                        expected: "CycleEnd as the last logged record".to_string(),
                        actual: format!("{} logged records left unconsumed", queue.len()),
                    },
                ));
            }
            return Ok(());
        }
        let Some(d) = self.durable.as_ref() else { return Ok(()) };
        if d.fsync == FsyncPolicy::PerCycle {
            let mut log = d.log.lock().expect("log mutex poisoned");
            log.flush().map_err(|e| Self::durability_err(cycle, e))?;
        }
        let next_cycle = cycle + 1;
        if d.checkpoint_every > 0 && next_cycle.is_multiple_of(d.checkpoint_every) {
            let blob = self.checkpoint_blob(next_cycle as u64);
            let d = self.durable.as_ref().expect("checked above");
            let mut log = d.log.lock().expect("log mutex poisoned");
            log.write_checkpoint(next_cycle as u64, &blob)
                .map_err(|e| Self::durability_err(cycle, e))?;
        }
        Ok(())
    }

    /// Serialize the runner's whole state — catalog (schemas,
    /// descriptors, materialized payloads), cluster (roster, placement,
    /// loads, replicas, tombstone ledgers), partitioner table,
    /// provisioner history, and view states — as one framed checkpoint
    /// record. `next_cycle` is the first cycle *not* reflected in the
    /// state.
    fn checkpoint_blob(&self, next_cycle: u64) -> Vec<u8> {
        let d = self.durable.as_ref().expect("checkpoints require durability");
        let mut w = ByteWriter::new();
        w.put_u64(d.fingerprint);
        w.put_u64(next_cycle);
        self.catalog.encode_into(&mut w);
        self.cluster.snapshot_into(&mut w);
        w.put_bytes(&self.partitioner.table_snapshot());
        match self.provisioner.as_ref() {
            Some(p) => {
                w.put_bool(true);
                w.put_usize(p.history().len());
                for &v in p.history() {
                    w.put_f64(v);
                }
            }
            None => w.put_bool(false),
        }
        self.views.export_states(&mut w);
        frame_record(&w.into_bytes())
    }

    /// Most nodes a FixedStep policy will add in one cycle. Generous — the
    /// paper's schedules add 2 — but finite, so a runaway demand signal
    /// cannot allocate an unbounded roster; hitting the cap is surfaced
    /// through [`CycleReport::scale_saturated`] rather than dropped.
    const MAX_FIXED_STEP_ADD: u64 = 4096;

    /// Decide how the roster changes for a projected `demand_bytes`:
    /// nodes to add, nodes to release, and whether the decision
    /// saturated the per-cycle cap. Both counts run off the *active*
    /// roster — retired nodes keep their slot but contribute no
    /// capacity.
    ///
    /// FixedStep is closed-form integer arithmetic: the smallest multiple
    /// of `add` that brings `trigger × capacity` back above demand. (The
    /// old implementation looped in f64 GB and silently stopped after 64
    /// extra nodes, under-provisioning any cycle that needed more.)
    /// Only the staircase controller ever asks to shrink, and only when
    /// its `shrink_margin` hysteresis band is enabled.
    fn scale_decision(&self, demand_bytes: u64) -> ScaleStep {
        match &self.config.scaling {
            ScalingPolicy::Fixed => ScaleStep::default(),
            ScalingPolicy::FixedStep { add, trigger } => {
                // Usable bytes per node under the trigger fraction. The one
                // f64 rounding happens here, floor-ward, which can only
                // over-provision by at most one step — never under.
                let usable = (trigger * self.config.node_capacity as f64) as u64;
                if usable == 0 {
                    // Degenerate policy (zero trigger or capacity): no node
                    // count can ever satisfy demand.
                    return ScaleStep { saturated: demand_bytes > 0, ..ScaleStep::default() };
                }
                let needed = demand_bytes.div_ceil(usable);
                let have = self.cluster.active_node_count() as u64;
                if needed <= have {
                    return ScaleStep::default();
                }
                let step = (*add).max(1) as u64;
                let extra = (needed - have).div_ceil(step) * step;
                if extra > Self::MAX_FIXED_STEP_ADD {
                    ScaleStep { add: Self::MAX_FIXED_STEP_ADD as usize, saturated: true, remove: 0 }
                } else {
                    ScaleStep { add: extra as usize, ..ScaleStep::default() }
                }
            }
            ScalingPolicy::Staircase(_) => {
                match self
                    .provisioner
                    .as_ref()
                    .expect("staircase policy keeps a provisioner")
                    .decide(self.cluster.active_node_count(), gb(demand_bytes))
                {
                    ProvisionDecision::Stay => ScaleStep::default(),
                    ProvisionDecision::ScaleOut { add_nodes } => {
                        ScaleStep { add: add_nodes, ..ScaleStep::default() }
                    }
                    ProvisionDecision::ScaleIn { remove_nodes } => {
                        ScaleStep { remove: remove_nodes, ..ScaleStep::default() }
                    }
                }
            }
        }
    }

    /// Build each cell batch into real chunks via the array-model chunk
    /// builder, fanning the chunk construction out over
    /// `ingest_threads` scoped workers (see [`build_cell_array`]). The
    /// returned arrays hold the cycle's fresh chunks only; descriptors
    /// derived from them carry actual `byte_size()` / `cell_count()`
    /// instead of sampled sizes.
    fn build_cell_arrays(
        &self,
        cycle: usize,
        batches: Vec<CellBatch>,
    ) -> Result<Vec<Array>, CycleError> {
        let threads = self.config.ingest_threads.max(1);
        let mut out = Vec::with_capacity(batches.len());
        for b in batches {
            let schema = match self.catalog.array(b.array) {
                Ok(stored) => stored.schema.clone(),
                Err(_) => return Err(CycleError::UnknownArray { cycle, array: b.array }),
            };
            let fresh = build_cell_array_encoded(
                b.array,
                schema,
                b.into_rows(),
                threads,
                self.config.string_encoding,
            )
            .map_err(|source| CycleError::Materialize { cycle, source })?;
            out.push(fresh);
        }
        Ok(out)
    }

    /// Attach the freshly built chunks to the nodes that just received
    /// their descriptors, and fold them into the catalog's whole-array
    /// storage (the oracle the differential suites check against). Both
    /// stores hold the **same** `Arc<Chunk>` handles: attaching is a
    /// refcount bump per chunk, and rebalances move the handle — the old
    /// per-chunk deep clone is gone.
    fn store_cell_arrays(&mut self, cycle: usize, arrays: Vec<Array>) -> Result<(), CycleError> {
        for fresh in arrays {
            let id = fresh.id;
            for (coords, chunk) in fresh.shared_chunks() {
                self.cluster
                    .attach_payload(ChunkKey::new(id, *coords), Arc::clone(chunk))
                    .map_err(|source| CycleError::Ingest { cycle, source })?;
            }
            let stored = self.catalog.array_mut(id).expect("validated in build_cell_arrays");
            let data = stored.data.get_or_insert_with(|| Array::new(id, stored.schema.clone()));
            // `absorb` checks schema identity once and skips per-cell
            // re-validation: `fresh` was built against this same schema
            // in `build_cell_arrays`, and moves its chunk handles in
            // wholesale.
            data.absorb(fresh).map_err(|source| CycleError::Materialize { cycle, source })?;
        }
        Ok(())
    }

    /// Place a batch of chunks through the sharded route → place → commit
    /// pipeline, returning the coordinator-fed flow set. With
    /// `ingest_threads > 1` both routing and placement fan out over scoped
    /// threads; the resulting placements, loads, and census are identical
    /// to the single-threaded path.
    fn place_batch(&mut self, batch: &[ChunkDescriptor]) -> Result<FlowSet, ClusterError> {
        let coordinator = self.cluster.coordinator();
        let threads = self.config.ingest_threads.max(1);
        // Route the whole batch against one epoch snapshot...
        let prefix = batch_prefix_bytes(batch);
        let epoch = RouteEpoch::for_batch(&self.cluster, &prefix);
        let mut routes = route_batch(self.partitioner.as_ref(), batch, &epoch, threads);
        // Partitioners route against the full roster; with nodes out of
        // service, divert each such hit to a deterministic accepting node.
        // Fault-free runs skip this pass entirely, keeping the healthy
        // path bit-identical to the pre-fault runner.
        if self.cluster.has_faulted_nodes() {
            for (desc, route) in batch.iter().zip(routes.iter_mut()) {
                let accepts = self.cluster.node(*route).is_ok_and(|n| n.state().accepts_data());
                if !accepts {
                    *route =
                        self.cluster.divert_route(&desc.key).ok_or(ClusterError::NoHealthyNodes)?;
                }
            }
        }
        // ...place it shard-parallel (rolls back wholesale on duplicates)...
        self.cluster.place_batch(batch, &routes, threads)?;
        // ...then commit the partitioner's table mutations sequentially
        // (diverted routes included, so later lookups agree with the
        // placement).
        self.partitioner.commit(batch, &routes);
        let mut flows = FlowSet::new();
        for (desc, &node) in batch.iter().zip(&routes) {
            flows.push(coordinator, node, desc.bytes);
            // Replica copies cost real bytes too: the coordinator fans the
            // same payload to every holder the placement just installed.
            // Empty at k = 1.
            for &holder in self.cluster.replica_holders(&desc.key) {
                flows.push(coordinator, holder, desc.bytes);
            }
            if let Ok(array) = self.catalog.array_mut(desc.key.array) {
                array.descriptors.insert(desc.key.coords, *desc);
            }
        }
        Ok(flows)
    }

    /// Rewrite a scale-out rebalance plan against the faulted roster. The
    /// partitioners are deliberately fault-blind — their ring/tree view
    /// stays stable across crashes so fault-free runs stay bit-identical —
    /// which means a plan can move chunks that a crash already promoted
    /// elsewhere (or orphaned), or target a node that no longer accepts
    /// data. Stale sources are dropped (there is nothing left to move);
    /// unavailable destinations are diverted exactly like ingest routes.
    /// Fault-free runs return the plan untouched.
    fn sanitize_rebalance(&self, plan: RebalancePlan) -> RebalancePlan {
        if !self.cluster.has_faulted_nodes() {
            return plan;
        }
        let mut out = RebalancePlan::empty();
        for m in plan.moves {
            let source_live = self.cluster.locate(&m.key) == Some(m.from)
                && self.cluster.node(m.from).is_ok_and(|n| n.state().serves_reads());
            if !source_live {
                continue;
            }
            let accepts = self.cluster.node(m.to).is_ok_and(|n| n.state().accepts_data());
            let to = if accepts {
                m.to
            } else {
                // A diverted move may land on a replica holder; the
                // cluster supersedes that replica with the arriving
                // primary, so any accepting node is a legal target.
                match self.cluster.divert_route(&m.key) {
                    Some(d) if d != m.from => d,
                    _ => continue,
                }
            };
            out.push(m.key, m.from, to, m.bytes);
        }
        out
    }

    /// Upper bound on plan → execute recovery passes per invocation. A
    /// mid-repair crash creates deficits the in-flight plan cannot see,
    /// so one pass is not always enough; flaky flows can starve a pass
    /// without emptying the plan. Four passes converge every schedule the
    /// suites drive while still bounding an adversarial one.
    const MAX_RECOVERY_PASSES: usize = 4;

    /// The faults scheduled for `cycle`, sorted into the phases that
    /// execute them.
    fn cycle_faults(&self, cycle: usize) -> CycleFaults {
        let mut out = CycleFaults::default();
        let Some(plan) = self.config.fault_plan.as_ref() else { return out };
        for kind in plan.events_at(cycle) {
            match kind {
                FaultKind::Crash(_) | FaultKind::Drain(_) | FaultKind::Revive(_) => {
                    out.start.push(kind)
                }
                FaultKind::CrashDuringRebalance(n) => out.rebalance_crashes.push(NodeId(n)),
                FaultKind::CrashDuringRecovery { node, after_jobs } => {
                    out.mid_crash = Some(MidCrash { after_jobs, node: NodeId(node) })
                }
                FaultKind::FlakyFlows { p } => {
                    out.flaky = Some(Flakiness { p, seed: plan.cycle_seed(cycle) })
                }
            }
        }
        out
    }

    /// Drive recovery to convergence: plan → execute passes until the
    /// plan comes back empty or stops making progress, then return any
    /// refilled `Recovering` nodes to full service and audit the replica
    /// books. Repair flows and backoff waits accumulate into `tally`.
    fn run_recovery(
        &mut self,
        cycle: usize,
        flaky: Option<Flakiness>,
        mut mid_crash: Option<MidCrash>,
        tally: &mut RepairTally,
    ) -> Result<(), CycleError> {
        let policy = self.config.fault_plan.as_ref().map(|p| p.backoff).unwrap_or_default();
        for _ in 0..Self::MAX_RECOVERY_PASSES {
            let plan = self.cluster.plan_recovery();
            if plan.jobs.is_empty() {
                break;
            }
            let outcome =
                self.cluster.execute_recovery_with(&plan, &policy, flaky, mid_crash.take());
            tally.bytes = tally.bytes.saturating_add(outcome.repair_bytes());
            tally.secs += outcome.repair_secs(&self.config.cost);
            tally.retries = tally.retries.saturating_add(u64::from(outcome.retries));
            if outcome.repaired == 0 {
                // No forward progress (retry budgets exhausted, or nothing
                // repairable remains): stop rather than spin.
                break;
            }
        }
        if self.cluster.replica_census().is_full_strength() {
            let refilled: Vec<NodeId> = self
                .cluster
                .nodes()
                .filter(|n| n.state() == cluster_sim::NodeState::Recovering)
                .map(|n| n.id)
                .collect();
            for id in refilled {
                self.cluster
                    .mark_recovered(id)
                    .map_err(|source| CycleError::Fault { cycle, source })?;
            }
        }
        self.cluster.verify_replica_books().map_err(|source| CycleError::Recovery { cycle, source })
    }

    /// Apply every batch's retraction script to the cluster's stored
    /// payloads and mirror it into the catalog's whole-array oracle,
    /// keeping both stores structurally in step (same tombstones, same
    /// byte ledgers, same pruned chunks).
    ///
    /// Retractions are grouped by owning chunk and applied through
    /// [`Cluster::retract_cells`], which shrinks the primary payload,
    /// its descriptor, the node ledgers, and every replica copy in one
    /// step. A chunk whose last live cell is retracted is evicted from
    /// the placement outright (and its replica set dropped) — retired
    /// bytes stop counting against demand immediately, which is what
    /// lets the provisioner see the trough. A surviving chunk whose
    /// tombstones now reach [`RunnerConfig::gc_tombstone_ratio`] of its
    /// physical rows is compacted in place ([`Cluster::compact_chunk`]),
    /// and the catalog oracle compacts the same chunks so both copies
    /// stay structurally identical. Cells whose chunk was never placed
    /// (or already evicted) count as `missing` rather than failing the
    /// cycle: delete scripts replay against both oracle and store
    /// copies, which may legitimately have pruned a chunk first.
    ///
    /// When incremental views watch the array, each retracted row's
    /// values are captured through the tombstone choke point as a `-1`
    /// delta and folded into the views before the cycle's inserts land.
    fn apply_retractions(
        &mut self,
        cycle: usize,
        batches: &[CellBatch],
    ) -> Result<RetractTally, CycleError> {
        let mut tally = RetractTally::default();
        for b in batches {
            let flat = b.retractions_flat();
            if flat.is_empty() {
                continue;
            }
            let schema = match self.catalog.array(b.array) {
                Ok(stored) => stored.schema.clone(),
                Err(_) => return Err(CycleError::UnknownArray { cycle, array: b.array }),
            };
            let nd = schema.ndims().max(1);
            // Group the flat script by owning chunk so each placed chunk
            // is touched once (one descriptor resize, one replica fan-out).
            let mut by_chunk: std::collections::BTreeMap<ChunkCoords, Vec<i64>> =
                std::collections::BTreeMap::new();
            for cell in flat.chunks_exact(nd) {
                let coords = array_model::chunk_of(&schema, cell)
                    .map_err(|source| CycleError::Materialize { cycle, source })?;
                by_chunk.entry(coords).or_default().extend_from_slice(cell);
            }
            let mut gc_coords: Vec<ChunkCoords> = Vec::new();
            for (coords, cells) in by_chunk {
                let key = ChunkKey::new(b.array, coords);
                if self.cluster.locate(&key).is_none() {
                    tally.missing += (cells.len() / nd) as u64;
                    continue;
                }
                let outcome = self
                    .cluster
                    .retract_cells(&key, &cells)
                    .map_err(|source| CycleError::Retract { cycle, source })?;
                tally.retracted += outcome.retracted;
                tally.missing += outcome.missing;
                if outcome.remaining_cells == 0 {
                    let eviction = self
                        .cluster
                        .evict_chunk(&key)
                        .map_err(|source| CycleError::Retract { cycle, source })?;
                    tally.evicted_chunks += 1;
                    tally.evicted_bytes += eviction.bytes;
                } else if self.config.gc_tombstone_ratio.is_finite()
                    || self.config.gc_dangling_dict_bytes != u64::MAX
                {
                    // Threshold-triggered tombstone GC: row-ratio
                    // pressure, or dangling-dictionary byte pressure
                    // (checked lazily — the dictionary scan is
                    // per-entry work the ratio check avoids). The
                    // payload is present — retract_cells just touched
                    // it.
                    let payload =
                        self.cluster.payload(&key).expect("retract_cells required a payload");
                    let dead = payload.tombstone_count() as f64;
                    let physical = payload.physical_cell_count() as f64;
                    let ratio_trip = self.config.gc_tombstone_ratio.is_finite()
                        && physical > 0.0
                        && dead >= self.config.gc_tombstone_ratio * physical;
                    let byte_trip = !ratio_trip
                        && self.config.gc_dangling_dict_bytes != u64::MAX
                        && payload.dangling_dict_bytes() >= self.config.gc_dangling_dict_bytes;
                    if ratio_trip || byte_trip {
                        let compaction = self
                            .cluster
                            .compact_chunk(&key)
                            .map_err(|source| CycleError::Retract { cycle, source })?;
                        tally.gc_compacted_chunks += 1;
                        tally.gc_reclaimed_bytes += compaction.reclaimed_bytes;
                        gc_coords.push(coords);
                    }
                }
            }
            // Mirror the script into the catalog oracle. The oracle's
            // chunks were shared with the cluster until now; replaying
            // the same deterministic script (retract-the-last-live-
            // duplicate per coordinate) leaves both copies structurally
            // identical, so the differential suites keep agreeing.
            // Retracted values are captured here — the oracle holds the
            // same rows — as the views' negative deltas.
            let watched = self.views.reads(b.array);
            let mut delta = DeltaSet::new();
            let stored = self.catalog.array_mut(b.array).expect("validated above");
            if let Some(data) = stored.data.as_mut() {
                let outcome = data
                    .delete_cells_capturing(flat, |cell, values| {
                        if watched {
                            delta.push(cell.to_vec(), values, -1);
                        }
                    })
                    .map_err(|source| CycleError::Materialize { cycle, source })?;
                for coords in data.prune_empty() {
                    stored.descriptors.remove(&coords);
                }
                // GC'd chunks compact on the oracle too, before the
                // descriptor refresh reads their rebuilt sizes.
                for coords in &gc_coords {
                    data.compact_chunk(coords);
                }
                for coords in outcome.touched {
                    if let Some(chunk) = data.chunk(&coords) {
                        stored.descriptors.insert(coords, chunk.descriptor(b.array));
                    }
                }
            }
            if watched && !delta.is_empty() {
                let stats = self.views.apply(b.array, &delta);
                tally.view_delta_rows += stats.delta_rows;
                tally.view_rows_changed += stats.rows_changed;
            }
        }
        Ok(tally)
    }

    /// Release up to `remove` nodes: drain the highest-id healthy nodes
    /// through the flow solver and retire them (the staircase releases
    /// its newest steps first, matching the tail-first capacity walk the
    /// provisioner priced). Never drops the roster below the replication
    /// factor's worth of serving nodes — a deeper shrink request is
    /// clamped, not failed. Returns `(nodes retired, drain seconds,
    /// drained bytes)`.
    fn scale_in(&mut self, cycle: usize, remove: usize) -> Result<(usize, f64, u64), CycleError> {
        let floor = self.config.replication.max(1);
        let mut healthy: Vec<NodeId> = self
            .cluster
            .nodes()
            .filter(|n| n.state() == cluster_sim::NodeState::Healthy)
            .map(|n| n.id)
            .collect();
        healthy.sort_unstable();
        let spare = healthy.len().saturating_sub(floor);
        let mut removed = 0usize;
        let mut secs = 0.0;
        let mut bytes = 0u64;
        for &id in healthy.iter().rev().take(remove.min(spare)) {
            let report = self
                .cluster
                .decommission_node(id)
                .map_err(|source| CycleError::ScaleIn { cycle, source })?;
            secs += report.flows.elapsed_secs(&self.config.cost);
            bytes += report.drained_bytes;
            removed += 1;
        }
        Ok((removed, secs, bytes))
    }

    /// Execute one workload cycle.
    pub fn run_cycle(&mut self, cycle: usize) -> Result<CycleReport, CycleError> {
        // Write-ahead: open the cycle's log frame before anything
        // mutates. `replay.is_some()` implies a durable runner, so one
        // `durable` check covers both modes; with durability off this
        // whole block is a single branch.
        if self.durable.is_some() {
            self.wal_genesis(cycle)?;
            self.wal_record(cycle, || durable::cycle_start_payload(cycle as u64))?;
            let digest = durable::fault_digest(self.config.fault_plan.as_ref(), cycle);
            self.wal_record(cycle, || durable::faults_payload(cycle as u64, digest))?;
        }
        // Fault injection first: cycle-start crashes, drains, and
        // revivals, then a recovery pass re-replicating whatever they
        // exposed (a no-op sweep on an all-healthy roster).
        let faults = self.cycle_faults(cycle);
        for kind in &faults.start {
            match *kind {
                FaultKind::Crash(n) => self.cluster.crash_node(NodeId(n)).map(|_| ()),
                FaultKind::Drain(n) => self.cluster.start_draining(NodeId(n)),
                FaultKind::Revive(n) => self.cluster.revive_node(NodeId(n)),
                _ => Ok(()),
            }
            .map_err(|source| CycleError::Fault { cycle, source })?;
        }
        let mut repair = RepairTally::default();
        if self.cluster.has_faulted_nodes() {
            self.run_recovery(cycle, faults.flaky, faults.mid_crash, &mut repair)?;
        }

        // Materialized workloads stream cells through the chunk builder
        // and ingest descriptors derived from the real payloads; metadata
        // workloads place their sampled descriptors directly. Retraction
        // scripts are applied first — the cycle's deletes shrink stored
        // demand before the provisioner prices it, so a trough is
        // visible the same cycle it opens.
        let (batch, cell_arrays, retract) = match self.workload.get().cell_batch(cycle) {
            Some(batches) => {
                // Logged verbatim (cells, transport dictionaries, and
                // retraction script) before any of it is applied.
                self.wal_record(cycle, || durable::insert_cells_payload(&batches))?;
                let retract = self.apply_retractions(cycle, &batches)?;
                let arrays = self.build_cell_arrays(cycle, batches)?;
                let descs: Vec<ChunkDescriptor> =
                    arrays.iter().flat_map(Array::descriptors).collect();
                (descs, Some(arrays), retract)
            }
            None => {
                let descs = self.workload.get().insert_batch(cycle);
                self.wal_record(cycle, || durable::insert_meta_payload(&descs))?;
                (descs, None, RetractTally::default())
            }
        };
        let insert_bytes: u64 = batch.iter().map(|d| d.bytes).sum();
        let projected_bytes = self.cluster.total_used().saturating_add(insert_bytes);

        // Provision + reorganize BEFORE ingesting (§3.4: the database
        // "redistributes the preexisting chunks, and finally inserts the
        // new ones"). A shrink drains the released nodes through the
        // same flow solver before the ingest lands.
        let step = self.scale_decision(projected_bytes);
        self.wal_record(cycle, || {
            durable::scale_payload(step.add as u64, step.remove as u64, step.saturated)
        })?;
        let added = step.add;
        let scale_saturated = step.saturated;
        let mut reorg_secs = 0.0;
        let mut moved_bytes = 0u64;
        if added > 0 {
            let new_nodes = self.cluster.add_nodes(added, self.config.node_capacity);
            let plan = self.partitioner.scale_out(&self.cluster, &new_nodes);
            let plan = self.sanitize_rebalance(plan);
            moved_bytes = plan.moved_bytes();
            let flows = self
                .cluster
                .apply_rebalance(&plan)
                .map_err(|source| CycleError::Reorg { cycle, source })?;
            reorg_secs = flows.elapsed_secs(&self.config.cost);
        }
        let mut removed_nodes = 0usize;
        if step.remove > 0 {
            let (removed, drain_secs, drained) = self.scale_in(cycle, step.remove)?;
            removed_nodes = removed;
            reorg_secs += drain_secs;
            moved_bytes += drained;
        }
        // Rebalance-window crashes land here — after any data movement,
        // before the ingest — and get their own recovery pass.
        if !faults.rebalance_crashes.is_empty() {
            for &node in &faults.rebalance_crashes {
                self.cluster
                    .crash_node(node)
                    .map_err(|source| CycleError::Fault { cycle, source })?;
            }
            self.run_recovery(cycle, faults.flaky, None, &mut repair)?;
        }

        // Ingest.
        let insert_flows =
            self.place_batch(&batch).map_err(|source| CycleError::Ingest { cycle, source })?;
        let mut view_delta_rows = retract.view_delta_rows;
        let mut view_rows_changed = retract.view_rows_changed;
        if let Some(arrays) = cell_arrays {
            // The freshly built arrays hold exactly this cycle's inserted
            // cells: extract them as +1 deltas for the registered views
            // before the handles are absorbed into the stores. Applied
            // after the retraction deltas (runner order), so views see
            // the cycle's changes in the same order the stores do.
            let insert_deltas: Vec<(ArrayId, DeltaSet)> = arrays
                .iter()
                .filter(|a| self.views.reads(a.id))
                .map(|a| (a.id, DeltaSet::from_live_cells(a)))
                .collect();
            self.store_cell_arrays(cycle, arrays)?;
            for (id, delta) in insert_deltas {
                let stats = self.views.apply(id, &delta);
                view_delta_rows += stats.delta_rows;
                view_rows_changed += stats.rows_changed;
            }
        }
        let insert_secs = insert_flows.elapsed_secs(&self.config.cost);
        // O(1): the cluster maintains its load moments incrementally.
        let rsd_after_insert = self.cluster.balance_rsd();

        // Query phase, plus storing derived findings.
        let mut query_secs = 0.0;
        let mut degraded_reads = 0u64;
        // Queries are read-only and their report is discarded during
        // replay, so a recovering runner skips them outright.
        let suites = if self.config.run_queries && self.replay.is_none() {
            let ctx = ExecutionContext::new(&self.cluster, &self.catalog);
            let report = self.workload.get().run_suites(&ctx, cycle);
            query_secs += report.total_secs();
            degraded_reads = ctx.degraded_reads();
            Some(report)
        } else {
            None
        };
        let derived = self.workload.get().derived_batch(cycle);
        self.wal_record(cycle, || durable::derived_payload(&derived))?;
        if !derived.is_empty() {
            let derived_flows = self
                .place_batch(&derived)
                .map_err(|source| CycleError::Derived { cycle, source })?;
            query_secs += derived_flows.elapsed_secs(&self.config.cost);
        }

        // Feed the controller the demand it will see next cycle.
        if let Some(p) = self.provisioner.as_mut() {
            p.observe(gb(self.cluster.total_used()));
        }

        // Commit point: everything this cycle did is now logged (and,
        // per the fsync policy, durable). A crash before this line rolls
        // the whole cycle back at recovery; after it, the cycle is
        // replayable.
        self.wal_commit(cycle)?;

        let census = self.cluster.replica_census();
        Ok(CycleReport {
            cycle,
            nodes: self.cluster.active_node_count(),
            added_nodes: added,
            removed_nodes,
            demand_gb: gb(self.cluster.total_used()),
            phases: PhaseBreakdown {
                insert_secs,
                reorg_secs,
                query_secs,
                repair_secs: repair.secs,
            },
            rsd_after_insert,
            moved_bytes,
            insert_bytes,
            retracted_cells: retract.retracted,
            evicted_chunks: retract.evicted_chunks,
            evicted_bytes: retract.evicted_bytes,
            gc_compacted_chunks: retract.gc_compacted_chunks,
            gc_reclaimed_bytes: retract.gc_reclaimed_bytes,
            view_delta_rows,
            view_rows_changed,
            scale_saturated,
            crashed_nodes: self
                .cluster
                .nodes()
                .filter(|n| n.state() == cluster_sim::NodeState::Crashed)
                .count(),
            under_replicated: census.under_replicated(),
            repair_bytes: repair.bytes,
            repair_retries: repair.retries,
            degraded_reads,
            suites,
        })
    }

    /// Run every cycle of the workload. Under [`ErrorPolicy::Abort`] (the
    /// default) the run stops at the first failure; under
    /// [`ErrorPolicy::RecordAndContinue`] the failing cycle is recorded in
    /// [`RunReport::failures`] and the run presses on against whatever
    /// state survives.
    /// A recovered runner resumes at [`WorkloadRunner::start_cycle`]
    /// (the recovered prefix is not re-run).
    pub fn run_all(&mut self) -> Result<RunReport, CycleError> {
        let mut cycles = Vec::with_capacity(self.workload.get().cycles());
        let mut failures = Vec::new();
        for c in self.start_cycle..self.workload.get().cycles() {
            match self.run_cycle(c) {
                Ok(report) => cycles.push(report),
                Err(e) if self.config.on_error == ErrorPolicy::RecordAndContinue => {
                    failures.push(FailedCycle { cycle: c, error: e.to_string() })
                }
                Err(e) => return Err(e),
            }
        }
        Ok(RunReport { partitioner: self.config.partitioner, cycles, failures })
    }

    /// Rebuild a runner from its durable log, borrowing the workload.
    ///
    /// The recipe: scan the log for its committed prefix (a torn tail —
    /// a crash mid-append — is truncated at the last cycle commit
    /// marker), cross-check the genesis fingerprint against this
    /// config, load the newest checkpoint that validates (corrupt or
    /// missing checkpoints fall back to older ones, and with none left
    /// the log replays from genesis), then **re-execute** every
    /// committed cycle after the checkpoint with each recomputed record
    /// byte-compared against the log. The result is bit-identical to
    /// the pre-crash runner — placements, loads, census, tombstones,
    /// dictionaries, view states — or a typed
    /// [`CycleError::Durability`]; never a silently divergent state.
    ///
    /// `views` must list the same view definitions (same names, same
    /// order of registration) the original run registered before cycle
    /// 0; their recovered states come from the checkpoint/replay, not
    /// from the definitions.
    pub fn recover(
        workload: &'w dyn Workload,
        config: RunnerConfig,
        views: Vec<ViewDef>,
    ) -> Result<WorkloadRunner<'w>, CycleError> {
        Self::recover_build(WorkloadRef::Borrowed(workload), config, views)
    }

    /// [`WorkloadRunner::recover`] taking ownership of the workload.
    pub fn recover_owned(
        workload: impl Workload + 'static,
        config: RunnerConfig,
        views: Vec<ViewDef>,
    ) -> Result<WorkloadRunner<'static>, CycleError> {
        WorkloadRunner::recover_build(WorkloadRef::Owned(Box::new(workload)), config, views)
    }

    fn recover_build(
        workload: WorkloadRef<'_>,
        config: RunnerConfig,
        defs: Vec<ViewDef>,
    ) -> Result<WorkloadRunner<'_>, CycleError> {
        if config.durability.is_none() {
            return Err(Self::durability_err(
                0,
                DurabilityError::Mismatch {
                    what: "recover() configuration".to_string(),
                    expected: "RunnerConfig::durability = Some(..)".to_string(),
                    actual: "None".to_string(),
                },
            ));
        }
        let mut runner = Self::build(workload, config);
        let image = {
            let d = runner.durable.as_ref().expect("durability checked above");
            let mut log = d.log.lock().expect("log mutex poisoned");
            log.read_log().map_err(|e| Self::durability_err(0, e))?
        };
        let scan = durable::scan_log(&image).map_err(|e| Self::durability_err(0, e))?;
        let fingerprint = runner.durable.as_ref().expect("durable runner").fingerprint;
        let Some(logged_fp) = scan.fingerprint else {
            // Nothing was ever committed — a fresh start. The image may
            // still hold a torn half-written genesis; clear it so
            // future appends extend a valid log.
            if !image.is_empty() {
                let d = runner.durable.as_ref().expect("durable runner");
                let mut log = d.log.lock().expect("log mutex poisoned");
                log.truncate_log(0).map_err(|e| Self::durability_err(0, e))?;
            }
            for def in defs {
                runner.views.register(def);
            }
            return Ok(runner);
        };
        if logged_fp != fingerprint {
            return Err(Self::durability_err(
                0,
                DurabilityError::Mismatch {
                    what: "genesis fingerprint".to_string(),
                    expected: format!("{fingerprint:#018x} (this workload + config)"),
                    actual: format!("{logged_fp:#018x} (logged)"),
                },
            ));
        }
        runner.durable.as_mut().expect("durable runner").genesis_written = true;
        if scan.committed_len < image.len() as u64 {
            // Torn tail: a crash tore the append after the last commit
            // marker. Truncate so future appends extend a valid log.
            let d = runner.durable.as_ref().expect("durable runner");
            let mut log = d.log.lock().expect("log mutex poisoned");
            log.truncate_log(scan.committed_len).map_err(|e| Self::durability_err(0, e))?;
        }

        // Newest checkpoint that validates end-to-end wins; anything
        // invalid — torn, bit-flipped, missing — falls back to an older
        // survivor, and with none left the log replays from genesis.
        // The log is never compacted, so that fallback is always sound.
        let seqs = {
            let d = runner.durable.as_ref().expect("durable runner");
            let mut log = d.log.lock().expect("log mutex poisoned");
            log.checkpoint_seqs().map_err(|e| Self::durability_err(0, e))?
        };
        let mut next_cycle = 0u64;
        let mut restored = false;
        for &seq in seqs.iter().rev() {
            let blob = {
                let d = runner.durable.as_ref().expect("durable runner");
                let mut log = d.log.lock().expect("log mutex poisoned");
                match log.read_checkpoint(seq) {
                    Ok(b) => b,
                    Err(_) => continue,
                }
            };
            if runner.restore_checkpoint(&blob, defs.clone()).is_ok() {
                next_cycle = seq;
                restored = true;
                break;
            }
        }
        if !restored {
            for def in defs {
                runner.views.register(def);
            }
        }

        // Re-execute the committed suffix, byte-checking every record.
        let mut expected = next_cycle;
        for (idx, records) in scan.cycles {
            if idx < next_cycle {
                continue;
            }
            if idx != expected {
                return Err(Self::durability_err(
                    expected as usize,
                    DurabilityError::Mismatch {
                        what: "committed cycle sequence".to_string(),
                        expected: format!("cycle {expected}"),
                        actual: format!("cycle {idx}"),
                    },
                ));
            }
            runner.replay = Some(records);
            let result = runner.run_cycle(idx as usize);
            runner.replay = None;
            result?;
            expected += 1;
        }
        runner.start_cycle = expected as usize;
        Ok(runner)
    }

    /// Restore the runner's state from one checkpoint blob. Everything
    /// decodes into locals first and is assigned only after the whole
    /// blob validates, so a failed attempt leaves the runner untouched
    /// and the caller free to try an older checkpoint. Returns the
    /// checkpoint's `next_cycle`.
    fn restore_checkpoint(
        &mut self,
        blob: &[u8],
        defs: Vec<ViewDef>,
    ) -> Result<u64, DurabilityError> {
        let codec = |e: durability::CodecError| DurabilityError::Codec {
            context: "checkpoint blob".to_string(),
            source: e,
        };
        let mut frames = RecordReader::new(blob);
        let payload = frames.next_record()?.ok_or(DurabilityError::Torn { offset: 0 })?;
        let mut r = ByteReader::new(payload);
        let fp = r.u64("checkpoint fingerprint").map_err(codec)?;
        let d = self.durable.as_ref().expect("checkpoints require durability");
        if fp != d.fingerprint {
            return Err(DurabilityError::Mismatch {
                what: "checkpoint fingerprint".to_string(),
                expected: format!("{:#018x}", d.fingerprint),
                actual: format!("{fp:#018x}"),
            });
        }
        let next_cycle = r.u64("checkpoint next cycle").map_err(codec)?;
        let catalog = Catalog::decode_from(&mut r).map_err(codec)?;
        // Node payload stores re-alias the catalog oracle's chunks: the
        // original run shared one `Arc<Chunk>` per chunk between both
        // stores, and recovery reconstructs exactly that sharing.
        let payload_of = |key: &ChunkKey| -> Option<Arc<array_model::Chunk>> {
            catalog.array(key.array).ok()?.data.as_ref()?.shared_chunk(&key.coords).cloned()
        };
        let cluster = Cluster::restore_from(&mut r, self.config.cost.clone(), &payload_of)?;
        let table = r.bytes("partitioner table").map_err(codec)?;
        let provisioner = if r.bool("provisioner presence").map_err(codec)? {
            if self.provisioner.is_none() {
                return Err(DurabilityError::Mismatch {
                    what: "provisioner presence".to_string(),
                    expected: "no provisioner (policy is not staircase)".to_string(),
                    actual: "checkpoint carries provisioner history".to_string(),
                });
            }
            let ScalingPolicy::Staircase(cfg) = &self.config.scaling else {
                unreachable!("provisioner implies staircase policy");
            };
            let mut p = StaircaseProvisioner::new(*cfg);
            let n = r.usize("provisioner history length").map_err(codec)?;
            for _ in 0..n {
                p.observe(r.f64("provisioner history sample").map_err(codec)?);
            }
            Some(p)
        } else {
            if self.provisioner.is_some() {
                return Err(DurabilityError::Mismatch {
                    what: "provisioner presence".to_string(),
                    expected: "provisioner history (staircase policy)".to_string(),
                    actual: "checkpoint carries none".to_string(),
                });
            }
            None
        };
        let views = ViewRegistry::import_states(defs, &mut r).map_err(codec)?;
        r.finish("checkpoint blob").map_err(codec)?;
        if frames.next_record()?.is_some() {
            return Err(DurabilityError::Corruption {
                offset: frames.offset(),
                detail: "checkpoint blob carries more than one record".to_string(),
            });
        }
        // Same recipe the partitioner snapshot tests pin: rebuild from
        // kind + config against the restored roster, lay the table on
        // top. Only after it validates does any assignment happen.
        let mut pconfig = self.config.partitioner_config.clone();
        if pconfig.quad_plane.is_none() {
            pconfig.quad_plane = Some(self.workload.get().quad_plane());
        }
        let mut partitioner = build_partitioner(
            self.config.partitioner,
            &cluster,
            &self.workload.get().grid_hint(),
            &pconfig,
        );
        partitioner.table_restore(table).map_err(codec)?;
        self.catalog = catalog;
        self.cluster = cluster;
        self.partitioner = partitioner;
        self.provisioner = provisioner;
        self.views = views;
        Ok(next_cycle)
    }
}

/// The faults one cycle executes, sorted by injection point.
#[derive(Default)]
struct CycleFaults {
    /// Crash / drain / revive events applied at cycle start.
    start: Vec<FaultKind>,
    /// Nodes felled right after the rebalance phase.
    rebalance_crashes: Vec<NodeId>,
    /// Flow-drop injection threaded through every recovery pass.
    flaky: Option<Flakiness>,
    /// Mid-repair crash threaded through the first recovery pass.
    mid_crash: Option<MidCrash>,
}

/// Accumulated repair cost across a cycle's recovery passes.
#[derive(Default)]
struct RepairTally {
    bytes: u64,
    secs: f64,
    retries: u64,
}

/// One cycle's provisioning verdict: nodes to add, nodes to release,
/// and whether the policy saturated its per-cycle cap. `add` and
/// `remove` are never both nonzero — the staircase's hysteresis band
/// guarantees a shrink can't re-trip the scale-out threshold.
#[derive(Default)]
struct ScaleStep {
    add: usize,
    remove: usize,
    saturated: bool,
}

/// What a cycle's retraction script did, accumulated across batches.
#[derive(Default)]
struct RetractTally {
    /// Cells tombstoned in placed chunks.
    retracted: u64,
    /// Retraction coordinates with no live cell to delete (never
    /// inserted, already retracted, or their chunk already evicted).
    missing: u64,
    /// Chunks emptied outright and evicted from the placement.
    evicted_chunks: usize,
    /// Bytes those evicted chunks still carried.
    evicted_bytes: u64,
    /// Chunks the tombstone-ratio GC compacted.
    gc_compacted_chunks: usize,
    /// Net bytes those compactions reclaimed (store side).
    gc_reclaimed_bytes: i64,
    /// Retraction delta rows folded into registered views.
    view_delta_rows: u64,
    /// View output rows/groups changed by those retractions.
    view_rows_changed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modis::ModisWorkload;

    fn mini_modis() -> ModisWorkload {
        // 1/16 scale keeps tests fast while preserving distribution shape.
        ModisWorkload { days: 6, scale: 0.25, seed: 1, ..Default::default() }
    }

    fn config(kind: PartitionerKind) -> RunnerConfig {
        RunnerConfig {
            node_capacity: 25_000_000_000, // scaled with the workload
            initial_nodes: 2,
            partitioner: kind,
            partitioner_config: PartitionerConfig::default(),
            scaling: ScalingPolicy::FixedStep { add: 2, trigger: 0.8 },
            cost: CostModel::default(),
            run_queries: true,
            ingest_threads: 1,
            string_encoding: StringEncoding::default(),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn cluster_grows_and_phases_are_positive() {
        let w = mini_modis();
        let mut runner = WorkloadRunner::new(&w, config(PartitionerKind::ConsistentHash));
        let report = runner.run_all().expect("collision-free workload");
        assert_eq!(report.cycles.len(), 6);
        assert!(report.cycles.last().unwrap().nodes > 2, "cluster must scale out");
        for c in &report.cycles {
            assert!(c.phases.insert_secs > 0.0, "cycle {} no insert time", c.cycle);
            assert!(c.phases.query_secs > 0.0, "cycle {} no query time", c.cycle);
            assert!(!c.scale_saturated, "cycle {} saturated the scale cap", c.cycle);
        }
        assert!(report.node_hours() > 0.0);
    }

    #[test]
    fn append_reorganizes_for_free_but_balances_poorly() {
        let w = mini_modis();
        let append =
            WorkloadRunner::new(&w, config(PartitionerKind::Append)).run_all().expect("runs");
        let rr =
            WorkloadRunner::new(&w, config(PartitionerKind::RoundRobin)).run_all().expect("runs");
        assert_eq!(append.phase_totals().reorg_secs, 0.0, "append never moves data");
        assert!(rr.phase_totals().reorg_secs > 0.0, "round robin reshuffles");
        assert!(append.mean_rsd() > rr.mean_rsd() * 2.0, "append must balance worse");
    }

    #[test]
    fn locate_agrees_with_cluster_after_full_run() {
        let w = mini_modis();
        for kind in elastic_core::PartitionerKind::ALL {
            let mut runner = WorkloadRunner::new(&w, config(kind));
            runner.run_all().expect("collision-free workload");
            // Spot-check agreement on every placed chunk.
            // (The partitioner is consumed internally; verify through a
            // fresh placement probe is impossible here, so assert the
            // cluster's books balance instead.)
            let total: u64 = runner.cluster().loads().iter().sum();
            assert_eq!(total, runner.cluster().total_used(), "{kind}: ledger mismatch");
            assert!(runner.cluster().total_chunks() > 0, "{kind}: no chunks placed");
        }
    }

    #[test]
    fn staircase_policy_scales_out() {
        let w = mini_modis();
        let mut cfg = config(PartitionerKind::ConsistentHash);
        cfg.scaling = ScalingPolicy::Staircase(StaircaseConfig {
            node_capacity_gb: 25.0,
            samples: 2,
            plan_ahead: 1,
            trigger: 1.0,
            shrink_margin: 0.0,
        });
        let mut runner = WorkloadRunner::new(&w, cfg);
        let report = runner.run_all().expect("collision-free workload");
        assert!(report.cycles.last().unwrap().nodes > 2);
        // The provisioner saw every cycle's demand.
        assert_eq!(runner.provisioner().unwrap().history().len(), 6);
    }

    #[test]
    fn fixed_policy_never_scales() {
        let w = mini_modis();
        let mut cfg = config(PartitionerKind::RoundRobin);
        cfg.scaling = ScalingPolicy::Fixed;
        let report = WorkloadRunner::new(&w, cfg).run_all().expect("collision-free workload");
        assert!(report.cycles.iter().all(|c| c.nodes == 2));
        assert!(report.cycles.iter().all(|c| c.added_nodes == 0));
    }

    #[test]
    fn materialized_cycles_attach_payloads_and_keep_books_consistent() {
        use crate::ais::{AisWorkload, BROADCAST};
        let w = AisWorkload {
            cycles: 3,
            scale: 0.05,
            seed: 5,
            cells_per_cycle: 1200,
            ..Default::default()
        };
        let mut cfg = config(PartitionerKind::HilbertCurve);
        // Cells are ~80 B each, so a cycle lands ~100 KB; tiny nodes force
        // scale-outs (and therefore payload-carrying rebalances) mid-run.
        cfg.node_capacity = 100_000;
        let mut runner = WorkloadRunner::new(&w, cfg);
        let report = runner.run_all().expect("materialized run completes");
        assert!(report.cycles.last().unwrap().nodes > 2, "must scale out");

        // Every broadcast chunk placed in the cluster carries its payload,
        // and the payload's real bytes equal the descriptor the placement
        // and census saw.
        let broadcast = runner.catalog().array(BROADCAST).unwrap();
        assert!(!broadcast.descriptors.is_empty());
        let cluster = runner.cluster();
        for desc in broadcast.descriptors.values() {
            let payload = cluster.payload(&desc.key).expect("payload travels with the chunk");
            assert_eq!(payload.byte_size(), desc.bytes);
            assert_eq!(payload.cell_count(), desc.cells);
        }
        // The catalog keeps the whole-array oracle copy in sync.
        let data = broadcast.data.as_ref().expect("materialized catalog storage");
        assert_eq!(data.chunk_count(), broadcast.descriptors.len());
        assert_eq!(data.byte_size(), broadcast.byte_size());
        // Derived products stayed metadata-only; only broadcast chunks
        // carry payloads.
        assert_eq!(cluster.payload_count(), broadcast.descriptors.len());
        assert!(cluster.total_chunks() > broadcast.descriptors.len());
    }

    /// Re-emits cycle 0's chunk keys at cycle 1 — a typed ingest
    /// failure — then runs clean again at cycle 2.
    struct CollidingWorkload;

    impl Workload for CollidingWorkload {
        fn name(&self) -> &'static str {
            "colliding"
        }
        fn cycles(&self) -> usize {
            3
        }
        fn register_arrays(&self, catalog: &mut Catalog) {
            let schema = ArraySchema::parse("C<v:double>[x=0:63,1]").unwrap();
            catalog.register(query_engine::StoredArray::from_descriptors(ArrayId(0), schema, []));
        }
        fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
            let base = if cycle == 1 { 0 } else { cycle as i64 * 8 };
            (0..8)
                .map(|i| {
                    ChunkDescriptor::new(
                        ChunkKey::new(ArrayId(0), ChunkCoords::new([base + i])),
                        1_000_000,
                        100,
                    )
                })
                .collect()
        }
        fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
            Vec::new()
        }
        fn grid_hint(&self) -> elastic_core::GridHint {
            elastic_core::GridHint::new(vec![64])
        }
        fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
            SuiteReport::default()
        }
    }

    #[test]
    fn abort_policy_stops_at_first_failing_cycle() {
        let mut runner =
            WorkloadRunner::new_owned(CollidingWorkload, config(PartitionerKind::RoundRobin));
        let err = runner.run_all().expect_err("cycle 1 replays cycle 0's keys");
        assert!(matches!(err, CycleError::Ingest { cycle: 1, .. }), "got {err}");
    }

    #[test]
    fn record_and_continue_policy_survives_failing_cycles() {
        let mut cfg = config(PartitionerKind::RoundRobin);
        cfg.on_error = ErrorPolicy::RecordAndContinue;
        let mut runner = WorkloadRunner::new_owned(CollidingWorkload, cfg);
        let report = runner.run_all().expect("failures are recorded, not raised");
        assert_eq!(report.cycles.iter().map(|c| c.cycle).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].cycle, 1);
        assert!(report.failures[0].error.contains("cycle 1"), "{}", report.failures[0].error);
        // The colliding batch rolled back wholesale: cycle 2's books
        // balance exactly as if cycle 1 had never run.
        let total: u64 = runner.cluster().loads().iter().sum();
        assert_eq!(total, runner.cluster().total_used());
        assert_eq!(total, 16_000_000, "cycles 0 and 2 landed, cycle 1 did not");
    }

    /// Materialized insert-then-delete script: the first `grow` cycles
    /// each insert `cells` cells; every later cycle retracts one of the
    /// earlier cycles wholesale, opening a demand trough for the
    /// staircase's scale-in band.
    struct TroughWorkload {
        cycles: usize,
        grow: usize,
        cells: usize,
    }

    const TROUGH: ArrayId = ArrayId(3);

    impl TroughWorkload {
        fn schema() -> ArraySchema {
            ArraySchema::parse("T<v:double>[x=0:*,64]").unwrap()
        }
    }

    impl Workload for TroughWorkload {
        fn name(&self) -> &'static str {
            "trough"
        }
        fn cycles(&self) -> usize {
            self.cycles
        }
        fn register_arrays(&self, catalog: &mut Catalog) {
            catalog.register(query_engine::StoredArray::from_descriptors(
                TROUGH,
                Self::schema(),
                [],
            ));
        }
        fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
            Vec::new()
        }
        fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
            use array_model::ScalarValue;
            let mut batch = CellBatch::new(TROUGH, &Self::schema());
            if cycle < self.grow {
                let mut vals = Vec::with_capacity(1);
                for i in 0..self.cells {
                    let x = (cycle * self.cells + i) as i64;
                    vals.push(ScalarValue::Double(x as f64));
                    batch.push(&[x], &mut vals);
                }
            } else {
                let old = cycle - self.grow;
                for i in 0..self.cells {
                    batch.push_retraction(&[(old * self.cells + i) as i64]);
                }
            }
            Some(vec![batch])
        }
        fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
            Vec::new()
        }
        fn grid_hint(&self) -> elastic_core::GridHint {
            elastic_core::GridHint::new(vec![1024])
        }
        fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
            SuiteReport::default()
        }
    }

    #[test]
    fn demand_trough_shrinks_the_cluster() {
        // 16 B/cell (one i64 coordinate + one double): 2048 cells fill
        // exactly two 16 KB nodes, so the run climbs the staircase for
        // three cycles and then walks it back down as deletes land.
        let w = TroughWorkload { cycles: 6, grow: 3, cells: 2048 };
        let mut cfg = config(PartitionerKind::RoundRobin);
        cfg.node_capacity = 16_384;
        cfg.run_queries = false;
        cfg.scaling = ScalingPolicy::Staircase(StaircaseConfig {
            node_capacity_gb: 16_384.0 / 1e9,
            samples: 2,
            plan_ahead: 1,
            trigger: 1.0,
            shrink_margin: 0.75,
        });
        let mut runner = WorkloadRunner::new_owned(w, cfg);
        let report = runner.run_all().expect("trough run completes");
        let peak = report.cycles.iter().map(|c| c.nodes).max().unwrap();
        let last = report.cycles.last().unwrap();
        assert!(peak > 2, "cluster must grow first (peak {peak})");
        assert!(last.nodes < peak, "must end below the {peak}-node peak, got {}", last.nodes);
        assert_eq!(last.nodes, 1, "an emptied store releases down to the one-node floor");
        let removed: usize = report.cycles.iter().map(|c| c.removed_nodes).sum();
        assert_eq!(removed, peak - 1, "every step above the floor was released");
        let retracted: u64 = report.cycles.iter().map(|c| c.retracted_cells).sum();
        assert_eq!(retracted, 3 * 2048, "every inserted cell was retracted");
        let evicted: usize = report.cycles.iter().map(|c| c.evicted_chunks).sum();
        assert_eq!(evicted, 96, "3 retracted cycles x 32 chunks each (64-cell chunks)");
        // The books drain to zero and stay balanced: retired slots keep
        // zero load, the placement holds no chunks, and the census is
        // empty rather than under-replicated.
        let cluster = runner.cluster();
        assert_eq!(cluster.total_used(), 0);
        assert_eq!(cluster.total_chunks(), 0);
        assert_eq!(cluster.active_node_count(), 1);
        assert_eq!(cluster.node_count() - cluster.active_node_count(), removed);
        assert_eq!(cluster.balance_rsd(), 0.0);
        // Drained bytes are accounted as reorg movement and time.
        assert!(report.cycles.iter().any(|c| c.removed_nodes > 0 && c.moved_bytes > 0));
        assert!(report.phase_totals().reorg_secs > 0.0);
    }

    /// Sustained churn: every cycle inserts a fresh coordinate range and
    /// retracts half of the previous cycle's — chunks accumulate
    /// tombstones without ever emptying, the case on-demand compaction
    /// left unbounded.
    struct ChurnWorkload {
        cycles: usize,
        cells: usize,
    }

    const CHURN: ArrayId = ArrayId(4);

    impl ChurnWorkload {
        fn schema() -> ArraySchema {
            ArraySchema::parse("C<v:double, s:string>[x=0:*,64]").unwrap()
        }
    }

    impl Workload for ChurnWorkload {
        fn name(&self) -> &'static str {
            "churn"
        }
        fn cycles(&self) -> usize {
            self.cycles
        }
        fn register_arrays(&self, catalog: &mut Catalog) {
            catalog.register(query_engine::StoredArray::from_descriptors(
                CHURN,
                Self::schema(),
                [],
            ));
        }
        fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
            Vec::new()
        }
        fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
            use array_model::ScalarValue;
            let mut batch = CellBatch::new(CHURN, &Self::schema());
            let mut vals = Vec::with_capacity(2);
            for i in 0..self.cells {
                let x = (cycle * self.cells + i) as i64;
                vals.push(ScalarValue::Double(x as f64));
                vals.push(ScalarValue::Str(format!("tag{}", i % 50)));
                batch.push(&[x], &mut vals);
            }
            if cycle > 0 {
                // Every even coordinate of the previous cycle: each
                // 64-cell chunk ends the cycle exactly half dead.
                let prev = (cycle - 1) * self.cells;
                for i in (0..self.cells).step_by(2) {
                    batch.push_retraction(&[(prev + i) as i64]);
                }
            }
            Some(vec![batch])
        }
        fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
            Vec::new()
        }
        fn grid_hint(&self) -> elastic_core::GridHint {
            elastic_core::GridHint::new(vec![1024])
        }
        fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
            SuiteReport::default()
        }
    }

    /// Physical rows and tombstones resident in placed payloads,
    /// enumerated through the catalog's descriptor index.
    fn resident_rows(runner: &WorkloadRunner<'_>) -> (u64, u64) {
        let (mut physical, mut dead) = (0u64, 0u64);
        for stored in runner.catalog().arrays() {
            for coords in stored.descriptors.keys() {
                let key = ChunkKey::new(stored.id, *coords);
                let payload = runner.cluster().payload(&key).expect("materialized run");
                physical += payload.physical_cell_count() as u64;
                dead += payload.tombstone_count();
            }
        }
        (physical, dead)
    }

    /// The automatic tombstone GC bounds resident rows under sustained
    /// insert+retract churn; without it tombstones accumulate without
    /// bound. Store and oracle compact in lockstep, so the attach
    /// invariant and the oracle mirror both keep holding.
    #[test]
    fn tombstone_gc_bounds_resident_bytes_under_churn() {
        let cycles = 4usize;
        let cells = 2048usize;
        let run = |ratio: f64| {
            let mut cfg = config(PartitionerKind::RoundRobin);
            cfg.run_queries = false;
            cfg.gc_tombstone_ratio = ratio;
            let mut runner = WorkloadRunner::new_owned(ChurnWorkload { cycles, cells }, cfg);
            let report = runner.run_all().expect("churn run completes");
            (report, runner)
        };
        let (gc_report, gc_runner) = run(0.5);
        let (off_report, off_runner) = run(f64::INFINITY);

        // GC on: every previous-cycle chunk crosses the 50 % threshold
        // the cycle after its rows are inserted, so no tombstone
        // survives the run and physical rows equal live rows.
        let compacted: usize = gc_report.cycles.iter().map(|c| c.gc_compacted_chunks).sum();
        assert_eq!(compacted, (cycles - 1) * cells / 64, "every churned chunk compacts once");
        assert!(gc_report.cycles.iter().map(|c| c.gc_reclaimed_bytes).sum::<i64>() > 0);
        let live = (cycles * cells - (cycles - 1) * cells / 2) as u64;
        assert_eq!(resident_rows(&gc_runner), (live, 0), "resident == live, no tombstones");

        // GC off: same logical state, but every tombstone stays resident.
        assert_eq!(off_report.cycles.iter().map(|c| c.gc_compacted_chunks).sum::<usize>(), 0);
        let dead = ((cycles - 1) * cells / 2) as u64;
        assert_eq!(resident_rows(&off_runner), (live + dead, dead));

        // Both runs carry identical live books, and the attach-time
        // invariant (desc.bytes == payload.byte_size()) holds per chunk
        // after GC's descriptor rewrites.
        for runner in [&gc_runner, &off_runner] {
            for stored in runner.catalog().arrays() {
                for (coords, desc) in &stored.descriptors {
                    let key = ChunkKey::new(stored.id, *coords);
                    let payload = runner.cluster().payload(&key).expect("materialized run");
                    assert_eq!(payload.byte_size(), desc.bytes);
                    assert_eq!(payload.cell_count(), desc.cells);
                    let oracle = stored
                        .data
                        .as_ref()
                        .and_then(|d| d.chunk(coords))
                        .expect("oracle mirrors the store");
                    assert_eq!(oracle.byte_size(), payload.byte_size());
                    assert_eq!(oracle.cell_count(), payload.cell_count());
                }
            }
        }
        // Compaction also dropped dangling dictionary entries, which
        // tombstoning alone leaves on the books: the GC'd store ends
        // strictly smaller even in *accounted* bytes.
        assert!(
            gc_runner.cluster().total_used() < off_runner.cluster().total_used(),
            "GC books {} must undercut tombstoned books {}",
            gc_runner.cluster().total_used(),
            off_runner.cluster().total_used()
        );
    }

    /// The byte-denominated GC trigger: with the row-ratio sweep
    /// disabled outright, dangling dictionary bytes alone — interned
    /// strings whose every referencing row was tombstoned, bytes the
    /// 4-byte-code accounting of retraction can never free — trip
    /// compaction. ChurnWorkload's `tag{i % 50}` strings guarantee every
    /// half-retracted chunk strands some entries: a tag referenced only
    /// by even rows dangles once the even rows die.
    #[test]
    fn dangling_dict_bytes_trigger_gc_without_ratio_pressure() {
        let cycles = 3usize;
        let cells = 1024usize;
        let run = |threshold: u64| {
            let mut cfg = config(PartitionerKind::RoundRobin);
            cfg.run_queries = false;
            cfg.gc_tombstone_ratio = f64::INFINITY;
            cfg.gc_dangling_dict_bytes = threshold;
            let mut runner = WorkloadRunner::new_owned(ChurnWorkload { cycles, cells }, cfg);
            let report = runner.run_all().expect("churn run completes");
            (report, runner)
        };
        let (on_report, on_runner) = run(1);
        let (off_report, off_runner) = run(u64::MAX);

        // Every previous-cycle chunk strands dictionary bytes when its
        // even rows retract, so each compacts exactly once.
        let compacted: usize = on_report.cycles.iter().map(|c| c.gc_compacted_chunks).sum();
        assert_eq!(compacted, (cycles - 1) * cells / 64, "every churned chunk compacts once");
        assert!(on_report.cycles.iter().map(|c| c.gc_reclaimed_bytes).sum::<i64>() > 0);
        assert_eq!(
            off_report.cycles.iter().map(|c| c.gc_compacted_chunks).sum::<usize>(),
            0,
            "u64::MAX disables the byte trigger"
        );

        let dangling = |runner: &WorkloadRunner<'_>| -> u64 {
            let mut total = 0;
            for stored in runner.catalog().arrays() {
                for coords in stored.descriptors.keys() {
                    let key = ChunkKey::new(stored.id, *coords);
                    let payload = runner.cluster().payload(&key).expect("materialized run");
                    total += payload.dangling_dict_bytes();
                }
            }
            total
        };
        assert_eq!(dangling(&on_runner), 0, "byte-triggered GC clears every stranded entry");
        assert!(dangling(&off_runner) > 0, "without the trigger stranded entries accumulate");

        // The GC'd store ends strictly smaller in accounted bytes, and
        // its books stay exact (descriptor == payload, store == oracle).
        assert!(on_runner.cluster().total_used() < off_runner.cluster().total_used());
        for stored in on_runner.catalog().arrays() {
            for (coords, desc) in &stored.descriptors {
                let key = ChunkKey::new(stored.id, *coords);
                let payload = on_runner.cluster().payload(&key).expect("materialized run");
                assert_eq!(payload.byte_size(), desc.bytes);
                let oracle =
                    stored.data.as_ref().and_then(|d| d.chunk(coords)).expect("oracle mirror");
                assert_eq!(oracle.byte_size(), payload.byte_size());
            }
        }
    }

    #[test]
    fn crash_fault_recovers_and_reports_costs() {
        let w = mini_modis();
        let mut cfg = config(PartitionerKind::ConsistentHash);
        cfg.initial_nodes = 4;
        cfg.replication = 2;
        cfg.fault_plan = Some(FaultPlan::new(11).at(2, FaultKind::Crash(1)));
        let mut runner = WorkloadRunner::new(&w, cfg);
        let report = runner.run_all().expect("faulted run completes");
        let c2 = &report.cycles[2];
        assert_eq!(c2.crashed_nodes, 1);
        assert!(c2.repair_bytes > 0, "re-replication moved bytes");
        assert!(c2.phases.repair_secs > 0.0, "repair time is costed");
        assert_eq!(c2.under_replicated, 0, "recovery converged within the cycle");
        assert_eq!(c2.degraded_reads, 0, "full-strength replicas leave no degraded reads");
        assert!(report.phase_totals().repair_secs > 0.0);
        // Fault-free cycles carry no repair costs, and later cycles hold
        // full strength without further repair.
        assert_eq!(report.cycles[1].phases.repair_secs, 0.0);
        assert!(report.cycles[3..].iter().all(|c| c.under_replicated == 0));
        assert!(report.cycles.iter().all(|c| !c.scale_saturated));
    }

    #[test]
    fn every_cycle_error_variant_displays_and_chains() {
        use std::error::Error as _;
        let cluster_src = || ClusterError::UnknownNode(9);
        let array_src = || ArrayError::Parse("bad schema".into());
        let variants: Vec<CycleError> = vec![
            CycleError::Ingest { cycle: 1, source: cluster_src() },
            CycleError::Derived { cycle: 2, source: cluster_src() },
            CycleError::Reorg { cycle: 3, source: cluster_src() },
            CycleError::Materialize { cycle: 4, source: array_src() },
            CycleError::UnknownArray { cycle: 5, array: ArrayId(7) },
            CycleError::Fault { cycle: 6, source: cluster_src() },
            CycleError::Recovery { cycle: 7, source: cluster_src() },
            CycleError::Retract { cycle: 8, source: cluster_src() },
            CycleError::ScaleIn { cycle: 9, source: cluster_src() },
            CycleError::Durability { cycle: 10, source: DurabilityError::Torn { offset: 12 } },
        ];
        for (i, err) in variants.iter().enumerate() {
            let rendered = err.to_string();
            assert!(
                rendered.contains(&format!("cycle {}", i + 1)),
                "variant {i} must name its cycle: {rendered}"
            );
            match err {
                // The only variant with no underlying error to chain to.
                CycleError::UnknownArray { .. } => assert!(err.source().is_none()),
                _ => {
                    let source = err.source().expect("variant chains to its source");
                    assert!(!source.to_string().is_empty());
                }
            }
        }
    }

    #[test]
    fn threaded_ingest_matches_sequential_run_exactly() {
        let w = mini_modis();
        let base =
            WorkloadRunner::new(&w, config(PartitionerKind::HilbertCurve)).run_all().expect("runs");
        let mut cfg = config(PartitionerKind::HilbertCurve);
        cfg.ingest_threads = 4;
        let mut runner = WorkloadRunner::new(&w, cfg);
        let threaded = runner.run_all().expect("runs");
        for (a, b) in base.cycles.iter().zip(&threaded.cycles) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.insert_bytes, b.insert_bytes);
            assert_eq!(a.moved_bytes, b.moved_bytes);
            assert_eq!(
                a.rsd_after_insert.to_bits(),
                b.rsd_after_insert.to_bits(),
                "cycle {}: census must be bit-identical",
                a.cycle
            );
        }
    }
}
