//! The workload abstraction: what the cycle driver and the reproduction
//! harness need from a use case (§3 of the paper).

use array_model::{ArrayId, ArraySchema, CellBuffer, CellCoords, ChunkDescriptor, ScalarValue};
use elastic_core::GridHint;
use query_engine::{Catalog, ExecutionContext, QueryStats};
use serde::{Deserialize, Serialize};

/// One benchmark query's name and cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query name (e.g. `"spj/selection"`).
    pub name: String,
    /// Its simulated cost.
    pub stats: QueryStats,
}

/// The per-cycle benchmark outcome: the SPJ suite and the Science suite
/// of §3.3, measured separately as in Figure 5.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Every query, in execution order.
    pub queries: Vec<QueryRecord>,
}

impl SuiteReport {
    /// Record one query.
    pub fn push(&mut self, name: impl Into<String>, stats: QueryStats) {
        self.queries.push(QueryRecord { name: name.into(), stats });
    }

    /// Total seconds of queries whose name starts with `prefix`.
    pub fn secs_with_prefix(&self, prefix: &str) -> f64 {
        self.queries
            .iter()
            .filter(|q| q.name.starts_with(prefix))
            .map(|q| q.stats.elapsed_secs)
            .sum()
    }

    /// Seconds spent in the SPJ suite.
    pub fn spj_secs(&self) -> f64 {
        self.secs_with_prefix("spj/")
    }

    /// Seconds spent in the Science suite.
    pub fn science_secs(&self) -> f64 {
        self.secs_with_prefix("science/")
    }

    /// Total benchmark seconds.
    pub fn total_secs(&self) -> f64 {
        self.queries.iter().map(|q| q.stats.elapsed_secs).sum()
    }

    /// The stats of a single named query, if it ran.
    pub fn query(&self, name: &str) -> Option<&QueryStats> {
        self.queries.iter().find(|q| q.name == name).map(|q| &q.stats)
    }

    /// Total chunks skipped by zone-map pruning across the suite — the
    /// probes' visibility into how much scan work the vectorized layer
    /// refuted before touching payloads.
    pub fn chunks_pruned(&self) -> u64 {
        self.queries.iter().map(|q| q.stats.chunks_pruned).sum()
    }

    /// Total chunks actually visited across the suite.
    pub fn chunks_visited(&self) -> u64 {
        self.queries.iter().map(|q| q.stats.chunks_visited).sum()
    }
}

/// One cycle's worth of materialized cells for one array: the payload the
/// cell-level ingest path streams into the chunk builder. Descriptors are
/// then derived from the built chunks' actual `byte_size()`/`cell_count()`
/// instead of sampled size distributions.
///
/// Rows live in a flat [`CellBuffer`] — one contiguous coordinate buffer
/// plus per-attribute columnar value buffers — which the generators emit
/// into directly, so a batch of `n` rows costs O(1) amortized
/// allocations per row instead of two `Vec`s per cell. String values
/// intern through the buffer's per-column transport dictionary on the
/// way in: the batch stores each distinct string once plus a `u32` code
/// per row, and the chunk builder scatters the codes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellBatch {
    /// The array the cells belong to.
    pub array: ArrayId,
    rows: CellBuffer,
}

impl CellBatch {
    /// An empty batch for `array`, shaped by its schema.
    pub fn new(array: ArrayId, schema: &ArraySchema) -> Self {
        CellBatch { array, rows: CellBuffer::new(schema) }
    }

    /// Record one cell, draining `values` into the columnar buffers (the
    /// caller's scratch `Vec` keeps its capacity across rows). Panics on
    /// a row that does not fit the schema the batch was created with —
    /// workload generators are deterministic, so a misshapen row is a
    /// generator bug, not an input condition.
    pub fn push(&mut self, cell: &[i64], values: &mut Vec<ScalarValue>) {
        self.rows.push_row(cell, values).expect("generator emits schema-shaped rows");
    }

    /// Record one retraction: the coordinates of a previously inserted
    /// cell this cycle deletes (AIS vessels going dark, MODIS tiles
    /// aging out). Retractions ride the same batch as the cycle's
    /// inserts but target *earlier* cycles' chunks; the driver applies
    /// them to the cluster payloads and the catalog oracle before
    /// building this cycle's fresh chunks. Panics on a coordinate of
    /// the wrong arity — a generator bug, not an input condition.
    pub fn push_retraction(&mut self, cell: &[i64]) {
        self.rows.push_retraction(cell).expect("generator emits schema-shaped retractions");
    }

    /// Number of retraction rows carried by this batch.
    pub fn retraction_count(&self) -> usize {
        self.rows.retraction_count()
    }

    /// The flat retraction coordinate buffer (stride = the schema's
    /// dimensionality).
    pub fn retractions_flat(&self) -> &[i64] {
        self.rows.retractions_flat()
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The flat row buffer — what the chunk-building pipeline consumes.
    pub fn rows(&self) -> &CellBuffer {
        &self.rows
    }

    /// Take the flat row buffer, consuming the batch — the single-
    /// threaded chunk build moves values straight out of it.
    pub fn into_rows(self) -> CellBuffer {
        self.rows
    }

    /// Materialize the rows as `(coords, values)` pairs — the shape the
    /// differential oracles consume. Not for hot paths.
    pub fn cells(&self) -> Vec<(CellCoords, Vec<ScalarValue>)> {
        self.rows.rows()
    }

    /// Serialize the batch for the write-ahead log: the target array plus
    /// the flat row buffer verbatim ([`CellBuffer::encode_into`] carries
    /// transport dictionaries and retractions). A decoded batch replays
    /// bit-identically to the original through the same insert path.
    pub fn encode_into(&self, w: &mut durability::ByteWriter) {
        self.array.encode_into(w);
        self.rows.encode_into(w);
    }

    /// Decode a batch written by [`CellBatch::encode_into`].
    pub fn decode_from(r: &mut durability::ByteReader<'_>) -> Result<Self, durability::CodecError> {
        let array = ArrayId::decode_from(r)?;
        let rows = CellBuffer::decode_from(r)?;
        Ok(CellBatch { array, rows })
    }
}

/// A reproducible, cyclic workload (§3.4): per-cycle insert batches,
/// derived-result storage, and the benchmark suites.
pub trait Workload {
    /// Display name ("MODIS", "AIS").
    fn name(&self) -> &'static str;

    /// Number of workload cycles.
    fn cycles(&self) -> usize;

    /// Register the workload's arrays (schemas + empty chunk sets) with a
    /// catalog. Called once before cycle 0.
    fn register_arrays(&self, catalog: &mut Catalog);

    /// The chunks inserted by cycle `cycle` (0-based). Deterministic.
    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor>;

    /// Cell-level payload for cycle `cycle`, when the workload runs in
    /// materialized mode. `None` (the default) keeps the metadata-only
    /// path: the driver places the sampled descriptors of
    /// [`Workload::insert_batch`]. `Some` makes the driver build real
    /// chunks from these cells, derive descriptors from the actual
    /// payloads, attach the payloads to the nodes that receive them, and
    /// keep a whole-array oracle copy in the catalog. Deterministic.
    fn cell_batch(&self, _cycle: usize) -> Option<Vec<CellBatch>> {
        None
    }

    /// The derived-result chunks the query phase stores at the end of
    /// `cycle` ("they may store their findings for future reference",
    /// §3.4). May be empty.
    fn derived_batch(&self, cycle: usize) -> Vec<ChunkDescriptor>;

    /// Chunk-grid shape for the range partitioners.
    fn grid_hint(&self) -> GridHint;

    /// The two dimensions the quadtree quarters (lon/lat).
    fn quad_plane(&self) -> (usize, usize) {
        (1, 2)
    }

    /// Run both §3.3 benchmark suites for `cycle` against the current
    /// placement and return per-query costs.
    fn run_suites(&self, ctx: &ExecutionContext<'_>, cycle: usize) -> SuiteReport;
}
