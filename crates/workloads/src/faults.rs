//! Deterministic fault-injection schedules for the workload driver.
//!
//! A [`FaultPlan`] is a seeded list of cycle-indexed [`FaultEvent`]s. The
//! runner executes them at fixed points inside
//! [`run_cycle`](crate::WorkloadRunner::run_cycle) — crashes, drains, and
//! revivals fire before the cycle's scale decision; rebalance- and
//! recovery-interrupting crashes fire at their namesake phase — so a
//! given `(workload, config, plan)` triple replays bit-identically.
//! Randomness enters only through the in-tree `splitmix64`:
//! [`FaultKind::FlakyFlows`] derives its per-attempt draws from
//! [`FaultPlan::cycle_seed`], never from a global RNG.

use cluster_sim::BackoffPolicy;
use elastic_core::hashing::splitmix64;
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Cycle (0-based) at which the fault fires.
    pub cycle: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// The fault vocabulary the runner can inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop crash of node `n` at the start of the cycle: its local
    /// storage is lost in full and surviving replicas are promoted.
    Crash(u32),
    /// Crash node `n` immediately after the cycle's rebalance phase and
    /// before its ingest — the window where freshly moved chunks are most
    /// exposed. Fires at the same point even when the cycle does not
    /// scale (the rebalance was merely empty).
    CrashDuringRebalance(u32),
    /// Crash `node` after `after_jobs` jobs of the cycle's first
    /// recovery pass have been processed: a repair source failing
    /// mid-repair.
    CrashDuringRecovery {
        /// The node that fails.
        node: u32,
        /// Repair jobs processed before it does.
        after_jobs: usize,
    },
    /// Drop each repair-flow attempt this cycle with probability `p`,
    /// deterministically in `(plan seed, cycle, chunk, attempt)`.
    FlakyFlows {
        /// Per-attempt failure probability in `[0, 1]`.
        p: f64,
    },
    /// Start draining node `n`: it keeps serving reads and repair
    /// sources but accepts no new data (scale-IN preparation).
    Drain(u32),
    /// Revive crashed node `n` into `Recovering`: it accepts data again
    /// and refills through the recovery pass.
    Revive(u32),
}

/// A seeded, cycle-indexed fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Decorrelates [`FaultKind::FlakyFlows`] draws across plans that
    /// share a schedule shape.
    pub seed: u64,
    /// The schedule, in no particular order; events are matched by their
    /// `cycle` field.
    pub events: Vec<FaultEvent>,
    /// Retry budget charged when repair flows fail.
    pub backoff: BackoffPolicy,
}

impl FaultPlan {
    /// An empty schedule with the default backoff budget.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new(), backoff: BackoffPolicy::default() }
    }

    /// Builder: schedule `kind` at `cycle`.
    pub fn at(mut self, cycle: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { cycle, kind });
        self
    }

    /// Events scheduled for `cycle`, in insertion order.
    pub fn events_at(&self, cycle: usize) -> impl Iterator<Item = FaultKind> + '_ {
        self.events.iter().filter(move |e| e.cycle == cycle).map(|e| e.kind)
    }

    /// The per-cycle sub-seed flaky-flow draws derive from.
    pub fn cycle_seed(&self, cycle: usize) -> u64 {
        splitmix64(self.seed ^ cycle as u64)
    }
}

/// What [`run_all`](crate::WorkloadRunner::run_all) does when a cycle
/// fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorPolicy {
    /// Stop at the first failing cycle and return its error (the
    /// pre-fault behavior, and the default).
    #[default]
    Abort,
    /// Record the failure in [`RunReport::failures`]
    /// (crate::RunReport::failures) and keep driving the remaining
    /// cycles against whatever state survives.
    RecordAndContinue,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_indexes_events_by_cycle() {
        let plan = FaultPlan::new(42)
            .at(1, FaultKind::Crash(0))
            .at(3, FaultKind::FlakyFlows { p: 0.5 })
            .at(1, FaultKind::Drain(2));
        assert_eq!(
            plan.events_at(1).collect::<Vec<_>>(),
            vec![FaultKind::Crash(0), FaultKind::Drain(2)]
        );
        assert_eq!(plan.events_at(0).count(), 0);
        assert_eq!(plan.events_at(3).collect::<Vec<_>>(), vec![FaultKind::FlakyFlows { p: 0.5 }]);
    }

    #[test]
    fn cycle_seeds_are_deterministic_and_distinct() {
        let plan = FaultPlan::new(7);
        assert_eq!(plan.cycle_seed(0), FaultPlan::new(7).cycle_seed(0));
        assert_ne!(plan.cycle_seed(0), plan.cycle_seed(1));
        assert_ne!(plan.cycle_seed(1), FaultPlan::new(8).cycle_seed(1));
    }
}
