//! The MODIS remote-sensing workload (paper §3.1).
//!
//! Two 3-D band arrays (time × longitude × latitude, chunked 1 day × 12° ×
//! 12°) receive ~45 GB of new imagery per daily cycle, totalling ≈630 GB
//! over 14 days. The distribution is nearly uniform: chunk sizes are
//! log-normal with σ calibrated so the top 5 % of chunks hold ≈10 % of the
//! bytes and each lat/lon octant carries 80 GB ± 8 GB, as the paper
//! measures. Daily insert volume carries mild white noise (steady growth),
//! which is why Algorithm 1 tunes MODIS toward a *large* sampling window.

use crate::rand_util::{lognormal, rng_for, standard_normal};
use crate::spec::{CellBatch, SuiteReport, Workload};
use array_model::{
    ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey, Region, ScalarValue,
};
use elastic_core::GridHint;
use query_engine::{ops, Catalog, ExecutionContext, StoredArray};
use rand::Rng;

/// MODIS band 1.
pub const BAND1: ArrayId = ArrayId(0);
/// MODIS band 2.
pub const BAND2: ArrayId = ArrayId(1);
/// Derived data products ("cooked" results stored back, §3.4).
pub const DERIVED: ArrayId = ArrayId(2);

const LON_CHUNKS: i64 = 31; // (-180..180) / 12°
const LAT_CHUNKS: i64 = 16; // (-90..90) / 12°
const MINUTES_PER_DAY: i64 = 1440;

/// The MODIS workload generator.
#[derive(Debug, Clone)]
pub struct ModisWorkload {
    /// Number of daily cycles (the paper runs 14).
    pub days: usize,
    /// Byte-scale factor (1.0 = paper scale, ≈630 GB total).
    pub scale: f64,
    /// Seed for all synthesis.
    pub seed: u64,
    /// Pixels emitted per daily cycle by the materialized (cell-level)
    /// ingest mode; `0` keeps the workload metadata-only. Band 1 receives
    /// every pixel, band 2 every other one at the same position, so the
    /// vegetation-index join has real partners.
    pub cells_per_cycle: u64,
    /// Tile time-to-live in daily cycles: when nonzero, every pixel of
    /// day `d - ttl_days` is retracted at cycle `d` (raw swaths age out
    /// once their cooked products ship, a rolling-window archive). `0`
    /// (the default) disables expiry, keeping the insert-only pinned
    /// runs bit-identical. Only meaningful in materialized mode
    /// (`cells_per_cycle > 0`).
    pub ttl_days: usize,
}

impl Default for ModisWorkload {
    fn default() -> Self {
        ModisWorkload { days: 14, scale: 1.0, seed: 0x5eed_0001, cells_per_cycle: 0, ttl_days: 0 }
    }
}

impl ModisWorkload {
    /// Paper-scale workload with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        ModisWorkload { seed, ..Default::default() }
    }

    /// The band schema from §3.1.
    pub fn band_schema(name: &str) -> ArraySchema {
        ArraySchema::parse(&format!(
            "{name}<si_value:int32, radiance:double, reflectance:double, \
             uncertainty_idx:int32, uncertainty_pct:float, platform_id:int32, \
             resolution_id:int32>[time=0:*,{MINUTES_PER_DAY}, longitude=-180:180,12, \
             latitude=-90:90,12]"
        ))
        .expect("band schema is valid")
    }

    /// Mean bytes of one chunk at this scale (~45 MB at scale 1, giving
    /// ≈630 GB over 14 days × 2 bands × 496 chunks).
    fn mean_chunk_bytes(&self) -> f64 {
        45.0e6 * self.scale
    }

    /// The day-level volume multiplier. MODIS coverage swaths repeat on a
    /// short orbital sub-cycle, giving daily volume a period-4 oscillation;
    /// downlink catch-up adds mildly anti-correlated noise on top. Both
    /// components punish short derivative windows (they chase the swing)
    /// while a 4-sample window averages a whole period — the reason
    /// Table 2 tunes MODIS to s = 4. σ grows mildly with time, so the
    /// held-out (later) cycles are noisier, as the paper's test row shows.
    fn day_factor(&self, day: usize) -> f64 {
        let eps = |d: i64| {
            let mut rng = rng_for(self.seed, &[99, d]);
            standard_normal(&mut rng)
        };
        let sigma = 0.025 + 0.0018 * day as f64;
        let seasonal = 0.055 * (std::f64::consts::PI * day as f64 / 2.0).sin();
        let noise = eps(day as i64) - 0.5 * eps(day as i64 - 1);
        (1.0 + seasonal + sigma * noise).max(0.5)
    }

    /// Deterministic size of one chunk.
    fn chunk_bytes(&self, band: u32, day: i64, lon: i64, lat: i64) -> u64 {
        let mut rng = rng_for(self.seed, &[band as i64, day, lon, lat]);
        // σ = 0.36 puts ~10 % of the bytes in the top 5 % of chunks.
        let base = lognormal(&mut rng, self.mean_chunk_bytes(), 0.36);
        (base * self.day_factor(day as usize)) as u64
    }

    fn band_day_chunks(&self, band_id: ArrayId, day: i64) -> Vec<ChunkDescriptor> {
        let mut out = Vec::with_capacity((LON_CHUNKS * LAT_CHUNKS) as usize);
        for lon in 0..LON_CHUNKS {
            for lat in 0..LAT_CHUNKS {
                let bytes = self.chunk_bytes(band_id.0, day, lon, lat);
                let cells = bytes / 60; // ≈60 B per stored cell
                out.push(ChunkDescriptor::new(
                    ChunkKey::new(band_id, ChunkCoords::new([day, lon, lat])),
                    bytes,
                    cells,
                ));
            }
        }
        out
    }

    /// Cumulative storage demand (GB) after each daily insert — the demand
    /// history the what-if tuner (Table 2) trains on.
    pub fn daily_demand_history(&self) -> Vec<f64> {
        let mut cum = 0.0;
        (0..self.days)
            .map(|d| {
                let day_bytes: u64 = self.insert_batch(d).iter().map(|desc| desc.bytes).sum();
                cum += day_bytes as f64 / 1e9;
                cum
            })
            .collect()
    }

    /// Deterministically derive pixel `i` of `day`'s swath: the cell
    /// position, with the row's rng stream positioned right after the
    /// coordinate draws (attribute draws continue from it). Splitting
    /// this out of [`Workload::cell_batch`] lets the TTL-expiry pass
    /// replay an old day's positions without regenerating its values.
    fn pixel_at(&self, day: i64, i: u64) -> (rand::rngs::StdRng, (i64, i64, i64)) {
        let mut rng = rng_for(self.seed, &[900, day, i as i64]);
        let minute = day * MINUTES_PER_DAY + (rng.gen::<u64>() % MINUTES_PER_DAY as u64) as i64;
        let lon = (rng.gen::<u64>() % 361) as i64 - 180;
        let lat = (rng.gen::<u64>() % 181) as i64 - 90;
        (rng, (minute, lon, lat))
    }

    /// Cell-coordinate region for a day span (inclusive), full lat/lon.
    pub fn day_region(first_day: i64, last_day: i64) -> Region {
        Region::new(
            vec![first_day * MINUTES_PER_DAY, -180, -90],
            vec![(last_day + 1) * MINUTES_PER_DAY - 1, 180, 90],
        )
    }
}

impl Workload for ModisWorkload {
    fn name(&self) -> &'static str {
        "MODIS"
    }

    fn cycles(&self) -> usize {
        self.days
    }

    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(BAND1, Self::band_schema("Band1"), []));
        catalog.register(StoredArray::from_descriptors(BAND2, Self::band_schema("Band2"), []));
        // Derived products: one summary attribute, same spatial layout.
        let derived_schema = ArraySchema::parse(&format!(
            "Derived<ndvi:double>[time=0:*,{MINUTES_PER_DAY}, longitude=-180:180,12, \
             latitude=-90:90,12]"
        ))
        .expect("derived schema is valid");
        catalog.register(StoredArray::from_descriptors(DERIVED, derived_schema, []));
    }

    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        let day = cycle as i64;
        let mut out = self.band_day_chunks(BAND1, day);
        out.extend(self.band_day_chunks(BAND2, day));
        out
    }

    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        if self.cells_per_cycle == 0 {
            return None;
        }
        let day = cycle as i64;
        let schema = Self::band_schema("b");
        let mut band1 = CellBatch::new(BAND1, &schema);
        let mut band2 = CellBatch::new(BAND2, &schema);
        // Positions are near-uniform over the globe, like the byte field;
        // a seen-set keeps each (time, lon, lat) pixel unique so both
        // bands share exact positions for the positional join. Rows are
        // emitted straight into the columnar buffers through one reusable
        // scratch — no per-row containers.
        let mut seen = std::collections::BTreeSet::new();
        let mut vals: Vec<ScalarValue> = Vec::with_capacity(7);
        for i in 0..self.cells_per_cycle {
            let (mut rng, (minute, lon, lat)) = self.pixel_at(day, i);
            if !seen.insert((minute, lon, lat)) {
                continue;
            }
            let pixel = |rng: &mut rand::rngs::StdRng, vals: &mut Vec<ScalarValue>| {
                vals.extend([
                    ScalarValue::Int32((rng.gen::<u64>() % 10_000) as i32),
                    ScalarValue::Double(lognormal(rng, 120.0, 0.4)),
                    ScalarValue::Double(rng.gen::<f64>()),
                    ScalarValue::Int32((rng.gen::<u64>() % 4) as i32),
                    ScalarValue::Float((rng.gen::<f64>() * 10.0) as f32),
                    ScalarValue::Int32(1),
                    ScalarValue::Int32(500),
                ]);
            };
            pixel(&mut rng, &mut vals);
            band1.push(&[minute, lon, lat], &mut vals);
            if i % 2 == 0 {
                pixel(&mut rng, &mut vals);
                band2.push(&[minute, lon, lat], &mut vals);
            }
        }
        // Rolling-window expiry: replay the aged-out day's deterministic
        // pixel stream (positions only) and retract it wholesale — band 1
        // loses every pixel, band 2 the alternating half it stored. The
        // driver applies these to the old day's chunks, emptying and
        // evicting them, before this day's swath lands.
        if self.ttl_days > 0 && cycle >= self.ttl_days {
            let old = (cycle - self.ttl_days) as i64;
            let mut old_seen = std::collections::BTreeSet::new();
            for i in 0..self.cells_per_cycle {
                let (_, (minute, lon, lat)) = self.pixel_at(old, i);
                if !old_seen.insert((minute, lon, lat)) {
                    continue;
                }
                band1.push_retraction(&[minute, lon, lat]);
                if i % 2 == 0 {
                    band2.push_retraction(&[minute, lon, lat]);
                }
            }
        }
        Some(vec![band1, band2])
    }

    fn derived_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        // Scientists store ~5 % of the day's volume as cooked products
        // (vegetation indexes, regridded images). Materialized runs cook
        // off the schema-modeled pixel footprint — band1 emits every row,
        // band2 every other, hence the 3/2 — so the model tracks schema
        // changes instead of freezing a bytes-per-row constant.
        let day = cycle as i64;
        let mut rng = rng_for(self.seed, &[7_000, day]);
        let per_chunk = if self.cells_per_cycle > 0 {
            let s = Self::band_schema("b");
            let row = s.ndims() as u64 * 8 + s.estimated_cell_bytes();
            (self.cells_per_cycle * row * 3 / 2) as f64 * 0.05 / 25.0
        } else {
            self.mean_chunk_bytes()
        };
        (0..25)
            .map(|i| {
                let lon = (i * 7 + day * 3) % LON_CHUNKS;
                let lat = (i * 5 + day * 2) % LAT_CHUNKS;
                let bytes = lognormal(&mut rng, per_chunk, 0.3) as u64;
                ChunkDescriptor::new(
                    ChunkKey::new(DERIVED, ChunkCoords::new([day, lon, lat])),
                    bytes,
                    bytes / 32,
                )
            })
            .collect()
    }

    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![self.days as i64, LON_CHUNKS, LAT_CHUNKS])
            .with_split_priority(vec![1, 2])
            .with_curve_dims(vec![1, 2])
    }

    fn run_suites(&self, ctx: &ExecutionContext<'_>, cycle: usize) -> SuiteReport {
        let mut report = SuiteReport::default();
        let day = cycle as i64;

        // --- SPJ (§3.3.1) ---
        // Selection: 1/16th of lat/lon space at the lower-left corner,
        // over the most recent days (the benchmarks "refer to the newest
        // data more frequently").
        let sixteenth = Region::new(
            vec![(day - 3).max(0) * MINUTES_PER_DAY, -180, -90],
            vec![(day + 1) * MINUTES_PER_DAY - 1, -91, -46],
        );
        if let Ok((_, stats)) = ops::subarray(ctx, BAND1, &sixteenth, &["radiance"]) {
            report.push("spj/selection", stats);
        }
        // Sort: quantile of Band 1 radiance from a 1 % uniform sample of
        // the most recent week ("cooking" touches the newest data, §3.3).
        let week = Self::day_region((day - 6).max(0), day);
        if let Ok((_, stats)) = ops::quantile(ctx, BAND1, Some(&week), "radiance", 0.5, 0.01) {
            report.push("spj/sort", stats);
        }
        // Join: vegetation index over the most recent day.
        let newest = Self::day_region(day, day);
        if let Ok((_, stats)) =
            ops::positional_join(ctx, BAND1, BAND2, &newest, "radiance", "radiance", |b1, b2| {
                (b2 - b1) / (b2 + b1 + 1e-9)
            })
        {
            report.push("spj/join", stats);
        }

        // --- Science (§3.3.2) ---
        // Statistics: rolling average of light levels at the polar caps
        // over the past several days.
        let week_start = (day - 6).max(0);
        let polar = Region::new(
            vec![week_start * MINUTES_PER_DAY, -180, 66],
            vec![(day + 1) * MINUTES_PER_DAY - 1, 180, 90],
        );
        let spec = ops::GroupSpec::by_dims(vec![1, 2]);
        if let Ok((_, stats)) =
            ops::rolling_aggregate(ctx, BAND1, Some(&polar), "si_value", &spec, ops::AggFn::Avg, 0)
        {
            report.push("science/statistics-north", stats);
        }
        let south = Region::new(
            vec![week_start * MINUTES_PER_DAY, -180, -90],
            vec![(day + 1) * MINUTES_PER_DAY - 1, 180, -66],
        );
        if let Ok((_, stats)) =
            ops::rolling_aggregate(ctx, BAND1, Some(&south), "si_value", &spec, ops::AggFn::Avg, 0)
        {
            report.push("science/statistics-south", stats);
        }
        // Modeling: k-means over the Amazon rainforest on the newest day.
        let amazon = Region::new(
            vec![day * MINUTES_PER_DAY, -75, -15],
            vec![(day + 1) * MINUTES_PER_DAY - 1, -50, 5],
        );
        if let Ok((_, stats)) = ops::kmeans(ctx, BAND1, &amazon, "reflectance", 5, 12) {
            report.push("science/modeling", stats);
        }
        // Complex projection: windowed aggregate of the newest day's NDVI.
        if let Ok((_, stats)) = ops::window_aggregate(ctx, BAND1, &newest, "reflectance", 2) {
            report.push("science/projection", stats);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_volume_matches_paper_scale() {
        let w = ModisWorkload::default();
        let batch = w.insert_batch(3);
        assert_eq!(batch.len(), 2 * (LON_CHUNKS * LAT_CHUNKS) as usize);
        let gb = batch.iter().map(|d| d.bytes).sum::<u64>() as f64 / 1e9;
        assert!((35.0..55.0).contains(&gb), "daily volume {gb} GB");
        // Whole run lands near 630 GB.
        let total: f64 = (0..w.cycles())
            .map(|c| w.insert_batch(c).iter().map(|d| d.bytes).sum::<u64>() as f64 / 1e9)
            .sum();
        assert!((560.0..700.0).contains(&total), "total {total} GB");
    }

    #[test]
    fn skew_is_mild_like_the_paper() {
        let w = ModisWorkload::default();
        let mut sizes: Vec<u64> = (0..4).flat_map(|c| w.insert_batch(c)).map(|d| d.bytes).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top5: u64 = sizes[..sizes.len() / 20].iter().sum();
        let share = top5 as f64 / total as f64;
        assert!(
            (0.07..0.16).contains(&share),
            "top-5% share {share} should be near the paper's 10%"
        );
    }

    #[test]
    fn octants_hold_80gb_within_10pct() {
        // Divide lat/lon into 8 equal subarrays; each should hold roughly
        // an eighth of the data (§3.1: "80 GB with σ of 8 GB").
        let w = ModisWorkload::default();
        let mut octant_bytes = [0u64; 8];
        for c in 0..w.cycles() {
            for d in w.insert_batch(c) {
                let lon = d.key.coords.index(1);
                let lat = d.key.coords.index(2);
                let oct =
                    ((lon * 4 / LON_CHUNKS).min(3) * 2 + (lat * 2 / LAT_CHUNKS).min(1)) as usize;
                octant_bytes[oct] += d.bytes;
            }
        }
        let mean = octant_bytes.iter().sum::<u64>() as f64 / 8.0;
        for (i, &b) in octant_bytes.iter().enumerate() {
            let dev = (b as f64 - mean).abs() / mean;
            assert!(dev < 0.15, "octant {i} deviates {dev}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ModisWorkload::default().insert_batch(5);
        let b = ModisWorkload::default().insert_batch(5);
        assert_eq!(a, b);
        let c = ModisWorkload::with_seed(123).insert_batch(5);
        assert_ne!(a, c);
    }

    #[test]
    fn ttl_expiry_retracts_the_aged_out_day_exactly() {
        let keep = ModisWorkload {
            days: 4,
            scale: 0.02,
            seed: 9,
            cells_per_cycle: 3_000,
            ..Default::default()
        };
        let expire = ModisWorkload { ttl_days: 2, ..keep.clone() };
        // Before the window fills, nothing expires, and the insert rows
        // are untouched by the expiry pass.
        let early = expire.cell_batch(1).unwrap();
        assert!(early.iter().all(|b| b.retraction_count() == 0));
        let kept = keep.cell_batch(2).unwrap();
        let aged = expire.cell_batch(2).unwrap();
        for (k, a) in kept.iter().zip(&aged) {
            assert_eq!(k.cells(), a.cells());
        }
        // At cycle 2 the whole of day 0 is withdrawn: band 1's
        // retractions are exactly its day-0 inserts, band 2's exactly
        // the alternating half it stored.
        let day0 = expire.cell_batch(0).unwrap();
        for (inserted, retracting) in day0.iter().zip(&aged) {
            assert_eq!(inserted.len(), retracting.retraction_count());
            let cells: std::collections::BTreeSet<Vec<i64>> =
                inserted.cells().iter().map(|(c, _)| c.clone()).collect();
            for cell in retracting.retractions_flat().chunks_exact(3) {
                assert!(cells.contains(cell), "retraction {cell:?} was never inserted");
            }
        }
    }

    #[test]
    fn derived_batch_is_small_fraction() {
        let w = ModisWorkload::default();
        let insert: u64 = w.insert_batch(2).iter().map(|d| d.bytes).sum();
        let derived: u64 = w.derived_batch(2).iter().map(|d| d.bytes).sum();
        let frac = derived as f64 / insert as f64;
        assert!((0.01..0.08).contains(&frac), "derived fraction {frac}");
    }

    #[test]
    fn schema_matches_paper_shape() {
        let s = ModisWorkload::band_schema("Band1");
        assert_eq!(s.ndims(), 3);
        assert_eq!(s.attributes.len(), 7);
        assert_eq!(s.dimensions[0].end, None);
        assert_eq!(s.dimensions[1].chunk_count(), Some(LON_CHUNKS));
        assert_eq!(s.dimensions[2].chunk_count(), Some(LAT_CHUNKS));
    }
}
