//! The AIS marine-traffic workload (paper §3.2).
//!
//! One 3-D broadcast array (time × longitude × latitude, chunked 30 days ×
//! 4° × 4°) plus a small replicated Vessel array (25 MB). Ships congregate
//! around ports, so chunk sizes are extremely skewed: the generator drives
//! them from a port-kernel weight field calibrated to the paper's numbers
//! (≈85 % of the bytes in 5 % of the chunks, median chunk under a few KB,
//! ≈400 GB over three-plus years). Insert volume follows a slope random
//! walk — commercial shipping's trending, seasonal demand — which is why
//! Algorithm 1 tunes AIS toward the *smallest* sampling window.

use crate::rand_util::{lognormal, rng_for, standard_normal, zipf_weight};
use crate::spec::{CellBatch, SuiteReport, Workload};
use array_model::{
    ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey, Region, ScalarValue,
};
use elastic_core::GridHint;
use query_engine::{ops, Catalog, ExecutionContext, StoredArray};
use rand::Rng;

/// The AIS broadcast array.
pub const BROADCAST: ArrayId = ArrayId(10);
/// The replicated vessel-metadata array.
pub const VESSEL: ArrayId = ArrayId(11);
/// Derived data products (density maps, voyage models).
pub const DERIVED: ArrayId = ArrayId(12);

const LON_CHUNKS: i64 = 29; // (-180..-66) / 4°
const LAT_CHUNKS: i64 = 23; // (0..90) / 4°
const MINUTES_PER_TC: i64 = 43_200; // 30-day time chunks
const TCS_PER_CYCLE: i64 = 4; // 120-day workload cycles

/// `(lon chunk, lat chunk, relative strength rank)` for the major ports
/// that anchor the skew. Houston leads, matching the paper's selection
/// benchmark on "a densely trafficked area around the port of Houston".
const PORTS: [(i64, i64); 18] = [
    (21, 7),  // Houston
    (26, 10), // New York
    (15, 8),  // Los Angeles
    (25, 8),  // Miami
    (22, 7),  // New Orleans
    (26, 9),  // Norfolk
    (14, 9),  // San Francisco
    (24, 8),  // Savannah
    (13, 11), // Seattle
    (27, 10), // Boston
    (20, 6),  // Corpus Christi
    (23, 6),  // Tampa
    (25, 9),  // Charleston
    (16, 8),  // San Diego
    (26, 11), // Portland ME
    (12, 12), // Vancouver approaches
    (24, 10), // Baltimore
    (22, 9),  // Memphis river traffic
];

/// The AIS workload generator.
#[derive(Debug, Clone)]
pub struct AisWorkload {
    /// Number of 120-day cycles (the paper models 3 years quarterly).
    pub cycles: usize,
    /// Byte-scale factor (1.0 = paper scale, ≈400 GB raw).
    pub scale: f64,
    /// Seed for all synthesis.
    pub seed: u64,
    /// Broadcast rows emitted per cycle by the materialized (cell-level)
    /// ingest mode; `0` keeps the workload metadata-only. Rows congregate
    /// around the same port kernels that drive the byte skew.
    pub cells_per_cycle: u64,
    /// Vessels going dark: when nonzero, roughly one in `rate` of the
    /// previous cycle's ships stops transmitting each cycle, and all of
    /// that ship's prior-cycle broadcasts are retracted (AIS receivers
    /// deduplicate against live transponders; a dark transponder's
    /// stale track is withdrawn). `0` (the default) disables
    /// retractions, keeping the insert-only pinned runs bit-identical.
    /// Only meaningful in materialized mode (`cells_per_cycle > 0`).
    pub dark_vessel_rate: u32,
}

impl Default for AisWorkload {
    fn default() -> Self {
        // The seed is chosen so the slope random walk reproduces the
        // paper's demand shape under the in-tree generator: ~400 GB total
        // and a trending (not mean-reverting) monthly history that tunes
        // Algorithm 1 to s = 1 (Table 2).
        AisWorkload {
            cycles: 10,
            scale: 1.0,
            seed: 0x5eed_000f,
            cells_per_cycle: 0,
            dark_vessel_rate: 0,
        }
    }
}

impl AisWorkload {
    /// Paper-scale workload with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        AisWorkload { seed, ..Default::default() }
    }

    /// The broadcast schema from §3.2.
    pub fn broadcast_schema() -> ArraySchema {
        ArraySchema::parse(&format!(
            "Broadcast<speed:int32, course:int32, heading:int32, rot:int32, \
             status:int32, voyage_id:int64, ship_id:int64, receiver_type:char, \
             receiver_id:string, provenance:string>[time=0:*,{MINUTES_PER_TC}, \
             longitude=-180:-66,4, latitude=0:90,4]"
        ))
        .expect("broadcast schema is valid")
    }

    /// Insert volume (bytes) of one 30-day reporting month: a slope random
    /// walk around ≈10 GB — commercial shipping trends rather than
    /// white-noising, which is exactly why Table 2 tunes AIS to s = 1.
    pub fn month_insert_bytes(&self, month: usize) -> u64 {
        let mut level: f64 = 9.0;
        let mut slope: f64 = 0.4;
        for m in 0..=month {
            let mut rng = rng_for(self.seed, &[500, m as i64]);
            slope += 0.75 * standard_normal(&mut rng);
            slope = slope.clamp(-1.6, 2.0);
            if m > 0 {
                level = (level + slope).clamp(6.5, 14.0);
            }
        }
        (level * 1e9 * self.scale) as u64
    }

    /// Insert volume (bytes) for one 120-day cycle: its four months.
    pub fn cycle_insert_bytes(&self, cycle: usize) -> u64 {
        (0..TCS_PER_CYCLE as usize)
            .map(|i| self.month_insert_bytes(cycle * TCS_PER_CYCLE as usize + i))
            .sum()
    }

    /// Cumulative storage demand (GB) after each monthly insert — the
    /// demand history NOAA's 30-day reporting produces, which the what-if
    /// tuner (Table 2) trains on.
    pub fn monthly_demand_history(&self) -> Vec<f64> {
        let months = self.cycles * TCS_PER_CYCLE as usize;
        let mut cum = 0.0;
        (0..months)
            .map(|m| {
                cum += self.month_insert_bytes(m) as f64 / 1e9;
                cum
            })
            .collect()
    }

    /// The spatial weight of cell `(lon, lat)` in chunk units: port
    /// kernels plus a heavy-tailed trickle of open-water traffic.
    fn cell_weight(&self, tc: i64, lon: i64, lat: i64) -> f64 {
        let mut w = 0.0;
        for (rank, &(plon, plat)) in PORTS.iter().enumerate() {
            let strength = zipf_weight(rank as u64 + 1, 0.7);
            let d2 = ((lon - plon).pow(2) + (lat - plat).pow(2)) as f64;
            // A sharp kernel (σ ≈ 0.45 chunks) keeps ~3/4 of a port's mass
            // in its own 4°×4° chunk — that is what produces the paper's
            // "85 % of the data in 5 % of the chunks".
            w += strength * (-d2 / (2.0 * 0.45 * 0.45)).exp();
        }
        let mut rng = rng_for(self.seed, &[600, tc, lon, lat]);
        w + 1.0e-5 * lognormal(&mut rng, 1.0, 2.5)
    }

    fn tc_chunks(&self, tc: i64, tc_bytes: u64) -> Vec<ChunkDescriptor> {
        let mut weights = Vec::with_capacity((LON_CHUNKS * LAT_CHUNKS) as usize);
        let mut total = 0.0;
        for lon in 0..LON_CHUNKS {
            for lat in 0..LAT_CHUNKS {
                let w = self.cell_weight(tc, lon, lat);
                weights.push((lon, lat, w));
                total += w;
            }
        }
        weights
            .into_iter()
            .map(|(lon, lat, w)| {
                let bytes = (tc_bytes as f64 * w / total) as u64;
                ChunkDescriptor::new(
                    ChunkKey::new(BROADCAST, ChunkCoords::new([tc, lon, lat])),
                    bytes,
                    bytes / 90, // ≈90 B per broadcast row
                )
            })
            .collect()
    }

    /// Cell-coordinate region covering the cycle's four time chunks.
    pub fn cycle_region(cycle: usize) -> Region {
        let c = cycle as i64;
        Region::new(
            vec![c * TCS_PER_CYCLE * MINUTES_PER_TC, -180, 0],
            vec![(c + 1) * TCS_PER_CYCLE * MINUTES_PER_TC - 1, -66, 90],
        )
    }

    /// The Houston selection region: a dense 4°-wide box around the port
    /// over the two most recent cycles (the benchmarks "refer to the
    /// newest data more frequently", §3.3).
    pub fn houston_region(cycle: usize) -> Region {
        let c = cycle as i64;
        Region::new(
            vec![(c - 1).max(0) * TCS_PER_CYCLE * MINUTES_PER_TC, -96, 28],
            vec![(c + 1) * TCS_PER_CYCLE * MINUTES_PER_TC - 1, -93, 31],
        )
    }

    /// Deterministically derive row `i` of `cycle`'s broadcast batch
    /// from its per-row rng stream: the cell position first, then the
    /// ship id. Splitting this out of [`Workload::cell_batch`] lets the
    /// retraction pass replay an earlier cycle's positions without
    /// regenerating (or buffering) its attribute values — each row owns
    /// a fresh rng, so the replay stops after the ship-id draw.
    fn broadcast_row(rng: &mut rand::rngs::StdRng, cycle: usize) -> (i64, i64, i64) {
        let tc = cycle as i64 * TCS_PER_CYCLE + (rng.gen::<u64>() % TCS_PER_CYCLE as u64) as i64;
        let minute = tc * MINUTES_PER_TC + (rng.gen::<u64>() % MINUTES_PER_TC as u64) as i64;
        // Biased port pick: u^2.5 over ranks concentrates rows on the
        // heavy ports without excluding the tail.
        let rank = ((rng.gen::<f64>().powf(2.5)) * PORTS.len() as f64) as usize % PORTS.len();
        let (plon, plat) = PORTS[rank];
        let jlon = (standard_normal(rng) * 1.5).round() as i64;
        let jlat = (standard_normal(rng) * 1.5).round() as i64;
        let lon = (-180 + plon * 4 + 2 + jlon).clamp(-180, -66);
        let lat = (plat * 4 + 2 + jlat).clamp(0, 90);
        (minute, lon, lat)
    }

    /// Whether `ship_id` goes dark at the start of `cycle` (deciding the
    /// fate of its previous cycle's broadcasts). Deterministic in the
    /// seed, the cycle, and the ship.
    fn ship_goes_dark(&self, cycle: usize, ship_id: i64) -> bool {
        self.dark_vessel_rate != 0
            && rng_for(self.seed, &[810, cycle as i64, ship_id]).gen::<u64>()
                % self.dark_vessel_rate as u64
                == 0
    }

    /// Query points for the kNN benchmark: ship positions sampled near the
    /// busiest ports in the newest time chunk (uniform over *ships* means
    /// concentrated at ports).
    pub fn knn_queries(&self, cycle: usize, count: usize) -> Vec<Vec<i64>> {
        let tc = (cycle as i64 + 1) * TCS_PER_CYCLE - 1;
        let t = tc * MINUTES_PER_TC + MINUTES_PER_TC / 2;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let (plon, plat) = PORTS[i % 8]; // the heavy ports
            let mut rng = rng_for(self.seed, &[700, cycle as i64, i as i64]);
            let jlon = (standard_normal(&mut rng) * 1.5).round() as i64;
            let jlat = (standard_normal(&mut rng) * 1.5).round() as i64;
            // chunk index -> degrees at the chunk's center
            let lon = (-180 + plon * 4 + 2 + jlon).clamp(-180, -66);
            let lat = (plat * 4 + 2 + jlat).clamp(0, 90);
            out.push(vec![t, lon, lat]);
        }
        out
    }
}

impl Workload for AisWorkload {
    fn name(&self) -> &'static str {
        "AIS"
    }

    fn cycles(&self) -> usize {
        self.cycles
    }

    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(BROADCAST, Self::broadcast_schema(), []));
        // The 25 MB vessel array, replicated over all cluster nodes (§3.2).
        let vessel_schema = ArraySchema::parse(
            "Vessel<ship_type:int32, length:int32, width:int32, hazmat:int32>\
             [vessel_id=0:999999,100000]",
        )
        .expect("vessel schema is valid");
        let vessel_chunks = (0..10).map(|i| {
            ChunkDescriptor::new(
                ChunkKey::new(VESSEL, ChunkCoords::new([i])),
                2_500_000,
                2_500_000 / 16,
            )
        });
        catalog.register(
            StoredArray::from_descriptors(VESSEL, vessel_schema, vessel_chunks).replicated(),
        );
        let derived_schema = ArraySchema::parse(&format!(
            "AisDerived<density:double>[time=0:*,{MINUTES_PER_TC}, longitude=-180:-66,4, \
             latitude=0:90,4]"
        ))
        .expect("derived schema is valid");
        catalog.register(StoredArray::from_descriptors(DERIVED, derived_schema, []));
    }

    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        let mut out = Vec::new();
        for i in 0..TCS_PER_CYCLE {
            let tc = cycle as i64 * TCS_PER_CYCLE + i;
            let tc_bytes = self.month_insert_bytes(tc as usize);
            out.extend(self.tc_chunks(tc, tc_bytes));
        }
        out
    }

    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        if self.cells_per_cycle == 0 {
            return None;
        }
        // One broadcast row per emitted cell: position sampled around the
        // port kernels (heavier ranks draw more traffic, mirroring the
        // byte-weight field), timestamped inside one of the cycle's four
        // 30-day time chunks, attributes per the §3.2 schema. Rows are
        // emitted straight into the batch's columnar buffers through one
        // reusable scratch — no per-row containers — and the two string
        // attributes (128 distinct receiver ids, one provenance
        // constant) intern into the batch's transport dictionaries on
        // the way in.
        let mut batch = CellBatch::new(BROADCAST, &Self::broadcast_schema());
        let mut vals: Vec<ScalarValue> = Vec::with_capacity(10);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..self.cells_per_cycle {
            let mut rng = rng_for(self.seed, &[800, cycle as i64, i as i64]);
            let (minute, lon, lat) = Self::broadcast_row(&mut rng, cycle);
            if !seen.insert((minute, lon, lat)) {
                continue;
            }
            let ship_id = (rng.gen::<u64>() % (1 + self.cells_per_cycle / 8)) as i64;
            vals.extend([
                ScalarValue::Int32((rng.gen::<u64>() % 25) as i32),
                ScalarValue::Int32((rng.gen::<u64>() % 360) as i32),
                ScalarValue::Int32((rng.gen::<u64>() % 360) as i32),
                ScalarValue::Int32((rng.gen::<u64>() % 9) as i32 - 4),
                ScalarValue::Int32((rng.gen::<u64>() % 16) as i32),
                ScalarValue::Int64(cycle as i64 * 1_000 + (rng.gen::<u64>() % 1_000) as i64),
                ScalarValue::Int64(ship_id),
                ScalarValue::Char(b'b'),
                ScalarValue::Str(format!("r{:03}", rng.gen::<u64>() % 128)),
                ScalarValue::Str("ais-feed".to_string()),
            ]);
            batch.push(&[minute, lon, lat], &mut vals);
        }
        // Vessels going dark: replay the previous cycle's deterministic
        // row stream (positions and ship ids only — each row's fresh rng
        // makes the replay cheap) and retract every broadcast belonging
        // to a ship that went dark this cycle. Retractions ride the same
        // batch as the inserts; the driver applies them to earlier
        // cycles' chunks before building this cycle's.
        if self.dark_vessel_rate != 0 && cycle > 0 {
            let prev = cycle - 1;
            let mut prev_seen = std::collections::BTreeSet::new();
            for i in 0..self.cells_per_cycle {
                let mut rng = rng_for(self.seed, &[800, prev as i64, i as i64]);
                let (minute, lon, lat) = Self::broadcast_row(&mut rng, prev);
                if !prev_seen.insert((minute, lon, lat)) {
                    continue;
                }
                let ship_id = (rng.gen::<u64>() % (1 + self.cells_per_cycle / 8)) as i64;
                if self.ship_goes_dark(cycle, ship_id) {
                    batch.push_retraction(&[minute, lon, lat]);
                }
            }
        }
        Some(vec![batch])
    }

    fn derived_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        // The BOEM studies store density maps and voyage models: ~15 % of
        // the cycle's insert volume, concentrated near the ports. In
        // materialized mode the insert volume is modeled off the broadcast
        // schema's row footprint (inline coords + fixed-width attribute
        // estimate), so it tracks schema changes instead of freezing a
        // bytes-per-row constant.
        let cycle_bytes = if self.cells_per_cycle > 0 {
            let s = Self::broadcast_schema();
            self.cells_per_cycle * (s.ndims() as u64 * 8 + s.estimated_cell_bytes())
        } else {
            self.cycle_insert_bytes(cycle)
        };
        let total = (cycle_bytes as f64 * 0.15) as u64;
        let per_chunk = total / 16;
        (0..16usize)
            .map(|i| {
                let (lon, lat) = PORTS[i]; // 16 distinct ports
                let tc = cycle as i64 * TCS_PER_CYCLE + (i as i64 % TCS_PER_CYCLE);
                ChunkDescriptor::new(
                    ChunkKey::new(DERIVED, ChunkCoords::new([tc, lon, lat])),
                    per_chunk,
                    per_chunk / 16,
                )
            })
            .collect()
    }

    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![self.cycles as i64 * TCS_PER_CYCLE, LON_CHUNKS, LAT_CHUNKS])
            .with_split_priority(vec![1, 2])
            .with_curve_dims(vec![1, 2])
    }

    fn run_suites(&self, ctx: &ExecutionContext<'_>, cycle: usize) -> SuiteReport {
        let mut report = SuiteReport::default();

        // --- SPJ (§3.3.1) ---
        // Selection: the dense Houston box (skew stress test).
        if let Ok((_, stats)) =
            ops::subarray(ctx, BROADCAST, &Self::houston_region(cycle), &["speed", "status"])
        {
            report.push("spj/selection", stats);
        }
        // Sort: up-to-date sorted log of distinct ship identifiers over
        // the newest data (the benchmarks "refer to the newest data more
        // frequently", §3.3).
        if let Ok((_, stats)) =
            ops::distinct_sorted(ctx, BROADCAST, Some(&Self::cycle_region(cycle)), "ship_id")
        {
            report.push("spj/sort", stats);
        }
        // Join: recent ships joined with the replicated vessel array.
        if let Ok((_, stats)) = ops::lookup_join(
            ctx,
            BROADCAST,
            VESSEL,
            Some(&Self::cycle_region(cycle)),
            "ship_id",
            "ship_type",
        ) {
            report.push("spj/join", stats);
        }

        // --- Science (§3.3.2) ---
        // Statistics: coarse map of track counts (coast-erosion study).
        let spec = ops::GroupSpec::coarsened(vec![1, 2], vec![8, 8]);
        if let Ok((_, stats)) = ops::grid_aggregate(
            ctx,
            BROADCAST,
            Some(&Self::cycle_region(cycle)),
            "speed",
            &spec,
            ops::AggFn::Count,
        ) {
            report.push("science/statistics", stats);
        }
        // Modeling: kNN density estimation for sampled ships.
        let queries = self.knn_queries(cycle, 96);
        if let Ok((_, stats)) = ops::knn(ctx, BROADCAST, &queries, 10) {
            report.push("science/modeling", stats);
        }
        // Complex projection: collision prediction over the newest chunk.
        let c = cycle as i64;
        let newest_tc = Region::new(
            vec![((c + 1) * TCS_PER_CYCLE - 1) * MINUTES_PER_TC, -180, 0],
            vec![(c + 1) * TCS_PER_CYCLE * MINUTES_PER_TC - 1, -66, 90],
        );
        if let Ok((_, stats)) = ops::trajectory(ctx, BROADCAST, &newest_tc, "speed", "course", 0.25)
        {
            report.push("science/projection", stats);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_volume_is_paper_scale() {
        let w = AisWorkload::default();
        let total_gb: f64 = (0..w.cycles()).map(|c| w.cycle_insert_bytes(c) as f64 / 1e9).sum();
        assert!((300.0..480.0).contains(&total_gb), "total {total_gb} GB");
    }

    #[test]
    fn skew_matches_the_paper() {
        let w = AisWorkload::default();
        let mut sizes: Vec<u64> = (0..3).flat_map(|c| w.insert_batch(c)).map(|d| d.bytes).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top5: u64 = sizes[..sizes.len() / 20].iter().sum();
        let share = top5 as f64 / total as f64;
        assert!(
            (0.75..0.95).contains(&share),
            "top-5% share {share} should be near the paper's 85%"
        );
        // Median chunk is tiny (the paper reports 924 bytes).
        let median = sizes[sizes.len() / 2];
        assert!(median < 20_000, "median {median} bytes");
    }

    #[test]
    fn houston_is_hot() {
        let w = AisWorkload::default();
        let batch = w.insert_batch(0);
        let houston: u64 = batch
            .iter()
            .filter(|d| d.key.coords.index(1) == 21 && d.key.coords.index(2) == 7)
            .map(|d| d.bytes)
            .sum();
        let total: u64 = batch.iter().map(|d| d.bytes).sum();
        assert!(
            houston as f64 / total as f64 > 0.05,
            "houston share {}",
            houston as f64 / total as f64
        );
    }

    #[test]
    fn insert_volume_trends_not_white_noise() {
        // Consecutive deltas should correlate (slope random walk):
        // the sign of the change persists more often than it flips.
        let w = AisWorkload::default();
        let vols: Vec<f64> = (0..w.cycles()).map(|c| w.cycle_insert_bytes(c) as f64).collect();
        let deltas: Vec<f64> = vols.windows(2).map(|p| p[1] - p[0]).collect();
        assert!(deltas.iter().any(|d| d.abs() > 1e9), "volume must actually move");
        // Determinism.
        let again: Vec<f64> =
            (0..w.cycles()).map(|c| AisWorkload::default().cycle_insert_bytes(c) as f64).collect();
        assert_eq!(vols, again);
    }

    #[test]
    fn knn_queries_sit_in_declared_space() {
        let w = AisWorkload::default();
        let schema = AisWorkload::broadcast_schema();
        for q in w.knn_queries(3, 48) {
            assert!(array_model::chunk_of(&schema, &q).is_ok(), "query {q:?} out of bounds");
        }
    }

    #[test]
    fn dark_vessels_retract_prior_cycle_broadcasts() {
        let live = AisWorkload {
            cycles: 3,
            scale: 0.05,
            seed: 7,
            cells_per_cycle: 2_000,
            ..Default::default()
        };
        let dark = AisWorkload { dark_vessel_rate: 8, ..live.clone() };
        // Cycle 0 has no prior cycle to retract from.
        let c0 = dark.cell_batch(0).unwrap().remove(0);
        assert_eq!(c0.retraction_count(), 0);
        // Rate 0 never retracts; the insert rows are untouched by the
        // dark-vessel pass (insert-only runs stay bit-identical).
        let live1 = live.cell_batch(1).unwrap().remove(0);
        assert_eq!(live1.retraction_count(), 0);
        let dark1 = dark.cell_batch(1).unwrap().remove(0);
        assert_eq!(dark1.len(), live1.len());
        assert_eq!(dark1.cells(), live1.cells());
        let n = dark1.retraction_count();
        assert!(n > 0, "some ship must go dark");
        assert!(n < dark1.len(), "not every ship goes dark");
        // Every retraction names a cell cycle 0 actually inserted.
        let inserted: std::collections::BTreeSet<Vec<i64>> =
            dark.cell_batch(0).unwrap()[0].cells().iter().map(|(c, _)| c.to_vec()).collect();
        for cell in dark1.retractions_flat().chunks_exact(3) {
            assert!(inserted.contains(cell), "retraction {cell:?} was never inserted");
        }
        // Deterministic.
        assert_eq!(dark.cell_batch(1).unwrap()[0].retractions_flat(), dark1.retractions_flat());
    }

    #[test]
    fn batch_covers_four_time_chunks() {
        let w = AisWorkload::default();
        let batch = w.insert_batch(2);
        let tcs: std::collections::BTreeSet<i64> =
            batch.iter().map(|d| d.key.coords.index(0)).collect();
        assert_eq!(tcs, (8..12).collect());
    }
}
