//! Deterministic random helpers for workload synthesis.
//!
//! Workload generation must be exactly reproducible across runs and
//! platforms, so every chunk's size is derived from a seed that mixes the
//! workload seed with the chunk's coordinates — never from generator call
//! order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mix a workload seed with coordinates into a per-chunk RNG.
pub fn rng_for(seed: u64, salt: &[i64]) -> StdRng {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &s in salt {
        h ^= s as u64;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    StdRng::seed_from_u64(h)
}

/// Standard normal via Box–Muller (rand 0.8 ships no Normal distribution
/// and `rand_distr` is outside the sanctioned dependency set).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Log-normal sample with the given log-space sigma, scaled so the
/// distribution's mean is `mean`.
pub fn lognormal(rng: &mut impl Rng, mean: f64, sigma: f64) -> f64 {
    // mean of lognormal(mu, sigma) = exp(mu + sigma^2/2)
    let mu = mean.ln() - sigma * sigma / 2.0;
    (mu + sigma * standard_normal(rng)).exp()
}

/// Truncated Zipf weight for 1-based `rank` with exponent `s`.
pub fn zipf_weight(rank: u64, s: f64) -> f64 {
    (rank as f64).powf(-s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_salt_sensitive() {
        let a: u64 = rng_for(7, &[1, 2, 3]).gen();
        let b: u64 = rng_for(7, &[1, 2, 3]).gen();
        let c: u64 = rng_for(7, &[1, 2, 4]).gen();
        let d: u64 = rng_for(8, &[1, 2, 3]).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = rng_for(42, &[0]);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_mean_is_calibrated() {
        let mut rng = rng_for(42, &[1]);
        let n = 20_000;
        let mean = (0..n).map(|_| lognormal(&mut rng, 50.0, 0.36)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn zipf_weights_decay() {
        assert!(zipf_weight(1, 1.4) > zipf_weight(2, 1.4));
        assert!(zipf_weight(10, 1.4) > zipf_weight(100, 1.4));
        assert!((zipf_weight(1, 1.4) - 1.0).abs() < 1e-12);
    }
}
