//! # workloads
//!
//! The paper's two use cases (§3) as reproducible synthetic workloads,
//! plus the cyclic workload driver that runs them against any elastic
//! partitioner and scaling policy:
//!
//! * [`ModisWorkload`] — remote sensing: near-uniform 630 GB over 14 daily
//!   cycles, steady insert volume;
//! * [`AisWorkload`] — ship tracking: heavily skewed 400 GB over 10
//!   quarterly cycles (85 % of bytes in 5 % of chunks), trending insert
//!   volume;
//! * [`WorkloadRunner`] — §3.4's ingest → provision/reorganize → query
//!   loop with Equation 1 node-hour accounting.

#![warn(missing_docs)]

pub mod ais;
mod cycle;
mod durable;
mod faults;
pub mod modis;
mod rand_util;
mod spec;
pub mod synthetic;

pub use ais::AisWorkload;
pub use cycle::{
    build_cell_array, build_cell_array_encoded, CycleError, CycleReport, FailedCycle, RunReport,
    RunnerConfig, ScalingPolicy, WorkloadRunner,
};
pub use durable::{DurabilityConfig, WalEvent};
pub use faults::{ErrorPolicy, FaultEvent, FaultKind, FaultPlan};
pub use modis::ModisWorkload;
pub use rand_util::{lognormal, rng_for, standard_normal, zipf_weight};
pub use spec::{CellBatch, QueryRecord, SuiteReport, Workload};
pub use synthetic::{SpatialDistribution, SyntheticWorkload};
