//! Crash-consistent durability for the cycle driver: the write-ahead
//! log's event vocabulary, the config fingerprint that pins a log to the
//! run that wrote it, and the recovery-time log scan.
//!
//! # Record vocabulary
//!
//! The runner appends one [`WalEvent::Genesis`] when it first touches an
//! empty log, then per cycle, in order: `CycleStart`, `Faults`, exactly
//! one of `InsertCells` (materialized path, the whole cell payload) or
//! `InsertMeta` (metadata path, the sampled descriptors), `Scale`,
//! `Derived`, `CycleEnd`. Every record is framed by
//! [`durability::frame_record`] (magic + length + CRC-32), and
//! **`CycleEnd` is the commit point**: recovery discards any records
//! after the last `CycleEnd` — a crash mid-cycle rolls the whole cycle
//! back, never replays half of one.
//!
//! # Append-then-apply, recompute-and-cross-check
//!
//! Records are appended *before* the state transition they describe.
//! Because the whole driver is deterministic in `(workload, config)`,
//! replay re-executes each cycle from the generators and recomputes
//! every logged value; the log's role at replay is to **cross-check**
//! bit-for-bit (payload bytes compared verbatim) that the rebuilt run is
//! the run that was logged. Any drift — a different workload seed, an
//! edited config, a tampered record that still passes CRC — surfaces as
//! a typed [`DurabilityError::Mismatch`], never as a silently divergent
//! answer.
//!
//! # Checkpoints
//!
//! Every [`DurabilityConfig::checkpoint_every`] committed cycles the
//! runner serializes its whole state — catalog (schemas, descriptors,
//! materialized cells), cluster (roster, placement, replicas),
//! partitioner table, provisioner history, and view states — as one
//! framed record stored under `seq = next_cycle`. Recovery loads the
//! newest checkpoint that validates (corrupt ones are skipped to an
//! older survivor; with none left it replays from genesis) and replays
//! only the committed log suffix.

use crate::cycle::{RunnerConfig, ScalingPolicy};
use crate::faults::{FaultKind, FaultPlan};
use crate::spec::CellBatch;
use array_model::{ChunkDescriptor, StringEncoding};
use durability::{
    ByteReader, ByteWriter, CodecError, DurabilityError, FsyncPolicy, RecordReader, SharedLog,
};
use elastic_core::hashing::splitmix64;
use elastic_core::PartitionerKind;
use std::collections::VecDeque;
use std::fmt;

/// Durability wiring for a [`WorkloadRunner`](crate::WorkloadRunner):
/// where the log lives, how often to checkpoint, and when appends reach
/// stable storage.
#[derive(Clone)]
pub struct DurabilityConfig {
    /// The shared log/checkpoint backend the runner appends through.
    pub log: SharedLog,
    /// Committed cycles between checkpoints. `0` disables checkpoints
    /// (recovery replays the whole log from genesis).
    pub checkpoint_every: usize,
    /// When appended records are forced to stable storage.
    pub fsync_policy: FsyncPolicy,
}

impl fmt::Debug for DurabilityConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityConfig")
            .field("log", &"<shared log>")
            .field("checkpoint_every", &self.checkpoint_every)
            .field("fsync_policy", &self.fsync_policy)
            .finish()
    }
}

const TAG_GENESIS: u8 = 0;
const TAG_CYCLE_START: u8 = 1;
const TAG_FAULTS: u8 = 2;
const TAG_INSERT_CELLS: u8 = 3;
const TAG_INSERT_META: u8 = 4;
const TAG_SCALE: u8 = 5;
const TAG_DERIVED: u8 = 6;
const TAG_CYCLE_END: u8 = 7;

/// One logical event in the write-ahead log. The runner's hot path
/// encodes straight from borrowed data (see the `*_payload` helpers);
/// this owned form exists for decoding, inspection, and the codec
/// property tests.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// Written once, first, on an empty log: pins the log to one
    /// `(workload, config)` via [`config_fingerprint`].
    Genesis {
        /// The writing run's config fingerprint.
        fingerprint: u64,
    },
    /// A cycle began.
    CycleStart {
        /// The 0-based cycle index.
        cycle: u64,
    },
    /// Digest of the fault schedule injected this cycle, cross-checked
    /// against the recovering config's recomputed schedule.
    Faults {
        /// The cycle the faults belong to.
        cycle: u64,
        /// [`fault_digest`] over the cycle's events.
        digest: u64,
    },
    /// The cycle's materialized insert payload, verbatim.
    InsertCells {
        /// Every array's cell batch for the cycle.
        batches: Vec<CellBatch>,
    },
    /// The cycle's metadata-only insert batch.
    InsertMeta {
        /// The sampled descriptors the driver placed.
        descs: Vec<ChunkDescriptor>,
    },
    /// The cycle's provisioning verdict.
    Scale {
        /// Nodes added.
        add: u64,
        /// Nodes the policy asked to release.
        remove: u64,
        /// Whether the per-cycle cap saturated.
        saturated: bool,
    },
    /// The derived (query-product) chunks stored at cycle end.
    Derived {
        /// Their descriptors.
        descs: Vec<ChunkDescriptor>,
    },
    /// The commit point: the cycle's records are final.
    CycleEnd {
        /// The cycle that committed.
        cycle: u64,
    },
}

pub(crate) fn genesis_payload(fingerprint: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_GENESIS);
    w.put_u64(fingerprint);
    w.into_bytes()
}

pub(crate) fn cycle_start_payload(cycle: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_CYCLE_START);
    w.put_u64(cycle);
    w.into_bytes()
}

pub(crate) fn faults_payload(cycle: u64, digest: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_FAULTS);
    w.put_u64(cycle);
    w.put_u64(digest);
    w.into_bytes()
}

pub(crate) fn insert_cells_payload(batches: &[CellBatch]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_INSERT_CELLS);
    w.put_usize(batches.len());
    for b in batches {
        b.encode_into(&mut w);
    }
    w.into_bytes()
}

fn descs_payload(tag: u8, descs: &[ChunkDescriptor]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(tag);
    w.put_usize(descs.len());
    for d in descs {
        d.encode_into(&mut w);
    }
    w.into_bytes()
}

pub(crate) fn insert_meta_payload(descs: &[ChunkDescriptor]) -> Vec<u8> {
    descs_payload(TAG_INSERT_META, descs)
}

pub(crate) fn derived_payload(descs: &[ChunkDescriptor]) -> Vec<u8> {
    descs_payload(TAG_DERIVED, descs)
}

pub(crate) fn scale_payload(add: u64, remove: u64, saturated: bool) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_SCALE);
    w.put_u64(add);
    w.put_u64(remove);
    w.put_bool(saturated);
    w.into_bytes()
}

pub(crate) fn cycle_end_payload(cycle: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_CYCLE_END);
    w.put_u64(cycle);
    w.into_bytes()
}

impl WalEvent {
    /// Encode the event as a record payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalEvent::Genesis { fingerprint } => genesis_payload(*fingerprint),
            WalEvent::CycleStart { cycle } => cycle_start_payload(*cycle),
            WalEvent::Faults { cycle, digest } => faults_payload(*cycle, *digest),
            WalEvent::InsertCells { batches } => insert_cells_payload(batches),
            WalEvent::InsertMeta { descs } => insert_meta_payload(descs),
            WalEvent::Scale { add, remove, saturated } => scale_payload(*add, *remove, *saturated),
            WalEvent::Derived { descs } => derived_payload(descs),
            WalEvent::CycleEnd { cycle } => cycle_end_payload(*cycle),
        }
    }

    /// Decode a record payload. Total: every malformed input yields a
    /// typed [`CodecError`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<WalEvent, CodecError> {
        let mut r = ByteReader::new(payload);
        let tag = r.u8("wal event tag")?;
        let event = match tag {
            TAG_GENESIS => WalEvent::Genesis { fingerprint: r.u64("genesis fingerprint")? },
            TAG_CYCLE_START => WalEvent::CycleStart { cycle: r.u64("cycle start index")? },
            TAG_FAULTS => WalEvent::Faults {
                cycle: r.u64("faults cycle index")?,
                digest: r.u64("faults digest")?,
            },
            TAG_INSERT_CELLS => {
                let n = r.usize("insert batch count")?;
                let mut batches = Vec::with_capacity(n.min(1 << 10));
                for _ in 0..n {
                    batches.push(CellBatch::decode_from(&mut r)?);
                }
                WalEvent::InsertCells { batches }
            }
            TAG_INSERT_META | TAG_DERIVED => {
                let n = r.usize("descriptor count")?;
                let mut descs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    descs.push(ChunkDescriptor::decode_from(&mut r)?);
                }
                if tag == TAG_INSERT_META {
                    WalEvent::InsertMeta { descs }
                } else {
                    WalEvent::Derived { descs }
                }
            }
            TAG_SCALE => WalEvent::Scale {
                add: r.u64("scale add")?,
                remove: r.u64("scale remove")?,
                saturated: r.bool("scale saturated")?,
            },
            TAG_CYCLE_END => WalEvent::CycleEnd { cycle: r.u64("cycle end index")? },
            other => {
                return Err(CodecError::Invalid {
                    context: "wal event tag",
                    detail: format!("unknown tag {other}"),
                })
            }
        };
        r.finish("wal event")?;
        Ok(event)
    }
}

/// Human-readable name of a record's tag byte, for mismatch messages.
pub(crate) fn tag_name(payload: &[u8]) -> &'static str {
    match payload.first() {
        Some(&TAG_GENESIS) => "Genesis",
        Some(&TAG_CYCLE_START) => "CycleStart",
        Some(&TAG_FAULTS) => "Faults",
        Some(&TAG_INSERT_CELLS) => "InsertCells",
        Some(&TAG_INSERT_META) => "InsertMeta",
        Some(&TAG_SCALE) => "Scale",
        Some(&TAG_DERIVED) => "Derived",
        Some(&TAG_CYCLE_END) => "CycleEnd",
        _ => "empty record",
    }
}

fn fold(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

fn fold_f64(h: u64, v: f64) -> u64 {
    fold(h, v.to_bits())
}

/// Fingerprint of everything that shapes a run's *state* evolution:
/// workload identity, roster/capacity, partitioner and its tunables,
/// scaling policy, encoding, replication, fault schedule, and GC
/// thresholds. Deliberately excludes `ingest_threads` (the driver is
/// thread-count invariant), `run_queries` (queries are read-only),
/// `cost` (costing shapes reports, not placement), `on_error`, and the
/// durability wiring itself. A recovering config whose fingerprint
/// disagrees with the log's genesis record is a different run, and
/// recovery refuses it.
pub(crate) fn config_fingerprint(
    config: &RunnerConfig,
    workload_name: &str,
    workload_cycles: usize,
) -> u64 {
    let mut h = fold(0x57414c5f46503031, 1); // "WAL_FP01", format version
    for b in workload_name.bytes() {
        h = fold(h, u64::from(b));
    }
    h = fold(h, workload_cycles as u64);
    h = fold(h, config.node_capacity);
    h = fold(h, config.initial_nodes as u64);
    let kind = PartitionerKind::ALL
        .iter()
        .position(|k| *k == config.partitioner)
        .expect("ALL lists every partitioner kind");
    h = fold(h, kind as u64);
    h = fold(h, u64::from(config.partitioner_config.virtual_nodes));
    h = fold(h, u64::from(config.partitioner_config.uniform_height));
    match config.partitioner_config.quad_plane {
        Some((a, b)) => {
            h = fold(h, 1);
            h = fold(h, a as u64);
            h = fold(h, b as u64);
        }
        None => h = fold(h, 0),
    }
    h = fold_f64(h, config.partitioner_config.append_fill);
    match &config.scaling {
        ScalingPolicy::Fixed => h = fold(h, 1),
        ScalingPolicy::FixedStep { add, trigger } => {
            h = fold(h, 2);
            h = fold(h, *add as u64);
            h = fold_f64(h, *trigger);
        }
        ScalingPolicy::Staircase(cfg) => {
            h = fold(h, 3);
            h = fold_f64(h, cfg.node_capacity_gb);
            h = fold(h, cfg.samples as u64);
            h = fold(h, cfg.plan_ahead as u64);
            h = fold_f64(h, cfg.trigger);
            h = fold_f64(h, cfg.shrink_margin);
        }
    }
    match config.string_encoding {
        StringEncoding::Plain => h = fold(h, 1),
        StringEncoding::Dict { cap } => {
            h = fold(h, 2);
            h = fold(h, u64::from(cap));
        }
    }
    h = fold(h, config.replication as u64);
    match &config.fault_plan {
        None => h = fold(h, 0),
        Some(plan) => {
            h = fold(h, 1);
            h = fold(h, plan.seed);
            h = fold_f64(h, plan.backoff.base_secs);
            h = fold_f64(h, plan.backoff.factor);
            h = fold(h, u64::from(plan.backoff.max_retries));
            h = fold(h, plan.events.len() as u64);
            for e in &plan.events {
                h = fold(h, e.cycle as u64);
                h = fold_kind(h, e.kind);
            }
        }
    }
    h = fold_f64(h, config.gc_tombstone_ratio);
    h = fold(h, config.gc_dangling_dict_bytes);
    h
}

fn fold_kind(h: u64, kind: FaultKind) -> u64 {
    match kind {
        FaultKind::Crash(n) => fold(fold(h, 1), u64::from(n)),
        FaultKind::CrashDuringRebalance(n) => fold(fold(h, 2), u64::from(n)),
        FaultKind::CrashDuringRecovery { node, after_jobs } => {
            fold(fold(fold(h, 3), u64::from(node)), after_jobs as u64)
        }
        FaultKind::FlakyFlows { p } => fold_f64(fold(h, 4), p),
        FaultKind::Drain(n) => fold(fold(h, 5), u64::from(n)),
        FaultKind::Revive(n) => fold(fold(h, 6), u64::from(n)),
    }
}

/// Digest of the fault schedule one cycle injects, folding the per-cycle
/// flaky-flow sub-seed so replay also cross-checks the plan seed.
pub(crate) fn fault_digest(plan: Option<&FaultPlan>, cycle: usize) -> u64 {
    let mut h = fold(0xFA_17, cycle as u64);
    let Some(plan) = plan else { return h };
    h = fold(h, plan.cycle_seed(cycle));
    for kind in plan.events_at(cycle) {
        h = fold_kind(h, kind);
    }
    h
}

/// The committed content of a scanned log image.
pub(crate) struct LogScan {
    /// The genesis fingerprint; `None` when the log is empty (a fresh
    /// run that never wrote genesis).
    pub fingerprint: Option<u64>,
    /// Every **complete** cycle, in log order: its index and its record
    /// payloads (`CycleStart` through `CycleEnd` inclusive).
    pub cycles: Vec<(u64, VecDeque<Vec<u8>>)>,
    /// Byte offset after the last commit point — everything beyond it
    /// (a partial cycle, or a torn append) is discardable.
    pub committed_len: u64,
}

/// Scan a log image into committed cycles. A torn tail is tolerated and
/// truncated at the last commit point; corruption — bad magic, bad CRC,
/// a record outside the genesis/cycle grammar — is a typed error, never
/// a guess.
pub(crate) fn scan_log(image: &[u8]) -> Result<LogScan, DurabilityError> {
    let mut reader = RecordReader::new(image);
    let mut scan = LogScan { fingerprint: None, cycles: Vec::new(), committed_len: 0 };
    // In-flight cycle: (index, payloads accumulated since CycleStart).
    let mut pending: Option<(u64, VecDeque<Vec<u8>>)> = None;
    loop {
        let offset = reader.offset();
        let payload = match reader.next_record() {
            Ok(Some(p)) => p,
            // Clean end, or a torn append: the committed prefix stands.
            Ok(None) | Err(DurabilityError::Torn { .. }) => return Ok(scan),
            Err(e) => return Err(e),
        };
        let corrupt = |detail: String| DurabilityError::Corruption { offset, detail };
        let mut r = ByteReader::new(payload);
        let tag = r.u8("wal record tag").map_err(|e| corrupt(e.to_string()))?;
        match tag {
            TAG_GENESIS => {
                if scan.fingerprint.is_some() {
                    return Err(corrupt("second genesis record".to_string()));
                }
                let fp = r.u64("genesis fingerprint").map_err(|e| corrupt(e.to_string()))?;
                scan.fingerprint = Some(fp);
                scan.committed_len = reader.offset();
            }
            _ if scan.fingerprint.is_none() => {
                return Err(corrupt(format!("first record is {}, not Genesis", tag_name(payload))));
            }
            TAG_CYCLE_START => {
                if pending.is_some() {
                    return Err(corrupt("CycleStart inside an open cycle".to_string()));
                }
                let cycle = r.u64("cycle start index").map_err(|e| corrupt(e.to_string()))?;
                let mut records = VecDeque::new();
                records.push_back(payload.to_vec());
                pending = Some((cycle, records));
            }
            TAG_CYCLE_END => {
                let Some((cycle, mut records)) = pending.take() else {
                    return Err(corrupt("CycleEnd outside an open cycle".to_string()));
                };
                let end = r.u64("cycle end index").map_err(|e| corrupt(e.to_string()))?;
                if end != cycle {
                    return Err(corrupt(format!("CycleEnd for {end} closes cycle {cycle}")));
                }
                records.push_back(payload.to_vec());
                scan.cycles.push((cycle, records));
                scan.committed_len = reader.offset();
            }
            _ => {
                let Some((_, records)) = pending.as_mut() else {
                    return Err(corrupt(format!(
                        "{} record outside an open cycle",
                        tag_name(payload)
                    )));
                };
                records.push_back(payload.to_vec());
            }
        }
    }
}
