//! Property tests for the write-ahead log codec: arbitrary event
//! sequences encode → frame → decode bit-identically, and every strict
//! prefix of a framed stream decodes to a clean record prefix or a
//! typed torn-tail error — never a panic, never a wrong record.

use array_model::{ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey, ScalarValue};
use durability::{frame_record, DurabilityError, RecordReader};
use proptest::prelude::*;
use workloads::{CellBatch, WalEvent};

fn schema() -> ArraySchema {
    ArraySchema::parse("W<v:double, s:string>[x=0:*,8]").unwrap()
}

/// Deterministic strings covering the nasty shapes: empty, multi-byte
/// unicode, long, and a numbered tail with dictionary-sized cardinality.
fn string_for(seed: u64) -> String {
    match seed % 6 {
        0 => String::new(),
        1 => "λ-端口-🚢".to_string(),
        2 => "a-deliberately-long-provenance-string-that-outweighs-its-code".to_string(),
        _ => format!("s{}", seed % 97),
    }
}

/// A cell batch built from seeds: inserts (double + dictionary-interned
/// string) interleaved with retraction rows, exactly the mix the runner
/// logs verbatim.
fn batch_for(seeds: &[u64]) -> CellBatch {
    let schema = schema();
    let mut batch = CellBatch::new(ArrayId(0), &schema);
    let mut vals = Vec::with_capacity(2);
    for (i, &seed) in seeds.iter().enumerate() {
        if seed % 5 == 0 {
            batch.push_retraction(&[(seed % 1024) as i64]);
        } else {
            vals.push(ScalarValue::Double(seed as f64 * 0.5));
            vals.push(ScalarValue::Str(string_for(seed)));
            batch.push(&[(i as u64 * 131 % 8192) as i64], &mut vals);
        }
    }
    batch
}

fn descs_for(seeds: &[u64]) -> Vec<ChunkDescriptor> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            ChunkDescriptor::new(
                ChunkKey::new(
                    ArrayId((s % 3) as u32),
                    ChunkCoords::new([i as i64, (s % 100) as i64]),
                ),
                s % 1_000_000,
                s % 10_000,
            )
        })
        .collect()
}

fn arb_event() -> impl Strategy<Value = WalEvent> {
    fn seeds() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(any::<u64>(), 0..12)
    }
    prop_oneof![
        any::<u64>().prop_map(|fingerprint| WalEvent::Genesis { fingerprint }),
        any::<u64>().prop_map(|cycle| WalEvent::CycleStart { cycle }),
        (any::<u64>(), any::<u64>()).prop_map(|(cycle, digest)| WalEvent::Faults { cycle, digest }),
        seeds().prop_map(|s| WalEvent::InsertCells {
            batches: if s.is_empty() { Vec::new() } else { vec![batch_for(&s)] },
        }),
        seeds().prop_map(|s| WalEvent::InsertMeta { descs: descs_for(&s) }),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(add, remove, saturated)| {
            WalEvent::Scale { add: add % 4096, remove: remove % 4096, saturated }
        }),
        seeds().prop_map(|s| WalEvent::Derived { descs: descs_for(&s) }),
        any::<u64>().prop_map(|cycle| WalEvent::CycleEnd { cycle }),
    ]
}

fn arb_events() -> impl Strategy<Value = Vec<WalEvent>> {
    proptest::collection::vec(arb_event(), 0..8)
}

/// Frame a sequence the way the runner's log does, recording each
/// record's end offset.
fn frame_events(events: &[WalEvent]) -> (Vec<u8>, Vec<usize>) {
    let mut stream = Vec::new();
    let mut ends = Vec::new();
    for e in events {
        stream.extend_from_slice(&frame_record(&e.encode()));
        ends.push(stream.len());
    }
    (stream, ends)
}

proptest! {
    /// encode → decode is the identity, and re-encoding the decoded
    /// event reproduces the exact payload bytes.
    #[test]
    fn events_round_trip_bit_identically(events in arb_events()) {
        let (stream, _) = frame_events(&events);
        let mut reader = RecordReader::new(&stream);
        for (i, original) in events.iter().enumerate() {
            let payload = reader
                .next_record()
                .unwrap_or_else(|e| panic!("record {i} unreadable: {e}"))
                .unwrap_or_else(|| panic!("stream ended before record {i}"));
            prop_assert_eq!(payload, original.encode().as_slice());
            let decoded = WalEvent::decode(payload)
                .unwrap_or_else(|e| panic!("record {i} undecodable: {e}"));
            prop_assert_eq!(&decoded, original);
            prop_assert_eq!(decoded.encode(), original.encode());
        }
        prop_assert!(reader.next_record().expect("clean tail").is_none());
    }

    /// Every strict prefix of the framed stream yields exactly the
    /// records that fit, then either a clean end (cut on a record
    /// boundary) or a typed torn-tail error — and the torn offset is
    /// the boundary recovery should truncate to.
    #[test]
    fn every_stream_prefix_is_a_clean_prefix_or_typed_torn(events in arb_events()) {
        let (stream, ends) = frame_events(&events);
        for cut in 0..stream.len() {
            let whole = ends.iter().take_while(|&&e| e <= cut).count();
            let boundary = ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0);
            let mut reader = RecordReader::new(&stream[..cut]);
            for (i, event) in events.iter().enumerate().take(whole) {
                let payload = reader
                    .next_record()
                    .unwrap_or_else(|e| panic!("cut {cut}: record {i} unreadable: {e}"))
                    .unwrap_or_else(|| panic!("cut {cut}: record {i} missing"));
                prop_assert_eq!(payload, event.encode().as_slice());
            }
            match reader.next_record() {
                Ok(None) => prop_assert_eq!(cut, boundary, "clean end off a record boundary"),
                Err(DurabilityError::Torn { offset }) => {
                    prop_assert_eq!(offset as usize, boundary, "torn offset must be the boundary")
                }
                Ok(Some(_)) => panic!("cut {cut}: produced a record past the prefix count"),
                Err(e) => panic!("cut {cut}: truncation must read as torn, got: {e}"),
            }
        }
    }

    /// A strict prefix of an *unframed* record payload never decodes:
    /// the event codec is length-exact, so truncation inside a payload
    /// is always a typed codec error.
    #[test]
    fn truncated_payloads_fail_typed(event in arb_event()) {
        let payload = event.encode();
        for cut in 0..payload.len() {
            prop_assert!(
                WalEvent::decode(&payload[..cut]).is_err(),
                "strict prefix of {} bytes decoded",
                cut
            );
        }
    }
}
