//! Crash-consistent recovery differentials: a workload run is crashed
//! at **every record boundary** its write-ahead log ever reached, and
//! recovery must rebuild the exact oracle state — catalog, cluster
//! books, partitioner table, provisioner history, view states, all
//! byte-compared through their codecs — then finish the run to the
//! same end state. Torn and corrupted images must land on a valid
//! prefix state or a typed error; never a divergent answer.

use array_model::{
    ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey, ScalarValue, StringEncoding,
};
use durability::{shared, ByteWriter, DurabilityError, FsyncPolicy, LogStore, MemLog};
use elastic_core::{GridHint, PartitionerKind};
use query_engine::view::{AggKind, GroupKeyFn, ValueFn, ViewDef};
use query_engine::{Catalog, ExecutionContext, StoredArray};
use std::sync::{Arc, Mutex};
use workloads::{
    CellBatch, CycleError, DurabilityConfig, FaultKind, FaultPlan, RunnerConfig, SuiteReport,
    Workload, WorkloadRunner,
};

// ---------------------------------------------------------------------
// Harness: a log that snapshots itself at every record boundary.
// ---------------------------------------------------------------------

/// Wraps a [`MemLog`], cloning the whole store after every append and
/// checkpoint write. Each clone is the *time-consistent* durable image
/// at that boundary — log bytes and checkpoint set as they jointly
/// stood — which is exactly what a crash at that instant would leave.
/// (Truncating the final image instead would pair an early log with
/// late checkpoints: a physically unrealizable state.)
struct SnapshottingLog {
    inner: MemLog,
    snaps: Arc<Mutex<Vec<MemLog>>>,
}

impl SnapshottingLog {
    fn new(snaps: Arc<Mutex<Vec<MemLog>>>) -> Self {
        SnapshottingLog { inner: MemLog::new(), snaps }
    }

    fn snap(&self) {
        self.snaps.lock().expect("snaps mutex").push(self.inner.clone());
    }
}

impl LogStore for SnapshottingLog {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DurabilityError> {
        self.inner.append(bytes)?;
        self.snap();
        Ok(())
    }
    fn flush(&mut self) -> Result<(), DurabilityError> {
        self.inner.flush()
    }
    fn read_log(&mut self) -> Result<Vec<u8>, DurabilityError> {
        self.inner.read_log()
    }
    fn truncate_log(&mut self, len: u64) -> Result<(), DurabilityError> {
        self.inner.truncate_log(len)
    }
    fn write_checkpoint(&mut self, seq: u64, bytes: &[u8]) -> Result<(), DurabilityError> {
        self.inner.write_checkpoint(seq, bytes)?;
        self.snap();
        Ok(())
    }
    fn checkpoint_seqs(&mut self) -> Result<Vec<u64>, DurabilityError> {
        self.inner.checkpoint_seqs()
    }
    fn read_checkpoint(&mut self, seq: u64) -> Result<Vec<u8>, DurabilityError> {
        self.inner.read_checkpoint(seq)
    }
}

// ---------------------------------------------------------------------
// Bit-identity probe: the whole world, serialized.
// ---------------------------------------------------------------------

/// Every state surface a recovery must rebuild, as codec bytes —
/// equality here is bit-identity of placements, loads, census,
/// tombstones, dictionaries, routing tables, and view states at once.
struct Probe {
    catalog: Vec<u8>,
    cluster: Vec<u8>,
    table: Vec<u8>,
    views: Vec<u8>,
    history: Vec<f64>,
}

fn probe(r: &WorkloadRunner<'_>) -> Probe {
    let mut catalog = ByteWriter::new();
    r.catalog().encode_into(&mut catalog);
    let mut cluster = ByteWriter::new();
    r.cluster().snapshot_into(&mut cluster);
    let mut views = ByteWriter::new();
    r.views().export_states(&mut views);
    Probe {
        catalog: catalog.into_bytes(),
        cluster: cluster.into_bytes(),
        table: r.partitioner().table_snapshot(),
        views: views.into_bytes(),
        history: r.provisioner().map(|p| p.history().to_vec()).unwrap_or_default(),
    }
}

fn assert_probes_match(got: &Probe, want: &Probe, ctx: &str) {
    assert!(got.catalog == want.catalog, "{ctx}: catalog bytes diverged");
    assert!(got.cluster == want.cluster, "{ctx}: cluster snapshot diverged");
    assert!(got.table == want.table, "{ctx}: partitioner table diverged");
    assert!(got.views == want.views, "{ctx}: view states diverged");
    assert!(got.history == want.history, "{ctx}: provisioner history diverged");
}

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

const ARR: ArrayId = ArrayId(0);
const DERIVED: ArrayId = ArrayId(1);

/// Materialized churn: every cycle inserts dictionary-interned strings
/// and doubles over a 2-D grid, retracts half of the previous cycle's
/// rows, stores a derived metadata chunk, and (at the chosen capacity)
/// forces scale-outs — touching every record type the log knows.
struct ChurnyWorkload {
    cycles: usize,
    cells: usize,
}

impl ChurnyWorkload {
    fn schema() -> ArraySchema {
        ArraySchema::parse("C<v:double, s:string>[x=0:*,64, y=0:3,2]").unwrap()
    }

    fn derived_schema() -> ArraySchema {
        // Same dimensionality as the base array: the spatial
        // partitioners route derived chunks through the quad plane too.
        ArraySchema::parse("D<v:double>[x=0:*,1, y=0:0,1]").unwrap()
    }
}

impl Workload for ChurnyWorkload {
    fn name(&self) -> &'static str {
        "churny"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(ARR, Self::schema(), []));
        catalog.register(StoredArray::from_descriptors(DERIVED, Self::derived_schema(), []));
    }
    fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        let mut batch = CellBatch::new(ARR, &Self::schema());
        let mut vals = Vec::with_capacity(2);
        for i in 0..self.cells {
            let g = (cycle * self.cells + i) as i64;
            vals.push(ScalarValue::Double(g as f64 * 0.25));
            vals.push(ScalarValue::Str(format!("tag{}", g % 37)));
            batch.push(&[g / 4, g % 4], &mut vals);
        }
        if cycle > 0 {
            for i in (0..self.cells).step_by(2) {
                let g = ((cycle - 1) * self.cells + i) as i64;
                batch.push_retraction(&[g / 4, g % 4]);
            }
        }
        Some(vec![batch])
    }
    fn derived_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        vec![ChunkDescriptor::new(
            ChunkKey::new(DERIVED, ChunkCoords::new([cycle as i64, 0])),
            4096 + cycle as u64 * 17,
            10,
        )]
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![32, 2])
    }
    fn quad_plane(&self) -> (usize, usize) {
        (0, 1)
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

/// Tiny metadata-only workload — a log small enough to truncate at
/// every single byte offset.
struct MetaWorkload {
    cycles: usize,
}

impl Workload for MetaWorkload {
    fn name(&self) -> &'static str {
        "meta"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        let schema = ArraySchema::parse("M<v:double>[x=0:*,1]").unwrap();
        catalog.register(StoredArray::from_descriptors(ARR, schema, []));
    }
    fn insert_batch(&self, cycle: usize) -> Vec<ChunkDescriptor> {
        (0..2u64)
            .map(|i| {
                ChunkDescriptor::new(
                    ChunkKey::new(ARR, ChunkCoords::new([(cycle as i64) * 2 + i as i64])),
                    1000 + cycle as u64 * 100 + i,
                    5,
                )
            })
            .collect()
    }
    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![16])
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

// ---------------------------------------------------------------------
// Config + oracle plumbing.
// ---------------------------------------------------------------------

fn view_defs() -> Vec<ViewDef> {
    let group: GroupKeyFn = Arc::new(|c, _| vec![c[0].div_euclid(64)]);
    let value: ValueFn = Arc::new(|_, v| if let ScalarValue::Double(d) = v[0] { d } else { 0.0 });
    vec![ViewDef::aggregate("sum-by-chunk", ARR, Vec::new(), group, value, AggKind::Sum)]
}

fn base_config(kind: PartitionerKind, encoding: StringEncoding, k: usize) -> RunnerConfig {
    // Fault coverage at k > 1: a crash with failover, then a revival —
    // both logged as the cycle's fault digest and replayed on recovery.
    let fault_plan =
        (k > 1).then(|| FaultPlan::new(7).at(1, FaultKind::Crash(1)).at(2, FaultKind::Revive(1)));
    RunnerConfig {
        partitioner: kind,
        node_capacity: 8 * 1024,
        initial_nodes: if k > 1 { 3 } else { 2 },
        run_queries: false,
        string_encoding: encoding,
        replication: k,
        fault_plan,
        ..RunnerConfig::default()
    }
}

fn durable(cfg: &RunnerConfig, log: durability::SharedLog) -> RunnerConfig {
    let mut out = cfg.clone();
    out.durability =
        Some(DurabilityConfig { log, checkpoint_every: 2, fsync_policy: FsyncPolicy::Always });
    out
}

/// Run the workload WITHOUT durability, capturing the serialized world
/// after every cycle. `probes[c]` is the state with `c` complete
/// cycles — what a recovery landing at `start_cycle() == c` must equal.
fn oracle_probes(w: &dyn Workload, cfg: &RunnerConfig, defs: &[ViewDef]) -> Vec<Probe> {
    let mut cfg = cfg.clone();
    cfg.durability = None;
    let mut runner = WorkloadRunner::new(w, cfg);
    for def in defs {
        runner.register_view(def.clone());
    }
    let mut probes = vec![probe(&runner)];
    for c in 0..w.cycles() {
        runner.run_cycle(c).expect("oracle cycle");
        probes.push(probe(&runner));
    }
    probes
}

/// The headline differential: run durably, then crash at every record
/// boundary the log ever reached and demand recovery lands on the
/// oracle state for its cycle count — then finishes the workload to
/// the oracle's end state.
fn crash_at_every_boundary(kind: PartitionerKind, encoding: StringEncoding, k: usize) {
    let w = ChurnyWorkload { cycles: 4, cells: 512 };
    let cfg = base_config(kind, encoding, k);
    let defs = view_defs();
    let probes = oracle_probes(&w, &cfg, &defs);

    let snaps: Arc<Mutex<Vec<MemLog>>> = Arc::new(Mutex::new(Vec::new()));
    let mut live =
        WorkloadRunner::new(&w, durable(&cfg, shared(SnapshottingLog::new(Arc::clone(&snaps)))));
    for def in &defs {
        live.register_view(def.clone());
    }
    live.run_all().expect("durable run completes");
    let ctx = format!("{kind} {encoding:?} k={k}");
    assert_probes_match(&probe(&live), probes.last().unwrap(), &format!("{ctx}: live end"));

    let snaps = snaps.lock().expect("snaps mutex");
    assert!(snaps.len() > w.cycles() * 6, "one snapshot per record: got {}", snaps.len());
    for (i, snap) in snaps.iter().enumerate() {
        let rec = WorkloadRunner::recover(&w, durable(&cfg, shared(snap.clone())), defs.clone())
            .unwrap_or_else(|e| panic!("{ctx}: boundary {i}: recovery failed: {e}"));
        let c = rec.start_cycle();
        assert!(c <= w.cycles(), "{ctx}: boundary {i}: start cycle {c} out of range");
        assert_probes_match(&probe(&rec), &probes[c], &format!("{ctx}: boundary {i} cycle {c}"));
        let mut rec = rec;
        rec.run_all().unwrap_or_else(|e| panic!("{ctx}: boundary {i}: continuation failed: {e}"));
        assert_probes_match(
            &probe(&rec),
            probes.last().unwrap(),
            &format!("{ctx}: boundary {i} continuation"),
        );
    }
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

/// The always-on slice of the matrix: the default partitioner,
/// dictionary strings, replicas, and a fault schedule.
#[test]
fn crash_at_every_record_boundary_recovers_bit_identically() {
    crash_at_every_boundary(PartitionerKind::ConsistentHash, StringEncoding::default(), 2);
}

/// The full matrix — every partitioner × dict/plain × k ∈ {1, 2}.
/// Release-mode CI runs this (`durability-smoke`); too slow for the
/// default debug test pass.
#[test]
#[ignore = "full matrix: run in release via cargo test --release -- --ignored"]
fn full_crash_matrix_all_partitioners() {
    for kind in PartitionerKind::ALL {
        for encoding in [StringEncoding::default(), StringEncoding::Plain] {
            for k in [1usize, 2] {
                crash_at_every_boundary(kind, encoding, k);
            }
        }
    }
}

/// A staircase run carries provisioner history through checkpoint and
/// replay; the probe pins it bit-for-bit.
#[test]
fn staircase_provisioner_history_survives_recovery() {
    use workloads::ScalingPolicy;
    let w = ChurnyWorkload { cycles: 3, cells: 256 };
    let mut cfg = base_config(PartitionerKind::RoundRobin, StringEncoding::default(), 1);
    cfg.scaling = ScalingPolicy::Staircase(elastic_core::StaircaseConfig {
        node_capacity_gb: 8.0 * 1024.0 / 1e9,
        ..elastic_core::StaircaseConfig::paper_defaults()
    });
    let defs = view_defs();
    let probes = oracle_probes(&w, &cfg, &defs);

    let snaps: Arc<Mutex<Vec<MemLog>>> = Arc::new(Mutex::new(Vec::new()));
    let mut live =
        WorkloadRunner::new(&w, durable(&cfg, shared(SnapshottingLog::new(Arc::clone(&snaps)))));
    for def in &defs {
        live.register_view(def.clone());
    }
    live.run_all().expect("staircase run completes");
    let last = snaps.lock().expect("snaps mutex").last().cloned().expect("snapshots taken");
    let rec = WorkloadRunner::recover(&w, durable(&cfg, shared(last)), defs.clone())
        .expect("staircase recovery");
    assert_eq!(rec.start_cycle(), w.cycles());
    assert!(rec.provisioner().expect("staircase provisioner").history().len() == w.cycles());
    assert_probes_match(&probe(&rec), probes.last().unwrap(), "staircase");
}

/// Torn-tail fuzz: the final log image truncated at EVERY byte offset.
/// Recovery must land on the valid committed prefix (probe-equal to the
/// oracle at that cycle count) or a typed error — and never panic.
#[test]
fn torn_tail_at_every_byte_offset_lands_on_valid_prefix() {
    let w = MetaWorkload { cycles: 3 };
    let mut cfg = base_config(PartitionerKind::ConsistentHash, StringEncoding::default(), 1);
    cfg.node_capacity = 100_000; // metadata bytes are sampled, keep roster stable
    let probes = oracle_probes(&w, &cfg, &[]);

    let snaps: Arc<Mutex<Vec<MemLog>>> = Arc::new(Mutex::new(Vec::new()));
    let mut live =
        WorkloadRunner::new(&w, durable(&cfg, shared(SnapshottingLog::new(Arc::clone(&snaps)))));
    live.run_all().expect("meta run completes");
    let full = snaps.lock().expect("snaps mutex").last().cloned().expect("snapshots taken");

    for cut in 0..=full.len() {
        let mut torn = full.clone();
        torn.crash_truncate(cut);
        match WorkloadRunner::recover(&w, durable(&cfg, shared(torn)), Vec::new()) {
            Ok(rec) => {
                let c = rec.start_cycle();
                assert!(c <= w.cycles(), "cut {cut}: start cycle {c} out of range");
                assert_probes_match(&probe(&rec), &probes[c], &format!("cut {cut} cycle {c}"));
            }
            Err(e) => panic!("cut {cut}: pure truncation must always recover, got: {e}"),
        }
    }
}

/// Bit-flip fuzz: corrupting any committed byte must yield either a
/// typed durability error or a recovery onto a valid prefix state
/// (when the flip turns the record into a torn tail) — never a
/// divergent answer, never a panic.
#[test]
fn corrupted_bytes_yield_typed_errors_or_valid_prefixes() {
    let w = MetaWorkload { cycles: 3 };
    let mut cfg = base_config(PartitionerKind::ConsistentHash, StringEncoding::default(), 1);
    cfg.node_capacity = 100_000;
    let probes = oracle_probes(&w, &cfg, &[]);

    let snaps: Arc<Mutex<Vec<MemLog>>> = Arc::new(Mutex::new(Vec::new()));
    let mut live =
        WorkloadRunner::new(&w, durable(&cfg, shared(SnapshottingLog::new(Arc::clone(&snaps)))));
    live.run_all().expect("meta run completes");
    let full = snaps.lock().expect("snaps mutex").last().cloned().expect("snapshots taken");

    let mut typed_errors = 0usize;
    for offset in (0..full.len()).step_by(3) {
        for mask in [0x01u8, 0x80] {
            let mut bad = full.clone();
            bad.corrupt_byte(offset, mask);
            match WorkloadRunner::recover(&w, durable(&cfg, shared(bad)), Vec::new()) {
                Ok(rec) => {
                    let c = rec.start_cycle();
                    assert_probes_match(
                        &probe(&rec),
                        &probes[c],
                        &format!("corrupt {offset}^{mask:#x} cycle {c}"),
                    );
                }
                Err(e) => {
                    assert!(
                        matches!(e, CycleError::Durability { .. }),
                        "corrupt {offset}^{mask:#x}: wrong error type: {e}"
                    );
                    typed_errors += 1;
                }
            }
        }
    }
    assert!(typed_errors > 0, "some corruption must surface as typed errors");
}

/// Checkpoint faults: a lost newest checkpoint falls back to an older
/// one, a corrupted one is skipped, and with none usable the log
/// replays from genesis — all landing on the exact end state.
#[test]
fn damaged_checkpoints_fall_back_without_divergence() {
    let w = MetaWorkload { cycles: 4 };
    let mut cfg = base_config(PartitionerKind::ConsistentHash, StringEncoding::default(), 1);
    cfg.node_capacity = 100_000;
    let probes = oracle_probes(&w, &cfg, &[]);

    let snaps: Arc<Mutex<Vec<MemLog>>> = Arc::new(Mutex::new(Vec::new()));
    let mut live =
        WorkloadRunner::new(&w, durable(&cfg, shared(SnapshottingLog::new(Arc::clone(&snaps)))));
    live.run_all().expect("meta run completes");
    let full = snaps.lock().expect("snaps mutex").last().cloned().expect("snapshots taken");

    // checkpoint_every = 2 over 4 cycles → checkpoints at seq 2 and 4.
    let final_probe = probes.last().unwrap();
    let recover_from = |log: MemLog, ctx: &str| {
        let rec = WorkloadRunner::recover(&w, durable(&cfg, shared(log)), Vec::new())
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        assert_eq!(rec.start_cycle(), w.cycles(), "{ctx}");
        assert_probes_match(&probe(&rec), final_probe, ctx);
    };

    let mut lost_newest = full.clone();
    lost_newest.drop_checkpoint(4);
    recover_from(lost_newest, "newest checkpoint lost");

    let mut corrupt_newest = full.clone();
    corrupt_newest.corrupt_checkpoint(4, 20, 0xff);
    recover_from(corrupt_newest, "newest checkpoint corrupted");

    let mut all_gone = full.clone();
    all_gone.drop_checkpoint(4);
    all_gone.corrupt_checkpoint(2, 9, 0x10);
    recover_from(all_gone, "every checkpoint unusable: replay from genesis");
}

/// The real `std::fs` backend end to end: run durably into a log
/// directory, drop every handle (the process "restarts"), reopen the
/// same directory, and recover to the exact oracle end state — WAL
/// bytes and the atomically-renamed checkpoints both read back through
/// actual files.
#[test]
fn file_backend_survives_a_process_restart() {
    let dir = std::env::temp_dir().join(format!("wal-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let w = MetaWorkload { cycles: 4 };
    let mut cfg = base_config(PartitionerKind::ConsistentHash, StringEncoding::default(), 1);
    cfg.node_capacity = 100_000;
    let probes = oracle_probes(&w, &cfg, &[]);

    {
        let log = durability::FileLog::open(&dir).expect("open file log");
        let mut live = WorkloadRunner::new(&w, durable(&cfg, shared(log)));
        live.run_all().expect("file-backed run");
    }

    let log = durability::FileLog::open(&dir).expect("reopen file log");
    assert_eq!(
        {
            let mut l = durability::FileLog::open(&dir).expect("probe handle");
            l.checkpoint_seqs().expect("file checkpoint seqs")
        },
        vec![2, 4],
        "checkpoints renamed into place"
    );
    let rec = WorkloadRunner::recover(&w, durable(&cfg, shared(log)), Vec::new())
        .expect("file-backed recovery");
    assert_eq!(rec.start_cycle(), w.cycles());
    assert_probes_match(&probe(&rec), probes.last().unwrap(), "file backend");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovering with a *different* configuration than the one that wrote
/// the log is refused with a typed fingerprint mismatch — a recovered
/// run can never silently diverge from its log.
#[test]
fn mismatched_config_is_refused() {
    let w = MetaWorkload { cycles: 2 };
    let cfg = base_config(PartitionerKind::ConsistentHash, StringEncoding::default(), 1);

    let snaps: Arc<Mutex<Vec<MemLog>>> = Arc::new(Mutex::new(Vec::new()));
    let mut live =
        WorkloadRunner::new(&w, durable(&cfg, shared(SnapshottingLog::new(Arc::clone(&snaps)))));
    live.run_all().expect("meta run completes");
    let full = snaps.lock().expect("snaps mutex").last().cloned().expect("snapshots taken");

    let mut other = base_config(PartitionerKind::RoundRobin, StringEncoding::default(), 1);
    other.durability = durable(&cfg, shared(full)).durability;
    let err = WorkloadRunner::recover(&w, other, Vec::new())
        .err()
        .expect("mismatched config must be refused");
    assert!(
        matches!(
            &err,
            CycleError::Durability { source: DurabilityError::Mismatch { what, .. }, .. }
                if what.contains("fingerprint")
        ),
        "wrong error: {err}"
    );

    // And recovery without a durability config is a typed error too.
    let mut none = cfg.clone();
    none.durability = None;
    assert!(matches!(
        WorkloadRunner::recover(&w, none, Vec::new()),
        Err(CycleError::Durability { .. })
    ));
}
