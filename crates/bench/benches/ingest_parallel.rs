//! Thread-scaling ingest: the sharded route → place_batch → commit
//! pipeline at 1/2/4/8 threads, for all 8 partitioner kinds.
//!
//! The stream and cluster mirror `benches/ingest.rs` (1M distinct chunks
//! over a 1024×32×32 grid, skewed sizes, shuffled spatial order, 8
//! nodes), but chunks arrive in batches: each batch is routed read-only
//! against one epoch snapshot, placed shard-parallel, then committed to
//! the partitioning table sequentially. The differential suite in
//! `tests/parallel_ingest.rs` proves the result is bit-identical to the
//! sequential path at every thread count — this bench measures only the
//! wall-clock. Recorded medians live in `BENCH_ingest_parallel.json` at
//! the repo root. NOTE: thread counts above the machine's core count
//! measure overhead, not speedup; the tracked container exposes a single
//! core.
//!
//! Set `INGEST_CHUNKS` to override the stream length and `CRITERION_JSON`
//! to record results.

use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic_core::hashing::splitmix64 as splitmix;
use elastic_core::{
    batch_prefix_bytes, build_partitioner, route_batch, GridHint, PartitionerConfig,
    PartitionerKind, RouteEpoch,
};
use std::hint::black_box;

const NODES: usize = 8;
/// Grid: 1024 time chunks x 32 x 32 spatial chunks = ~1M distinct chunks.
const GRID: [i64; 3] = [1024, 32, 32];
/// Chunks per routed batch (a simulated ingest epoch).
const BATCH: usize = 65_536;

fn stream_len() -> usize {
    let volume = (GRID[0] * GRID[1] * GRID[2]) as usize;
    let n: usize =
        std::env::var("INGEST_CHUNKS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);
    if n > volume {
        eprintln!("INGEST_CHUNKS={n} exceeds the {volume}-chunk grid; clamping");
    }
    n.min(volume)
}

/// The synthetic stream: every chunk of the grid exactly once, in a
/// time-major order with shuffled spatial cells and skewed sizes —
/// identical to `benches/ingest.rs`, pre-materialized as descriptors.
fn chunk_stream(n: usize) -> Vec<ChunkDescriptor> {
    let spatial = (GRID[1] * GRID[2]) as usize;
    (0..n)
        .map(|i| {
            let t = (i / spatial) as i64;
            let salt = splitmix(t as u64) as usize;
            let s = ((i % spatial) * 421 + salt) % spatial;
            let (x, y) = ((s / GRID[2] as usize) as i64, (s % GRID[2] as usize) as i64);
            let r = splitmix(i as u64 ^ 0xdead_beef);
            let bytes = 1_000 + (r % 65_536) * (r % 7) * (r % 5);
            let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([t, x, y]));
            ChunkDescriptor::new(key, bytes, bytes / 64 + 1)
        })
        .collect()
}

/// One full ingest of the stream at the given thread count. Returns the
/// final census so the optimizer cannot elide the loop.
fn ingest_parallel(kind: PartitionerKind, stream: &[ChunkDescriptor], threads: usize) -> f64 {
    let mut cluster = Cluster::new(NODES, u64::MAX, CostModel::default()).expect("nodes > 0");
    assert!(cluster.register_array(ArrayId(0), &GRID));
    let grid = GridHint::new(GRID.to_vec());
    let mut partitioner = build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());
    let mut census_acc = 0.0;
    for batch in stream.chunks(BATCH) {
        let prefix = batch_prefix_bytes(batch);
        let epoch = RouteEpoch::for_batch(&cluster, &prefix);
        let routes = route_batch(partitioner.as_ref(), batch, &epoch, threads);
        cluster.place_batch(batch, &routes, threads).expect("stream has no duplicates");
        partitioner.commit(batch, &routes);
        census_acc += cluster.balance_rsd();
    }
    census_acc
}

fn bench_thread_scaling(c: &mut Criterion) {
    let stream = chunk_stream(stream_len());
    let mut group = c.benchmark_group("ingest_parallel");
    group.sample_size(3);
    for kind in PartitionerKind::ALL {
        for threads in [1usize, 2, 4, 8] {
            let id = BenchmarkId::new(kind.label().replace(' ', "_"), threads);
            group.bench_with_input(id, &(kind, threads), |b, &(kind, threads)| {
                b.iter(|| black_box(ingest_parallel(kind, &stream, threads)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
