//! Microbenchmarks for the elastic partitioners: placement throughput,
//! lookup latency, and scale-out planning.

use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic_core::{build_partitioner, GridHint, PartitionerConfig, PartitionerKind};
use std::hint::black_box;

fn grid() -> GridHint {
    GridHint::new(vec![40, 29, 23]).with_split_priority(vec![1, 2]).with_curve_dims(vec![1, 2])
}

fn descriptors(n: usize) -> Vec<ChunkDescriptor> {
    (0..n)
        .map(|i| {
            let t = (i / 667) as i64;
            let lon = ((i % 667) / 23) as i64;
            let lat = (i % 23) as i64;
            ChunkDescriptor::new(
                ChunkKey::new(ArrayId(0), ChunkCoords::new([t, lon, lat])),
                1_000_000 + (i as u64 * 37) % 5_000_000,
                1_000,
            )
        })
        .collect()
}

fn bench_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_1000_chunks");
    group.sample_size(20);
    let descs = descriptors(1000);
    for kind in PartitionerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter_batched(
                || {
                    let cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
                    let p =
                        build_partitioner(kind, &cluster, &grid(), &PartitionerConfig::default());
                    (cluster, p)
                },
                |(mut cluster, mut p)| {
                    for d in &descs {
                        let n = p.place(d, &cluster);
                        cluster.place(*d, n).unwrap();
                    }
                    black_box(cluster.total_used())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("locate_1000_chunks");
    group.sample_size(20);
    let descs = descriptors(1000);
    for kind in PartitionerKind::ALL {
        let cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let mut cluster = cluster;
        let mut p = build_partitioner(kind, &cluster, &grid(), &PartitionerConfig::default());
        for d in &descs {
            let n = p.place(d, &cluster);
            cluster.place(*d, n).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for d in &descs {
                    if p.locate(&d.key).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_scale_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_out_planning_5000_chunks");
    group.sample_size(10);
    let descs = descriptors(5000);
    for kind in PartitionerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter_batched(
                || {
                    let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
                    let mut p =
                        build_partitioner(kind, &cluster, &grid(), &PartitionerConfig::default());
                    for d in &descs {
                        let n = p.place(d, &cluster);
                        cluster.place(*d, n).unwrap();
                    }
                    (cluster, p)
                },
                |(mut cluster, mut p)| {
                    let new = cluster.add_nodes(2, u64::MAX);
                    let plan = p.scale_out(&cluster, &new);
                    black_box(plan.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_place, bench_locate, bench_scale_out);
criterion_main!(benches);
