//! Crash → plan → repair recovery cost on a replicated cluster.
//!
//! A `k = 2` cluster is populated with chunk metadata, one node is
//! crashed (promoting its primaries, dropping its replica copies), and
//! the repair planner + executor rebuild full strength through the same
//! half-duplex contention solver the workload runner prices repairs
//! with. The flaky variant injects deterministic flow failures so the
//! bounded-exponential-backoff retry path is part of the measurement.
//! Prints the `repair_secs_median=` marker BENCH_recovery.json and the
//! fault-smoke CI job grep for.
//!
//! Set `RECOVERY_CHUNKS` to override the chunk population.

use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{BackoffPolicy, Cluster, CostModel, Flakiness, NodeId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const NODES: usize = 8;
const K: usize = 2;
const CHUNK_BYTES: u64 = 500_000;

fn chunk_count() -> usize {
    std::env::var("RECOVERY_CHUNKS").ok().and_then(|v| v.parse().ok()).unwrap_or(4_096)
}

/// A k-replicated cluster with every chunk at full strength.
fn populated(chunks: usize) -> Cluster {
    let mut cluster = Cluster::with_replication(NODES, u64::MAX, CostModel::default(), K).unwrap();
    for i in 0..chunks {
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([i as i64]));
        let desc = ChunkDescriptor::new(key, CHUNK_BYTES, CHUNK_BYTES / 64);
        cluster.place(desc, NodeId((i % NODES) as u32)).unwrap();
    }
    assert!(cluster.replica_census().is_full_strength());
    cluster
}

fn bench(c: &mut Criterion) {
    let chunks = chunk_count();
    let pristine = populated(chunks);
    let cost = CostModel::default();

    // Deterministic preview outside the timing loop: the same crash +
    // repair every iteration runs, solved once for the simulated-seconds
    // marker. The schedule is fixed, so the median over runs IS the
    // single solved value.
    {
        let mut cluster = pristine.clone();
        let report = cluster.crash_node(NodeId(1)).unwrap();
        let plan = cluster.plan_recovery();
        let jobs = plan.jobs.len();
        assert!(jobs > 0, "a crash on a populated k=2 cluster must need repairs");
        let outcome = cluster.execute_recovery(&plan, &BackoffPolicy::default());
        assert!(cluster.replica_census().is_full_strength());
        eprintln!(
            "recovery: {chunks} chunks, crash promoted {} + dropped {} copies -> {jobs} \
             repair jobs, {} bytes, repair_secs_median={:.6}",
            report.promoted,
            report.dropped_replicas,
            outcome.repair_bytes(),
            outcome.repair_secs(&cost),
        );
    }

    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);

    // Planner alone: one census-shaped sweep over a degraded cluster.
    let degraded = {
        let mut cluster = pristine.clone();
        cluster.crash_node(NodeId(1)).unwrap();
        cluster
    };
    group.bench_function(format!("plan/{chunks}-chunks"), |b| {
        b.iter(|| black_box(degraded.plan_recovery().jobs.len()))
    });

    // Full cycle: crash + plan + execute + price the flows — what one
    // faulted runner cycle pays on top of its normal phases.
    group.bench_function(format!("crash-repair/{chunks}-chunks"), |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut cluster| {
                cluster.crash_node(NodeId(1)).unwrap();
                let plan = cluster.plan_recovery();
                let outcome = cluster.execute_recovery(&plan, &BackoffPolicy::default());
                black_box(outcome.repair_secs(&cost))
            },
            BatchSize::PerIteration,
        )
    });

    // Same cycle under 10 % flow flakiness: deterministic per-(key,
    // attempt) failures force retries through the backoff ladder.
    group.bench_function(format!("crash-repair-flaky/{chunks}-chunks"), |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut cluster| {
                cluster.crash_node(NodeId(1)).unwrap();
                let plan = cluster.plan_recovery();
                let outcome = cluster.execute_recovery_with(
                    &plan,
                    &BackoffPolicy::default(),
                    Some(Flakiness { p: 0.1, seed: 0xF1A2 }),
                    None,
                );
                black_box(outcome.retries)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
