//! Microbenchmarks for the leading-staircase provisioner and its tuners.

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_core::provision::{estimate_cost, ClusterSnapshot, CostModelParams};
use elastic_core::{tune_samples, StaircaseConfig, StaircaseProvisioner};
use std::hint::black_box;

fn bench_decide(c: &mut Criterion) {
    let mut p = StaircaseProvisioner::new(StaircaseConfig::paper_defaults());
    for i in 0..1000 {
        p.observe(45.0 * i as f64);
    }
    c.bench_function("staircase_decide", |b| b.iter(|| black_box(p.decide(8, 45_600.0))));
}

fn bench_tune_samples(c: &mut Criterion) {
    let history: Vec<f64> = (0..1000).map(|i| 45.0 * i as f64 + (i % 7) as f64).collect();
    c.bench_function("tune_samples_psi8_1000cycles", |b| {
        b.iter(|| black_box(tune_samples(&history, 8).best))
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let snap =
        ClusterSnapshot { nodes: 4, load_gb: 400.0, insert_rate_gb: 45.0, last_query_secs: 900.0 };
    let params = CostModelParams {
        node_capacity_gb: 100.0,
        delta_secs_per_gb: 8.0,
        t_secs_per_gb: 12.0,
        horizon: 64,
    };
    c.bench_function("estimate_cost_horizon64", |b| {
        b.iter(|| black_box(estimate_cost(3, &snap, &params).node_hours))
    });
}

criterion_group!(benches, bench_decide, bench_tune_samples, bench_cost_model);
criterion_main!(benches);
