//! Placeholder: replaced below in this PR by the end-to-end ingest bench.
fn main() {}
