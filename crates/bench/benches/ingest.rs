//! End-to-end ingest hot path: route chunk → place → census balance.
//!
//! This is the loop the paper's experiments execute millions of times per
//! workload cycle (§6): every arriving chunk is routed to its coordinates,
//! assigned a node by the partitioner, recorded in the cluster's placement
//! map, and followed by a balance census of every host. The bench drives
//! that loop for ~1M synthetic chunks across all 8 partitioner kinds.
//!
//! Set `INGEST_CHUNKS` to override the stream length, and `CRITERION_JSON`
//! to record results (see `BENCH_ingest.json` at the repo root for the
//! tracked before/after numbers).

use array_model::{
    chunk_of, ArrayId, ArraySchema, AttributeDef, AttributeType, ChunkCoords, ChunkDescriptor,
    ChunkKey, DimensionDef,
};
use cluster_sim::{relative_std_dev, Cluster, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic_core::hashing::splitmix64 as splitmix;
use elastic_core::{build_partitioner, GridHint, PartitionerConfig, PartitionerKind};
use std::hint::black_box;

const NODES: usize = 8;
/// Grid: 1024 time chunks x 32 x 32 spatial chunks = ~1M distinct chunks.
const GRID: [i64; 3] = [1024, 32, 32];

fn stream_len() -> usize {
    let volume = (GRID[0] * GRID[1] * GRID[2]) as usize;
    let n: usize =
        std::env::var("INGEST_CHUNKS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);
    if n > volume {
        eprintln!("INGEST_CHUNKS={n} exceeds the {volume}-chunk grid; clamping");
    }
    n.min(volume)
}

/// The synthetic stream: every chunk of the grid exactly once, in a
/// time-major order with shuffled spatial cells and skewed sizes.
/// `(t, x, y, bytes)` tuples; coordinates are unique across the stream.
fn chunk_stream(n: usize) -> Vec<(i64, i64, i64, u64)> {
    let spatial = (GRID[1] * GRID[2]) as usize;
    (0..n)
        .map(|i| {
            let t = (i / spatial) as i64;
            // Bijective per-slice shuffle: odd multiplier + per-slice
            // offset modulo the power-of-two spatial extent.
            let salt = splitmix(t as u64) as usize;
            let s = ((i % spatial) * 421 + salt) % spatial;
            let (x, y) = ((s / GRID[2] as usize) as i64, (s % GRID[2] as usize) as i64);
            // Skewed sizes: a few MB-scale chunks, a long tail of small ones.
            let r = splitmix(i as u64 ^ 0xdead_beef);
            let bytes = 1_000 + (r % 65_536) * (r % 7) * (r % 5);
            (t, x, y, bytes)
        })
        .collect()
}

fn ingest_schema() -> ArraySchema {
    ArraySchema::new(
        "Ingest",
        vec![AttributeDef::new("v", AttributeType::Double)],
        vec![
            DimensionDef::bounded("t", 0, GRID[0] * 16 - 1, 16),
            DimensionDef::bounded("x", 0, GRID[1] * 16 - 1, 16),
            DimensionDef::bounded("y", 0, GRID[2] * 16 - 1, 16),
        ],
    )
    .expect("bench schema is valid")
}

/// The full hot path for one partitioner kind: route every chunk from its
/// cell coordinates, place it, and census the balance after each insert.
/// Returns a checksum so the optimizer cannot elide the loop.
fn ingest_loop(kind: PartitionerKind, stream: &[(i64, i64, i64, u64)]) -> f64 {
    let schema = ingest_schema();
    let cluster_cost = CostModel::default();
    let mut cluster = Cluster::new(NODES, u64::MAX, cluster_cost).expect("nodes > 0");
    // Dense O(1) placement index for the bench array.
    assert!(cluster.register_array(ArrayId(0), &GRID));
    let grid = GridHint::new(GRID.to_vec());
    let mut partitioner = build_partitioner(kind, &cluster, &grid, &PartitionerConfig::default());

    let mut census_acc = 0.0;
    for &(t, x, y, bytes) in stream {
        // Route: cell coordinates -> owning chunk.
        let cell = [t * 16, x * 16, y * 16];
        let coords = chunk_of(&schema, &cell).expect("stream stays in bounds");
        debug_assert_eq!(coords, ChunkCoords::new([t, x, y]));
        let key = ChunkKey::new(ArrayId(0), coords);
        let desc = ChunkDescriptor::new(key, bytes, bytes / 64 + 1);
        // Place: partitioner decision + authoritative placement map.
        let node = partitioner.place(&desc, &cluster);
        cluster.place(desc, node).expect("stream has no duplicates");
        // Census: the paper's per-insert balance probe — O(1) incremental.
        census_acc += cluster.balance_rsd();
    }
    census_acc
}

fn bench_ingest(c: &mut Criterion) {
    let stream = chunk_stream(stream_len());
    let mut group = c.benchmark_group("ingest");
    group.sample_size(3);
    for kind in PartitionerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| black_box(ingest_loop(kind, &stream)))
        });
    }
    group.finish();
}

/// Routing only: cell -> chunk coordinates -> chunk key, no placement.
fn bench_route(c: &mut Criterion) {
    let schema = ingest_schema();
    let stream = chunk_stream(100_000);
    c.bench_function("route_only_100k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &(t, x, y, _) in &stream {
                let cell = [t * 16, x * 16, y * 16];
                let coords = chunk_of(&schema, &cell).expect("in bounds");
                acc = acc.wrapping_add(coords.index(0) ^ coords.index(2));
            }
            black_box(acc)
        })
    });
}

/// Census only: the balance probe against a fixed 8-node load vector.
fn bench_census(c: &mut Criterion) {
    let mut cluster = Cluster::new(NODES, u64::MAX, CostModel::default()).expect("nodes > 0");
    for (i, &(t, x, y, bytes)) in chunk_stream(10_000).iter().enumerate() {
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([t, x, y]));
        let desc = ChunkDescriptor::new(key, bytes, 1);
        cluster.place(desc, cluster_sim::NodeId((i % NODES) as u32)).expect("unique coords");
    }
    c.bench_function("census_8_nodes_rescan", |b| {
        b.iter(|| black_box(relative_std_dev(&cluster.loads())))
    });
    c.bench_function("census_8_nodes_incremental", |b| b.iter(|| black_box(cluster.balance_rsd())));
}

criterion_group!(benches, bench_ingest, bench_route, bench_census);
criterion_main!(benches);
