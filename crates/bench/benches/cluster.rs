//! Microbenchmarks for the cluster substrate: the byte-flow contention
//! solver and rebalance application.

use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
use cluster_sim::{Cluster, CostModel, FlowSet, NodeId, RebalancePlan};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_flow_solver(c: &mut Criterion) {
    let cost = CostModel::default();
    let mut flows = FlowSet::new();
    for i in 0..10_000u32 {
        flows.push(NodeId(i % 8), NodeId((i + 3) % 8), 50_000_000);
    }
    c.bench_function("flow_solver_10k_flows", |b| b.iter(|| black_box(flows.elapsed_secs(&cost))));
}

fn bench_rebalance(c: &mut Criterion) {
    c.bench_function("apply_rebalance_2000_moves", |b| {
        b.iter_batched(
            || {
                let mut cluster = Cluster::new(8, u64::MAX, CostModel::default()).unwrap();
                let mut plan = RebalancePlan::empty();
                for i in 0..2000i64 {
                    let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([i]));
                    let desc = ChunkDescriptor::new(key, 1_000_000, 100);
                    cluster.place(desc, NodeId((i % 4) as u32)).unwrap();
                    plan.push(key, NodeId((i % 4) as u32), NodeId(4 + (i % 4) as u32), 1_000_000);
                }
                (cluster, plan)
            },
            |(mut cluster, plan)| black_box(cluster.apply_rebalance(&plan).unwrap().total_bytes()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_flow_solver, bench_rebalance);
criterion_main!(benches);
