//! Materialized (cell-level) ingest vs the metadata-only path.
//!
//! Both sides place the *same* chunk set through the same partitioner:
//! the metadata path places pre-derived descriptors (what the 1M-chunk
//! ingest benches exercise), while the materialized path starts from the
//! flat columnar row batch the generators emit — batch routing, sharded
//! chunk building, descriptor derivation from real payloads, placement,
//! and zero-copy (`Arc`) payload attachment. The ratio is the cost of
//! carrying actual cells, tracked in ROADMAP.md and BENCH_materialize.json.
//!
//! Set `MATERIALIZE_CELLS` to override the row count and
//! `MATERIALIZE_THREADS` to override the threaded variant's fan-out.

use array_model::{Array, CellBuffer, ChunkKey, ScalarValue, StringEncoding};
use cluster_sim::{Cluster, CostModel};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::{build_cell_array, build_cell_array_encoded, Workload};

const NODES: usize = 8;

fn cell_count() -> u64 {
    std::env::var("MATERIALIZE_CELLS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

fn thread_count() -> usize {
    std::env::var("MATERIALIZE_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

fn bench(c: &mut Criterion) {
    let n = cell_count();
    let w =
        AisWorkload { cycles: 1, scale: 1.0, seed: 7, cells_per_cycle: n, ..Default::default() };
    let batch = w.cell_batch(0).expect("materialized mode").remove(0);
    let rows_buf = batch.rows();
    let schema = AisWorkload::broadcast_schema();
    // Pre-derive the metadata twin: identical chunks, sampled-free sizes.
    let prebuilt =
        build_cell_array(BROADCAST, schema.clone(), rows_buf.clone(), 1).expect("in bounds");
    let descriptors = prebuilt.descriptors();
    let rows = rows_buf.len() as u64;
    let chunks = descriptors.len() as u64;
    // The dict-path marker CI greps for: the default build must actually
    // store dictionary-encoded string columns (receiver_id is attribute
    // 8), with real cardinality behind the codes.
    let dict_cardinality = prebuilt
        .chunks()
        .filter_map(|(_, c)| c.column(8).and_then(|col| col.as_dict()).map(|d| d.dict().len()))
        .max()
        .expect("default build is dictionary-encoded");
    assert!(dict_cardinality > 1, "receiver dictionary should hold many distinct ids");
    eprintln!(
        "materialize: {rows} rows -> {chunks} chunks \
         (encoding=dict, max receiver cardinality {dict_cardinality})"
    );

    // The plain-string twin of the batch, rebuilt from the decoded rows:
    // the pre-dictionary pipeline, with per-value Strings moved into the
    // chunks by the consuming insert.
    let plain_buf = {
        let mut plain = CellBuffer::with_encoding(&schema, StringEncoding::Plain);
        let mut scratch: Vec<ScalarValue> = Vec::with_capacity(10);
        for (cell, values) in rows_buf.rows() {
            scratch.extend(values);
            plain.push_row(&cell, &mut scratch).expect("schema-shaped");
        }
        plain
    };

    let fresh_cluster = || {
        let mut cluster = Cluster::new(NODES, u64::MAX, CostModel::default()).unwrap();
        let hint = w.grid_hint();
        cluster.register_array(BROADCAST, &hint.chunk_counts);
        let partitioner = elastic_core::build_partitioner(
            elastic_core::PartitionerKind::HilbertCurve,
            &cluster,
            &hint,
            &elastic_core::PartitionerConfig::default(),
        );
        (cluster, partitioner)
    };

    // The place → attach tail shared by the materialized variants: derive
    // descriptors from the built chunks, place them, then attach each
    // payload as a shared handle (refcount bump, no cell copies).
    let place_and_attach = |cluster: &mut Cluster,
                            partitioner: &mut Box<dyn elastic_core::Partitioner>,
                            array: Array| {
        for desc in array.descriptors() {
            let node = partitioner.place(&desc, cluster);
            cluster.place(desc, node).expect("unique");
        }
        for (coords, chunk) in array.into_chunks() {
            cluster
                .attach_payload(ChunkKey::new(BROADCAST, coords), Arc::clone(&chunk))
                .expect("placed");
        }
    };

    let mut group = c.benchmark_group("materialize");
    group.sample_size(10);

    // Metadata-only: route + place the descriptor stream.
    group.bench_function(format!("metadata/{chunks}-chunks"), |b| {
        b.iter(|| {
            let (mut cluster, mut partitioner) = fresh_cluster();
            for desc in &descriptors {
                let node = partitioner.place(desc, &cluster);
                cluster.place(*desc, node).expect("unique");
            }
            black_box(cluster.total_chunks())
        })
    });

    // Materialized, single-thread: flat rows -> batch-validated chunk
    // build -> derived descriptors -> place -> shared payload attachment
    // (what `WorkloadRunner` runs per cycle at ingest_threads = 1). The
    // default path is dictionary-encoded end to end: the batch carries
    // `u32` codes, and the scatter remaps them per chunk — no per-row
    // string traffic. The pipeline consumes the batch, so each timed
    // iteration gets a fresh untimed copy.
    group.bench_function(format!("cells/{rows}-rows"), |b| {
        b.iter_batched(
            || rows_buf.clone(),
            |input| {
                let (mut cluster, mut partitioner) = fresh_cluster();
                let array = build_cell_array(BROADCAST, schema.clone(), input, 1).expect("bounds");
                place_and_attach(&mut cluster, &mut partitioner, array);
                black_box(cluster.payload_count())
            },
            BatchSize::PerIteration,
        )
    });

    // The plain-string pipeline (pre-dictionary representation), same
    // scope: per-value Strings moved from the batch into the chunks.
    // The cells/ vs cells-plain/ gap is what dictionary encoding buys.
    group.bench_function(format!("cells-plain/{rows}-rows"), |b| {
        b.iter_batched(
            || plain_buf.clone(),
            |input| {
                let (mut cluster, mut partitioner) = fresh_cluster();
                let array = build_cell_array_encoded(
                    BROADCAST,
                    schema.clone(),
                    input,
                    1,
                    StringEncoding::Plain,
                )
                .expect("bounds");
                place_and_attach(&mut cluster, &mut partitioner, array);
                black_box(cluster.payload_count())
            },
            BatchSize::PerIteration,
        )
    });

    // Materialized, sharded fan-out: same pipeline with the chunk build
    // spread over scoped workers. On a single-CPU container this shows
    // the fan-out overhead (parity); on multi-core it shows the speedup.
    let threads = thread_count();
    group.bench_function(format!("cells-x{threads}/{rows}-rows"), |b| {
        b.iter_batched(
            || rows_buf.clone(),
            |input| {
                let (mut cluster, mut partitioner) = fresh_cluster();
                let array =
                    build_cell_array(BROADCAST, schema.clone(), input, threads).expect("bounds");
                place_and_attach(&mut cluster, &mut partitioner, array);
                black_box(cluster.payload_count())
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
