//! Materialized (cell-level) ingest vs the metadata-only path.
//!
//! Both sides place the *same* chunk set through the same partitioner:
//! the metadata path places pre-derived descriptors (what the 1M-chunk
//! ingest benches exercise), while the materialized path starts from raw
//! `(coords, values)` rows — chunk building, descriptor derivation from
//! real payloads, placement, and per-node payload attachment. The ratio
//! is the cost of carrying actual cells, tracked in ROADMAP.md.
//!
//! Set `MATERIALIZE_CELLS` to override the row count.

use array_model::{Array, ChunkKey};
use cluster_sim::{Cluster, CostModel};
use criterion::{criterion_group, criterion_main, Criterion};
use elastic_core::{build_partitioner, PartitionerConfig, PartitionerKind};
use std::hint::black_box;
use workloads::ais::{AisWorkload, BROADCAST};
use workloads::Workload;

const NODES: usize = 8;

fn cell_count() -> u64 {
    std::env::var("MATERIALIZE_CELLS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

fn bench(c: &mut Criterion) {
    let n = cell_count();
    let w = AisWorkload { cycles: 1, scale: 1.0, seed: 7, cells_per_cycle: n };
    let cells = w.cell_batch(0).expect("materialized mode").remove(0).cells;
    let schema = AisWorkload::broadcast_schema();
    // Pre-derive the metadata twin: identical chunks, sampled-free sizes.
    let mut prebuilt = Array::new(BROADCAST, schema.clone());
    for (cell, values) in &cells {
        prebuilt.insert_cell(cell.clone(), values.clone()).expect("in bounds");
    }
    let descriptors = prebuilt.descriptors();
    let rows = cells.len() as u64;
    let chunks = descriptors.len() as u64;
    eprintln!("materialize: {rows} rows -> {chunks} chunks");

    let fresh_cluster = || {
        let mut cluster = Cluster::new(NODES, u64::MAX, CostModel::default()).unwrap();
        let hint = w.grid_hint();
        cluster.register_array(BROADCAST, &hint.chunk_counts);
        let partitioner = build_partitioner(
            PartitionerKind::HilbertCurve,
            &cluster,
            &hint,
            &PartitionerConfig::default(),
        );
        (cluster, partitioner)
    };

    let mut group = c.benchmark_group("materialize");
    group.sample_size(10);

    // Metadata-only: route + place the descriptor stream.
    group.bench_function(format!("metadata/{chunks}-chunks"), |b| {
        b.iter(|| {
            let (mut cluster, mut partitioner) = fresh_cluster();
            for desc in &descriptors {
                let node = partitioner.place(desc, &cluster);
                cluster.place(*desc, node).expect("unique");
            }
            black_box(cluster.total_chunks())
        })
    });

    // Materialized: rows -> chunk builder -> derived descriptors ->
    // place -> payload attachment (what `WorkloadRunner` runs per cycle).
    group.bench_function(format!("cells/{rows}-rows"), |b| {
        b.iter(|| {
            let (mut cluster, mut partitioner) = fresh_cluster();
            let mut array = Array::new(BROADCAST, schema.clone());
            for (cell, values) in &cells {
                array.insert_cell(cell.clone(), values.clone()).expect("in bounds");
            }
            for desc in array.descriptors() {
                let node = partitioner.place(&desc, &cluster);
                cluster.place(desc, node).expect("unique");
            }
            for (coords, chunk) in array.into_chunks() {
                cluster.attach_payload(ChunkKey::new(BROADCAST, coords), chunk).expect("placed");
            }
            black_box(cluster.payload_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
