//! Retraction-path costs: delete throughput through the tombstone
//! bitmap, compact's survivor rebuild, and the drain → retire flow a
//! scale-IN decommission pays through the half-duplex contention
//! solver. Prints the `drain_retire_secs=` marker BENCH_retract.json
//! and the retraction-smoke CI job grep for.
//!
//! Set `RETRACT_CELLS` to override the cell population.

use array_model::{
    Array, ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey, ScalarValue,
};
use cluster_sim::{Cluster, CostModel, NodeId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const NODES: usize = 8;
const K: usize = 2;
const CHUNK_BYTES: u64 = 500_000;

fn cell_count() -> usize {
    std::env::var("RETRACT_CELLS").ok().and_then(|v| v.parse().ok()).unwrap_or(65_536)
}

/// A dictionary-encoded string-bearing array: `cells` rows over
/// 64-cell chunks, ~1/3 of the rows doomed by the fixed delete script.
fn populated(cells: usize) -> (Array, Vec<i64>) {
    let schema =
        ArraySchema::parse("R<v:double, s:string>[x=0:*,64]").expect("bench schema is valid");
    let mut array = Array::new(ArrayId(0), schema);
    let mut doomed = Vec::new();
    for i in 0..cells {
        let x = i as i64;
        array
            .insert_cell(
                vec![x],
                vec![ScalarValue::Double(x as f64), ScalarValue::Str(format!("s{}", i % 100))],
            )
            .expect("in bounds");
        if i % 3 == 0 {
            doomed.push(x);
        }
    }
    (array, doomed)
}

/// A k-replicated metadata cluster at full strength, ready to drain.
fn cluster(chunks: usize) -> Cluster {
    let mut cluster = Cluster::with_replication(NODES, u64::MAX, CostModel::default(), K).unwrap();
    for i in 0..chunks {
        let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([i as i64]));
        let desc = ChunkDescriptor::new(key, CHUNK_BYTES, CHUNK_BYTES / 64);
        cluster.place(desc, NodeId((i % NODES) as u32)).unwrap();
    }
    assert!(cluster.replica_census().is_full_strength());
    cluster
}

fn bench(c: &mut Criterion) {
    let cells = cell_count();
    let (pristine, doomed) = populated(cells);
    let cost = CostModel::default();

    // Deterministic preview outside the timing loop: the same drain →
    // retire decommission every iteration runs, solved once for the
    // simulated-seconds marker. The roster and placement are fixed, so
    // the value is identical every run.
    {
        let mut cl = cluster(4_096);
        let report = cl.decommission_node(NodeId(NODES as u32 - 1)).unwrap();
        assert!(report.moved_chunks > 0, "a populated node must drain something");
        assert_eq!(cl.active_node_count(), NODES - 1);
        assert!(cl.replica_census().is_full_strength());
        let mut arr = pristine.clone();
        let out = arr.delete_cells(&doomed).expect("script targets live cells");
        assert_eq!(out.retracted, doomed.len() as u64);
        let reclaimed = arr.compact_chunks();
        eprintln!(
            "retract: {cells} cells, deleted {} ({} bytes freed), compact reclaimed {} \
             dangling bytes; decommission drained {} chunks / {} bytes, \
             drain_retire_secs={:.6}",
            out.retracted,
            out.freed_bytes,
            reclaimed,
            report.moved_chunks,
            report.drained_bytes,
            report.flows.elapsed_secs(&cost),
        );
    }

    let mut group = c.benchmark_group("retract");
    group.sample_size(10);

    // Delete throughput: tombstone 1/3 of the rows through the
    // chunk-routing delete path (dict codes freed per row, entries
    // deferred to compact).
    group.bench_function(format!("delete/{cells}-cells"), |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut array| black_box(array.delete_cells(&doomed).unwrap().retracted),
            BatchSize::PerIteration,
        )
    });

    // Compact cost: rebuild every touched chunk from its survivors
    // (dangling dictionary entries dropped, spills re-examined).
    let tombstoned = {
        let mut array = pristine.clone();
        array.delete_cells(&doomed).unwrap();
        array
    };
    group.bench_function(format!("compact/{cells}-cells"), |b| {
        b.iter_batched(
            || tombstoned.clone(),
            |mut array| black_box(array.compact_chunks()),
            BatchSize::PerIteration,
        )
    });

    // Scale-IN: drain the tail node through the flow solver and retire
    // it — what one staircase ScaleIn step pays per released node.
    let full = cluster(4_096);
    group.bench_function("decommission/4096-chunks", |b| {
        b.iter_batched(
            || full.clone(),
            |mut cl| {
                let report = cl.decommission_node(NodeId(NODES as u32 - 1)).unwrap();
                black_box(report.flows.elapsed_secs(&cost))
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
