//! Write-ahead log costs: what durability charges the ingest loop.
//!
//! Three measurements pin it. **Append** times the hot-path tax per
//! logged insert event — encode the cell batch, frame it with the
//! magic/len/crc32 header, append to the store. **Recover/replay**
//! times a cold
//! start that re-executes the whole run from the log alone
//! (checkpoints disabled). **Recover/checkpoint** times the same cold
//! start against a checkpointed log — restore the newest snapshot,
//! replay only the suffix — the gap between the two is what
//! checkpoints buy.
//!
//! Prints the deterministic `wal_append_rows=` marker BENCH_wal.json
//! and the durability-smoke CI job grep for. Set `WAL_ROWS` to
//! override the per-cycle row count.

use array_model::{ArrayId, ArraySchema, ChunkDescriptor, ScalarValue};
use criterion::{criterion_group, criterion_main, Criterion};
use durability::{frame_record, shared, FsyncPolicy, LogStore, MemLog, RecordReader};
use elastic_core::{GridHint, PartitionerKind};
use query_engine::{Catalog, ExecutionContext, StoredArray};
use std::hint::black_box;
use std::time::Instant;
use workloads::{
    CellBatch, DurabilityConfig, RunnerConfig, SuiteReport, WalEvent, Workload, WorkloadRunner,
};

const ARR: ArrayId = ArrayId(0);

fn rows_per_cycle() -> usize {
    std::env::var("WAL_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(4_096)
}

fn schema() -> ArraySchema {
    ArraySchema::parse("B<v:double, s:string>[x=0:*,64]").unwrap()
}

/// Churn over a 1-D grid: every cycle inserts `cells` fresh rows
/// (double + dictionary-friendly string) and retracts half of the
/// previous cycle's — the same shape the durability differentials use.
struct WalWorkload {
    cycles: usize,
    cells: usize,
}

impl WalWorkload {
    fn batch(&self, cycle: usize) -> CellBatch {
        let schema = schema();
        let mut batch = CellBatch::new(ARR, &schema);
        let mut vals = Vec::with_capacity(2);
        for i in 0..self.cells {
            let g = (cycle * self.cells + i) as i64;
            vals.push(ScalarValue::Double(g as f64 * 0.25));
            vals.push(ScalarValue::Str(format!("tag{}", g % 47)));
            batch.push(&[g], &mut vals);
        }
        if cycle > 0 {
            for i in (0..self.cells).step_by(2) {
                batch.push_retraction(&[((cycle - 1) * self.cells + i) as i64]);
            }
        }
        batch
    }
}

impl Workload for WalWorkload {
    fn name(&self) -> &'static str {
        "wal-bench"
    }
    fn cycles(&self) -> usize {
        self.cycles
    }
    fn register_arrays(&self, catalog: &mut Catalog) {
        catalog.register(StoredArray::from_descriptors(ARR, schema(), []));
    }
    fn insert_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn cell_batch(&self, cycle: usize) -> Option<Vec<CellBatch>> {
        Some(vec![self.batch(cycle)])
    }
    fn derived_batch(&self, _cycle: usize) -> Vec<ChunkDescriptor> {
        Vec::new()
    }
    fn grid_hint(&self) -> GridHint {
        GridHint::new(vec![64])
    }
    fn run_suites(&self, _ctx: &ExecutionContext<'_>, _cycle: usize) -> SuiteReport {
        SuiteReport::default()
    }
}

fn config(log: durability::SharedLog, checkpoint_every: usize) -> RunnerConfig {
    RunnerConfig {
        partitioner: PartitionerKind::RoundRobin,
        node_capacity: 256 * 1024,
        initial_nodes: 2,
        run_queries: false,
        durability: Some(DurabilityConfig {
            log,
            checkpoint_every,
            fsync_policy: FsyncPolicy::PerCycle,
        }),
        ..RunnerConfig::default()
    }
}

/// Run the workload durably and hand back the finished log image.
fn build_log(w: &WalWorkload, checkpoint_every: usize) -> (RunnerConfig, MemLog) {
    let log = shared(MemLog::new());
    let mut runner = WorkloadRunner::new(w, config(std::sync::Arc::clone(&log), checkpoint_every));
    runner.run_all().expect("durable bench run");
    drop(runner);
    // MemLog clones don't share storage, so read the image back out
    // through the shared handle into a standalone copy.
    let mut capture = MemLog::new();
    let mut store = log.lock().expect("log mutex");
    capture.append(&store.read_log().expect("read log image")).expect("capture image");
    capture.flush().expect("capture flush");
    for seq in store.checkpoint_seqs().expect("checkpoint seqs") {
        let blob = store.read_checkpoint(seq).expect("read checkpoint");
        capture.write_checkpoint(seq, &blob).expect("capture checkpoint");
    }
    drop(store);
    (config(shared(capture.clone()), checkpoint_every), capture)
}

fn bench(c: &mut Criterion) {
    let cells = rows_per_cycle();
    let cycles = 6usize;
    let w = WalWorkload { cycles, cells };

    // Deterministic preview outside the timing loop: exact row and byte
    // counters for the CI marker, plus one-shot recovery wall times for
    // the replay-vs-checkpoint gap (timings vary; counters never do).
    let (replay_cfg, replay_log) = build_log(&w, 0);
    let (ckpt_cfg, ckpt_log) = build_log(&w, 2);
    {
        let total_rows: usize =
            (0..cycles).map(|c| cells + if c > 0 { cells / 2 } else { 0 }).sum();
        let mut records = 0usize;
        let image = replay_log.bytes().to_vec();
        let mut reader = RecordReader::new(&image);
        while reader.next_record().expect("clean bench log").is_some() {
            records += 1;
        }
        eprintln!(
            "wal: {cycles} cycles x {cells} cells: wal_append_rows={total_rows} \
             records={records} log_bytes={} checkpoints={}",
            replay_log.len(),
            {
                let mut l = ckpt_log.clone();
                l.checkpoint_seqs().expect("seqs").len()
            },
        );
        let t = Instant::now();
        let rec =
            WorkloadRunner::recover(&w, replay_cfg.clone(), Vec::new()).expect("replay recovery");
        let replay_secs = t.elapsed().as_secs_f64();
        assert_eq!(rec.start_cycle(), cycles);
        let t = Instant::now();
        let rec = WorkloadRunner::recover(&w, ckpt_cfg.clone(), Vec::new()).expect("ckpt recovery");
        let ckpt_secs = t.elapsed().as_secs_f64();
        assert_eq!(rec.start_cycle(), cycles);
        eprintln!(
            "wal: recover_replay_secs={replay_secs:.4} recover_checkpoint_secs={ckpt_secs:.4}"
        );
    }

    let mut group = c.benchmark_group("wal");
    group.sample_size(10);

    // Hot-path tax: encode + frame + append one insert event.
    let event = WalEvent::InsertCells { batches: vec![w.batch(1)] };
    let mut sink = MemLog::new();
    group.bench_function(format!("append/rows-{}", cells + cells / 2), |b| {
        b.iter(|| {
            let framed = frame_record(&black_box(&event).encode());
            sink.append(&framed).expect("append");
            sink.flush().expect("flush");
        })
    });

    // Scan: walk every framed record in the finished image (the CRC +
    // grammar pass recovery always pays, without the re-execution).
    let image = replay_log.bytes().to_vec();
    group.bench_function(format!("scan/bytes-{}", image.len()), |b| {
        b.iter(|| {
            let mut reader = RecordReader::new(black_box(&image));
            let mut n = 0usize;
            while reader.next_record().expect("scan").is_some() {
                n += 1;
            }
            n
        })
    });

    // Cold starts: full replay vs checkpoint + suffix.
    group.bench_function(format!("recover/replay/cycles-{cycles}"), |b| {
        b.iter(|| {
            black_box(
                WorkloadRunner::recover(&w, replay_cfg.clone(), Vec::new())
                    .expect("replay recovery"),
            )
            .start_cycle()
        })
    });
    group.bench_function(format!("recover/checkpoint-every-2/cycles-{cycles}"), |b| {
        b.iter(|| {
            black_box(
                WorkloadRunner::recover(&w, ckpt_cfg.clone(), Vec::new())
                    .expect("checkpoint recovery"),
            )
            .start_cycle()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
