//! Microbenchmarks for the query operators at paper-scale metadata volume.

use bench_harness::experiments::{AIS_SEED, MODIS_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use elastic_core::PartitionerKind;
use std::hint::black_box;
use workloads::{AisWorkload, ModisWorkload, RunnerConfig, WorkloadRunner};

fn bench_modis_cycle(c: &mut Criterion) {
    let mut c = c.benchmark_group("workload");
    c.sample_size(10);
    c.bench_function("modis_full_cycle_with_queries", |b| {
        b.iter_batched(
            || {
                let w = ModisWorkload::with_seed(MODIS_SEED);
                (
                    w.clone(),
                    WorkloadRunner::new_owned(
                        w,
                        RunnerConfig::paper_section62(PartitionerKind::ConsistentHash),
                    ),
                )
            },
            |(_, mut runner)| black_box(runner.run_cycle(0).unwrap().phases.total_secs()),
            criterion::BatchSize::SmallInput,
        )
    });
    c.finish();
}

fn bench_ais_knn_suite(c: &mut Criterion) {
    // Prepare a populated cluster once; benchmark just the query suites.
    let w = AisWorkload::with_seed(AIS_SEED);
    let mut runner =
        WorkloadRunner::new_owned(w, RunnerConfig::paper_section62(PartitionerKind::KdTree));
    for cycle in 0..3 {
        let _ = runner.run_cycle(cycle).unwrap();
    }
    c.bench_function("ais_benchmark_suites_cycle3", |b| {
        b.iter(|| black_box(runner.run_suites_only(3).total_secs()))
    });
}

criterion_group!(benches, bench_modis_cycle, bench_ais_knn_suite);
criterion_main!(benches);
