//! Incremental view-maintenance costs: the O(|Δ|) claim, measured.
//!
//! Two sweeps pin it. The **Δ sweep** holds the base population fixed
//! and grows the churn delta — apply cost must track |Δ|. The **base
//! sweep** holds |Δ| fixed and grows the base the view already
//! absorbed — apply cost must stay flat (a from-scratch recompute
//! would grow linearly instead). Each measured iteration applies one
//! churn delta that retracts and reinserts the same rows, so view
//! state is bit-identical before and after and no per-iteration
//! rebuild is needed.
//!
//! Prints the deterministic `delta_apply_rows=` marker BENCH_delta.json
//! and the delta-smoke CI job grep for. Set `DELTA_ROWS` to override
//! the largest churn delta.

use array_model::{ArrayId, DeltaSet, ScalarValue};
use criterion::{criterion_group, criterion_main, Criterion};
use query_engine::view::{
    AggKind, EmitFn, GroupKeyFn, JoinKeyFn, KeyScalar, MaterializedView, PredFn, RowOp, ValueFn,
    ViewDef,
};
use std::hint::black_box;
use std::sync::Arc;

const LEFT: ArrayId = ArrayId(0);
const RIGHT: ArrayId = ArrayId(1);

fn max_delta() -> usize {
    std::env::var("DELTA_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(4_096)
}

/// Deterministic signed attribute value for row `x`.
fn val(x: i64) -> f64 {
    ((x * 37) % 1_001 - 500) as f64 / 7.0
}

fn row(x: i64) -> (Vec<i64>, Vec<ScalarValue>) {
    (vec![x], vec![ScalarValue::Double(val(x)), ScalarValue::Int64(x)])
}

/// The base population as one bulk insert delta: rows 0..n.
fn base_delta(n: usize) -> DeltaSet {
    let mut d = DeltaSet::new();
    for x in 0..n as i64 {
        let (c, v) = row(x);
        d.push(c, v, 1);
    }
    d
}

/// A churn delta over `d` distinct live rows spread across the base:
/// each row retracted then reinserted, so one apply consumes 2·d delta
/// rows and restores the view bit-exactly.
fn churn_delta(d: usize, base: usize) -> DeltaSet {
    assert!(d <= base, "churn must target live rows");
    let stride = (base / d).max(1) as i64;
    let mut delta = DeltaSet::new();
    for i in 0..d as i64 {
        let x = i * stride;
        let (c, v) = row(x);
        delta.push(c.clone(), v.clone(), -1);
        delta.push(c, v, 1);
    }
    delta
}

fn select_def() -> ViewDef {
    let pred: PredFn = Arc::new(|_, v| matches!(v[0], ScalarValue::Double(d) if d >= 0.0));
    ViewDef::select("select", LEFT, vec![RowOp::Filter(pred)])
}

fn aggregate_def() -> ViewDef {
    let group: GroupKeyFn = Arc::new(|c, _| vec![c[0].div_euclid(64)]);
    let value: ValueFn = Arc::new(|_, v| if let ScalarValue::Double(d) = v[0] { d } else { 0.0 });
    ViewDef::aggregate("aggregate", LEFT, Vec::new(), group, value, AggKind::Sum)
}

/// An equi-join on the cell coordinate: every left row has exactly one
/// right partner, so join work is O(|Δ|), not O(|Δ| · base).
fn join_def() -> ViewDef {
    let key: JoinKeyFn = Arc::new(|c, _| vec![KeyScalar::Int(c[0])]);
    let emit: EmitFn = Arc::new(|l, r| (l.0.clone(), vec![l.1[0].clone(), r.1[0].clone()]));
    ViewDef::join("join", LEFT, RIGHT, Vec::new(), Vec::new(), key.clone(), key, emit)
}

/// A view preloaded with `base` rows on every input it reads.
fn loaded(def: &ViewDef, base: usize) -> MaterializedView {
    let bulk = base_delta(base);
    let mut view = def.instantiate();
    for id in def.inputs() {
        view.apply(id, &bulk);
    }
    view
}

fn bench(c: &mut Criterion) {
    let top = max_delta();
    let deltas = [(top / 16).max(1), (top / 4).max(1), top];
    let fixed_base = 65_536usize.max(top);
    let bases = [fixed_base / 4, fixed_base, fixed_base * 4];
    let sweep_delta = deltas[1];

    // Deterministic preview outside the timing loop: one churn apply per
    // view shape, with the state-restoration invariant the measured loop
    // relies on checked explicitly. Counters are exact, so the marker
    // line is identical every run.
    {
        let churn = churn_delta(top, fixed_base);
        for def in [select_def(), aggregate_def(), join_def()] {
            let mut view = loaded(&def, fixed_base);
            let before = view.snapshot();
            let stats = view.apply(LEFT, &churn);
            assert_eq!(view.snapshot(), before, "churn must restore {} exactly", def.name);
            eprintln!(
                "delta: {} over {fixed_base} base rows, churn {top}: \
                 delta_apply_rows={} rows_changed={}",
                def.name, stats.delta_rows, stats.rows_changed,
            );
        }
    }

    let mut group = c.benchmark_group("delta");
    group.sample_size(10);

    // Δ sweep at a fixed base: apply cost must grow with |Δ|.
    for &d in &deltas {
        let churn = churn_delta(d, fixed_base);
        for def in [select_def(), aggregate_def(), join_def()] {
            let mut view = loaded(&def, fixed_base);
            group.bench_function(format!("{}/base-{fixed_base}/delta-{d}", def.name), |b| {
                b.iter(|| black_box(view.apply(LEFT, &churn)))
            });
        }
    }

    // Base sweep at a fixed Δ: apply cost must stay flat as the
    // absorbed base grows 16× — the measurement that separates O(|Δ|)
    // maintenance from an O(base) recompute.
    for &base in &bases {
        let churn = churn_delta(sweep_delta, base);
        for def in [aggregate_def(), join_def()] {
            let mut view = loaded(&def, base);
            group.bench_function(format!("{}/delta-{sweep_delta}/base-{base}", def.name), |b| {
                b.iter(|| black_box(view.apply(LEFT, &churn)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
