//! Vectorized-scan and zone-map pruning costs: the same selective
//! queries answered with chunk pruning on and off, over an array built
//! so the zones are decisive — `v` is monotone along `x` (numeric
//! zones partition by chunk column) and the `tag` string names the
//! chunk's block (dictionary probes refute foreign blocks). Prints the
//! deterministic `chunks_pruned=` marker BENCH_scan.json and the
//! scan-smoke CI job grep for.
//!
//! Set `SCAN_SIDE` to override the grid side length (default 256).

use array_model::{Array, ArrayId, ArraySchema, ScalarValue};
use cluster_sim::{Cluster, CostModel, NodeId};
use criterion::{criterion_group, criterion_main, Criterion};
use query_engine::{ops, Catalog, ExecutionContext, Predicate, StoredArray};
use std::hint::black_box;

const CHUNK: i64 = 16;
/// Columns per tag block: 4 blocks over the default 256-wide grid.
const BLOCK: i64 = 64;

fn side() -> i64 {
    std::env::var("SCAN_SIDE").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// `side x side` cells in `CHUNK x CHUNK` chunks: `v = x` (monotone, so
/// each chunk column owns a disjoint value band) and `tag = "blk{x /
/// BLOCK}"` (each chunk's dictionary holds exactly one tag).
fn populated(side: i64) -> Array {
    let schema = ArraySchema::parse(&format!(
        "S<v:double, tag:string>[x=0:{},{CHUNK}, y=0:{},{CHUNK}]",
        side - 1,
        side - 1
    ))
    .expect("bench schema is valid");
    let mut array = Array::new(ArrayId(0), schema);
    for x in 0..side {
        for y in 0..side {
            array
                .insert_cell(
                    vec![x, y],
                    vec![
                        ScalarValue::Double(x as f64),
                        ScalarValue::Str(format!("blk{}", x / BLOCK)),
                    ],
                )
                .expect("in bounds");
        }
    }
    array
}

/// The populated array registered in a catalog and spread over 4 nodes.
fn catalog_cluster(array: Array) -> (Cluster, Catalog) {
    let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
    let stored = StoredArray::from_array(array);
    for (i, d) in stored.descriptors.values().enumerate() {
        cluster.place(*d, NodeId((i % 4) as u32)).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register(stored);
    (cluster, catalog)
}

fn bench(c: &mut Criterion) {
    let side = side();
    let (cluster, catalog) = catalog_cluster(populated(side));
    let pruned_ctx = ExecutionContext::new(&cluster, &catalog);
    let full_ctx = ExecutionContext::new(&cluster, &catalog).with_pruning(false);
    let all = array_model::Region::new(vec![0, 0], vec![side - 1, side - 1]);

    // Selective numeric predicate: the last chunk column's value band.
    let num = Predicate::ge((side - CHUNK) as f64);
    // Selective dictionary predicate: the last tag block.
    let tag = Predicate::str_eq(format!("blk{}", (side - 1) / BLOCK));

    // Deterministic marker outside the timing loop: same answers, and
    // the pruned plan classifies every chunk the full plan visits.
    {
        let (n_on, s_on) = ops::filter_count(&pruned_ctx, ArrayId(0), &all, "v", &num).unwrap();
        let (n_off, s_off) = ops::filter_count(&full_ctx, ArrayId(0), &all, "v", &num).unwrap();
        assert_eq!(n_on, n_off, "pruning changed the numeric answer");
        assert_eq!(n_on, (CHUNK * side) as u64);
        assert_eq!(s_off.chunks_pruned, 0);
        assert_eq!(s_on.chunks_visited + s_on.chunks_pruned, s_off.chunks_visited);
        assert!(s_on.chunks_visited < s_off.chunks_visited, "zones refuted nothing");
        let (t_on, d_on) = ops::filter_count(&pruned_ctx, ArrayId(0), &all, "tag", &tag).unwrap();
        let (t_off, _) = ops::filter_count(&full_ctx, ArrayId(0), &all, "tag", &tag).unwrap();
        assert_eq!(t_on, t_off, "pruning changed the dictionary answer");
        eprintln!(
            "scan: {side}x{side} cells, numeric probe chunks_pruned={} chunks_total={} \
             (visited {}), dict probe chunks_pruned={} (visited {})",
            s_on.chunks_pruned,
            s_off.chunks_visited,
            s_on.chunks_visited,
            d_on.chunks_pruned,
            d_on.chunks_visited,
        );
    }

    let mut group = c.benchmark_group("scan");
    group.sample_size(20);

    // The selective numeric scan, pruned vs full: the speedup is the
    // zone maps refuting all but one chunk column before payloads.
    group.bench_function(format!("filter-pruned/{side}"), |b| {
        b.iter(|| black_box(ops::filter_count(&pruned_ctx, ArrayId(0), &all, "v", &num).unwrap().0))
    });
    group.bench_function(format!("filter-full/{side}"), |b| {
        b.iter(|| black_box(ops::filter_count(&full_ctx, ArrayId(0), &all, "v", &num).unwrap().0))
    });

    // The dictionary probe: code-space compares, no decoding; pruning
    // refutes every chunk whose dictionary lacks the tag.
    group.bench_function(format!("dict-pruned/{side}"), |b| {
        b.iter(|| {
            black_box(ops::filter_count(&pruned_ctx, ArrayId(0), &all, "tag", &tag).unwrap().0)
        })
    });
    group.bench_function(format!("dict-full/{side}"), |b| {
        b.iter(|| black_box(ops::filter_count(&full_ctx, ArrayId(0), &all, "tag", &tag).unwrap().0))
    });

    // An unselective full-width scan: pruning can refute nothing here,
    // so this pins the plan overhead of computing refutations at all.
    let any = Predicate::ge(0.0);
    group.bench_function(format!("full-scan/{side}"), |b| {
        b.iter(|| black_box(ops::filter_count(&pruned_ctx, ArrayId(0), &all, "v", &any).unwrap().0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
