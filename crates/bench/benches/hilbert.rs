//! Microbenchmarks for the Hilbert-curve substrate.

use array_model::{gilbert2d, hilbert_coords, hilbert_index};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert_index");
    for (ndims, bits) in [(2usize, 8u32), (3, 8), (4, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ndims}d_{bits}bits")),
            &(ndims, bits),
            |b, &(ndims, bits)| {
                let coords: Vec<Vec<u64>> = (0..256)
                    .map(|i| (0..ndims).map(|d| ((i * 31 + d * 7) % (1 << bits)) as u64).collect())
                    .collect();
                b.iter(|| {
                    let mut acc = 0u128;
                    for c in &coords {
                        acc ^= hilbert_index(c, bits);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    c.bench_function("hilbert_coords_3d_8bits_x256", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for h in 0..256u128 {
                acc ^= hilbert_coords(h * 65_537, 8, 3)[0];
            }
            black_box(acc)
        })
    });
}

fn bench_gilbert(c: &mut Criterion) {
    let mut group = c.benchmark_group("gilbert2d");
    for (w, h) in [(30i64, 23i64), (128, 128), (500, 300)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &(w, h),
            |b, &(w, h)| b.iter(|| black_box(gilbert2d(w, h).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index, bench_inverse, bench_gilbert);
criterion_main!(benches);
