//! Plain-text table rendering and CSV persistence for the repro binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Write the table as CSV under `dir/name.csv` (best-effort; returns
    /// the path on success).
    pub fn write_csv(&self, dir: &Path, name: &str) -> Option<std::path::PathBuf> {
        fs::create_dir_all(dir).ok()?;
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        csv.push_str(&self.header.iter().map(|s| escape(s)).collect::<Vec<_>>().join(","));
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.iter().map(|s| escape(s)).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, csv).ok()?;
        Some(path)
    }
}

/// Format seconds as minutes with one decimal, as the paper's figures do.
pub fn mins(secs: f64) -> String {
    format!("{:.1}", secs / 60.0)
}

/// Format a fraction as a percentage label like Figure 4's.
pub fn pct(fraction: f64) -> String {
    format!("{:.0}%", fraction * 100.0)
}

/// Default output directory for CSV artifacts.
pub fn out_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("out")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["scheme", "mins"]);
        t.row(vec!["Append".into(), "12.5".into()]);
        t.row(vec!["K-d Tree".into(), "9.1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[2].ends_with("12.5"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_enforced() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mins(90.0), "1.5");
        assert_eq!(pct(0.58), "58%");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["x,y".into()]);
        let dir = std::env::temp_dir().join("ead-table-test");
        let path = t.write_csv(&dir, "esc").unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"x,y\""));
    }
}
