//! # bench-harness
//!
//! The reproduction harness for the paper's evaluation (§6): one function
//! per table/figure in [`experiments`], rendered by the `fig4`…`table3`
//! binaries, plus criterion microbenchmarks under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
