//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. consistent-hash virtual-node count vs balance and move volume;
//! 2. Uniform Range tree height `h` vs balance and reshuffle size;
//! 3. the transfer solver: endpoint contention vs a naive serial model;
//! 4. the fixed-step capacity trigger θ vs reorganization frequency;
//! 5. the staircase derivative window `s` vs provisioning stability.
//!
//! ```text
//! cargo run --release -p bench-harness --bin ablation
//! ```

use bench_harness::experiments::{AIS_SEED, MODIS_SEED};
use bench_harness::table::{out_dir, TextTable};
use elastic_core::{PartitionerConfig, PartitionerKind, StaircaseConfig};
use workloads::{
    AisWorkload, ModisWorkload, RunnerConfig, ScalingPolicy, Workload, WorkloadRunner,
};

fn run_with(
    workload: &dyn Workload,
    kind: PartitionerKind,
    tweak: impl FnOnce(&mut RunnerConfig),
) -> workloads::RunReport {
    let mut config = RunnerConfig::paper_section62(kind);
    config.run_queries = false;
    tweak(&mut config);
    WorkloadRunner::new(workload, config).run_all().expect("paper workloads are collision-free")
}

fn ablate_virtual_nodes(ais: &AisWorkload) {
    println!("\n--- ablation 1: consistent-hash virtual nodes (AIS) ---\n");
    let mut t = TextTable::new(&["vnodes", "mean RSD", "reorg (min)", "moved (GB)"]);
    for vnodes in [1u32, 4, 16, 64, 256] {
        let report = run_with(ais, PartitionerKind::ConsistentHash, |c| {
            c.partitioner_config =
                PartitionerConfig { virtual_nodes: vnodes, ..Default::default() };
        });
        t.row(vec![
            vnodes.to_string(),
            format!("{:.1}%", report.mean_rsd() * 100.0),
            format!("{:.1}", report.phase_totals().reorg_secs / 60.0),
            format!("{:.0}", report.cycles.iter().map(|c| c.moved_bytes).sum::<u64>() as f64 / 1e9),
        ]);
    }
    print!("{}", t.render());
    println!("more virtual nodes smooth the ring (better balance) at slightly");
    println!("higher move volume per scale-out (more, smaller arcs change hands).");
    let _ = t.write_csv(&out_dir(), "ablation_vnodes");
}

fn ablate_uniform_height(modis: &ModisWorkload) {
    println!("\n--- ablation 2: Uniform Range tree height (MODIS) ---\n");
    let mut t = TextTable::new(&["height (l = 2^h)", "mean RSD", "reorg (min)", "moved (GB)"]);
    for h in [3u32, 5, 7, 9, 12] {
        let report = run_with(modis, PartitionerKind::UniformRange, |c| {
            c.partitioner_config = PartitionerConfig { uniform_height: h, ..Default::default() };
        });
        t.row(vec![
            format!("h={h} (l={})", 1u64 << h),
            format!("{:.1}%", report.mean_rsd() * 100.0),
            format!("{:.1}", report.phase_totals().reorg_secs / 60.0),
            format!("{:.0}", report.cycles.iter().map(|c| c.moved_bytes).sum::<u64>() as f64 / 1e9),
        ]);
    }
    print!("{}", t.render());
    println!("the paper: \"the partitioner provides better load balancing with");
    println!("higher h values\" — and pays a bigger global reshuffle for it.");
    let _ = t.write_csv(&out_dir(), "ablation_uniform_height");
}

fn ablate_transfer_solver(ais: &AisWorkload) {
    println!("\n--- ablation 3: endpoint-contention vs serial transfer model (AIS) ---\n");
    // Rebuild the Round Robin reorganizations and price them both ways.
    use cluster_sim::{Cluster, CostModel, FlowSet};
    use elastic_core::build_partitioner;
    let cost = CostModel::default();
    let mut cluster = Cluster::new(2, 100_000_000_000, cost.clone()).unwrap();
    let mut partitioner = build_partitioner(
        PartitionerKind::RoundRobin,
        &cluster,
        &ais.grid_hint(),
        &PartitionerConfig::default(),
    );
    let mut t = TextTable::new(&["scale-out", "moved (GB)", "contention (min)", "serial (min)"]);
    let mut used = 0u64;
    for cycle in 0..ais.cycles() {
        let batch = ais.insert_batch(cycle);
        let incoming: u64 = batch.iter().map(|d| d.bytes).sum();
        if (used + incoming) as f64 > 0.8 * cluster.total_capacity() as f64 {
            let new = cluster.add_nodes(2, 100_000_000_000);
            let plan = partitioner.scale_out(&cluster, &new);
            let flows: FlowSet = plan.flow_set();
            t.row(vec![
                format!("-> {} nodes", cluster.node_count()),
                format!("{:.0}", plan.moved_bytes() as f64 / 1e9),
                format!("{:.1}", flows.elapsed_secs(&cost) / 60.0),
                format!("{:.1}", flows.elapsed_secs_serial(&cost) / 60.0),
            ]);
            cluster.apply_rebalance(&plan).unwrap();
        }
        for desc in batch {
            let node = partitioner.place(&desc, &cluster);
            used += desc.bytes;
            cluster.place(desc, node).unwrap();
        }
    }
    print!("{}", t.render());
    println!("a serial model would call Round Robin's wide reshuffles ruinous;");
    println!("endpoint parallelism is why they are only ~2.5x the incremental cost");
    println!("(the paper's remark about its \"circular addressing\").");
    let _ = t.write_csv(&out_dir(), "ablation_transfer");
}

fn ablate_trigger(modis: &ModisWorkload) {
    println!("\n--- ablation 4: capacity trigger θ (MODIS, +2-node steps) ---\n");
    let mut t =
        TextTable::new(&["trigger", "scale-outs", "final nodes", "reorg (min)", "node-hours"]);
    for trigger in [0.6f64, 0.7, 0.8, 0.9, 1.0] {
        let report = run_with(modis, PartitionerKind::ConsistentHash, |c| {
            c.scaling = ScalingPolicy::FixedStep { add: 2, trigger };
        });
        let events = report.cycles.iter().filter(|c| c.added_nodes > 0).count();
        t.row(vec![
            format!("{trigger:.1}"),
            events.to_string(),
            report.cycles.last().unwrap().nodes.to_string(),
            format!("{:.1}", report.phase_totals().reorg_secs / 60.0),
            format!("{:.1}", report.node_hours()),
        ]);
    }
    print!("{}", t.render());
    println!("earlier triggers buy headroom with extra hardware; θ = 0.8 matches");
    println!("the paper's observed node-count timeline (6 hosts in cycles 7-10).");
    let _ = t.write_csv(&out_dir(), "ablation_trigger");
}

fn ablate_window(ais: &AisWorkload) {
    println!("\n--- ablation 5: staircase derivative window s (AIS, p = 3) ---\n");
    let mut t = TextTable::new(&["s", "scale-outs", "max step", "final nodes", "node-hours"]);
    for s in [1usize, 2, 4, 8] {
        let report = run_with(ais, PartitionerKind::ConsistentHash, |c| {
            c.initial_nodes = 1;
            c.scaling = ScalingPolicy::Staircase(StaircaseConfig {
                node_capacity_gb: 100.0,
                samples: s,
                plan_ahead: 3,
                trigger: 1.0,
                shrink_margin: 0.0,
            });
        });
        let events = report.cycles.iter().filter(|c| c.added_nodes > 0).count();
        let max_step = report.cycles.iter().map(|c| c.added_nodes).max().unwrap_or(0);
        t.row(vec![
            s.to_string(),
            events.to_string(),
            max_step.to_string(),
            report.cycles.last().unwrap().nodes.to_string(),
            format!("{:.1}", report.node_hours()),
        ]);
    }
    print!("{}", t.render());
    println!("AIS demand trends, so narrow windows track the live slope and");
    println!("provision just-in-time; wide windows average stale slopes in.");
    let _ = t.write_csv(&out_dir(), "ablation_window");
}

fn main() {
    let modis = ModisWorkload::with_seed(MODIS_SEED);
    let ais = AisWorkload::with_seed(AIS_SEED);
    println!("Ablation studies over the design choices in DESIGN.md §5.");
    ablate_virtual_nodes(&ais);
    ablate_uniform_height(&modis);
    ablate_transfer_solver(&ais);
    ablate_trigger(&modis);
    ablate_window(&ais);
}
