//! Reproduce Figure 8: the MODIS leading staircase under provisioner set
//! points p = 1, 3, 6 (Consistent Hash, s = 4, 100 GB nodes).

use bench_harness::experiments::fig8_trace;
use bench_harness::table::{out_dir, TextTable};

fn main() {
    let traces: Vec<_> = [1usize, 3, 6].iter().map(|&p| fig8_trace(p)).collect();
    let cycles = traces[0].nodes.len();
    let mut header: Vec<String> = vec!["Cycle".into(), "Demand (nodes)".into()];
    header.extend(traces.iter().map(|t| format!("p = {}", t.plan_ahead)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    for c in 0..cycles {
        let mut cells =
            vec![format!("{}", c + 1), format!("{:.2}", traces[0].demand_gb[c] / 100.0)];
        cells.extend(traces.iter().map(|tr| tr.nodes[c].to_string()));
        t.row(cells);
    }
    println!("Figure 8: MODIS staircase with varying provisioner configurations.");
    println!("(demand expressed in node-equivalents of 100 GB)\n");
    print!("{}", t.render());
    for tr in &traces {
        println!("p = {}: {} scale-out events", tr.plan_ahead, tr.reorgs);
    }
    if let Some(path) = t.write_csv(&out_dir(), "fig8") {
        println!("\ncsv: {}", path.display());
    }
}
