//! Reproduce Table 2: demand-prediction error rates (GB) for sampling
//! windows s = 1..4, on training and held-out demand history.

use bench_harness::experiments::table2_data;
use bench_harness::table::{out_dir, TextTable};

fn main() {
    let (ais, modis) = table2_data();
    let mut t = TextTable::new(&["Samples (s)", "1", "2", "3", "4"]);
    let fmt = |v: &[f64]| v.iter().map(|e| format!("{e:.1}")).collect::<Vec<_>>();
    let mut row = vec!["AIS Train".to_string()];
    row.extend(fmt(&ais.train));
    t.row(row);
    let mut row = vec!["AIS Test".to_string()];
    row.extend(fmt(&ais.test));
    t.row(row);
    let mut row = vec!["MODIS Train".to_string()];
    row.extend(fmt(&modis.train));
    t.row(row);
    let mut row = vec!["MODIS Test".to_string()];
    row.extend(fmt(&modis.test));
    t.row(row);
    println!("Table 2: demand prediction error rates (GB) per sampling window.\n");
    print!("{}", t.render());
    println!("\ntuner picks: AIS s = {}, MODIS s = {} (paper: 1 and 4)", ais.best, modis.best);
    if let Some(path) = t.write_csv(&out_dir(), "table2") {
        println!("csv: {}", path.display());
    }
}
