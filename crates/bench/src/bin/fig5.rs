//! Reproduce Figure 5: total benchmark times per elastic partitioner,
//! split into the Science and SPJ suites, for both workloads.

use bench_harness::experiments::{fig5_rows, AIS_SEED, MODIS_SEED};
use bench_harness::table::{out_dir, TextTable};
use workloads::{AisWorkload, ModisWorkload};

fn main() {
    let modis = fig5_rows(&ModisWorkload::with_seed(MODIS_SEED));
    let ais = fig5_rows(&AisWorkload::with_seed(AIS_SEED));

    let mut t = TextTable::new(&[
        "Partitioning Scheme",
        "Science MODIS (min)",
        "SPJ MODIS (min)",
        "Science AIS (min)",
        "SPJ AIS (min)",
        "Total (min)",
    ]);
    for (m, a) in modis.iter().zip(&ais) {
        assert_eq!(m.kind, a.kind);
        t.row(vec![
            m.kind.label().to_string(),
            format!("{:.1}", m.science_mins),
            format!("{:.1}", m.spj_mins),
            format!("{:.1}", a.science_mins),
            format!("{:.1}", a.spj_mins),
            format!("{:.1}", m.science_mins + m.spj_mins + a.science_mins + a.spj_mins),
        ]);
    }
    println!("Figure 5: benchmark times for elastic partitioners.\n");
    print!("{}", t.render());
    if let Some(path) = t.write_csv(&out_dir(), "fig5") {
        println!("\ncsv: {}", path.display());
    }
}
