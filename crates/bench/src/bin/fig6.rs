//! Reproduce Figure 6: MODIS vegetation-index join duration per workload
//! cycle (unskewed data), for every partitioner.

use bench_harness::experiments::fig6_series;
use bench_harness::table::{out_dir, TextTable};

fn main() {
    let series = fig6_series();
    let cycles = series[0].mins_per_cycle.len();
    let mut header: Vec<String> = vec!["Partitioning Scheme".into()];
    header.extend((1..=cycles).map(|c| format!("c{c}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    for row in &series {
        let mut cells = vec![row.kind.label().to_string()];
        cells.extend(row.mins_per_cycle.iter().map(|m| format!("{m:.2}")));
        t.row(cells);
    }
    println!("Figure 6: join duration (minutes) per cycle, unskewed MODIS data.\n");
    print!("{}", t.render());
    if let Some(path) = t.write_csv(&out_dir(), "fig6") {
        println!("\ncsv: {}", path.display());
    }
}
