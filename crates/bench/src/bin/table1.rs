//! Reproduce Table 1: the taxonomy of array partitioners.

use bench_harness::table::{out_dir, TextTable};
use elastic_core::PartitionerKind;

fn main() {
    let mut t = TextTable::new(&[
        "Partitioner",
        "Incremental Scale Out",
        "Fine-Grained Partitioning",
        "Skew-Aware",
        "n-Dimensional Clustering",
    ]);
    let mark = |b: bool| if b { "X".to_string() } else { String::new() };
    for kind in PartitionerKind::ALL {
        let f = kind.features();
        t.row(vec![
            kind.label().to_string(),
            mark(f.incremental_scale_out),
            mark(f.fine_grained),
            mark(f.skew_aware),
            mark(f.n_dimensional_clustering),
        ]);
    }
    println!("Table 1: Taxonomy of array partitioners.\n");
    print!("{}", t.render());
    if let Some(path) = t.write_csv(&out_dir(), "table1") {
        println!("\ncsv: {}", path.display());
    }
}
