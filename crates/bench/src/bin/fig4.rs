//! Reproduce Figure 4: elastic partitioner insert and reorganization
//! durations, with load-balancing labels (relative standard deviation).

use bench_harness::experiments::{fig4_rows, AIS_SEED, MODIS_SEED};
use bench_harness::table::{out_dir, pct, TextTable};
use workloads::{AisWorkload, ModisWorkload};

fn main() {
    let modis = fig4_rows(&ModisWorkload::with_seed(MODIS_SEED));
    let ais = fig4_rows(&AisWorkload::with_seed(AIS_SEED));

    let mut t = TextTable::new(&[
        "Partitioning Scheme",
        "Insert MODIS (min)",
        "Reorg MODIS (min)",
        "RSD MODIS",
        "Insert AIS (min)",
        "Reorg AIS (min)",
        "RSD AIS",
    ]);
    for (m, a) in modis.iter().zip(&ais) {
        assert_eq!(m.kind, a.kind);
        t.row(vec![
            m.kind.label().to_string(),
            format!("{:.1}", m.insert_mins),
            format!("{:.1}", m.reorg_mins),
            pct(m.rsd),
            format!("{:.1}", a.insert_mins),
            format!("{:.1}", a.reorg_mins),
            pct(a.rsd),
        ]);
    }
    println!("Figure 4: insert and reorganization durations; labels are load");
    println!("balance in relative standard deviation (lower = more even).\n");
    print!("{}", t.render());

    // The paper's headline ratios.
    let incr: Vec<_> = modis
        .iter()
        .zip(&ais)
        .filter(|(m, _)| m.kind.features().incremental_scale_out && m.reorg_mins > 0.0)
        .collect();
    let glob: Vec<_> =
        modis.iter().zip(&ais).filter(|(m, _)| !m.kind.features().incremental_scale_out).collect();
    let mean = |rows: &[(
        &bench_harness::experiments::Fig4Row,
        &bench_harness::experiments::Fig4Row,
    )]| {
        rows.iter().map(|(m, a)| m.reorg_mins + a.reorg_mins).sum::<f64>() / rows.len() as f64
    };
    println!(
        "\nglobal/incremental mean reorg ratio: {:.1}x (paper: ~2.5x)",
        mean(&glob) / mean(&incr)
    );
    if let Some(path) = t.write_csv(&out_dir(), "fig4") {
        println!("csv: {}", path.display());
    }
}
