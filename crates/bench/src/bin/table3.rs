//! Reproduce Table 3: analytical cost-model estimates vs measured
//! node-hours for MODIS controller set points p = 1, 3, 6.

use bench_harness::experiments::table3_data;
use bench_harness::table::{out_dir, TextTable};

fn main() {
    // Cycles 4..13 (1-based), straddling the second expansion wave the
    // way the paper's window straddles its first (see EXPERIMENTS.md).
    let (rows, best) = table3_data((3, 12));
    let mut t = TextTable::new(&["", "Cost Estimate (nh)", "Measured Cost (nh)"]);
    for r in &rows {
        t.row(vec![
            format!("p = {}", r.plan_ahead),
            format!("{:.1}", r.estimated),
            format!("{:.1}", r.measured),
        ]);
    }
    println!("Table 3: analytical cost modeling of MODIS controller set points.\n");
    print!("{}", t.render());
    println!("\ntuner pick: p = {best} (paper: 3)");
    if let Some(path) = t.write_csv(&out_dir(), "table3") {
        println!("csv: {}", path.display());
    }
}
