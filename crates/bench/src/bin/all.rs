//! Run every reproduction target in sequence (Table 1 .. Table 3).

use std::process::Command;

fn main() {
    let bins = ["table1", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "table3"];
    for bin in bins {
        println!("\n=============================== {bin} ===============================");
        let status = Command::new(std::env::current_exe().unwrap().with_file_name(bin))
            .status()
            .expect("sibling binary exists");
        assert!(status.success(), "{bin} failed");
    }
}
