//! The paper's evaluation (§6), one function per table/figure.
//!
//! Every function is deterministic and returns plain data that the repro
//! binaries render as text tables / series (and CSV). Paper-scale runs
//! (hundreds of simulated GB) complete in seconds of host time because
//! only chunk metadata flows through the simulator.

use elastic_core::provision::{
    estimate_cost, tune_plan_ahead, ClusterSnapshot, CostEstimate, CostModelParams,
};
use elastic_core::{prediction_error, PartitionerKind, StaircaseConfig};
use workloads::{
    AisWorkload, ModisWorkload, RunReport, RunnerConfig, ScalingPolicy, Workload, WorkloadRunner,
};

/// Default experiment seeds (fixed for reproducibility).
pub const MODIS_SEED: u64 = 0x5eed_0001;
/// Seed for the AIS generator (must match `AisWorkload::default`, which
/// documents why this exact value).
pub const AIS_SEED: u64 = 0x5eed_000f;

/// Run one workload under the §6.2 schedule with the given partitioner.
pub fn section62_run(kind: PartitionerKind, workload: &dyn Workload, queries: bool) -> RunReport {
    let mut config = RunnerConfig::paper_section62(kind);
    config.run_queries = queries;
    WorkloadRunner::new(workload, config).run_all().expect("paper workloads are collision-free")
}

/// One Figure 4 bar: insert and reorg minutes plus the RSD balance label.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Partitioning scheme.
    pub kind: PartitionerKind,
    /// Total insert minutes across the run.
    pub insert_mins: f64,
    /// Total reorganization minutes across the run.
    pub reorg_mins: f64,
    /// Mean relative standard deviation of node loads (the bar label).
    pub rsd: f64,
    /// Total bytes relocated by scale-outs.
    pub moved_gb: f64,
}

/// Figure 4 data for one workload.
pub fn fig4_rows(workload: &dyn Workload) -> Vec<Fig4Row> {
    PartitionerKind::ALL
        .iter()
        .map(|&kind| {
            let report = section62_run(kind, workload, false);
            let totals = report.phase_totals();
            Fig4Row {
                kind,
                insert_mins: totals.insert_secs / 60.0,
                reorg_mins: totals.reorg_secs / 60.0,
                rsd: report.mean_rsd(),
                moved_gb: report.cycles.iter().map(|c| c.moved_bytes).sum::<u64>() as f64 / 1e9,
            }
        })
        .collect()
}

/// One Figure 5 bar: benchmark minutes per suite.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Partitioning scheme.
    pub kind: PartitionerKind,
    /// Science-suite minutes.
    pub science_mins: f64,
    /// SPJ-suite minutes.
    pub spj_mins: f64,
}

/// Figure 5 data for one workload (full §6.2 runs with queries).
pub fn fig5_rows(workload: &dyn Workload) -> Vec<Fig5Row> {
    PartitionerKind::ALL
        .iter()
        .map(|&kind| {
            let report = section62_run(kind, workload, true);
            Fig5Row {
                kind,
                science_mins: report.science_secs() / 60.0,
                spj_mins: report.spj_secs() / 60.0,
            }
        })
        .collect()
}

/// Per-cycle series of one query for every scheme (Figures 6 and 7).
#[derive(Debug, Clone)]
pub struct SeriesRow {
    /// Partitioning scheme.
    pub kind: PartitionerKind,
    /// Elapsed minutes per workload cycle.
    pub mins_per_cycle: Vec<f64>,
}

/// Figure 6: MODIS vegetation-index join duration per cycle.
pub fn fig6_series() -> Vec<SeriesRow> {
    let workload = ModisWorkload::with_seed(MODIS_SEED);
    query_series(&workload, "spj/join")
}

/// Figure 7: AIS k-nearest-neighbour duration per cycle.
pub fn fig7_series() -> Vec<SeriesRow> {
    let workload = AisWorkload::with_seed(AIS_SEED);
    query_series(&workload, "science/modeling")
}

fn query_series(workload: &dyn Workload, query: &str) -> Vec<SeriesRow> {
    PartitionerKind::ALL
        .iter()
        .map(|&kind| {
            let report = section62_run(kind, workload, true);
            SeriesRow {
                kind,
                mins_per_cycle: report.query_series(query).into_iter().map(|s| s / 60.0).collect(),
            }
        })
        .collect()
}

/// Figure 8: the staircase under one planning horizon.
#[derive(Debug, Clone)]
pub struct StaircaseTrace {
    /// Planning horizon p.
    pub plan_ahead: usize,
    /// Nodes provisioned at each cycle.
    pub nodes: Vec<usize>,
    /// Storage demand (GB) at each cycle.
    pub demand_gb: Vec<f64>,
    /// Number of scale-out events.
    pub reorgs: usize,
    /// The full run (node-hour accounting for Table 3).
    pub report: RunReport,
}

/// Run the Figure 8 experiment: MODIS on Consistent Hash (per §6.3),
/// staircase-provisioned with `s = 4` and the given `p`.
pub fn fig8_trace(plan_ahead: usize) -> StaircaseTrace {
    let workload = ModisWorkload::with_seed(MODIS_SEED);
    let mut config = RunnerConfig::paper_section62(PartitionerKind::ConsistentHash);
    config.initial_nodes = 1;
    config.scaling = ScalingPolicy::Staircase(StaircaseConfig {
        node_capacity_gb: 100.0,
        samples: 4,
        plan_ahead,
        trigger: 1.0,
        shrink_margin: 0.0,
    });
    config.run_queries = true;
    let report = WorkloadRunner::new(&workload, config).run_all().expect("MODIS is collision-free");
    StaircaseTrace {
        plan_ahead,
        nodes: report.cycles.iter().map(|c| c.nodes).collect(),
        demand_gb: report.cycles.iter().map(|c| c.demand_gb).collect(),
        reorgs: report.cycles.iter().filter(|c| c.added_nodes > 0).count(),
        report,
    }
}

/// Table 2: prediction errors for each sampling window, train vs test.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// Mean |predicted − observed| demand change, GB, for s = 1..=4,
    /// on the training prefix of the demand history.
    pub train: Vec<f64>,
    /// Same, on the held-out remainder.
    pub test: Vec<f64>,
    /// The winning window on the training data.
    pub best: usize,
}

/// Evaluate Algorithm 1 on a demand history split at `train_len`.
pub fn table2_eval(history: &[f64], train_len: usize, psi: usize) -> Table2Data {
    let train_hist = &history[..train_len.min(history.len())];
    let mut train = Vec::new();
    let mut test = Vec::new();
    for s in 1..=psi {
        train.push(prediction_error(train_hist, s).unwrap_or(f64::NAN));
        // Test: evaluate predictions over the held-out region only, using
        // the same sliding-window estimator.
        test.push(holdout_error(history, train_len, s).unwrap_or(f64::NAN));
    }
    let best = train
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.is_nan())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i + 1)
        .unwrap_or(1);
    Table2Data { train, test, best }
}

/// Mean |Δ − Δest| over predictions made inside the held-out suffix.
fn holdout_error(history: &[f64], train_len: usize, s: usize) -> Option<f64> {
    let d = history.len();
    if d < train_len + 2 || train_len < s {
        return None;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for i in train_len.max(s)..d - 1 {
        let delta_est = (history[i] - history[i - s]) / s as f64;
        let delta_actual = history[i + 1] - history[i];
        total += (delta_actual - delta_est).abs();
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

/// Table 2 for both workloads: AIS on monthly demand (40 samples, train on
/// the first third as the paper does), MODIS on daily demand (14 samples,
/// train on the first two thirds — the paper's one-third prefix of a
/// 14-cycle history cannot even evaluate s = 4; see EXPERIMENTS.md).
pub fn table2_data() -> (Table2Data, Table2Data) {
    let ais = AisWorkload::with_seed(AIS_SEED);
    let modis = ModisWorkload::with_seed(MODIS_SEED);
    let ais_hist = ais.monthly_demand_history();
    let modis_hist = modis.daily_demand_history();
    let ais_data = table2_eval(&ais_hist, ais_hist.len() / 3, 4);
    let modis_data = table2_eval(&modis_hist, modis_hist.len() * 2 / 3, 4);
    (ais_data, modis_data)
}

/// Table 3: analytical estimate vs measured node-hours for one horizon.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Planning horizon p.
    pub plan_ahead: usize,
    /// Eq. 9 estimate over the projection window, node-hours.
    pub estimated: f64,
    /// Measured node-hours over the same cycles of the real (simulated)
    /// run.
    pub measured: f64,
}

/// Table 3: model cycles `window` (0-based, inclusive) of the MODIS
/// staircase runs for p ∈ {1, 3, 6}. All estimates project from the *same*
/// cluster snapshot — the state of the lazy (p = 1) run just before the
/// window, which is where the paper's tuner sits when it compares set
/// points. Returns the rows plus the tuner's pick.
pub fn table3_data(window: (usize, usize)) -> (Vec<Table3Row>, usize) {
    let (start, end) = window;
    assert!(end >= start);
    let horizon = end - start + 1;
    let params = CostModelParams {
        node_capacity_gb: 100.0,
        delta_secs_per_gb: 8.0,
        t_secs_per_gb: 12.0,
        horizon,
    };

    // Common snapshot from the lazy baseline run.
    let baseline = fig8_trace(1);
    let cycles = &baseline.report.cycles;
    let snap_cycle = &cycles[start.saturating_sub(1)];
    let mu = if start >= 5 {
        (cycles[start - 1].demand_gb - cycles[start - 5].demand_gb) / 4.0
    } else {
        snap_cycle.demand_gb / start.max(1) as f64
    };
    let snap = ClusterSnapshot {
        nodes: snap_cycle.nodes,
        load_gb: snap_cycle.demand_gb,
        insert_rate_gb: mu,
        last_query_secs: snap_cycle.phases.query_secs,
    };

    let mut rows = Vec::new();
    for p in [1usize, 3, 6] {
        let est: CostEstimate = estimate_cost(p, &snap, &params);
        // Measured: Eq. 1 over the same window of the actual p-run.
        let trace = if p == 1 { baseline.clone() } else { fig8_trace(p) };
        let measured: f64 = trace.report.cycles[start..=end.min(trace.report.cycles.len() - 1)]
            .iter()
            .map(|c| c.nodes as f64 * c.phases.total_secs())
            .sum::<f64>()
            / 3600.0;
        rows.push(Table3Row { plan_ahead: p, estimated: est.node_hours, measured });
    }
    let best = tune_plan_ahead(&[1, 3, 6], &snap, &params).best;
    (rows, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_match_the_paper() {
        let (ais, modis) = table2_data();
        // AIS: trending demand -> smallest window wins, and error grows
        // monotonically with the window (paper: 1.6, 1.8, 2.0, 2.2).
        assert_eq!(ais.best, 1, "AIS should tune to s=1: {:?}", ais.train);
        for w in ais.train.windows(2) {
            assert!(w[0] <= w[1], "AIS train errors should grow in s: {:?}", ais.train);
        }
        // MODIS: periodic + anti-correlated daily volume -> the widest
        // window wins (paper: 2.7, 1.8, 2.0, 1.6 with s=4 best).
        assert_eq!(modis.best, 4, "MODIS should tune to s=4: {:?}", modis.train);
        assert!(modis.train[3] < modis.train[0]);
        // Test errors correlate with train: same winner side.
        assert!(ais.test[0] <= ais.test[3]);
        assert!(modis.test[3] <= modis.test[0]);
    }

    #[test]
    fn holdout_error_requires_enough_history() {
        let hist: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(holdout_error(&hist, 3, 1).is_some());
        assert!(holdout_error(&hist, 9, 1).is_none());
        // Perfect linear growth -> zero error.
        assert!(holdout_error(&hist, 3, 2).unwrap() < 1e-12);
    }
}
