//! The catalog: which arrays exist, their schemas, chunk metadata, and —
//! when running at test scale — their materialized cells.

use crate::error::{QueryError, Result};
use array_model::{Array, ArrayId, ArraySchema, ChunkCoords, ChunkDescriptor, ChunkKey};
use std::collections::BTreeMap;

/// One array registered with the engine.
///
/// `descriptors` always carries the byte/cell metadata every operator's
/// cost accounting needs. `data` optionally materializes the cells so the
/// same operators can produce real answers (tests, examples, small runs).
/// `replicated` marks small dimension arrays (the paper's 25 MB Vessel
/// array) that live in full on every node, so reads are always local.
#[derive(Debug, Clone)]
pub struct StoredArray {
    /// The array's identity.
    pub id: ArrayId,
    /// Schema (dimensions, attributes).
    pub schema: ArraySchema,
    /// Chunk metadata, keyed by chunk position.
    pub descriptors: BTreeMap<ChunkCoords, ChunkDescriptor>,
    /// Materialized cells, when running at a scale that permits it.
    pub data: Option<Array>,
    /// Replicated to every node instead of partitioned.
    pub replicated: bool,
}

impl StoredArray {
    /// A partitioned array with metadata only.
    pub fn from_descriptors(
        id: ArrayId,
        schema: ArraySchema,
        descriptors: impl IntoIterator<Item = ChunkDescriptor>,
    ) -> Self {
        let map = descriptors.into_iter().map(|d| (d.key.coords, d)).collect();
        StoredArray { id, schema, descriptors: map, data: None, replicated: false }
    }

    /// A partitioned array with materialized cells; descriptors are
    /// derived from the data.
    pub fn from_array(array: Array) -> Self {
        let descriptors = array.descriptors().into_iter().map(|d| (d.key.coords, d)).collect();
        StoredArray {
            id: array.id,
            schema: array.schema.clone(),
            descriptors,
            data: Some(array),
            replicated: false,
        }
    }

    /// Mark the array as replicated on every node.
    pub fn replicated(mut self) -> Self {
        self.replicated = true;
        self
    }

    /// Total stored bytes.
    pub fn byte_size(&self) -> u64 {
        self.descriptors.values().map(|d| d.bytes).sum()
    }

    /// Key for a chunk of this array.
    pub fn key_for(&self, coords: &ChunkCoords) -> ChunkKey {
        ChunkKey::new(self.id, *coords)
    }

    /// Resolve an attribute name to its index.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.schema
            .attribute_index(name)
            .map_err(|_| QueryError::UnknownAttribute(name.to_string()))
    }
}

/// All arrays known to the engine.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    arrays: BTreeMap<ArrayId, StoredArray>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) an array.
    pub fn register(&mut self, array: StoredArray) {
        self.arrays.insert(array.id, array);
    }

    /// Fetch an array.
    pub fn array(&self, id: ArrayId) -> Result<&StoredArray> {
        self.arrays.get(&id).ok_or(QueryError::UnknownArray(id))
    }

    /// Mutable fetch (workload drivers append chunks between cycles).
    pub fn array_mut(&mut self, id: ArrayId) -> Result<&mut StoredArray> {
        self.arrays.get_mut(&id).ok_or(QueryError::UnknownArray(id))
    }

    /// Iterate registered arrays.
    pub fn arrays(&self) -> impl Iterator<Item = &StoredArray> {
        self.arrays.values()
    }
}

// ---------------------------------------------------------------------
// Durable codecs: checkpoints carry the whole catalog — schemas, chunk
// metadata, and (when materialized) the cell payloads — so recovery can
// rebuild the oracle and re-alias node payload stores from one source.
// ---------------------------------------------------------------------

use durability::{ByteReader, ByteWriter, CodecError};

impl StoredArray {
    /// Serialize the array registration. Descriptors are written
    /// explicitly even when `data` is present: the descriptor map also
    /// tracks metadata-only chunks (derived products) that carry no
    /// payload.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        self.id.encode_into(w);
        self.schema.encode_into(w);
        w.put_bool(self.replicated);
        w.put_usize(self.descriptors.len());
        for d in self.descriptors.values() {
            d.encode_into(w);
        }
        match &self.data {
            Some(array) => {
                w.put_bool(true);
                array.encode_into(w);
            }
            None => w.put_bool(false),
        }
    }

    /// Decode a registration written by [`StoredArray::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> std::result::Result<Self, CodecError> {
        let id = ArrayId::decode_from(r)?;
        let schema = ArraySchema::decode_from(r)?;
        let replicated = r.bool("stored array replicated flag")?;
        let n = r.usize("stored array descriptor count")?;
        let mut descriptors = BTreeMap::new();
        for _ in 0..n {
            let d = ChunkDescriptor::decode_from(r)?;
            if d.key.array != id {
                return Err(CodecError::Invalid {
                    context: "stored array descriptor",
                    detail: format!("descriptor for {} filed under {id:?}", d.key),
                });
            }
            if descriptors.insert(d.key.coords, d).is_some() {
                return Err(CodecError::Invalid {
                    context: "stored array descriptor",
                    detail: format!("duplicate descriptor at {}", d.key),
                });
            }
        }
        let data = if r.bool("stored array data flag")? {
            let array = Array::decode_from(r)?;
            if array.id != id {
                return Err(CodecError::Invalid {
                    context: "stored array data",
                    detail: format!("payload array {:?} filed under {id:?}", array.id),
                });
            }
            Some(array)
        } else {
            None
        };
        Ok(StoredArray { id, schema, descriptors, data, replicated })
    }
}

impl Catalog {
    /// Serialize every registration, in `ArrayId` order.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.arrays.len());
        for a in self.arrays.values() {
            a.encode_into(w);
        }
    }

    /// Decode a catalog written by [`Catalog::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> std::result::Result<Self, CodecError> {
        let n = r.usize("catalog array count")?;
        let mut arrays = BTreeMap::new();
        for _ in 0..n {
            let a = StoredArray::decode_from(r)?;
            if arrays.insert(a.id, a).is_some() {
                return Err(CodecError::Invalid {
                    context: "catalog array",
                    detail: "duplicate array id".to_string(),
                });
            }
        }
        Ok(Catalog { arrays })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::ScalarValue;

    fn small_array() -> Array {
        let schema = ArraySchema::parse("A<v:int32>[x=0:7,2, y=0:7,2]").unwrap();
        let mut a = Array::new(ArrayId(3), schema);
        for x in 0..8 {
            for y in 0..8 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Int32((x * 8 + y) as i32)]).unwrap();
            }
        }
        a
    }

    #[test]
    fn from_array_derives_descriptors() {
        let stored = StoredArray::from_array(small_array());
        assert_eq!(stored.descriptors.len(), 16);
        assert_eq!(stored.byte_size(), stored.data.as_ref().unwrap().byte_size());
        assert!(!stored.replicated);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut cat = Catalog::new();
        cat.register(StoredArray::from_array(small_array()));
        assert!(cat.array(ArrayId(3)).is_ok());
        assert!(matches!(cat.array(ArrayId(9)), Err(QueryError::UnknownArray(_))));
        assert_eq!(cat.arrays().count(), 1);
    }

    #[test]
    fn catalog_codec_round_trips_and_rejects_prefixes() {
        let mut cat = Catalog::new();
        cat.register(StoredArray::from_array(small_array()).replicated());
        let schema = ArraySchema::parse("M<v:double>[x=0:*,4]").unwrap();
        cat.register(StoredArray::from_descriptors(
            ArrayId(7),
            schema,
            (0..3).map(|i| {
                array_model::ChunkDescriptor::new(
                    array_model::ChunkKey::new(ArrayId(7), ChunkCoords::new([i])),
                    1000 + i as u64,
                    10,
                )
            }),
        ));
        let mut w = ByteWriter::new();
        cat.encode_into(&mut w);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let back = Catalog::decode_from(&mut r).expect("round trip");
        r.finish("catalog").expect("fully consumed");
        let mut w2 = ByteWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "codec not idempotent");
        assert!(back.array(ArrayId(3)).unwrap().replicated);
        assert_eq!(back.array(ArrayId(3)).unwrap().data.as_ref().unwrap().cell_count(), 64);
        assert_eq!(back.array(ArrayId(7)).unwrap().descriptors.len(), 3);

        for cut in (0..bytes.len()).step_by(5) {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(Catalog::decode_from(&mut r).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn attribute_lookup_errors_are_named() {
        let stored = StoredArray::from_array(small_array());
        assert_eq!(stored.attribute_index("v").unwrap(), 0);
        assert!(matches!(stored.attribute_index("w"), Err(QueryError::UnknownAttribute(_))));
    }
}
