//! Sort-flavoured operators: sampled quantiles and sorted distinct values
//! (the paper's SPJ "Sort" benchmarks, §3.3.1).
//!
//! Both run a parallel local pass, ship compact per-node summaries to the
//! coordinator, and finish with a serial merge — "non-trivial aggregation"
//! whose cost follows the balance of the scan plus a small serial tail.

use super::scan::{require_numeric, NumericSlice, SelectionMask};
use crate::error::{QueryError, Result};
use crate::exec::ExecutionContext;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{ArrayId, AttributeColumn, AttributeType, Region};
use cluster_sim::gb;
use std::collections::BTreeSet;

/// A sampled quantile estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileResult {
    /// The estimated quantile value (`None` when metadata-only).
    pub value: Option<f64>,
    /// Cells that contributed to the sample.
    pub sampled_cells: u64,
}

/// Estimate quantile `q` (0..=1) of `attr` over `region` from a uniform
/// sample of `sample_fraction` of the cells.
///
/// `attr` must be numeric (a typed [`QueryError::AttributeType`]
/// otherwise). The sample is ordered with [`f64::total_cmp`], so NaN
/// cells rank at the extremes instead of panicking the sort: negative
/// NaNs below `-inf`, positive NaNs above `+inf` (IEEE 754 total order).
/// A NaN can therefore only be *the answer* when `q` lands on a NaN rank
/// — it never perturbs the order of the finite values around it.
pub fn quantile(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: Option<&Region>,
    attr: &str,
    q: f64,
    sample_fraction: f64,
) -> Result<(QuantileResult, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    require_numeric(attr, array.schema.attributes[attr_idx].ty, "numeric")?;
    let mut tracker = WorkTracker::new(ctx.cost());
    let coordinator = ctx.cluster.coordinator();

    let plan = ctx.plan_scan(array_id, region, None)?;
    let mut sample_bytes_total = 0u64;
    for (desc, node, _) in &plan.visit {
        let col_bytes = scaled_bytes(desc.bytes, fraction);
        // Sampling pushes down into the scan: only the sampled pages are
        // read, then each node ships its sample to the coordinator.
        let sample_bytes = scaled_bytes(col_bytes, sample_fraction.clamp(0.0, 1.0));
        tracker.scan_chunk(*node, sample_bytes);
        tracker.shuffle(*node, coordinator, sample_bytes);
        sample_bytes_total += sample_bytes;
    }
    tracker.prune_chunks(plan.pruned);
    // Serial sort of the sample at the coordinator: n log n over the
    // sampled bytes, priced as CPU work.
    let n = (sample_bytes_total / 8).max(1) as f64;
    tracker
        .coordinator(gb(sample_bytes_total) * ctx.cost().cpu_secs_per_gb * n.log2().max(1.0) / 8.0);

    // Materialized answer: deterministic "sample" = every ceil(1/f)-th cell.
    // The stride counter advances only on region-selected live rows, so a
    // pruned chunk (zero such rows) never shifts which cells later chunks
    // contribute — sampling is pruning-invariant by construction.
    let mut value = None;
    let mut sampled_cells = 0u64;
    if plan.exact {
        let stride = (1.0 / sample_fraction.clamp(1e-6, 1.0)).round().max(1.0) as usize;
        let mut sample: Vec<f64> = Vec::new();
        let mut i = 0usize;
        for (_, _, payload) in &plan.visit {
            let Some(chunk) = payload else { continue };
            let mut mask = SelectionMask::live(chunk);
            if let Some(r) = region {
                mask.retain_region(chunk, r);
            }
            let col = NumericSlice::of(chunk, attr_idx).expect("type-checked numeric column");
            mask.for_each(|row| {
                if i.is_multiple_of(stride) {
                    sample.push(col.get(row));
                }
                i += 1;
            });
        }
        sampled_cells = sample.len() as u64;
        if !sample.is_empty() {
            sample.sort_by(f64::total_cmp);
            let idx = ((sample.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
            value = Some(sample[idx]);
        }
    }
    Ok((QuantileResult { value, sampled_cells }, tracker.finish()))
}

/// Sorted distinct integer values of `attr` over `region` (the AIS
/// "sorted log of distinct ship identifiers"). `attr` must be an
/// integer-valued attribute (`int32`/`int64`/`char`); floats and strings
/// are a typed [`QueryError::AttributeType`] — historically they were
/// silently skipped, answering `[]`.
pub fn distinct_sorted(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: Option<&Region>,
    attr: &str,
) -> Result<(Vec<i64>, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    let ty = array.schema.attributes[attr_idx].ty;
    if !matches!(ty, AttributeType::Int32 | AttributeType::Int64 | AttributeType::Char) {
        return Err(QueryError::AttributeType {
            attribute: attr.to_string(),
            expected: "integer",
            got: ty.name(),
        });
    }
    let mut tracker = WorkTracker::new(ctx.cost());
    let coordinator = ctx.cluster.coordinator();

    let plan = ctx.plan_scan(array_id, region, None)?;
    for (desc, node, _) in &plan.visit {
        let col_bytes = scaled_bytes(desc.bytes, fraction);
        tracker.scan_chunk(*node, col_bytes);
        // Local distinct compresses heavily before the exchange.
        tracker.shuffle(*node, coordinator, col_bytes / 20);
    }
    tracker.prune_chunks(plan.pruned);
    tracker.coordinator(0.5); // final merge of per-node distinct sets

    let mut out: BTreeSet<i64> = BTreeSet::new();
    if plan.exact {
        for (_, _, payload) in &plan.visit {
            let Some(chunk) = payload else { continue };
            let mut mask = SelectionMask::live(chunk);
            if let Some(r) = region {
                mask.retain_region(chunk, r);
            }
            match chunk.column(attr_idx).expect("schema-shaped chunk") {
                AttributeColumn::Int32(v) => mask.for_each(|row| {
                    out.insert(i64::from(v[row]));
                }),
                AttributeColumn::Int64(v) => mask.for_each(|row| {
                    out.insert(v[row]);
                }),
                AttributeColumn::Char(v) => mask.for_each(|row| {
                    out.insert(i64::from(v[row]));
                }),
                _ => unreachable!("integer-typed attribute has an integer column"),
            }
        }
    }
    Ok((out.into_iter().collect(), tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema, ScalarValue};
    use cluster_sim::{Cluster, CostModel, NodeId};

    fn setup() -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("A<v:double, id:int64>[x=0:9,2, y=0:9,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..10 {
            for y in 0..10 {
                a.insert_cell(
                    vec![x, y],
                    vec![ScalarValue::Double((x * 10 + y) as f64), ScalarValue::Int64(x % 3)],
                )
                .unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, NodeId((i % 2) as u32)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn full_sample_median_is_exact() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let (result, stats) = quantile(&ctx, ArrayId(0), None, "v", 0.5, 1.0).unwrap();
        // Values are 0..=99; the median is 49 or 50 depending on rounding.
        let v = result.value.unwrap();
        assert!((49.0..=50.0).contains(&v), "median {v}");
        assert_eq!(result.sampled_cells, 100);
        assert!(stats.bytes_shuffled > 0, "sample must travel to the coordinator");
    }

    #[test]
    fn sparse_sample_still_approximates() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let (result, _) = quantile(&ctx, ArrayId(0), None, "v", 0.5, 0.25).unwrap();
        let v = result.value.unwrap();
        assert!((30.0..=70.0).contains(&v), "rough median {v}");
        assert!(result.sampled_cells < 100);
    }

    #[test]
    fn extremes_hit_min_and_max() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let (lo, _) = quantile(&ctx, ArrayId(0), None, "v", 0.0, 1.0).unwrap();
        let (hi, _) = quantile(&ctx, ArrayId(0), None, "v", 1.0, 1.0).unwrap();
        assert_eq!(lo.value, Some(0.0));
        assert_eq!(hi.value, Some(99.0));
    }

    #[test]
    fn nan_cells_no_longer_panic_the_sort() {
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("N<v:double>[x=0:9,10]").unwrap();
        let mut a = Array::new(ArrayId(4), schema);
        for x in 0..8 {
            a.insert_cell(vec![x], vec![ScalarValue::Double(x as f64)]).unwrap();
        }
        a.insert_cell(vec![8], vec![ScalarValue::Double(f64::NAN)]).unwrap();
        let stored = StoredArray::from_array(a);
        for d in stored.descriptors.values() {
            cluster.place(*d, NodeId(0)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        // The historical code panicked here ("no NaN measurements").
        let (median, _) = quantile(&ctx, ArrayId(4), None, "v", 0.5, 1.0).unwrap();
        assert_eq!(median.sampled_cells, 9);
        // Positive NaN ranks above +inf in total order, so mid-quantiles
        // still answer from the finite values...
        assert_eq!(median.value, Some(4.0));
        // ...and only the extreme rank lands on the NaN itself.
        let (top, _) = quantile(&ctx, ArrayId(4), None, "v", 1.0, 1.0).unwrap();
        assert!(top.value.unwrap().is_nan());
    }

    #[test]
    fn distinct_matches_naive() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let (values, stats) = distinct_sorted(&ctx, ArrayId(0), None, "id").unwrap();
        assert_eq!(values, vec![0, 1, 2]);
        assert!(stats.elapsed_secs > 0.0);
    }

    #[test]
    fn non_numeric_inputs_are_typed_errors() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        // distinct over a double column used to silently answer [].
        let err = distinct_sorted(&ctx, ArrayId(0), None, "v").unwrap_err();
        assert_eq!(
            err,
            QueryError::AttributeType { attribute: "v".into(), expected: "integer", got: "double" }
        );
    }

    #[test]
    fn region_restricts_both_operators() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![0, 9]); // x == 0 only -> id == 0
        let (values, _) = distinct_sorted(&ctx, ArrayId(0), Some(&region), "id").unwrap();
        assert_eq!(values, vec![0]);
        let (q, _) = quantile(&ctx, ArrayId(0), Some(&region), "v", 1.0, 1.0).unwrap();
        assert_eq!(q.value, Some(9.0));
    }
}
