//! Windowed aggregation with halo exchange (paper §3.3.2 "Complex
//! Projection": the MODIS image-smoothing window).
//!
//! Every output pixel averages a window of surrounding cells, so chunks
//! need a *halo* of cells from their face-adjacent neighbours. Neighbour
//! pairs that live on the same node exchange nothing; pairs split across
//! nodes pay a latency-bearing remote fetch of the boundary slab. This is
//! the purest expression of why n-dimensional clustering wins spatial
//! queries.

use super::scan::require_numeric;
use crate::error::{QueryError, Result};
use crate::exec::ExecutionContext;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{ArrayId, ChunkCoords, Region};

/// Result of a windowed aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowResult {
    /// Mean of the windowed values (`None` when metadata-only).
    pub mean: Option<f64>,
    /// Number of output cells computed.
    pub outputs: u64,
}

/// Windowed average of `attr` over `region` with L∞ window radius
/// `radius` (in cells).
pub fn window_aggregate(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    attr: &str,
    radius: i64,
) -> Result<(WindowResult, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    // A negative radius would silently shrink the halo region inside out
    // (grown.low > grown.high) and flip the cost model's slab fraction
    // negative — reject it like any other malformed argument.
    if radius < 0 {
        return Err(QueryError::InvalidArgument(format!("window radius {radius} is negative")));
    }
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    require_numeric(attr, array.schema.attributes[attr_idx].ty, "numeric")?;
    let mut tracker = WorkTracker::new(ctx.cost());

    let chunks = ctx.chunks_in(array_id, Some(region))?;
    // Index participating chunks for neighbour lookups.
    let homes: std::collections::BTreeMap<&ChunkCoords, (&_, _)> =
        chunks.iter().map(|(d, n)| (&d.key.coords, (d, *n))).collect();

    for (desc, node) in &chunks {
        let bytes = scaled_bytes(desc.bytes, fraction);
        tracker.scan_chunk(*node, bytes);
        // Overlapping windows: each cell participates in (2r+1)^2 windows
        // on the spatial plane, so the compute pass re-touches the data
        // that many times (vectorized, so a damped multiplier).
        let window_cells = ((2 * radius + 1) * (2 * radius + 1)) as f64;
        tracker.compute(*node, ctx.cost().cpu_secs(bytes) * window_cells * 0.15);
        // Halo: pull the boundary slab from every face-adjacent neighbour
        // that participates in the query.
        for (dim, dimension) in array.schema.dimensions.iter().enumerate() {
            // Faces plus their edge/corner contributions (~1.5x a face).
            let slab_fraction =
                (1.5 * radius as f64 / dimension.chunk_interval.max(1) as f64).min(1.0) * fraction;
            for delta in [-1i64, 1] {
                let mut ncoords = desc.key.coords;
                ncoords[dim] += delta;
                if let Some((ndesc, nnode)) = homes.get(&ncoords) {
                    let slab = scaled_bytes(ndesc.bytes, slab_fraction);
                    tracker.remote_fetch(*node, *nnode, slab);
                }
            }
        }
    }

    // Materialized answer: brute-force window average per cell.
    let mut result = WindowResult::default();
    if ctx.cells_available(array) {
        // Collect the region's cells into a point map first.
        let mut points: std::collections::BTreeMap<Vec<i64>, f64> =
            std::collections::BTreeMap::new();
        let grown = Region::new(
            region.low.iter().map(|v| v - radius).collect(),
            region.high.iter().map(|v| v + radius).collect(),
        );
        for (_, chunk) in ctx.payload_chunks(array, Some(&grown)) {
            let col = chunk.column(attr_idx).expect("schema-shaped chunk");
            for (cell, row) in chunk.iter_cells() {
                if grown.contains_cell(cell) {
                    if let Some(v) = col.get_f64(row) {
                        points.insert(cell.to_vec(), v);
                    }
                }
            }
        }
        let mut total = 0.0;
        let mut outputs = 0u64;
        for (cell, _) in points.iter() {
            if !region.contains_cell(cell) {
                continue;
            }
            // Average the window around this cell (sparse: only stored
            // cells contribute).
            let mut sum = 0.0;
            let mut n = 0u64;
            let mut probe = cell.clone();
            accumulate_window(&points, cell, radius, 0, &mut probe, &mut sum, &mut n);
            if n > 0 {
                total += sum / n as f64;
                outputs += 1;
            }
        }
        result.outputs = outputs;
        if outputs > 0 {
            result.mean = Some(total / outputs as f64);
        }
    }
    Ok((result, tracker.finish()))
}

/// Recursive odometer over the window box, accumulating stored values.
fn accumulate_window(
    points: &std::collections::BTreeMap<Vec<i64>, f64>,
    center: &[i64],
    radius: i64,
    dim: usize,
    probe: &mut Vec<i64>,
    sum: &mut f64,
    n: &mut u64,
) {
    if dim == center.len() {
        if let Some(v) = points.get(probe) {
            *sum += v;
            *n += 1;
        }
        return;
    }
    for d in -radius..=radius {
        probe[dim] = center[dim] + d;
        accumulate_window(points, center, radius, dim + 1, probe, sum, n);
    }
    probe[dim] = center[dim];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema, ScalarValue};
    use cluster_sim::{Cluster, CostModel, NodeId};

    fn setup(place: impl Fn(usize) -> NodeId) -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("I<v:double>[x=0:7,2, y=0:7,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..8 {
            for y in 0..8 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Double(1.0)]).unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, place(i)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn constant_field_windows_to_constant() {
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![2, 2], vec![5, 5]);
        let (result, _) = window_aggregate(&ctx, ArrayId(0), &region, "v", 1).unwrap();
        assert_eq!(result.outputs, 16);
        assert!((result.mean.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_reduces_remote_halo_fetches() {
        let region = Region::new(vec![0, 0], vec![7, 7]);
        // Row-major chunk order on a 4x4 chunk grid: i = cx*4 + cy.
        // Clustered: left half (cx<2) on nodes 0/1 by row pairs -> most
        // neighbours share a node. Scattered: round-robin everything.
        let clustered = setup(|i| NodeId((i / 8) as u32 * 2 + ((i % 8) / 4) as u32 / 2));
        let scattered = setup(|i| NodeId((i % 4) as u32));
        let (_, s_clu) = window_aggregate(
            &ExecutionContext::new(&clustered.0, &clustered.1),
            ArrayId(0),
            &region,
            "v",
            1,
        )
        .unwrap();
        let (_, s_sca) = window_aggregate(
            &ExecutionContext::new(&scattered.0, &scattered.1),
            ArrayId(0),
            &region,
            "v",
            1,
        )
        .unwrap();
        assert!(
            s_clu.remote_fetches < s_sca.remote_fetches,
            "clustered {} vs scattered {}",
            s_clu.remote_fetches,
            s_sca.remote_fetches
        );
        assert!(s_clu.elapsed_secs < s_sca.elapsed_secs);
    }

    #[test]
    fn negative_radius_is_rejected() {
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![2, 2], vec![5, 5]);
        let err = window_aggregate(&ctx, ArrayId(0), &region, "v", -1).unwrap_err();
        assert!(matches!(err, crate::QueryError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn window_mean_matches_naive_on_varying_field() {
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("I<v:double>[x=0:3,2, y=0:3,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..4 {
            for y in 0..4 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Double((x + y) as f64)]).unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        for d in stored.descriptors.values() {
            cluster.place(*d, NodeId(0)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        // Window around (1,1) with r=1 covers the 3x3 block x,y in 0..=2:
        // mean of (x+y) = 2.0. Single-cell region isolates it.
        let region = Region::new(vec![1, 1], vec![1, 1]);
        let (result, _) = window_aggregate(&ctx, ArrayId(0), &region, "v", 1).unwrap();
        assert_eq!(result.outputs, 1);
        assert!((result.mean.unwrap() - 2.0).abs() < 1e-9);
    }
}
