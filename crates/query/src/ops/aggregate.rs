//! Group-by aggregation over dimension space (paper §3.3.2 "Statistics").
//!
//! The MODIS rolling average and the AIS track-count map both group cells
//! by a projection of the dimensions (e.g. collapse time, coarsen
//! lat/lon). Each node aggregates its chunks locally, then partial states
//! are exchanged so each group is finalized on one node. When contiguous
//! chunks are co-located (n-dimensional clustering), most groups have a
//! single contributor and the exchange disappears — the clustered
//! partitioners' advantage on the Science benchmarks.

use super::scan::{require_numeric, NumericSlice, SelectionMask};
use crate::error::{QueryError, Result};
use crate::exec::ExecutionContext;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{ArrayId, Region};
use cluster_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which aggregate to compute per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Count non-empty cells.
    Count,
    /// Sum the attribute.
    Sum,
    /// Average the attribute.
    Avg,
    /// Maximum of the attribute.
    Max,
}

/// How to map cells to groups: keep `dims`, dividing each kept dimension's
/// cell coordinate by the matching `coarsen` factor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Dimension indices retained in the group key.
    pub dims: Vec<usize>,
    /// Per-retained-dimension coarsening divisor (≥ 1).
    pub coarsen: Vec<i64>,
}

impl GroupSpec {
    /// Keep `dims` at full resolution.
    pub fn by_dims(dims: Vec<usize>) -> Self {
        let coarsen = vec![1; dims.len()];
        GroupSpec { dims, coarsen }
    }

    /// Keep `dims`, coarsened by the paired factors.
    pub fn coarsened(dims: Vec<usize>, coarsen: Vec<i64>) -> Self {
        assert_eq!(dims.len(), coarsen.len());
        assert!(coarsen.iter().all(|&c| c >= 1));
        GroupSpec { dims, coarsen }
    }

    fn key_of_cell(&self, cell: &[i64]) -> Vec<i64> {
        self.dims.iter().zip(&self.coarsen).map(|(&d, &c)| cell[d].div_euclid(c)).collect()
    }
}

/// One output group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRow {
    /// The (possibly coarsened) retained-dimension coordinates.
    pub key: Vec<i64>,
    /// Aggregate value (`count` as f64 for `AggFn::Count`).
    pub value: f64,
    /// Cells that contributed.
    pub cells: u64,
}

/// Group-by aggregate of `attr` over `region` under `spec`.
///
/// Plain aggregation; see [`rolling_aggregate`] for window-over-a-dimension
/// semantics (the MODIS rolling average).
pub fn grid_aggregate(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: Option<&Region>,
    attr: &str,
    spec: &GroupSpec,
    agg: AggFn,
) -> Result<(Vec<GroupRow>, QueryStats)> {
    grid_aggregate_impl(ctx, array_id, region, attr, spec, agg, None)
}

/// Group-by aggregate whose value at each position is a *rolling* window
/// along `rolling_dim` (e.g. "average of the last several days"): every
/// chunk needs its predecessor along that dimension, so placements that
/// co-locate the dimension's columns (the n-dimensionally clustered
/// schemes with the rolling dimension outside their split plane) answer
/// locally, while scattered placements pay a latency-bearing fetch per
/// chunk.
pub fn rolling_aggregate(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: Option<&Region>,
    attr: &str,
    spec: &GroupSpec,
    agg: AggFn,
    rolling_dim: usize,
) -> Result<(Vec<GroupRow>, QueryStats)> {
    grid_aggregate_impl(ctx, array_id, region, attr, spec, agg, Some(rolling_dim))
}

#[allow(clippy::too_many_arguments)]
fn grid_aggregate_impl(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: Option<&Region>,
    attr: &str,
    spec: &GroupSpec,
    agg: AggFn,
    rolling_dim: Option<usize>,
) -> Result<(Vec<GroupRow>, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    for &d in &spec.dims {
        if d >= array.schema.ndims() {
            return Err(QueryError::InvalidArgument(format!("group dimension {d} out of range")));
        }
    }
    // The rolling dimension indexes the fixed-size chunk coordinate repr,
    // which is in-bounds for any dim < MAX_DIMS — an unvalidated value
    // used to silently corrupt the predecessor lookup (and with it the
    // cost model) instead of erroring like `spec.dims` above.
    if let Some(rd) = rolling_dim {
        if rd >= array.schema.ndims() {
            return Err(QueryError::InvalidArgument(format!(
                "rolling dimension {rd} out of range"
            )));
        }
    }
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    require_numeric(attr, array.schema.attributes[attr_idx].ty, "numeric")?;
    let mut tracker = WorkTracker::new(ctx.cost());

    // --- cost: local partial aggregation, then exchange per group ---
    // Bin chunks by their *chunk-level* group key (the group key of the
    // chunk's low corner, coarsened in chunk units) to find how many nodes
    // contribute to each group region.
    let mut group_nodes: BTreeMap<Vec<i64>, BTreeMap<NodeId, u64>> = BTreeMap::new();
    let plan = ctx.plan_scan(array_id, region, None)?;
    tracker.prune_chunks(plan.pruned);
    let homes: BTreeMap<&array_model::ChunkCoords, (u64, NodeId)> =
        plan.visit.iter().map(|(d, n, _)| (&d.key.coords, (d.bytes, *n))).collect();
    for (desc, node, _) in &plan.visit {
        let (desc, node) = (desc, *node);
        let scan_bytes = scaled_bytes(desc.bytes, fraction);
        tracker.scan_chunk(node, scan_bytes);
        // Rolling windows pull the predecessor chunk along the rolling
        // dimension; co-located columns answer from local disk.
        if let Some(rd) = rolling_dim {
            let mut prev = desc.key.coords;
            prev[rd] -= 1;
            if let Some(&(pbytes, pnode)) = homes.get(&prev) {
                tracker.remote_fetch(node, pnode, scaled_bytes(pbytes, fraction));
            }
        }
        let chunk_group: Vec<i64> = spec
            .dims
            .iter()
            .zip(&spec.coarsen)
            .map(|(&d, &c)| {
                let (cell_lo, _) = array.schema.dimensions[d].chunk_range(desc.key.coords.index(d));
                cell_lo.div_euclid(c * array.schema.dimensions[d].chunk_interval.max(1))
            })
            .collect();
        *group_nodes.entry(chunk_group).or_default().entry(node).or_default() += scan_bytes;
    }
    // Exchange: every non-owner contributor ships its partial state
    // (aggregation compresses the scanned bytes heavily) to the group
    // owner — the contributor with the most bytes.
    const STATE_FRACTION: f64 = 0.25;
    for contributors in group_nodes.values() {
        if contributors.len() <= 1 {
            continue;
        }
        let owner = *contributors
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0 .0.cmp(&a.0 .0)))
            .expect("non-empty")
            .0;
        for (&node, &bytes) in contributors {
            if node != owner {
                tracker.shuffle(node, owner, scaled_bytes(bytes, STATE_FRACTION));
            }
        }
    }

    // --- materialized answer ---
    let mut groups: BTreeMap<Vec<i64>, (f64, u64, f64)> = BTreeMap::new(); // (sum, count, max)
    if plan.exact {
        let nd = array.schema.ndims();
        for (_, _, payload) in &plan.visit {
            let Some(chunk) = payload else { continue };
            let mut mask = SelectionMask::live(chunk);
            if let Some(r) = region {
                mask.retain_region(chunk, r);
            }
            // The attribute was type-checked up front, so every row folds
            // a real measurement — never the historical `unwrap_or(0.0)`.
            let col = NumericSlice::of(chunk, attr_idx).expect("type-checked numeric column");
            let flat = chunk.coords_flat();
            mask.for_each(|row| {
                let v = col.get(row);
                let cell = &flat[row * nd..(row + 1) * nd];
                let entry = groups.entry(spec.key_of_cell(cell)).or_insert((0.0, 0, f64::MIN));
                entry.0 += v;
                entry.1 += 1;
                entry.2 = entry.2.max(v);
            });
        }
    }
    let rows = groups
        .into_iter()
        .map(|(key, (sum, count, max))| {
            let value = match agg {
                AggFn::Count => count as f64,
                AggFn::Sum => sum,
                AggFn::Avg => {
                    if count > 0 {
                        sum / count as f64
                    } else {
                        0.0
                    }
                }
                AggFn::Max => max,
            };
            GroupRow { key, value, cells: count }
        })
        .collect();
    Ok((rows, tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema, ScalarValue};
    use cluster_sim::{Cluster, CostModel};

    /// 3-D (t, x, y) array, 2 time steps; placement controlled by caller.
    fn setup(place: impl Fn(usize) -> NodeId) -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("S<v:double>[t=0:1,1, x=0:3,2, y=0:3,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for t in 0..2 {
            for x in 0..4 {
                for y in 0..4 {
                    a.insert_cell(
                        vec![t, x, y],
                        vec![ScalarValue::Double((t * 100 + x * 10 + y) as f64)],
                    )
                    .unwrap();
                }
            }
        }
        let stored = StoredArray::from_array(a);
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, place(i)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn rolling_average_over_time_matches_naive() {
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        // Group by (x, y), averaging across time: value = avg(t*100) + x*10 + y = 50 + ...
        let spec = GroupSpec::by_dims(vec![1, 2]);
        let (rows, _) = grid_aggregate(&ctx, ArrayId(0), None, "v", &spec, AggFn::Avg).unwrap();
        assert_eq!(rows.len(), 16);
        for row in &rows {
            let expect = 50.0 + (row.key[0] * 10 + row.key[1]) as f64;
            assert!((row.value - expect).abs() < 1e-9, "{row:?}");
            assert_eq!(row.cells, 2);
        }
    }

    #[test]
    fn coarsened_count_map() {
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        // Coarse 2x2 map over (x, y): 4 groups of 2*4=8 cells.
        let spec = GroupSpec::coarsened(vec![1, 2], vec![2, 2]);
        let (rows, _) = grid_aggregate(&ctx, ArrayId(0), None, "v", &spec, AggFn::Count).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.cells, 8);
            assert_eq!(row.value, 8.0);
        }
    }

    #[test]
    fn clustering_avoids_the_exchange() {
        // Time-colocated placement: both time chunks of each (x,y) block on
        // one node -> grouping by (x,y) needs no shuffle. Chunk order is
        // (t,x,y) row-major: 8 chunks, (0,a,b) at i and (1,a,b) at i+4.
        let clustered = setup(|i| NodeId((i % 4) as u32)); // i and i+4 -> same node
        let scattered = setup(|i| NodeId((i % 2 + 2 * (i / 4)) as u32)); // t splits nodes
        let spec = GroupSpec::by_dims(vec![1, 2]);
        let (_, s1) = grid_aggregate(
            &ExecutionContext::new(&clustered.0, &clustered.1),
            ArrayId(0),
            None,
            "v",
            &spec,
            AggFn::Avg,
        )
        .unwrap();
        let (_, s2) = grid_aggregate(
            &ExecutionContext::new(&scattered.0, &scattered.1),
            ArrayId(0),
            None,
            "v",
            &spec,
            AggFn::Avg,
        )
        .unwrap();
        assert_eq!(s1.bytes_shuffled, 0, "clustered grouping is exchange-free");
        assert!(s2.bytes_shuffled > 0, "scattered grouping must exchange partials");
    }

    #[test]
    fn sum_and_max_aggregate_functions() {
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let spec = GroupSpec::by_dims(vec![0]); // group by time
        let (sums, _) = grid_aggregate(&ctx, ArrayId(0), None, "v", &spec, AggFn::Sum).unwrap();
        // t=0: sum over x,y of (10x + y), 4x4 grid = 16 cells
        let t0: f64 = (0..4).flat_map(|x| (0..4).map(move |y| (x * 10 + y) as f64)).sum();
        assert!((sums[0].value - t0).abs() < 1e-9);
        let (maxs, _) = grid_aggregate(&ctx, ArrayId(0), None, "v", &spec, AggFn::Max).unwrap();
        assert_eq!(maxs[1].value, 133.0);
    }

    #[test]
    fn bad_group_dimension_is_rejected() {
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let spec = GroupSpec::by_dims(vec![9]);
        assert!(matches!(
            grid_aggregate(&ctx, ArrayId(0), None, "v", &spec, AggFn::Avg),
            Err(QueryError::InvalidArgument(_))
        ));
    }

    #[test]
    fn bad_rolling_dimension_is_rejected() {
        // Used to index the fixed-size coord repr in-bounds and silently
        // skew the cost model; now it errors like a bad group dimension.
        let (cluster, cat) = setup(|i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let spec = GroupSpec::by_dims(vec![1, 2]);
        assert!(matches!(
            rolling_aggregate(&ctx, ArrayId(0), None, "v", &spec, AggFn::Avg, 7),
            Err(QueryError::InvalidArgument(_))
        ));
    }

    #[test]
    fn aggregating_a_string_attribute_is_a_typed_error() {
        // Used to fold `unwrap_or(0.0)` and answer 0 for every group.
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("T<name:string>[x=0:3,2]").unwrap();
        let mut a = Array::new(ArrayId(3), schema);
        a.insert_cell(vec![0], vec![ScalarValue::Str("a".into())]).unwrap();
        let stored = StoredArray::from_array(a);
        for d in stored.descriptors.values() {
            cluster.place(*d, NodeId(0)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let spec = GroupSpec::by_dims(vec![0]);
        let err = grid_aggregate(&ctx, ArrayId(3), None, "name", &spec, AggFn::Sum).unwrap_err();
        assert!(matches!(err, QueryError::AttributeType { .. }), "{err}");
    }
}
