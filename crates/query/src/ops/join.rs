//! Join operators (paper §3.3.1).
//!
//! * [`positional_join`] — the MODIS vegetation-index join: two arrays
//!   joined where both have a cell at the same position. Chunk pairs that
//!   are **co-located** join locally; otherwise the smaller chunk ships to
//!   its partner's node. Placement schemes that co-locate equal chunk
//!   coordinates (the range partitioners and SciDB-style coordinate
//!   hashing) pay nothing here; Append's concentration of the newest day
//!   on one or two hosts serializes the probe work.
//! * [`lookup_join`] — the AIS Broadcast ⋈ Vessel join: the build side is
//!   a small array replicated on every node, so the join is embarrassingly
//!   parallel over the probe side.

use crate::error::Result;
use crate::exec::ExecutionContext;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{ArrayId, Region};
use std::collections::BTreeMap;

/// Outcome of a join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinResult {
    /// Matched cell pairs (or probe matches).
    pub matches: u64,
    /// Sum of the combiner over all matches (e.g. ΣNDVI); `0` when
    /// metadata-only.
    pub combined_sum: f64,
}

/// Join `left` and `right` where both arrays store a cell at the same
/// position inside `region`. `combine(left_values, right_values)` folds a
/// matched pair into a number (e.g. NDVI from two radiances); attribute
/// indices are resolved by the caller through the schemas.
pub fn positional_join(
    ctx: &ExecutionContext<'_>,
    left: ArrayId,
    right: ArrayId,
    region: &Region,
    left_attr: &str,
    right_attr: &str,
    combine: impl Fn(f64, f64) -> f64,
) -> Result<(JoinResult, QueryStats)> {
    let la = ctx.catalog.array(left)?;
    let ra = ctx.catalog.array(right)?;
    let lfrac = ctx.attr_fraction(la, &[left_attr])?;
    let rfrac = ctx.attr_fraction(ra, &[right_attr])?;
    let lidx = la.attribute_index(left_attr)?;
    let ridx = ra.attribute_index(right_attr)?;
    let mut tracker = WorkTracker::new(ctx.cost());

    // Pair up chunks by position.
    let left_chunks: BTreeMap<_, _> = ctx
        .chunks_in(left, Some(region))?
        .into_iter()
        .map(|(d, n)| (d.key.coords, (d, n)))
        .collect();
    for (rdesc, rnode) in ctx.chunks_in(right, Some(region))? {
        let Some((ldesc, lnode)) = left_chunks.get(&rdesc.key.coords) else {
            continue; // no partner -> no output, and pruned by metadata
        };
        let lbytes = scaled_bytes(ldesc.bytes, lfrac);
        let rbytes = scaled_bytes(rdesc.bytes, rfrac);
        // Both sides are scanned where they live.
        tracker.scan_chunk(*lnode, lbytes);
        tracker.scan_chunk(rnode, rbytes);
        if lnode != &rnode {
            // Ship the smaller side to the larger side's node.
            if lbytes <= rbytes {
                tracker.shuffle(*lnode, rnode, lbytes);
            } else {
                tracker.shuffle(rnode, *lnode, rbytes);
            }
        }
    }

    // Materialized answer.
    let mut result = JoinResult::default();
    if ctx.cells_available(la) && ctx.cells_available(ra) {
        for (coords, lchunk) in ctx.payload_chunks(la, Some(region)) {
            let Some(rchunk) = ctx.chunk_payload(ra, coords) else { continue };
            // Index the right chunk's cells by coordinates.
            let mut right_cells: BTreeMap<&[i64], usize> = BTreeMap::new();
            for (cell, row) in rchunk.iter_cells() {
                right_cells.insert(cell, row);
            }
            let lcol = lchunk.column(lidx).expect("schema-shaped chunk");
            let rcol = rchunk.column(ridx).expect("schema-shaped chunk");
            for (cell, lrow) in lchunk.iter_cells() {
                if !region.contains_cell(cell) {
                    continue;
                }
                if let Some(&rrow) = right_cells.get(cell) {
                    if let (Some(lv), Some(rv)) = (lcol.get_f64(lrow), rcol.get_f64(rrow)) {
                        result.matches += 1;
                        result.combined_sum += combine(lv, rv);
                    }
                }
            }
        }
    }
    Ok((result, tracker.finish()))
}

/// Probe-side join against a replicated build array keyed on an integer
/// attribute: every probe chunk joins locally against the local replica.
pub fn lookup_join(
    ctx: &ExecutionContext<'_>,
    probe: ArrayId,
    build: ArrayId,
    region: Option<&Region>,
    probe_key: &str,
    build_key: &str,
) -> Result<(JoinResult, QueryStats)> {
    let pa = ctx.catalog.array(probe)?;
    let ba = ctx.catalog.array(build)?;
    let pfrac = ctx.attr_fraction(pa, &[probe_key])?;
    let pidx = pa.attribute_index(probe_key)?;
    let bidx = ba.attribute_index(build_key)?;
    let mut tracker = WorkTracker::new(ctx.cost());

    let build_bytes = ba.byte_size();
    let mut nodes_seen = std::collections::BTreeSet::new();
    for (desc, node) in ctx.chunks_in(probe, region)? {
        tracker.scan_chunk(node, scaled_bytes(desc.bytes, pfrac));
        // Each participating node reads its local replica of the build
        // side once.
        if nodes_seen.insert(node) {
            tracker.scan_chunk(node, build_bytes);
        }
    }

    // Materialized answer: hash the build side once, probe all cells.
    let mut result = JoinResult::default();
    if ctx.cells_available(pa) && ctx.cells_available(ba) {
        let mut build_keys: BTreeMap<i64, u64> = BTreeMap::new();
        for (_, chunk) in ctx.payload_chunks(ba, None) {
            let col = chunk.column(bidx).expect("schema-shaped chunk");
            for (_, row) in chunk.iter_cells() {
                if let Some(k) = col.get(row).and_then(|v| v.as_i64()) {
                    *build_keys.entry(k).or_default() += 1;
                }
            }
        }
        for (_, chunk) in ctx.payload_chunks(pa, region) {
            let col = chunk.column(pidx).expect("schema-shaped chunk");
            for (cell, row) in chunk.iter_cells() {
                if region.is_none_or(|r| r.contains_cell(cell)) {
                    if let Some(k) = col.get(row).and_then(|v| v.as_i64()) {
                        if let Some(&mult) = build_keys.get(&k) {
                            result.matches += mult;
                        }
                    }
                }
            }
        }
    }
    Ok((result, tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema, ChunkCoords, ScalarValue};
    use cluster_sim::{Cluster, CostModel, NodeId};

    /// Two 8x8 single-attribute arrays; `colocated` controls whether equal
    /// chunk coords share a node.
    fn setup(colocated: bool) -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let mut cat = Catalog::new();
        for (id, base) in [(0u32, 1.0f64), (1u32, 2.0f64)] {
            let schema = ArraySchema::parse("B<r:double>[x=0:7,2, y=0:7,2]").unwrap();
            let mut a = Array::new(ArrayId(id), schema);
            for x in 0..8 {
                for y in 0..8 {
                    // band2 cells exist only on even x so some positions miss
                    if id == 1 && x % 2 == 1 {
                        continue;
                    }
                    a.insert_cell(vec![x, y], vec![ScalarValue::Double(base + (x + y) as f64)])
                        .unwrap();
                }
            }
            let stored = StoredArray::from_array(a);
            for (i, d) in stored.descriptors.values().enumerate() {
                let node = if colocated {
                    NodeId((i % 4) as u32)
                } else {
                    NodeId(((i + id as usize) % 4) as u32)
                };
                cluster.place(*d, node).unwrap();
            }
            cat.register(stored);
        }
        (cluster, cat)
    }

    #[test]
    fn join_matches_only_shared_positions() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![7, 7]);
        let (result, _) =
            positional_join(&ctx, ArrayId(0), ArrayId(1), &region, "r", "r", |a, b| b - a).unwrap();
        // band2 has cells only on even x: 4 * 8 = 32 matches, each b-a = 1.
        assert_eq!(result.matches, 32);
        assert!((result.combined_sum - 32.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_join_ships_nothing() {
        let region = Region::new(vec![0, 0], vec![7, 7]);
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let (_, stats) =
            positional_join(&ctx, ArrayId(0), ArrayId(1), &region, "r", "r", |a, b| b - a).unwrap();
        assert_eq!(stats.bytes_shuffled, 0);

        let (cluster2, cat2) = setup(false);
        let ctx2 = ExecutionContext::new(&cluster2, &cat2);
        let (_, stats2) =
            positional_join(&ctx2, ArrayId(0), ArrayId(1), &region, "r", "r", |a, b| b - a)
                .unwrap();
        assert!(stats2.bytes_shuffled > 0, "misaligned placement must shuffle");
        assert!(stats2.elapsed_secs > stats.elapsed_secs);
    }

    #[test]
    fn lookup_join_counts_multiplicity() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let mut cat = Catalog::new();
        // Probe: 4 cells with keys 1,1,2,3
        let pschema = ArraySchema::parse("P<k:int64>[x=0:3,2]").unwrap();
        let mut probe = Array::new(ArrayId(0), pschema);
        for (x, k) in [(0i64, 1i64), (1, 1), (2, 2), (3, 3)] {
            probe.insert_cell(vec![x], vec![ScalarValue::Int64(k)]).unwrap();
        }
        let stored = StoredArray::from_array(probe);
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, NodeId((i % 2) as u32)).unwrap();
        }
        cat.register(stored);
        // Build (replicated): keys 1,2,2 -> key 2 has multiplicity 2.
        let bschema = ArraySchema::parse("V<id:int64>[vid=0:2,3]").unwrap();
        let mut build = Array::new(ArrayId(1), bschema);
        for (v, id) in [(0i64, 1i64), (1, 2), (2, 2)] {
            build.insert_cell(vec![v], vec![ScalarValue::Int64(id)]).unwrap();
        }
        cat.register(StoredArray::from_array(build).replicated());

        let ctx = ExecutionContext::new(&cluster, &cat);
        let (result, stats) = lookup_join(&ctx, ArrayId(0), ArrayId(1), None, "k", "id").unwrap();
        // probes: 1->1, 1->1, 2->2 (multiplicity 2), 3->0 = 1+1+2 = 4
        assert_eq!(result.matches, 4);
        assert_eq!(stats.bytes_shuffled, 0, "replicated build side never ships");
    }

    #[test]
    fn missing_partner_chunks_are_pruned() {
        let (mut cluster, mut cat) = setup(true);
        // An array whose only chunk position (4,4) has no partner in
        // array 0 (which spans chunk positions (0..4, 0..4)).
        let schema = ArraySchema::parse("C<r:double>[x=0:9,2, y=0:9,2]").unwrap();
        let mut extra = Array::new(ArrayId(2), schema);
        extra.insert_cell(vec![9, 9], vec![ScalarValue::Double(1.0)]).unwrap();
        let stored = StoredArray::from_array(extra);
        for d in stored.descriptors.values() {
            cluster.place(*d, NodeId(0)).unwrap();
        }
        assert_eq!(stored.descriptors.keys().next(), Some(&ChunkCoords::new([4, 4])));
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![8, 8], vec![9, 9]);
        let (result, stats) =
            positional_join(&ctx, ArrayId(0), ArrayId(2), &region, "r", "r", |a, _| a).unwrap();
        // Array 0 has no chunk at (4,4): metadata pruning skips the scan
        // entirely and the join is empty.
        assert_eq!(result.matches, 0);
        assert_eq!(stats.chunks_visited, 0);
        assert_eq!(stats.bytes_scanned, 0);
    }
}
