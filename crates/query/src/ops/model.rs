//! Modeling operators (paper §3.3.2): k-means clustering, k-nearest
//! neighbours, and trajectory projection (collision prediction).
//!
//! These are the queries most sensitive to spatial arrangement:
//!
//! * k-means sweeps the whole region every iteration — balance wins;
//! * kNN explores chunks around each query point — every candidate chunk
//!   on a different node costs a latency-bearing remote hop, so clustered
//!   placements halve the latency (the paper's Figure 7);
//! * trajectory projection hands ships off across chunk boundaries, a
//!   halo-like exchange.

use crate::error::{QueryError, Result};
use crate::exec::ExecutionContext;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{chunk_of, ArrayId, ChunkCoords, Region};
use cluster_sim::gb;
use std::collections::BTreeMap;

/// k-means output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KMeansResult {
    /// Final centroids in feature space `(dims..., attr)`, scaled to cell
    /// coordinates. Empty when metadata-only.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Cells clustered.
    pub points: u64,
}

/// Lloyd's k-means over the cells of `region`, using the cell coordinates
/// plus `attr` as the feature vector.
pub fn kmeans(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    attr: &str,
    k: usize,
    iterations: usize,
) -> Result<(KMeansResult, QueryStats)> {
    if k == 0 {
        return Err(QueryError::InvalidArgument("k must be positive".into()));
    }
    let array = ctx.catalog.array(array_id)?;
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    let mut tracker = WorkTracker::new(ctx.cost());

    // Cost: the first iteration reads the region from disk; the working
    // set then stays buffer-pool resident, so further iterations are pure
    // CPU. Every round ends with a small centroid exchange.
    let chunks = ctx.chunks_in(array_id, Some(region))?;
    let coordinator = ctx.cluster.coordinator();
    for iter in 0..iterations.max(1) {
        for (desc, node) in &chunks {
            let bytes = scaled_bytes(desc.bytes, fraction);
            if iter == 0 {
                tracker.scan_chunk(*node, bytes);
            } else {
                tracker.compute(*node, ctx.cost().cpu_secs(bytes));
            }
        }
        for (_, node) in &chunks {
            tracker.shuffle(*node, coordinator, (k * (array.schema.ndims() + 1) * 8) as u64);
        }
    }

    // Materialized answer: standard Lloyd iterations.
    let mut result = KMeansResult::default();
    if ctx.cells_available(array) {
        let mut points: Vec<Vec<f64>> = Vec::new();
        for (_, chunk) in ctx.payload_chunks(array, Some(region)) {
            let col = chunk.column(attr_idx).expect("schema-shaped chunk");
            for (cell, row) in chunk.iter_cells() {
                if region.contains_cell(cell) {
                    let mut p: Vec<f64> = cell.iter().map(|&c| c as f64).collect();
                    p.push(col.get_f64(row).unwrap_or(0.0));
                    points.push(p);
                }
            }
        }
        result.points = points.len() as u64;
        if !points.is_empty() {
            let dims = points[0].len();
            let k = k.min(points.len());
            // Deterministic init: evenly strided points.
            let mut centroids: Vec<Vec<f64>> =
                (0..k).map(|i| points[i * points.len() / k].clone()).collect();
            let mut assign = vec![0usize; points.len()];
            for _ in 0..iterations.max(1) {
                for (pi, p) in points.iter().enumerate() {
                    let mut best = (f64::MAX, 0usize);
                    for (ci, c) in centroids.iter().enumerate() {
                        let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                        if d < best.0 {
                            best = (d, ci);
                        }
                    }
                    assign[pi] = best.1;
                }
                let mut sums = vec![vec![0.0; dims]; k];
                let mut counts = vec![0u64; k];
                for (pi, p) in points.iter().enumerate() {
                    counts[assign[pi]] += 1;
                    for (d, v) in p.iter().enumerate() {
                        sums[assign[pi]][d] += v;
                    }
                }
                for ci in 0..k {
                    if counts[ci] > 0 {
                        for d in 0..dims {
                            centroids[ci][d] = sums[ci][d] / counts[ci] as f64;
                        }
                    }
                }
            }
            result.inertia = points
                .iter()
                .zip(&assign)
                .map(|(p, &ci)| {
                    p.iter().zip(&centroids[ci]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                })
                .sum();
            result.centroids = centroids;
        }
    }
    Ok((result, tracker.finish()))
}

/// One kNN answer.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnAnswer {
    /// The query point.
    pub query: Vec<i64>,
    /// Squared Euclidean distances of the k nearest stored cells
    /// (ascending). Empty when metadata-only.
    pub neighbor_dist2: Vec<f64>,
}

/// k-nearest-neighbour search for each query point, by expanding-ring
/// exploration of the chunk grid.
pub fn knn(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    queries: &[Vec<i64>],
    k: usize,
) -> Result<(Vec<KnnAnswer>, QueryStats)> {
    if k == 0 {
        return Err(QueryError::InvalidArgument("k must be positive".into()));
    }
    let array = ctx.catalog.array(array_id)?;
    // Positions only: vertical partitioning means kNN reads no measure columns.
    let fraction = ctx.attr_fraction(array, &[])?;
    let mut tracker = WorkTracker::new(ctx.cost());
    let mut answers = Vec::with_capacity(queries.len());

    const MAX_RING: i64 = 3;
    const OVERSAMPLE: u64 = 3;
    // Buffer-pool semantics: once a node has read (or fetched) a chunk, a
    // later query running on the same node probes it from memory. Port-
    // concentrated query batches hit the same chunks over and over, which
    // is exactly where clustered placements save their latency.
    let mut warm: std::collections::HashSet<(cluster_sim::NodeId, ChunkCoords)> =
        std::collections::HashSet::new();
    // The O(chunks) materialization gate is invariant across the batch;
    // evaluate it once, not per query.
    let cells_available = ctx.cells_available(array);
    for q in queries {
        if q.len() != array.schema.ndims() {
            return Err(QueryError::RegionArity { expected: array.schema.ndims(), got: q.len() });
        }
        let home = chunk_of(&array.schema, q)
            .map_err(|e| QueryError::InvalidArgument(format!("query point out of bounds: {e}")))?;
        // The query executes on the node holding the home chunk (or the
        // coordinator if that position is empty).
        let home_node =
            ctx.cluster.locate(&array.key_for(&home)).unwrap_or_else(|| ctx.cluster.coordinator());

        let mut cells_found = 0u64;
        let mut visited: Vec<ChunkCoords> = Vec::new();
        'rings: for r in 0..=MAX_RING {
            let ring = chunks_at_ring(&home, r);
            let mut any = false;
            for coords in ring {
                if let Some(desc) = array.descriptors.get(&coords) {
                    let holder = ctx.cluster.locate(&desc.key).unwrap_or(home_node);
                    let bytes = scaled_bytes(desc.bytes, fraction);
                    if warm.insert((home_node, coords)) {
                        tracker.remote_fetch(home_node, holder, bytes);
                    } else {
                        // In-memory spatial-index probe of an already-warm
                        // chunk: touches a small fraction of its pages.
                        tracker.compute(home_node, ctx.cost().cpu_secs(bytes / 50) + 0.001);
                    }
                    cells_found += desc.cells;
                    visited.push(coords);
                    any = true;
                }
            }
            // Stop once we have enough candidates and looked at least one
            // ring beyond the first hit (so the true neighbours cannot
            // hide in an unvisited adjacent chunk).
            if cells_found >= k as u64 * OVERSAMPLE && r >= 1 {
                break 'rings;
            }
            let _ = any;
        }

        // Materialized answer: distances within the visited chunks.
        let mut dists: Vec<f64> = Vec::new();
        if cells_available {
            for coords in &visited {
                if let Some(chunk) = ctx.chunk_payload(array, coords) {
                    for (cell, _) in chunk.iter_cells() {
                        let d2: f64 = cell
                            .iter()
                            .zip(q)
                            .map(|(a, b)| (*a - *b) as f64 * (*a - *b) as f64)
                            .sum();
                        dists.push(d2);
                    }
                }
            }
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            dists.truncate(k);
        }
        answers.push(KnnAnswer { query: q.clone(), neighbor_dist2: dists });
    }
    Ok((answers, tracker.finish()))
}

/// Chunk coordinates at exactly Chebyshev distance `r` from `home`,
/// clipped to non-negative indices.
#[allow(clippy::needless_range_loop)] // odometer indexes two arrays in lockstep
fn chunks_at_ring(home: &ChunkCoords, r: i64) -> Vec<ChunkCoords> {
    if r == 0 {
        return vec![*home];
    }
    let n = home.ndims();
    let mut out = Vec::new();
    let mut offsets = vec![-r; n];
    'outer: loop {
        if offsets.iter().any(|&o| o.abs() == r) {
            let mut cand = Vec::with_capacity(n);
            let mut ok = true;
            for d in 0..n {
                let idx = home[d] + offsets[d];
                if idx < 0 {
                    ok = false;
                    break;
                }
                cand.push(idx);
            }
            if ok {
                out.push(ChunkCoords::new(cand));
            }
        }
        let mut d = 0;
        loop {
            if d == n {
                break 'outer;
            }
            offsets[d] += 1;
            if offsets[d] <= r {
                break;
            }
            offsets[d] = -r;
            d += 1;
        }
    }
    out
}

/// Trajectory projection output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrajectoryResult {
    /// Ships projected.
    pub projected: u64,
    /// Pairs of ships whose projected positions land in the same cell —
    /// collision candidates. Zero when metadata-only.
    pub collision_candidates: u64,
}

/// Project each cell's object forward: its new position shifts by
/// `(speed * horizon)` along the heading derived from `course_attr`
/// (degrees, 2-D plane = the last two dimensions). Cost: scan plus a
/// cross-node handoff for every chunk-boundary crossing.
pub fn trajectory(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    speed_attr: &str,
    course_attr: &str,
    horizon: f64,
) -> Result<(TrajectoryResult, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let ndims = array.schema.ndims();
    if ndims < 2 {
        return Err(QueryError::InvalidArgument("trajectory needs a 2-D plane".into()));
    }
    let (dx, dy) = (ndims - 2, ndims - 1);
    let fraction = ctx.attr_fraction(array, &[speed_attr, course_attr])?;
    let sp_idx = array.attribute_index(speed_attr)?;
    let co_idx = array.attribute_index(course_attr)?;
    let mut tracker = WorkTracker::new(ctx.cost());

    let chunks = ctx.chunks_in(array_id, Some(region))?;
    let homes: BTreeMap<&ChunkCoords, _> =
        chunks.iter().map(|(d, n)| (&d.key.coords, *n)).collect();
    for (desc, node) in &chunks {
        tracker.scan_chunk(*node, scaled_bytes(desc.bytes, fraction));
        // Handoff: projected objects that exit the chunk go to the planar
        // face neighbours; remote neighbours cost a latency-bearing push of
        // a small manifest.
        for dim in [dx, dy] {
            for delta in [-1i64, 1] {
                let mut ncoords = desc.key.coords;
                ncoords[dim] += delta;
                if let Some(&nnode) = homes.get(&ncoords) {
                    if nnode != *node {
                        tracker.remote_fetch(*node, nnode, desc.bytes / 50);
                    }
                }
            }
        }
    }
    // Collision matching is a cheap local pass over projected manifests.
    tracker.coordinator(
        gb(chunks.iter().map(|(d, _)| d.bytes / 50).sum::<u64>()) * ctx.cost().cpu_secs_per_gb,
    );

    // Materialized answer.
    let mut result = TrajectoryResult::default();
    if ctx.cells_available(array) {
        let mut landing: BTreeMap<Vec<i64>, u64> = BTreeMap::new();
        for (_, chunk) in ctx.payload_chunks(array, Some(region)) {
            let speeds = chunk.column(sp_idx).expect("schema-shaped chunk");
            let courses = chunk.column(co_idx).expect("schema-shaped chunk");
            for (cell, row) in chunk.iter_cells() {
                if !region.contains_cell(cell) {
                    continue;
                }
                let speed = speeds.get_f64(row).unwrap_or(0.0);
                let course = courses.get_f64(row).unwrap_or(0.0).to_radians();
                let mut dest = cell.to_vec();
                dest[dx] += (speed * horizon * course.cos()).round() as i64;
                dest[dy] += (speed * horizon * course.sin()).round() as i64;
                result.projected += 1;
                *landing.entry(dest).or_default() += 1;
            }
        }
        result.collision_candidates =
            landing.values().map(|&c| if c >= 2 { c * (c - 1) / 2 } else { 0 }).sum();
    }
    Ok((result, tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema, ScalarValue};
    use cluster_sim::{Cluster, CostModel, NodeId};

    fn two_cluster_array() -> Array {
        // Two tight blobs of cells: one near (2,2), one near (13,13).
        // Chunk interval 2 so each blob spans a 2x2 block of chunks and
        // kNN ring searches cross chunk (and potentially node) boundaries.
        let schema = ArraySchema::parse("P<v:double>[x=0:15,2, y=0:15,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for (cx, cy) in [(2i64, 2i64), (13, 13)] {
            for dx in -1..=1 {
                for dy in -1..=1 {
                    a.insert_cell(vec![cx + dx, cy + dy], vec![ScalarValue::Double(0.0)]).unwrap();
                }
            }
        }
        a
    }

    fn setup(array: Array, place: impl Fn(usize) -> NodeId) -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let stored = StoredArray::from_array(array);
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, place(i)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn kmeans_finds_the_two_blobs() {
        let (cluster, cat) = setup(two_cluster_array(), |i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![15, 15]);
        let (result, stats) = kmeans(&ctx, ArrayId(0), &region, "v", 2, 10).unwrap();
        assert_eq!(result.points, 18);
        assert_eq!(result.centroids.len(), 2);
        let mut xs: Vec<f64> = result.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 2.0).abs() < 0.75, "blob 1 centroid x={}", xs[0]);
        assert!((xs[1] - 13.0).abs() < 0.75, "blob 2 centroid x={}", xs[1]);
        assert!(result.inertia < 40.0);
        assert!(stats.elapsed_secs > 0.0);
    }

    #[test]
    fn kmeans_rejects_k_zero() {
        let (cluster, cat) = setup(two_cluster_array(), |_| NodeId(0));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![15, 15]);
        assert!(kmeans(&ctx, ArrayId(0), &region, "v", 0, 5).is_err());
    }

    #[test]
    fn knn_returns_true_nearest_distances() {
        let (cluster, cat) = setup(two_cluster_array(), |i| NodeId((i % 4) as u32));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let (answers, _) = knn(&ctx, ArrayId(0), &[vec![2, 2]], 3).unwrap();
        assert_eq!(answers.len(), 1);
        // Nearest to (2,2): itself (0), then 4 side neighbours (1,1,...)
        assert_eq!(answers[0].neighbor_dist2.len(), 3);
        assert_eq!(answers[0].neighbor_dist2[0], 0.0);
        assert_eq!(answers[0].neighbor_dist2[1], 1.0);
        assert_eq!(answers[0].neighbor_dist2[2], 1.0);
    }

    #[test]
    fn knn_clustered_placement_avoids_remote_hops() {
        // All chunks on one node vs scattered: the scattered run must pay
        // remote fetches.
        let local = setup(two_cluster_array(), |_| NodeId(0));
        let scattered = setup(two_cluster_array(), |i| NodeId((i % 4) as u32));
        let queries = vec![vec![2i64, 2], vec![13, 13]];
        let (_, s_local) =
            knn(&ExecutionContext::new(&local.0, &local.1), ArrayId(0), &queries, 3).unwrap();
        let (_, s_scat) =
            knn(&ExecutionContext::new(&scattered.0, &scattered.1), ArrayId(0), &queries, 3)
                .unwrap();
        assert_eq!(s_local.remote_fetches, 0);
        assert!(s_scat.remote_fetches > 0);
        assert!(s_scat.elapsed_secs > s_local.elapsed_secs);
    }

    #[test]
    fn trajectory_detects_head_on_collision() {
        // Two ships one cell apart heading toward the same spot.
        let schema =
            ArraySchema::parse("B<speed:double, course:double>[x=0:15,4, y=0:15,4]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        // Ship A at (4,4) heading east (0 deg) at speed 2.
        a.insert_cell(vec![4, 4], vec![ScalarValue::Double(2.0), ScalarValue::Double(0.0)])
            .unwrap();
        // Ship B at (8,4) heading west (180 deg) at speed 2.
        a.insert_cell(vec![8, 4], vec![ScalarValue::Double(2.0), ScalarValue::Double(180.0)])
            .unwrap();
        let (cluster, cat) = setup(a, |_| NodeId(0));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![15, 15]);
        let (result, _) = trajectory(&ctx, ArrayId(0), &region, "speed", "course", 1.0).unwrap();
        // Both project to (6,4): one collision pair.
        assert_eq!(result.projected, 2);
        assert_eq!(result.collision_candidates, 1);
    }

    #[test]
    fn ring_enumeration_counts_match() {
        let home = ChunkCoords::new([5, 5]);
        assert_eq!(chunks_at_ring(&home, 0).len(), 1);
        assert_eq!(chunks_at_ring(&home, 1).len(), 8);
        assert_eq!(chunks_at_ring(&home, 2).len(), 16);
        // Clipping at the array origin:
        let corner = ChunkCoords::new([0, 0]);
        assert_eq!(chunks_at_ring(&corner, 1).len(), 3);
    }
}
