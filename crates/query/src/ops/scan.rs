//! Column-at-a-time scan kernels.
//!
//! The operators in this crate historically walked `iter_cells` row by
//! row, re-dispatching on the column type and re-testing the region per
//! cell. The kernels here run the same logic **column-major** over a
//! chunk's contiguous buffers: a [`SelectionMask`] starts as the
//! complement of the tombstone bitmap, each filter stage (region, then
//! predicate) narrows it with one typed pass over one buffer, and the
//! surviving rows are consumed in ascending physical order — exactly the
//! order `iter_cells` yields — so every answer is bit-identical to the
//! row-at-a-time formulation.

use crate::error::{QueryError, Result};
use crate::predicate::{Predicate, StrPred};
use array_model::{AttributeColumn, AttributeType, Chunk, Region};

/// Per-chunk row selection bitmap (1 = selected). Row order is physical,
/// so draining the mask visits rows in insertion order.
pub(crate) struct SelectionMask {
    words: Vec<u64>,
    rows: usize,
}

impl SelectionMask {
    /// Every live (non-tombstoned) row of `chunk`.
    pub fn live(chunk: &Chunk) -> Self {
        let rows = chunk.physical_cell_count();
        let nwords = rows.div_ceil(64);
        let ts = chunk.tombstone_words();
        let mut words = vec![u64::MAX; nwords];
        for (w, &t) in words.iter_mut().zip(ts) {
            *w = !t;
        }
        // Clear the phantom bits past the last row so popcounts are exact.
        if !rows.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (rows % 64)) - 1;
            }
        }
        SelectionMask { words, rows }
    }

    #[inline]
    fn clear(&mut self, row: usize) {
        self.words[row / 64] &= !(1u64 << (row % 64));
    }

    /// Keep only rows whose coordinates fall inside `region`. Dimensions
    /// the chunk's zone map proves entirely in-range are skipped — sound
    /// even for a stale (post-retraction) zone, which is a superset of
    /// the live rows.
    pub fn retain_region(&mut self, chunk: &Chunk, region: &Region) {
        let nd = chunk.ndims();
        debug_assert_eq!(region.ndims(), nd);
        let flat = chunk.coords_flat();
        let zone = chunk.zone();
        for d in 0..nd {
            let (lo, hi) = (region.low[d], region.high[d]);
            if zone.dim_within(d, lo, hi) {
                continue;
            }
            self.retain(|row| {
                let c = flat[row * nd + d];
                c >= lo && c <= hi
            });
        }
    }

    /// Keep only rows whose value in column `attr` satisfies `pred`. One
    /// type dispatch per chunk; dictionary columns are filtered in code
    /// space (the strings are never decoded).
    pub fn retain_predicate(&mut self, chunk: &Chunk, attr: usize, pred: &Predicate) -> Result<()> {
        let col = chunk
            .column(attr)
            .ok_or_else(|| QueryError::InvalidArgument(format!("chunk has no column {attr}")))?;
        match (pred, col) {
            (Predicate::Num(p), AttributeColumn::Int32(v)) => {
                self.retain(|row| p.matches(f64::from(v[row])))
            }
            (Predicate::Num(p), AttributeColumn::Int64(v)) => {
                self.retain(|row| p.matches(v[row] as f64))
            }
            (Predicate::Num(p), AttributeColumn::Float(v)) => {
                self.retain(|row| p.matches(f64::from(v[row])))
            }
            (Predicate::Num(p), AttributeColumn::Double(v)) => self.retain(|row| p.matches(v[row])),
            (Predicate::Str(p), AttributeColumn::Dict(dc)) => {
                // Compile to code space: one acceptance bit per dictionary
                // entry, then the row loop is a u32 index + bit test.
                let dict = dc.dict();
                let accept: Vec<u64> = match p {
                    StrPred::Eq(s) => {
                        let mut bits = vec![0u64; dict.len().div_ceil(64)];
                        if let Some(c) = dict.code_of(s) {
                            bits[c as usize / 64] |= 1 << (c % 64);
                        }
                        bits
                    }
                    StrPred::In(set) => {
                        let mut bits = vec![0u64; dict.len().div_ceil(64)];
                        for s in set {
                            if let Some(c) = dict.code_of(s) {
                                bits[c as usize / 64] |= 1 << (c % 64);
                            }
                        }
                        bits
                    }
                    StrPred::Between(..) => {
                        // First-appearance codes are not ordered; scan the
                        // dictionary entries (each distinct string once).
                        let mut bits = vec![0u64; dict.len().div_ceil(64)];
                        for (c, s) in dict.strings().iter().enumerate() {
                            if p.matches(s) {
                                bits[c / 64] |= 1 << (c % 64);
                            }
                        }
                        bits
                    }
                };
                let codes = dc.codes();
                self.retain(|row| {
                    let c = codes[row] as usize;
                    accept[c / 64] & (1 << (c % 64)) != 0
                })
            }
            (Predicate::Str(p), AttributeColumn::Str(values)) => {
                self.retain(|row| p.matches(&values[row]))
            }
            // The operators type-check before scanning, so a mismatch here
            // is a caller bug — still a typed error, never a silent skip.
            (Predicate::Num(_), _) => {
                return Err(QueryError::AttributeType {
                    attribute: format!("#{attr}"),
                    expected: "numeric",
                    got: col.column_type().name(),
                })
            }
            (Predicate::Str(_), _) => {
                return Err(QueryError::AttributeType {
                    attribute: format!("#{attr}"),
                    expected: "string",
                    got: col.column_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Narrow the mask: keep only selected rows for which `keep` holds.
    #[inline]
    fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for row in 0..self.rows {
            if self.is_set(row) && !keep(row) {
                self.clear(row);
            }
        }
    }

    #[inline]
    fn is_set(&self, row: usize) -> bool {
        self.words[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Number of selected rows.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Visit the selected rows in ascending physical order.
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (i, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(i * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

/// A numeric column viewed as its contiguous typed buffer; `get` applies
/// the same widening `ScalarValue::as_f64` / `AttributeColumn::get_f64`
/// use, so kernel answers match the row-at-a-time accessors bit-for-bit.
pub(crate) enum NumericSlice<'a> {
    /// `int32` buffer.
    I32(&'a [i32]),
    /// `int64` buffer.
    I64(&'a [i64]),
    /// `float` buffer.
    F32(&'a [f32]),
    /// `double` buffer.
    F64(&'a [f64]),
}

impl<'a> NumericSlice<'a> {
    /// The typed buffer of `chunk`'s column `attr`; `None` when the
    /// column is not numeric (callers have type-checked already).
    pub fn of(chunk: &'a Chunk, attr: usize) -> Option<Self> {
        match chunk.column(attr)? {
            AttributeColumn::Int32(v) => Some(NumericSlice::I32(v)),
            AttributeColumn::Int64(v) => Some(NumericSlice::I64(v)),
            AttributeColumn::Float(v) => Some(NumericSlice::F32(v)),
            AttributeColumn::Double(v) => Some(NumericSlice::F64(v)),
            _ => None,
        }
    }

    /// The value at `row`, widened to `f64`.
    #[inline]
    pub fn get(&self, row: usize) -> f64 {
        match self {
            NumericSlice::I32(v) => f64::from(v[row]),
            NumericSlice::I64(v) => v[row] as f64,
            NumericSlice::F32(v) => f64::from(v[row]),
            NumericSlice::F64(v) => v[row],
        }
    }
}

/// Require attribute `attr_idx` of `schema`-declared type to be numeric;
/// the typed refusal the silent `unwrap_or(0.0)` coercion was replaced
/// with.
pub(crate) fn require_numeric(name: &str, ty: AttributeType, kinds: &'static str) -> Result<()> {
    let ok = matches!(
        ty,
        AttributeType::Int32 | AttributeType::Int64 | AttributeType::Float | AttributeType::Double
    );
    if ok {
        Ok(())
    } else {
        Err(QueryError::AttributeType {
            attribute: name.to_string(),
            expected: kinds,
            got: ty.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArraySchema, ChunkCoords, ScalarValue};

    fn chunk_with(values: &[(i64, f64)]) -> (ArraySchema, Chunk) {
        let schema = ArraySchema::parse("A<v:double>[x=0:1023,1024]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        for &(x, v) in values {
            chunk.push_cell(&schema, vec![x], vec![ScalarValue::Double(v)]).unwrap();
        }
        (schema, chunk)
    }

    #[test]
    fn live_mask_excludes_tombstones_and_phantom_bits() {
        let (_, mut chunk) = chunk_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        chunk.retract_cell(&[1]).unwrap();
        let mask = SelectionMask::live(&chunk);
        assert_eq!(mask.count(), 2);
        let mut seen = Vec::new();
        mask.for_each(|r| seen.push(r));
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn region_and_predicate_stages_compose() {
        let (_, chunk) = chunk_with(&[(0, 1.0), (5, 2.0), (9, 3.0), (12, 4.0)]);
        let mut mask = SelectionMask::live(&chunk);
        mask.retain_region(&chunk, &Region::new(vec![0], vec![9]));
        assert_eq!(mask.count(), 3);
        mask.retain_predicate(&chunk, 0, &Predicate::ge(2.0)).unwrap();
        assert_eq!(mask.count(), 2);
        let mut vals = Vec::new();
        mask.for_each(|r| vals.push(NumericSlice::of(&chunk, 0).unwrap().get(r)));
        assert_eq!(vals, vec![2.0, 3.0]);
    }

    #[test]
    fn dict_codes_filter_without_decoding() {
        let schema = ArraySchema::parse("A<tag:string>[x=0:63,64]").unwrap();
        let mut chunk = Chunk::new(&schema, ChunkCoords::new([0]));
        for i in 0..6 {
            let tag = ["ash", "birch", "cedar"][i % 3];
            chunk.push_cell(&schema, vec![i as i64], vec![ScalarValue::Str(tag.into())]).unwrap();
        }
        let mut mask = SelectionMask::live(&chunk);
        mask.retain_predicate(&chunk, 0, &Predicate::str_in(["birch", "oak"])).unwrap();
        assert_eq!(mask.count(), 2);
        let mut mask2 = SelectionMask::live(&chunk);
        mask2.retain_predicate(&chunk, 0, &Predicate::str_between("b", "ce")).unwrap();
        assert_eq!(mask2.count(), 2, "birch twice; cedar > \"ce\"");
    }

    #[test]
    fn type_mismatch_is_a_typed_error_even_at_kernel_level() {
        let (_, chunk) = chunk_with(&[(0, 1.0)]);
        let mut mask = SelectionMask::live(&chunk);
        let err = mask.retain_predicate(&chunk, 0, &Predicate::str_eq("x")).unwrap_err();
        assert!(matches!(err, QueryError::AttributeType { .. }));
    }
}
