//! Selection operators: subarray extraction and attribute filters.
//!
//! These are the paper's "highly parallelizable" SPJ selections (§3.3.1):
//! every node scans its share of the relevant chunks independently, so
//! elapsed time is bounded by the most loaded node — storage skew shows up
//! here directly (the AIS Houston-region selection).
//!
//! Both operators run through [`ExecutionContext::plan_scan`]: chunks
//! whose zone map refutes the region or the pushed-down predicate are
//! skipped before any payload byte is read, and the survivors are
//! filtered column-at-a-time through a
//! [`SelectionMask`](super::scan::SelectionMask) instead of per-row
//! `iter_cells` dispatch.

use super::scan::SelectionMask;
use crate::error::Result;
use crate::exec::ExecutionContext;
use crate::predicate::Predicate;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{ArrayId, Region, ScalarValue};

/// Cells returned by a selection, with their coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSet {
    /// `(cell coordinates, attribute values)` pairs. Empty when the array
    /// is metadata-only (cost simulation at paper scale).
    pub cells: Vec<(Vec<i64>, Vec<ScalarValue>)>,
}

impl CellSet {
    /// Number of returned cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells were returned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Extract the cells of `array` inside `region`, reading the named
/// attributes (all attributes when `attrs` is empty).
pub fn subarray(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    attrs: &[&str],
) -> Result<(CellSet, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let fraction = if attrs.is_empty() { 1.0 } else { ctx.attr_fraction(array, attrs)? };
    let mut tracker = WorkTracker::new(ctx.cost());

    let plan = ctx.plan_scan(array_id, Some(region), None)?;
    for (desc, node, _) in &plan.visit {
        tracker.scan_chunk(*node, scaled_bytes(desc.bytes, fraction));
    }
    tracker.prune_chunks(plan.pruned);

    // Materialized answer when cells are available (catalog- or
    // cluster-stored; the plan pre-fetched whichever holds them).
    let mut out = CellSet::default();
    if plan.exact {
        let attr_idx: Vec<usize> = if attrs.is_empty() {
            (0..array.schema.attributes.len()).collect()
        } else {
            attrs.iter().map(|a| array.attribute_index(a)).collect::<Result<Vec<_>>>()?
        };
        let nd = array.schema.ndims();
        for (_, _, payload) in &plan.visit {
            let Some(chunk) = payload else { continue };
            let mut mask = SelectionMask::live(chunk);
            mask.retain_region(chunk, region);
            let flat = chunk.coords_flat();
            mask.for_each(|row| {
                let cell = &flat[row * nd..(row + 1) * nd];
                let values = attr_idx
                    .iter()
                    .map(|&i| {
                        chunk.column(i).expect("schema-shaped chunk").get(row).expect("row exists")
                    })
                    .collect();
                out.cells.push((cell.to_vec(), values));
            });
        }
    }
    Ok((out, tracker.finish()))
}

/// Count the cells of `array` in `region` whose attribute `attr` satisfies
/// `predicate`. Costing matches [`subarray`] restricted to one column.
///
/// The predicate is *data* (see [`Predicate`]), so it is type-checked
/// against the attribute up front — a numeric comparison over a string
/// column is a typed [`crate::QueryError::AttributeType`], never a
/// silently skipped row — and pushed down into the scan plan, where zone
/// maps and dictionary probes refute whole chunks and dictionary columns
/// are filtered as `u32` codes without decoding.
pub fn filter_count(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    attr: &str,
    predicate: &Predicate,
) -> Result<(u64, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    predicate.check_type(attr, array.schema.attributes[attr_idx].ty)?;
    let mut tracker = WorkTracker::new(ctx.cost());

    let plan = ctx.plan_scan(array_id, Some(region), Some((attr_idx, predicate)))?;
    for (desc, node, _) in &plan.visit {
        tracker.scan_chunk(*node, scaled_bytes(desc.bytes, fraction));
    }
    tracker.prune_chunks(plan.pruned);

    let mut count = 0u64;
    if plan.exact {
        for (_, _, payload) in &plan.visit {
            let Some(chunk) = payload else { continue };
            let mut mask = SelectionMask::live(chunk);
            mask.retain_region(chunk, region);
            mask.retain_predicate(chunk, attr_idx, predicate)?;
            count += mask.count();
        }
    }
    Ok((count, tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema};
    use cluster_sim::{Cluster, CostModel, NodeId};

    fn setup(spread: bool) -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("A<v:int32>[x=0:7,2, y=0:7,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..8 {
            for y in 0..8 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Int32((x * 8 + y) as i32)]).unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        for (i, d) in stored.descriptors.values().enumerate() {
            let node = if spread { NodeId((i % 4) as u32) } else { NodeId(0) };
            cluster.place(*d, node).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn subarray_returns_exactly_the_region() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![2, 2]);
        let (cells, stats) = subarray(&ctx, ArrayId(0), &region, &[]).unwrap();
        assert_eq!(cells.len(), 9);
        // Region spans chunks (0,0),(0,1),(1,0),(1,1): 4 chunks scanned
        // (the array is dense, so no zone map can refute them).
        assert_eq!(stats.chunks_visited, 4);
        assert_eq!(stats.chunks_pruned, 0);
        assert!(stats.elapsed_secs > 0.0);
        // Every returned cell is inside the region.
        for (cell, _) in &cells.cells {
            assert!(region.contains_cell(cell));
        }
    }

    #[test]
    fn balanced_placement_is_faster() {
        let region = Region::new(vec![0, 0], vec![7, 7]);
        let (c_spread, cat_spread) = setup(true);
        let (c_skew, cat_skew) = setup(false);
        let t_spread =
            subarray(&ExecutionContext::new(&c_spread, &cat_spread), ArrayId(0), &region, &[])
                .unwrap()
                .1
                .elapsed_secs;
        let t_skew = subarray(&ExecutionContext::new(&c_skew, &cat_skew), ArrayId(0), &region, &[])
            .unwrap()
            .1
            .elapsed_secs;
        assert!(t_skew > 3.0 * t_spread, "skewed {t_skew} spread {t_spread}");
    }

    #[test]
    fn filter_count_matches_naive() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![7, 7]);
        let (count, _) =
            filter_count(&ctx, ArrayId(0), &region, "v", &Predicate::ge(32.0)).unwrap();
        assert_eq!(count, 32);
    }

    #[test]
    fn selective_predicate_prunes_chunks_without_changing_the_answer() {
        let (cluster, cat) = setup(true);
        let region = Region::new(vec![0, 0], vec![7, 7]);
        // v = x*8+y, so only the bottom row band (x >= 6) holds v >= 48:
        // the zone maps of the other chunk rows refute the predicate.
        let pruned_ctx = ExecutionContext::new(&cluster, &cat);
        let (count, stats) =
            filter_count(&pruned_ctx, ArrayId(0), &region, "v", &Predicate::ge(48.0)).unwrap();
        let unpruned_ctx = ExecutionContext::new(&cluster, &cat).with_pruning(false);
        let (base, base_stats) =
            filter_count(&unpruned_ctx, ArrayId(0), &region, "v", &Predicate::ge(48.0)).unwrap();
        assert_eq!(count, base, "pruning changed the answer");
        assert_eq!(count, 16);
        assert_eq!(base_stats.chunks_visited, 16);
        assert_eq!(base_stats.chunks_pruned, 0);
        assert_eq!(stats.chunks_visited, 4, "only the x>=6 chunk row survives");
        assert_eq!(stats.chunks_pruned, 12);
        assert!(stats.elapsed_secs < base_stats.elapsed_secs);
    }

    #[test]
    fn numeric_predicate_over_string_column_is_a_typed_error() {
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("S<name:string>[x=0:3,4]").unwrap();
        let mut a = Array::new(ArrayId(2), schema);
        a.insert_cell(vec![0], vec![ScalarValue::Str("a".into())]).unwrap();
        let stored = StoredArray::from_array(a);
        for d in stored.descriptors.values() {
            cluster.place(*d, NodeId(0)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0], vec![3]);
        let err = filter_count(&ctx, ArrayId(2), &region, "name", &Predicate::ge(1.0)).unwrap_err();
        assert!(matches!(err, crate::QueryError::AttributeType { .. }), "{err}");
        // And the matching string predicate works, counting for real.
        let (n, _) =
            filter_count(&ctx, ArrayId(2), &region, "name", &Predicate::str_eq("a")).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![7, 7]);
        assert!(subarray(&ctx, ArrayId(0), &region, &["zzz"]).is_err());
    }
}
