//! Selection operators: subarray extraction and attribute filters.
//!
//! These are the paper's "highly parallelizable" SPJ selections (§3.3.1):
//! every node scans its share of the relevant chunks independently, so
//! elapsed time is bounded by the most loaded node — storage skew shows up
//! here directly (the AIS Houston-region selection).

use crate::error::Result;
use crate::exec::ExecutionContext;
use crate::stats::{scaled_bytes, QueryStats, WorkTracker};
use array_model::{ArrayId, Region, ScalarValue};

/// Cells returned by a selection, with their coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSet {
    /// `(cell coordinates, attribute values)` pairs. Empty when the array
    /// is metadata-only (cost simulation at paper scale).
    pub cells: Vec<(Vec<i64>, Vec<ScalarValue>)>,
}

impl CellSet {
    /// Number of returned cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells were returned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Extract the cells of `array` inside `region`, reading the named
/// attributes (all attributes when `attrs` is empty).
pub fn subarray(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    attrs: &[&str],
) -> Result<(CellSet, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let fraction = if attrs.is_empty() { 1.0 } else { ctx.attr_fraction(array, attrs)? };
    let mut tracker = WorkTracker::new(ctx.cost());

    for (desc, node) in ctx.chunks_in(array_id, Some(region))? {
        tracker.scan_chunk(node, scaled_bytes(desc.bytes, fraction));
    }

    // Materialized answer when cells are available (catalog- or
    // cluster-stored; `payload_chunks` reads whichever holds them).
    let mut out = CellSet::default();
    if ctx.cells_available(array) {
        let attr_idx: Vec<usize> = if attrs.is_empty() {
            (0..array.schema.attributes.len()).collect()
        } else {
            attrs.iter().map(|a| array.attribute_index(a)).collect::<Result<Vec<_>>>()?
        };
        for (_, chunk) in ctx.payload_chunks(array, Some(region)) {
            for (cell, row) in chunk.iter_cells() {
                if region.contains_cell(cell) {
                    let values = attr_idx
                        .iter()
                        .map(|&i| {
                            chunk
                                .column(i)
                                .expect("schema-shaped chunk")
                                .get(row)
                                .expect("row exists")
                        })
                        .collect();
                    out.cells.push((cell.to_vec(), values));
                }
            }
        }
    }
    Ok((out, tracker.finish()))
}

/// Count the cells of `array` in `region` whose attribute `attr` satisfies
/// `predicate`. Costing matches [`subarray`] restricted to one column.
pub fn filter_count(
    ctx: &ExecutionContext<'_>,
    array_id: ArrayId,
    region: &Region,
    attr: &str,
    predicate: impl Fn(f64) -> bool,
) -> Result<(u64, QueryStats)> {
    let array = ctx.catalog.array(array_id)?;
    let fraction = ctx.attr_fraction(array, &[attr])?;
    let attr_idx = array.attribute_index(attr)?;
    let mut tracker = WorkTracker::new(ctx.cost());

    for (desc, node) in ctx.chunks_in(array_id, Some(region))? {
        tracker.scan_chunk(node, scaled_bytes(desc.bytes, fraction));
    }

    let mut count = 0u64;
    if ctx.cells_available(array) {
        for (_, chunk) in ctx.payload_chunks(array, Some(region)) {
            let col = chunk.column(attr_idx).expect("schema-shaped chunk");
            for (cell, row) in chunk.iter_cells() {
                if region.contains_cell(cell) {
                    if let Some(v) = col.get_f64(row) {
                        if predicate(v) {
                            count += 1;
                        }
                    }
                }
            }
        }
    }
    Ok((count, tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StoredArray};
    use array_model::{Array, ArraySchema};
    use cluster_sim::{Cluster, CostModel, NodeId};

    fn setup(spread: bool) -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(4, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("A<v:int32>[x=0:7,2, y=0:7,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..8 {
            for y in 0..8 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Int32((x * 8 + y) as i32)]).unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        for (i, d) in stored.descriptors.values().enumerate() {
            let node = if spread { NodeId((i % 4) as u32) } else { NodeId(0) };
            cluster.place(*d, node).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn subarray_returns_exactly_the_region() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![2, 2]);
        let (cells, stats) = subarray(&ctx, ArrayId(0), &region, &[]).unwrap();
        assert_eq!(cells.len(), 9);
        // Region spans chunks (0,0),(0,1),(1,0),(1,1): 4 chunks scanned.
        assert_eq!(stats.chunks_visited, 4);
        assert!(stats.elapsed_secs > 0.0);
        // Every returned cell is inside the region.
        for (cell, _) in &cells.cells {
            assert!(region.contains_cell(cell));
        }
    }

    #[test]
    fn balanced_placement_is_faster() {
        let region = Region::new(vec![0, 0], vec![7, 7]);
        let (c_spread, cat_spread) = setup(true);
        let (c_skew, cat_skew) = setup(false);
        let t_spread =
            subarray(&ExecutionContext::new(&c_spread, &cat_spread), ArrayId(0), &region, &[])
                .unwrap()
                .1
                .elapsed_secs;
        let t_skew = subarray(&ExecutionContext::new(&c_skew, &cat_skew), ArrayId(0), &region, &[])
            .unwrap()
            .1
            .elapsed_secs;
        assert!(t_skew > 3.0 * t_spread, "skewed {t_skew} spread {t_spread}");
    }

    #[test]
    fn filter_count_matches_naive() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![7, 7]);
        let (count, _) = filter_count(&ctx, ArrayId(0), &region, "v", |v| v >= 32.0).unwrap();
        assert_eq!(count, 32);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let (cluster, cat) = setup(true);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let region = Region::new(vec![0, 0], vec![7, 7]);
        assert!(subarray(&ctx, ArrayId(0), &region, &["zzz"]).is_err());
    }
}
