//! Distributed array operators.
//!
//! Every operator follows the same contract: compute a **real answer**
//! from materialized cells when the catalog has them, and always produce
//! [`crate::QueryStats`] whose elapsed time is derived from chunk
//! metadata, the cluster placement, and the byte-flow cost model.

mod aggregate;
mod filter;
mod join;
mod model;
mod scan;
mod sort;
mod window;

pub use aggregate::{grid_aggregate, rolling_aggregate, AggFn, GroupRow, GroupSpec};
pub use filter::{filter_count, subarray, CellSet};
pub use join::{lookup_join, positional_join, JoinResult};
pub use model::{kmeans, knn, trajectory, KMeansResult, KnnAnswer, TrajectoryResult};
pub use sort::{distinct_sorted, quantile, QuantileResult};
pub use window::{window_aggregate, WindowResult};
