//! # query-engine
//!
//! Distributed array query operators over the simulated shared-nothing
//! cluster. Operators mirror the paper's two benchmark suites (§3.3):
//! Select-Project-Join (subarray selection, sampled quantile sort,
//! positional and lookup joins) and Science Analytics (group-by over
//! dimension space, windowed aggregation with halo exchange, k-means,
//! k-nearest neighbours, trajectory projection).
//!
//! Each operator runs in two layers at once:
//!
//! * **answers** are computed from materialized cells when the catalog
//!   holds them (tests, examples, small runs) and validated against naive
//!   reference implementations in the test suites;
//! * **costs** are always derived from chunk metadata + placement through
//!   the byte-flow model, so paper-scale workloads (hundreds of GB) run in
//!   milliseconds of host time while exhibiting the paper's elapsed-time
//!   behaviour (parallelism bounded by the most loaded node, shuffles for
//!   misplaced join partners, latency per cross-node halo/kNN hop).

#![warn(missing_docs)]

mod catalog;
mod error;
mod exec;
pub mod ops;
mod predicate;
mod stats;
pub mod view;

pub use catalog::{Catalog, StoredArray};
pub use error::{QueryError, Result};
pub use exec::{ExecutionContext, ScanPlan};
pub use predicate::{NumPred, Predicate, StrPred};
pub use stats::{scaled_bytes, QueryStats, WorkTracker};
