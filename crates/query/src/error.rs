//! Error type for query execution.

use array_model::{ArrayId, ChunkKey};
use std::fmt;

/// Errors raised by the query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The catalog has no array with this id.
    UnknownArray(ArrayId),
    /// The named attribute does not exist on the array.
    UnknownAttribute(String),
    /// The region's arity does not match the array's dimensionality.
    RegionArity {
        /// Dimensions the array declares.
        expected: usize,
        /// Dimensions the region supplied.
        got: usize,
    },
    /// A chunk is resident in the catalog but missing from the cluster
    /// placement (catalog/cluster desynchronization). Carries the `Copy`
    /// key itself — the error text is rendered only when displayed, so
    /// constructing (let alone not taking) the miss branch never
    /// allocates on the per-chunk lookup path.
    Unplaced(ChunkKey),
    /// A chunk's only copies sat on nodes that crashed and no surviving
    /// replica or catalog oracle can serve it — at `k = 1` this is the
    /// typed face of data loss, returned instead of a panic or a silent
    /// wrong answer. `Copy` key, lazily rendered, like
    /// [`QueryError::Unplaced`].
    NodeLost(ChunkKey),
    /// Operator-specific invalid argument.
    InvalidArgument(String),
    /// An operator was pointed at an attribute whose declared type cannot
    /// support it — aggregating a string column, a numeric predicate over
    /// strings, `distinct` over floats. Returned **instead of** silently
    /// coercing the column (the historical behavior answered `0.0`),
    /// which this repo's differential philosophy forbids.
    AttributeType {
        /// The attribute that was named.
        attribute: String,
        /// What the operator required ("numeric", "integer", "string").
        expected: &'static str,
        /// The attribute's declared type name.
        got: &'static str,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownArray(id) => write!(f, "unknown array {id}"),
            QueryError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            QueryError::RegionArity { expected, got } => {
                write!(f, "region has {got} dimensions, array has {expected}")
            }
            QueryError::Unplaced(key) => write!(f, "chunk {key} is not placed on any node"),
            QueryError::NodeLost(key) => {
                write!(f, "chunk {key} is unreadable: every holding node is crashed")
            }
            QueryError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            QueryError::AttributeType { attribute, expected, got } => {
                write!(f, "attribute `{attribute}` is {got}, but the operator requires {expected}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
