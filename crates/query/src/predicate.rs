//! Typed scan predicates: the filter language the vectorized scan layer
//! pushes down into chunks.
//!
//! A [`Predicate`] replaces the old opaque `Fn(f64) -> bool` closures:
//! being *data*, it can be
//!
//! * **type-checked** against the attribute's declared type up front
//!   (a numeric comparison over a string column is a typed
//!   [`QueryError::AttributeType`], never a silent skip);
//! * **refuted per chunk** against the zone map, skipping whole chunks
//!   whose value range provably misses the predicate;
//! * **compiled into code space** for dictionary-encoded string columns:
//!   equality/IN probe the chunk dictionary once and the row loop
//!   compares `u32` codes — matching rows are found without decoding a
//!   single string.
//!
//! NaN cells match no numeric predicate (every ordered comparison with
//! NaN is false, including `Eq`), which keeps zone-range refutation
//! sound: zone maps exclude NaNs from their min/max fold, and the rows
//! the fold excluded could never match anyway.

use crate::error::{QueryError, Result};
use array_model::{AttrZone, AttributeColumn, AttributeType, Chunk};

/// Comparison against a numeric attribute. Integer columns are widened
/// with the same `as f64` conversion the result-boundary accessors use,
/// so predicate answers agree bit-for-bit with row-at-a-time evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumPred {
    /// `value < t`
    Lt(f64),
    /// `value <= t`
    Le(f64),
    /// `value > t`
    Gt(f64),
    /// `value >= t`
    Ge(f64),
    /// `value == t`
    Eq(f64),
    /// `lo <= value <= hi` (inclusive both ends)
    Between(f64, f64),
}

impl NumPred {
    /// Does `v` satisfy the comparison? NaN never matches.
    #[inline]
    pub fn matches(&self, v: f64) -> bool {
        match *self {
            NumPred::Lt(t) => v < t,
            NumPred::Le(t) => v <= t,
            NumPred::Gt(t) => v > t,
            NumPred::Ge(t) => v >= t,
            NumPred::Eq(t) => v == t,
            NumPred::Between(lo, hi) => v >= lo && v <= hi,
        }
    }

    /// Can any value in `[lo, hi]` satisfy the comparison? `false` means
    /// the whole range is refuted. `lo > hi` (an empty zone) refutes
    /// everything.
    fn range_may_match(&self, lo: f64, hi: f64) -> bool {
        // NaN bounds (incomparable) refute too, not just lo > hi.
        use std::cmp::Ordering;
        if !matches!(lo.partial_cmp(&hi), Some(Ordering::Less | Ordering::Equal)) {
            return false;
        }
        match *self {
            NumPred::Lt(t) => lo < t,
            NumPred::Le(t) => lo <= t,
            NumPred::Gt(t) => hi > t,
            NumPred::Ge(t) => hi >= t,
            NumPred::Eq(t) => t >= lo && t <= hi,
            NumPred::Between(a, b) => a <= b && hi >= a && lo <= b,
        }
    }
}

/// Comparison against a string attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPred {
    /// Exact match.
    Eq(String),
    /// Membership in a set.
    In(Vec<String>),
    /// `lo <= value <= hi` lexicographically (inclusive both ends).
    /// Dictionary codes are first-appearance ordered, **not**
    /// lexicographic, so range evaluation builds a per-chunk
    /// code-acceptance bitmap by scanning the dictionary entries once.
    Between(String, String),
}

impl StrPred {
    /// Does `s` satisfy the comparison?
    pub fn matches(&self, s: &str) -> bool {
        match self {
            StrPred::Eq(t) => s == t,
            StrPred::In(set) => set.iter().any(|t| t == s),
            StrPred::Between(lo, hi) => s >= lo.as_str() && s <= hi.as_str(),
        }
    }
}

/// A pushed-down scan predicate over one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Numeric comparison (int32/int64/float/double attributes).
    Num(NumPred),
    /// String comparison (string attributes, plain or dict-encoded).
    Str(StrPred),
}

impl Predicate {
    /// `value < t`
    pub fn lt(t: f64) -> Self {
        Predicate::Num(NumPred::Lt(t))
    }

    /// `value <= t`
    pub fn le(t: f64) -> Self {
        Predicate::Num(NumPred::Le(t))
    }

    /// `value > t`
    pub fn gt(t: f64) -> Self {
        Predicate::Num(NumPred::Gt(t))
    }

    /// `value >= t`
    pub fn ge(t: f64) -> Self {
        Predicate::Num(NumPred::Ge(t))
    }

    /// `value == t`
    pub fn eq_num(t: f64) -> Self {
        Predicate::Num(NumPred::Eq(t))
    }

    /// `lo <= value <= hi`, inclusive.
    pub fn between(lo: f64, hi: f64) -> Self {
        Predicate::Num(NumPred::Between(lo, hi))
    }

    /// String equality.
    pub fn str_eq(s: impl Into<String>) -> Self {
        Predicate::Str(StrPred::Eq(s.into()))
    }

    /// String set membership.
    pub fn str_in(set: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Predicate::Str(StrPred::In(set.into_iter().map(Into::into).collect()))
    }

    /// Lexicographic string range, inclusive.
    pub fn str_between(lo: impl Into<String>, hi: impl Into<String>) -> Self {
        Predicate::Str(StrPred::Between(lo.into(), hi.into()))
    }

    /// Check the predicate against the attribute's declared type; a
    /// mismatch is a typed [`QueryError::AttributeType`].
    pub fn check_type(&self, attribute: &str, ty: AttributeType) -> Result<()> {
        let ok = match self {
            Predicate::Num(_) => matches!(
                ty,
                AttributeType::Int32
                    | AttributeType::Int64
                    | AttributeType::Float
                    | AttributeType::Double
            ),
            Predicate::Str(_) => matches!(ty, AttributeType::Str),
        };
        if ok {
            Ok(())
        } else {
            Err(QueryError::AttributeType {
                attribute: attribute.to_string(),
                expected: match self {
                    Predicate::Num(_) => "numeric",
                    Predicate::Str(_) => "string",
                },
                got: ty.name(),
            })
        }
    }

    /// True when the chunk's zone map (plus, for dictionary columns, a
    /// dictionary probe) **proves** no live row of attribute `attr` can
    /// match, so the scan may skip the chunk entirely. `false` is always
    /// safe — pruning is an optimization, never a filter.
    pub fn refutes_chunk(&self, chunk: &Chunk, attr: usize) -> bool {
        let Some(zone) = chunk.zone().attr(attr) else { return false };
        match (self, zone) {
            (Predicate::Num(p), AttrZone::Int { min, max }) => {
                if min > max {
                    return true;
                }
                // Conservative i64 -> f64 widening: `as f64` rounds to
                // nearest beyond 2^53, possibly *into* the zone range, so
                // nudge each bound outward when the cast moved it inward.
                let (lo, hi) = (f64_at_or_below(*min), f64_at_or_above(*max));
                !p.range_may_match(lo, hi)
            }
            (Predicate::Num(p), AttrZone::Real { min, max, nans }) => {
                // NaNs never match, so only the folded range matters; a
                // chunk of pure NaNs has an empty range and is refuted
                // regardless of `nans`.
                let _ = nans;
                !p.range_may_match(*min, *max)
            }
            (Predicate::Str(p), AttrZone::Dict { .. }) => {
                let Some(dc) = chunk.column(attr).and_then(AttributeColumn::as_dict) else {
                    return false;
                };
                match p {
                    StrPred::Eq(s) => dc.dict().code_of(s).is_none(),
                    StrPred::In(set) => set.iter().all(|s| dc.dict().code_of(s).is_none()),
                    StrPred::Between(..) => dc.dict().strings().iter().all(|s| !p.matches(s)),
                }
            }
            // Plain string columns carry no summary; numeric zones under
            // a string predicate (or vice versa) mean the operator's type
            // check was skipped — never refute on a mismatch.
            _ => false,
        }
    }
}

/// Largest `f64` that is `<= v`: `v as f64` when the cast rounded down
/// or was exact, otherwise the next float below.
fn f64_at_or_below(v: i64) -> f64 {
    let f = v as f64;
    if f as i128 > i128::from(v) {
        next_float_down(f)
    } else {
        f
    }
}

/// Smallest `f64` that is `>= v`.
fn f64_at_or_above(v: i64) -> f64 {
    let f = v as f64;
    if (f as i128) < i128::from(v) {
        next_float_up(f)
    } else {
        f
    }
}

/// The next representable finite float below `f`. Only reached when an
/// `i64 -> f64` cast rounded, i.e. `|f| >= 2^53`, so zero/subnormal
/// corner cases cannot occur.
fn next_float_down(f: f64) -> f64 {
    debug_assert!(f.is_finite() && f.abs() >= 9.007_199_254_740_992e15);
    let bits = f.to_bits();
    f64::from_bits(if f > 0.0 { bits - 1 } else { bits + 1 })
}

/// The next representable finite float above `f`; same preconditions as
/// [`next_float_down`].
fn next_float_up(f: f64) -> f64 {
    debug_assert!(f.is_finite() && f.abs() >= 9.007_199_254_740_992e15);
    let bits = f.to_bits();
    f64::from_bits(if f > 0.0 { bits + 1 } else { bits - 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArraySchema, ChunkCoords, ScalarValue};

    #[test]
    fn nan_matches_no_numeric_predicate() {
        for p in [
            NumPred::Lt(1.0),
            NumPred::Le(1.0),
            NumPred::Gt(1.0),
            NumPred::Ge(1.0),
            NumPred::Eq(f64::NAN),
            NumPred::Between(f64::NEG_INFINITY, f64::INFINITY),
        ] {
            assert!(!p.matches(f64::NAN), "{p:?} matched NaN");
        }
    }

    #[test]
    fn range_refutation_is_sound_at_the_edges() {
        assert!(NumPred::Ge(5.0).range_may_match(1.0, 5.0));
        assert!(!NumPred::Gt(5.0).range_may_match(1.0, 5.0));
        assert!(NumPred::Le(1.0).range_may_match(1.0, 5.0));
        assert!(!NumPred::Lt(1.0).range_may_match(1.0, 5.0));
        assert!(NumPred::Eq(3.0).range_may_match(1.0, 5.0));
        assert!(!NumPred::Eq(6.0).range_may_match(1.0, 5.0));
        assert!(!NumPred::Between(6.0, 9.0).range_may_match(1.0, 5.0));
        // Empty zone range refutes everything.
        assert!(!NumPred::Ge(f64::NEG_INFINITY).range_may_match(f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn huge_int_bounds_widen_conservatively() {
        // 2^60 + 1 is not representable; `as f64` rounds to 2^60, which
        // sits *below* the true min — the at-or-below bound keeps it.
        let v = (1i64 << 60) + 1;
        assert!(f64_at_or_below(v) <= v as f64);
        assert!(f64_at_or_above(v) as i128 >= i128::from(v));
        // i64::MAX rounds *up* to 2^63; at-or-below must step under it.
        assert!((f64_at_or_below(i64::MAX) as i128) <= i128::from(i64::MAX));
        assert!(f64_at_or_above(i64::MIN) >= i64::MIN as f64);
        assert_eq!(f64_at_or_below(42), 42.0);
        assert_eq!(f64_at_or_above(-42), -42.0);
    }

    #[test]
    fn type_check_names_the_offender() {
        let p = Predicate::ge(1.0);
        assert!(p.check_type("v", AttributeType::Double).is_ok());
        let err = p.check_type("name", AttributeType::Str).unwrap_err();
        assert_eq!(
            err,
            QueryError::AttributeType {
                attribute: "name".into(),
                expected: "numeric",
                got: "string"
            }
        );
        assert!(Predicate::str_eq("x").check_type("name", AttributeType::Str).is_ok());
        assert!(Predicate::str_eq("x").check_type("v", AttributeType::Int32).is_err());
    }

    #[test]
    fn dict_probe_refutes_absent_strings_only() {
        let schema = ArraySchema::parse("A<tag:string>[x=0:9,10]").unwrap();
        let mut chunk = array_model::Chunk::new(&schema, ChunkCoords::new([0]));
        for (i, tag) in ["red", "green"].iter().enumerate() {
            chunk
                .push_cell(&schema, vec![i as i64], vec![ScalarValue::Str(tag.to_string())])
                .unwrap();
        }
        assert!(Predicate::str_eq("blue").refutes_chunk(&chunk, 0));
        assert!(!Predicate::str_eq("red").refutes_chunk(&chunk, 0));
        assert!(Predicate::str_in(["blue", "mauve"]).refutes_chunk(&chunk, 0));
        assert!(!Predicate::str_in(["blue", "green"]).refutes_chunk(&chunk, 0));
        // First-appearance codes are not lexicographic: the range probe
        // must scan entries, and "green" < "red" sits inside this range.
        assert!(!Predicate::str_between("a", "m").refutes_chunk(&chunk, 0));
        assert!(Predicate::str_between("s", "z").refutes_chunk(&chunk, 0));
    }

    #[test]
    fn numeric_zone_refutation_respects_nan_exclusion() {
        let schema = ArraySchema::parse("A<v:double>[x=0:9,10]").unwrap();
        let mut chunk = array_model::Chunk::new(&schema, ChunkCoords::new([0]));
        chunk.push_cell(&schema, vec![0], vec![ScalarValue::Double(f64::NAN)]).unwrap();
        chunk.push_cell(&schema, vec![1], vec![ScalarValue::Double(3.0)]).unwrap();
        // Range is [3,3]; the NaN row can never match, so refuting > 5 is sound.
        assert!(Predicate::gt(5.0).refutes_chunk(&chunk, 0));
        assert!(!Predicate::ge(3.0).refutes_chunk(&chunk, 0));
    }
}
