//! Query cost accounting.
//!
//! Every operator tracks the work it induces per node plus the data it
//! ships, and folds both into a simulated elapsed time: the busiest node
//! bounds the parallel phase (storage skew directly throttles
//! parallelism), shuffles go through the cluster's flow solver, and
//! cross-node fetches (halo exchange, kNN hops) pay per-request latency.

use cluster_sim::{CostModel, FlowSet, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What one query cost.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Simulated elapsed seconds.
    pub elapsed_secs: f64,
    /// Bytes read from local storage across all nodes.
    pub bytes_scanned: u64,
    /// Bytes that crossed the network.
    pub bytes_shuffled: u64,
    /// Chunks touched.
    pub chunks_visited: u64,
    /// Chunks whose zone map refuted the query's region or predicate, so
    /// they were skipped before any payload byte was read. Disjoint from
    /// `chunks_visited`: a chunk counts in exactly one of the two.
    pub chunks_pruned: u64,
    /// Individual cross-node requests (halo fetches, kNN hops).
    pub remote_fetches: u64,
}

impl QueryStats {
    /// Merge another query's stats into this one, **sequentially** (the
    /// benchmark suites run query after query).
    pub fn merge_sequential(&mut self, other: &QueryStats) {
        self.elapsed_secs += other.elapsed_secs;
        self.bytes_scanned += other.bytes_scanned;
        self.bytes_shuffled += other.bytes_shuffled;
        self.chunks_visited += other.chunks_visited;
        self.chunks_pruned += other.chunks_pruned;
        self.remote_fetches += other.remote_fetches;
    }
}

/// Scale a chunk's (or column slice's) byte size by a fractional
/// selectivity, **rounding up** with a one-byte floor for non-empty
/// inputs. The naive `(bytes as f64 * fraction) as u64` truncates — a
/// small chunk or a tiny attribute fraction rounds to 0 bytes and the
/// scanned chunk is modeled as free, which understates every per-node
/// busy total built from many small chunks. Touching a chunk always
/// costs at least one byte of modeled I/O.
pub fn scaled_bytes(bytes: u64, fraction: f64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    ((bytes as f64 * fraction).ceil() as u64).max(1)
}

/// Accumulates one operator's work; converted into [`QueryStats`] at the
/// end.
#[derive(Debug)]
pub struct WorkTracker<'a> {
    cost: &'a CostModel,
    /// Per-node busy seconds during the parallel phase.
    busy: BTreeMap<NodeId, f64>,
    /// Bulk data movement (shuffles), solved with endpoint contention.
    shuffle: FlowSet,
    /// Serial coordinator work after the parallel phase (merges, sorts).
    coordinator_secs: f64,
    stats: QueryStats,
}

impl<'a> WorkTracker<'a> {
    /// Start tracking under a cost model.
    pub fn new(cost: &'a CostModel) -> Self {
        WorkTracker {
            cost,
            busy: BTreeMap::new(),
            shuffle: FlowSet::new(),
            coordinator_secs: 0.0,
            stats: QueryStats::default(),
        }
    }

    /// Node `node` scans `bytes` of one chunk from local storage.
    pub fn scan_chunk(&mut self, node: NodeId, bytes: u64) {
        *self.busy.entry(node).or_default() += self.cost.scan_secs(bytes);
        self.stats.bytes_scanned += bytes;
        self.stats.chunks_visited += 1;
    }

    /// Pure CPU work on a node (e.g. k-means iterations over cached data).
    pub fn compute(&mut self, node: NodeId, secs: f64) {
        *self.busy.entry(node).or_default() += secs;
    }

    /// Record `n` chunks skipped by zone-map pruning. Pruned chunks cost
    /// nothing — no scan seconds, no bytes — they are only counted, so
    /// the stats expose how much work the zone maps saved.
    pub fn prune_chunks(&mut self, n: u64) {
        self.stats.chunks_pruned += n;
    }

    /// Bulk-move `bytes` from `src` to `dst` (join partner shipping,
    /// partial-aggregate exchange). Timed by the contention solver.
    pub fn shuffle(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        if src != dst {
            self.shuffle.push(src, dst, bytes);
            self.stats.bytes_shuffled += bytes;
        }
    }

    /// A small synchronous cross-node request: `requester` pulls `bytes`
    /// from `holder` (halo slab, candidate cells). Pays latency plus
    /// transfer, charged to the requester's busy time.
    pub fn remote_fetch(&mut self, requester: NodeId, holder: NodeId, bytes: u64) {
        if requester == holder {
            // Local read: just the scan.
            self.scan_chunk(requester, bytes);
            return;
        }
        *self.busy.entry(requester).or_default() += self.cost.remote_fetch_secs(bytes);
        self.stats.bytes_shuffled += bytes;
        self.stats.remote_fetches += 1;
        self.stats.chunks_visited += 1;
    }

    /// Serial work at the coordinator after the parallel phase (final
    /// merge/sort of partials).
    pub fn coordinator(&mut self, secs: f64) {
        self.coordinator_secs += secs;
    }

    /// Fold everything into elapsed time:
    /// `max(per-node busy) + shuffle + coordinator`.
    pub fn finish(self) -> QueryStats {
        let parallel = self.busy.values().fold(0.0f64, |acc, &s| acc.max(s));
        let shuffle_secs = self.shuffle.elapsed_secs(self.cost);
        let mut stats = self.stats;
        stats.elapsed_secs = parallel + shuffle_secs + self.coordinator_secs;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel {
            disk_secs_per_gb: 8.0,
            net_secs_per_gb: 12.0,
            fabric_secs_per_gb: 4.8,
            per_chunk_overhead_secs: 0.0,
            cpu_secs_per_gb: 2.0,
            net_latency_secs: 0.5,
        }
    }

    const GB: u64 = 1_000_000_000;

    #[test]
    fn busiest_node_bounds_parallel_phase() {
        let c = cost();
        let mut w = WorkTracker::new(&c);
        w.scan_chunk(NodeId(0), GB);
        w.scan_chunk(NodeId(1), 3 * GB);
        let stats = w.finish();
        // scan = (8 + 2) s/GB; busiest node scanned 3 GB.
        assert!((stats.elapsed_secs - 30.0).abs() < 1e-9);
        assert_eq!(stats.bytes_scanned, 4 * GB);
        assert_eq!(stats.chunks_visited, 2);
    }

    #[test]
    fn skewed_placement_is_slower_than_balanced() {
        let c = cost();
        let balanced = {
            let mut w = WorkTracker::new(&c);
            for n in 0..4 {
                w.scan_chunk(NodeId(n), GB);
            }
            w.finish().elapsed_secs
        };
        let skewed = {
            let mut w = WorkTracker::new(&c);
            for _ in 0..4 {
                w.scan_chunk(NodeId(0), GB);
            }
            w.finish().elapsed_secs
        };
        assert!(skewed > 3.0 * balanced);
    }

    #[test]
    fn remote_fetch_pays_latency() {
        let c = cost();
        let mut w = WorkTracker::new(&c);
        w.remote_fetch(NodeId(0), NodeId(1), 0);
        let stats = w.finish();
        assert!((stats.elapsed_secs - 0.5).abs() < 1e-9);
        assert_eq!(stats.remote_fetches, 1);
        // Local fetch degenerates to a scan: no latency.
        let mut w2 = WorkTracker::new(&c);
        w2.remote_fetch(NodeId(0), NodeId(0), 0);
        assert!(w2.finish().elapsed_secs < 1e-9);
    }

    #[test]
    fn shuffle_uses_contention_solver() {
        let c = cost();
        let mut w = WorkTracker::new(&c);
        w.shuffle(NodeId(0), NodeId(1), GB);
        let stats = w.finish();
        assert!((stats.elapsed_secs - 12.0).abs() < 1e-9);
        assert_eq!(stats.bytes_shuffled, GB);
        // Self-shuffles are dropped.
        let mut w2 = WorkTracker::new(&c);
        w2.shuffle(NodeId(0), NodeId(0), GB);
        assert_eq!(w2.finish().bytes_shuffled, 0);
    }

    #[test]
    fn merge_sequential_adds_time() {
        let mut a = QueryStats { elapsed_secs: 2.0, ..Default::default() };
        let b = QueryStats { elapsed_secs: 3.0, bytes_scanned: 7, ..Default::default() };
        a.merge_sequential(&b);
        assert!((a.elapsed_secs - 5.0).abs() < 1e-12);
        assert_eq!(a.bytes_scanned, 7);
    }

    #[test]
    fn scaled_bytes_never_truncates_a_touched_chunk_to_free() {
        // The bug this pins: `(1000 as f64 * 0.0004) as u64` == 0, so a
        // scanned chunk was modeled as costing nothing.
        assert_eq!(scaled_bytes(1_000, 0.0004), 1);
        assert_eq!(scaled_bytes(10, 0.15), 2, "rounds up, not to nearest");
        assert_eq!(scaled_bytes(1_000_000, 1.0), 1_000_000, "exact at unity");
        assert_eq!(scaled_bytes(1_000, 0.5), 500);
        assert_eq!(scaled_bytes(0, 0.5), 0, "empty inputs stay free");
        assert_eq!(scaled_bytes(7, 0.0), 1, "touching a chunk is never free");
    }
}
