//! Execution context: the cluster + catalog pair every operator runs
//! against, plus shared helpers (chunk routing, attribute byte fractions).

use crate::catalog::{Catalog, StoredArray};
use crate::error::{QueryError, Result};
use crate::predicate::Predicate;
use array_model::{ArrayId, Chunk, ChunkCoords, ChunkDescriptor, Region};
use cluster_sim::{Cluster, CostModel, NodeId, PayloadRead};
use std::cell::Cell;

/// Everything an operator needs to run.
#[derive(Debug)]
pub struct ExecutionContext<'a> {
    /// The cluster whose placement is being queried.
    pub cluster: &'a Cluster,
    /// The arrays.
    pub catalog: &'a Catalog,
    /// Reads answered by something other than a serving primary: a
    /// surviving replica or the catalog oracle standing in for a crashed
    /// node. Interior-mutable so the read path keeps taking `&self`.
    degraded: Cell<u64>,
    /// Whether [`ExecutionContext::plan_scan`] may skip chunks whose zone
    /// map refutes the query. On by default; the pruning differentials
    /// turn it off to prove pruned answers are bit-identical.
    pruning: bool,
}

/// One operator's scan, planned chunk-by-chunk by
/// [`ExecutionContext::plan_scan`]: the chunks to visit (with payloads
/// pre-fetched when the array is cell-exact) plus the count of chunks the
/// zone maps refuted. Routing (`node_of`) and payload fetching run for
/// **every** intersecting chunk before the prune decision, so failure
/// modes (`NodeLost`, `Unplaced`) and degraded-read accounting are
/// identical whether pruning is on or off — pruning can only remove
/// work, never change an answer or mask an error.
pub struct ScanPlan<'a> {
    /// Chunks the operator must touch: descriptor, resident node, and the
    /// materialized payload (`None` on the metadata-only path).
    pub visit: Vec<(ChunkDescriptor, NodeId, Option<&'a Chunk>)>,
    /// Chunks skipped because their zone map refuted the region or
    /// predicate (or they held no live cells). Zero when pruning is off.
    pub pruned: u64,
    /// Whether every placed chunk's cells are readable
    /// ([`ExecutionContext::cells_available`]) — i.e. whether the
    /// operator may produce a cell-exact answer.
    pub exact: bool,
}

impl<'a> ExecutionContext<'a> {
    /// Bundle a cluster and catalog.
    pub fn new(cluster: &'a Cluster, catalog: &'a Catalog) -> Self {
        ExecutionContext { cluster, catalog, degraded: Cell::new(0), pruning: true }
    }

    /// Enable or disable zone-map chunk pruning (on by default). The
    /// differential suites run every query both ways and require
    /// bit-identical answers.
    pub fn with_pruning(mut self, on: bool) -> Self {
        self.pruning = on;
        self
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        self.cluster.cost_model()
    }

    /// How many chunk reads (routing or payload) this context has served
    /// from somewhere other than a healthy primary. Zero on a fault-free
    /// cluster.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded.get()
    }

    fn note_degraded(&self) {
        self.degraded.set(self.degraded.get().saturating_add(1));
    }

    /// Whether `node` is currently willing to serve reads.
    fn serves(&self, node: NodeId) -> bool {
        self.cluster.node(node).is_ok_and(|n| n.state().serves_reads())
    }

    /// Which node holds this chunk. Replicated arrays are "held" by every
    /// node; callers pass the node that wants to read, and get it back.
    ///
    /// When the primary has crashed, routing fails over: first serving
    /// replica holder, then the coordinator if the catalog's whole-array
    /// copy can stand in. Both failovers count as degraded reads. A chunk
    /// with no serving copy anywhere is a typed
    /// [`QueryError::NodeLost`] — never a panic, never a silent wrong
    /// answer.
    pub fn node_of(
        &self,
        array: &StoredArray,
        coords: &ChunkCoords,
        reader: Option<NodeId>,
    ) -> Result<NodeId> {
        if array.replicated {
            return Ok(reader.unwrap_or_else(|| self.cluster.coordinator()));
        }
        let key = array.key_for(coords);
        // `ChunkKey` is `Copy`, so even the miss branch builds no string —
        // the error renders itself lazily at display time. This lookup
        // runs once per chunk per operator; the healthy path must stay
        // allocation-free (pinned by `tests/alloc_free_routing.rs`).
        match self.cluster.locate(&key) {
            Some(primary) if self.serves(primary) => Ok(primary),
            Some(_) => {
                if let Some(&holder) =
                    self.cluster.replica_holders(&key).iter().find(|&&r| self.serves(r))
                {
                    self.note_degraded();
                    return Ok(holder);
                }
                if array.data.as_ref().is_some_and(|d| d.chunk(coords).is_some()) {
                    self.note_degraded();
                    return Ok(self.cluster.coordinator());
                }
                Err(QueryError::NodeLost(key))
            }
            None => Err(QueryError::Unplaced(key)),
        }
    }

    /// The materialized cells of one chunk, wherever they live: a serving
    /// primary's chunk store first (cell-level ingest attaches payloads
    /// there, and rebalances move them), then a surviving replica's store
    /// (a degraded read), then the catalog's whole-array storage as the
    /// oracle of last resort (degraded only when the primary exists but
    /// is not serving — the metadata-only and store-free paths have
    /// always used it). `None` when the chunk is metadata-only
    /// everywhere.
    pub fn chunk_payload(&self, array: &'a StoredArray, coords: &ChunkCoords) -> Option<&'a Chunk> {
        let key = array.key_for(coords);
        match self.cluster.read_payload(&key) {
            Some(PayloadRead::Primary(chunk)) => return Some(chunk.as_ref()),
            Some(PayloadRead::Failover(_, chunk)) => {
                self.note_degraded();
                return Some(chunk.as_ref());
            }
            None => {}
        }
        let chunk = array.data.as_ref()?.chunk(coords)?;
        if self.cluster.locate(&key).is_some_and(|n| !self.serves(n)) {
            self.note_degraded();
        }
        Some(chunk)
    }

    /// Whether cell-exact execution is possible for `array`: *every*
    /// placed chunk must be readable, from the cluster's node stores or
    /// the catalog's whole-array copy. Operators use this to decide
    /// between returning real answers and returning cost-model-only
    /// estimates — a partially materialized array (say, one cycle
    /// ingested as cells, the next as bare descriptors) fails the gate
    /// and falls back to the model path rather than silently answering
    /// over a subset of its cells. On the common path — the ingest
    /// pipeline mirrors every placed chunk into the catalog's whole-array
    /// copy — the gate is one linear scan: both chunk sets live in sorted
    /// maps, so a zipped key comparison proves full coverage without
    /// per-key lookups or any cluster locate/node machinery. Store-only
    /// or mixed materializations fall through to an exact per-chunk probe
    /// (catalog copy first, node store second — existence in either
    /// source satisfies the gate).
    pub fn cells_available(&self, array: &StoredArray) -> bool {
        if array.descriptors.is_empty() {
            return false;
        }
        if array
            .data
            .as_ref()
            .is_some_and(|d| d.chunks().map(|(c, _)| c).eq(array.descriptors.keys()))
        {
            return true;
        }
        array.descriptors.keys().all(|coords| {
            array.data.as_ref().is_some_and(|d| d.chunk(coords).is_some())
                || self.chunk_payload(array, coords).is_some()
        })
    }

    /// Iterate the materialized chunks of `array` that intersect `region`
    /// (all chunks when `None`), in row-major chunk order. Chunks whose
    /// payload is unavailable are skipped — callers gate on
    /// [`ExecutionContext::cells_available`] first.
    pub fn payload_chunks(
        &'a self,
        array: &'a StoredArray,
        region: Option<&'a Region>,
    ) -> impl Iterator<Item = (&'a ChunkCoords, &'a Chunk)> + 'a {
        array
            .descriptors
            .keys()
            .filter(move |coords| region.is_none_or(|r| r.intersects_chunk(&array.schema, coords)))
            .filter_map(move |coords| self.chunk_payload(array, coords).map(|c| (coords, c)))
    }

    /// Chunks of `array` intersecting `region` (all chunks when `None`),
    /// with their resident nodes.
    pub fn chunks_in(
        &self,
        array_id: ArrayId,
        region: Option<&Region>,
    ) -> Result<Vec<(ChunkDescriptor, NodeId)>> {
        let array = self.catalog.array(array_id)?;
        if let Some(r) = region {
            if r.ndims() != array.schema.ndims() {
                return Err(QueryError::RegionArity {
                    expected: array.schema.ndims(),
                    got: r.ndims(),
                });
            }
        }
        let mut out = Vec::new();
        for (coords, desc) in &array.descriptors {
            if region.is_none_or(|r| r.intersects_chunk(&array.schema, coords)) {
                let node = self.node_of(array, coords, None)?;
                out.push((*desc, node));
            }
        }
        Ok(out)
    }

    /// Plan a scan of `array_id` over `region` (all chunks when `None`),
    /// optionally pushing down a predicate on attribute `pred.0`. This is
    /// the single planning choke point for the vectorized operators:
    ///
    /// 1. every intersecting chunk is **routed** (`node_of`), so
    ///    placement errors surface exactly as they would unpruned;
    /// 2. when the array is cell-exact, every intersecting chunk's
    ///    payload is fetched once here and shared by the cost and answer
    ///    loops (degraded-read accounting is pruning-invariant);
    /// 3. with pruning enabled, a fetched chunk is dropped from the visit
    ///    list when it has no live cells, its zone map refutes `region`,
    ///    or the pushed-down predicate refutes its value summary /
    ///    dictionary. A pruned chunk contributes zero rows by
    ///    construction, so answers are bit-identical either way.
    pub fn plan_scan(
        &self,
        array_id: ArrayId,
        region: Option<&Region>,
        pred: Option<(usize, &Predicate)>,
    ) -> Result<ScanPlan<'a>> {
        let array = self.catalog.array(array_id)?;
        if let Some(r) = region {
            if r.ndims() != array.schema.ndims() {
                return Err(QueryError::RegionArity {
                    expected: array.schema.ndims(),
                    got: r.ndims(),
                });
            }
        }
        let exact = self.cells_available(array);
        let mut visit = Vec::new();
        let mut pruned = 0u64;
        for (coords, desc) in &array.descriptors {
            if !region.is_none_or(|r| r.intersects_chunk(&array.schema, coords)) {
                continue;
            }
            let node = self.node_of(array, coords, None)?;
            let payload = if exact { self.chunk_payload(array, coords) } else { None };
            if self.pruning {
                if let Some(chunk) = payload {
                    let dead = chunk.cell_count() == 0
                        || region.is_some_and(|r| chunk.zone().refutes_region(r))
                        || pred.is_some_and(|(attr, p)| p.refutes_chunk(chunk, attr));
                    if dead {
                        pruned += 1;
                        continue;
                    }
                }
            }
            visit.push((*desc, node, payload));
        }
        Ok(ScanPlan { visit, pruned, exact })
    }

    /// The byte fraction of a chunk occupied by the named attributes —
    /// vertical partitioning means an operator reading two of seven
    /// attributes scans only their columns. Coordinates always come along
    /// (they are the chunk's positional index).
    ///
    /// The estimate weights each attribute by `fixed_width()`; strings
    /// count their 4 B dictionary code (the column's dictionary bytes
    /// amortize toward zero at low cardinality). Against dictionary-
    /// encoded AIS payloads the estimate lands within a few percent of
    /// the true column bytes; against plain-encoded payloads it
    /// undercounts the string columns' per-value payloads and lands
    /// within the ±25 % bound documented (and re-derived) in
    /// `tests/materialized_queries.rs`.
    pub fn attr_fraction(&self, array: &StoredArray, attrs: &[&str]) -> Result<f64> {
        let coord_bytes = (array.schema.ndims() * 8) as f64;
        let total: f64 = coord_bytes
            + array.schema.attributes.iter().map(|a| a.ty.fixed_width() as f64).sum::<f64>();
        let mut wanted = coord_bytes;
        for name in attrs {
            let idx = array.attribute_index(name)?;
            wanted += array.schema.attributes[idx].ty.fixed_width() as f64;
        }
        Ok((wanted / total).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StoredArray;
    use array_model::{Array, ArraySchema, ScalarValue};
    use cluster_sim::CostModel;

    fn setup() -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("A<v:int32, w:double>[x=0:7,2, y=0:7,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..8 {
            for y in 0..8 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Int32(1), ScalarValue::Double(0.5)])
                    .unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        // Alternate chunks across the two nodes.
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, NodeId((i % 2) as u32)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn chunks_in_region_filters_and_locates() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let all = ctx.chunks_in(ArrayId(0), None).unwrap();
        assert_eq!(all.len(), 16);
        let corner = Region::new(vec![0, 0], vec![1, 1]);
        let some = ctx.chunks_in(ArrayId(0), Some(&corner)).unwrap();
        assert_eq!(some.len(), 1);
        let bad = Region::new(vec![0], vec![1]);
        assert!(matches!(
            ctx.chunks_in(ArrayId(0), Some(&bad)),
            Err(QueryError::RegionArity { .. })
        ));
    }

    #[test]
    fn partially_materialized_arrays_fail_the_cells_gate() {
        let mut cluster = Cluster::new(1, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("P<v:int32>[x=0:7,2]").unwrap();
        let mk = |x: i64| {
            let mut c = Chunk::new(&schema, ChunkCoords::new([x / 2]));
            c.push_cell(&schema, vec![x], vec![ScalarValue::Int32(x as i32)]).unwrap();
            c
        };
        let (c0, c1) = (mk(0), mk(2));
        let (d0, d1) = (c0.descriptor(ArrayId(5)), c1.descriptor(ArrayId(5)));
        cluster.place(d0, NodeId(0)).unwrap();
        cluster.place(d1, NodeId(0)).unwrap();
        // Only the first chunk gets its payload: the gate must close so
        // operators fall back to model-only answers instead of silently
        // computing over half the cells.
        cluster.attach_payload(d0.key, c0).unwrap();
        let mut cat = Catalog::new();
        cat.register(StoredArray::from_descriptors(ArrayId(5), schema.clone(), [d0, d1]));
        {
            let ctx = ExecutionContext::new(&cluster, &cat);
            let array = cat.array(ArrayId(5)).unwrap();
            assert!(ctx.chunk_payload(array, &ChunkCoords::new([0])).is_some());
            assert!(ctx.chunk_payload(array, &ChunkCoords::new([1])).is_none());
            assert!(!ctx.cells_available(array), "half-materialized must fail the gate");
            assert_eq!(ctx.payload_chunks(array, None).count(), 1);
        }
        // Attaching the missing payload opens the gate.
        cluster.attach_payload(d1.key, c1).unwrap();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let array = cat.array(ArrayId(5)).unwrap();
        assert!(ctx.cells_available(array));
        assert_eq!(ctx.payload_chunks(array, None).count(), 2);
    }

    #[test]
    fn attr_fraction_reflects_vertical_partitioning() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let array = cat.array(ArrayId(0)).unwrap();
        // coords 16B + int32 4B + double 8B = 28B total
        let just_v = ctx.attr_fraction(array, &["v"]).unwrap();
        assert!((just_v - 20.0 / 28.0).abs() < 1e-9);
        let both = ctx.attr_fraction(array, &["v", "w"]).unwrap();
        assert!((both - 1.0).abs() < 1e-9);
        assert!(ctx.attr_fraction(array, &["nope"]).is_err());
    }

    #[test]
    fn failover_reads_come_from_replicas_and_count_degraded() {
        let mut cluster = Cluster::with_replication(3, u64::MAX, CostModel::default(), 2).unwrap();
        let schema = ArraySchema::parse("F<v:int32>[x=0:3,2]").unwrap();
        let mut c0 = Chunk::new(&schema, ChunkCoords::new([0]));
        c0.push_cell(&schema, vec![0], vec![ScalarValue::Int32(7)]).unwrap();
        let d0 = c0.descriptor(ArrayId(9));
        cluster.place(d0, NodeId(0)).unwrap();
        // Store the payload only on the replica holder: the primary serves
        // metadata, the replica serves the cells — a degraded read.
        let holder = cluster.replica_holders(&d0.key)[0];
        cluster.attach_replica_payload(d0.key, holder, c0).unwrap();
        let mut cat = Catalog::new();
        cat.register(StoredArray::from_descriptors(ArrayId(9), schema, [d0]));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let array = cat.array(ArrayId(9)).unwrap();
        assert_eq!(ctx.degraded_reads(), 0);
        assert!(ctx.chunk_payload(array, &ChunkCoords::new([0])).is_some());
        assert_eq!(ctx.degraded_reads(), 1);
        // Routing still names the serving primary: only the payload read
        // was degraded.
        assert_eq!(ctx.node_of(array, &ChunkCoords::new([0]), None).unwrap(), NodeId(0));
        assert_eq!(ctx.degraded_reads(), 1);
    }

    #[test]
    fn k1_crash_yields_typed_node_lost_not_wrong_answers() {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("L<v:int32>[x=0:3,2]").unwrap();
        let mk = |x: i64| {
            let mut c = Chunk::new(&schema, ChunkCoords::new([x / 2]));
            c.push_cell(&schema, vec![x], vec![ScalarValue::Int32(x as i32)]).unwrap();
            c
        };
        let (c0, c1) = (mk(0), mk(2));
        let (d0, d1) = (c0.descriptor(ArrayId(11)), c1.descriptor(ArrayId(11)));
        cluster.place(d0, NodeId(0)).unwrap();
        cluster.place(d1, NodeId(1)).unwrap();
        cluster.attach_payload(d0.key, c0).unwrap();
        cluster.attach_payload(d1.key, c1).unwrap();
        cluster.crash_node(NodeId(0)).unwrap();
        let mut cat = Catalog::new();
        // Store-only catalog: no whole-array oracle to fall back on.
        cat.register(StoredArray::from_descriptors(ArrayId(11), schema, [d0, d1]));
        let ctx = ExecutionContext::new(&cluster, &cat);
        let array = cat.array(ArrayId(11)).unwrap();
        assert!(matches!(
            ctx.node_of(array, &ChunkCoords::new([0]), None),
            Err(QueryError::NodeLost(k)) if k == d0.key
        ));
        assert!(ctx.chunk_payload(array, &ChunkCoords::new([0])).is_none());
        // The surviving chunk is untouched and un-degraded.
        assert_eq!(ctx.node_of(array, &ChunkCoords::new([1]), None).unwrap(), NodeId(1));
        assert!(ctx.chunk_payload(array, &ChunkCoords::new([1])).is_some());
        assert_eq!(ctx.degraded_reads(), 0);
        assert!(!ctx.cells_available(array), "lost cells must close the exactness gate");
    }

    #[test]
    fn catalog_oracle_backstops_crashed_k1_primaries_as_degraded() {
        let (mut cluster, cat) = setup();
        cluster.crash_node(NodeId(0)).unwrap();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let array = cat.array(ArrayId(0)).unwrap();
        // setup() places even-indexed chunks on node 0; the whole-array
        // catalog copy (from_array) stands in for every one of them.
        let all = ctx.chunks_in(ArrayId(0), None).unwrap();
        assert_eq!(all.len(), 16);
        // Every route lands on a serving node (node 0's eight chunks fail
        // over to the coordinator), and exactly those eight count degraded.
        assert!(all.iter().all(|(_, n)| *n == NodeId(1)));
        assert_eq!(ctx.degraded_reads(), 8);
        for coords in array.descriptors.keys() {
            assert!(ctx.chunk_payload(array, coords).is_some());
        }
        assert_eq!(ctx.degraded_reads(), 16);
        assert!(ctx.cells_available(array));
    }

    #[test]
    fn replicated_arrays_read_locally() {
        let mut cluster = Cluster::new(3, u64::MAX, CostModel::default()).unwrap();
        cluster.add_nodes(0, 0);
        let schema = ArraySchema::parse("V<t:int32>[id=0:9,10]").unwrap();
        let a = Array::new(ArrayId(7), schema);
        let stored = StoredArray::from_array(a).replicated();
        let mut cat = Catalog::new();
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let arr = cat.array(ArrayId(7)).unwrap();
        let coords = ChunkCoords::new([0]);
        assert_eq!(ctx.node_of(arr, &coords, Some(NodeId(2))).unwrap(), NodeId(2));
        assert_eq!(ctx.node_of(arr, &coords, None).unwrap(), cluster.coordinator());
    }
}
