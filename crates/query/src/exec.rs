//! Execution context: the cluster + catalog pair every operator runs
//! against, plus shared helpers (chunk routing, attribute byte fractions).

use crate::catalog::{Catalog, StoredArray};
use crate::error::{QueryError, Result};
use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, Region};
use cluster_sim::{Cluster, CostModel, NodeId};

/// Everything an operator needs to run.
#[derive(Debug)]
pub struct ExecutionContext<'a> {
    /// The cluster whose placement is being queried.
    pub cluster: &'a Cluster,
    /// The arrays.
    pub catalog: &'a Catalog,
}

impl<'a> ExecutionContext<'a> {
    /// Bundle a cluster and catalog.
    pub fn new(cluster: &'a Cluster, catalog: &'a Catalog) -> Self {
        ExecutionContext { cluster, catalog }
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        self.cluster.cost_model()
    }

    /// Which node holds this chunk. Replicated arrays are "held" by every
    /// node; callers pass the node that wants to read, and get it back.
    pub fn node_of(
        &self,
        array: &StoredArray,
        coords: &ChunkCoords,
        reader: Option<NodeId>,
    ) -> Result<NodeId> {
        if array.replicated {
            return Ok(reader.unwrap_or_else(|| self.cluster.coordinator()));
        }
        let key = array.key_for(coords);
        self.cluster.locate(&key).ok_or_else(|| QueryError::Unplaced(key.to_string()))
    }

    /// Chunks of `array` intersecting `region` (all chunks when `None`),
    /// with their resident nodes.
    pub fn chunks_in(
        &self,
        array_id: ArrayId,
        region: Option<&Region>,
    ) -> Result<Vec<(ChunkDescriptor, NodeId)>> {
        let array = self.catalog.array(array_id)?;
        if let Some(r) = region {
            if r.ndims() != array.schema.ndims() {
                return Err(QueryError::RegionArity {
                    expected: array.schema.ndims(),
                    got: r.ndims(),
                });
            }
        }
        let mut out = Vec::new();
        for (coords, desc) in &array.descriptors {
            if region.is_none_or(|r| r.intersects_chunk(&array.schema, coords)) {
                let node = self.node_of(array, coords, None)?;
                out.push((*desc, node));
            }
        }
        Ok(out)
    }

    /// The byte fraction of a chunk occupied by the named attributes —
    /// vertical partitioning means an operator reading two of seven
    /// attributes scans only their columns. Coordinates always come along
    /// (they are the chunk's positional index).
    pub fn attr_fraction(&self, array: &StoredArray, attrs: &[&str]) -> Result<f64> {
        let coord_bytes = (array.schema.ndims() * 8) as f64;
        let total: f64 = coord_bytes
            + array.schema.attributes.iter().map(|a| a.ty.fixed_width() as f64).sum::<f64>();
        let mut wanted = coord_bytes;
        for name in attrs {
            let idx = array.attribute_index(name)?;
            wanted += array.schema.attributes[idx].ty.fixed_width() as f64;
        }
        Ok((wanted / total).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StoredArray;
    use array_model::{Array, ArraySchema, ScalarValue};
    use cluster_sim::CostModel;

    fn setup() -> (Cluster, Catalog) {
        let mut cluster = Cluster::new(2, u64::MAX, CostModel::default()).unwrap();
        let schema = ArraySchema::parse("A<v:int32, w:double>[x=0:7,2, y=0:7,2]").unwrap();
        let mut a = Array::new(ArrayId(0), schema);
        for x in 0..8 {
            for y in 0..8 {
                a.insert_cell(vec![x, y], vec![ScalarValue::Int32(1), ScalarValue::Double(0.5)])
                    .unwrap();
            }
        }
        let stored = StoredArray::from_array(a);
        // Alternate chunks across the two nodes.
        for (i, d) in stored.descriptors.values().enumerate() {
            cluster.place(*d, NodeId((i % 2) as u32)).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(stored);
        (cluster, cat)
    }

    #[test]
    fn chunks_in_region_filters_and_locates() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let all = ctx.chunks_in(ArrayId(0), None).unwrap();
        assert_eq!(all.len(), 16);
        let corner = Region::new(vec![0, 0], vec![1, 1]);
        let some = ctx.chunks_in(ArrayId(0), Some(&corner)).unwrap();
        assert_eq!(some.len(), 1);
        let bad = Region::new(vec![0], vec![1]);
        assert!(matches!(
            ctx.chunks_in(ArrayId(0), Some(&bad)),
            Err(QueryError::RegionArity { .. })
        ));
    }

    #[test]
    fn attr_fraction_reflects_vertical_partitioning() {
        let (cluster, cat) = setup();
        let ctx = ExecutionContext::new(&cluster, &cat);
        let array = cat.array(ArrayId(0)).unwrap();
        // coords 16B + int32 4B + double 8B = 28B total
        let just_v = ctx.attr_fraction(array, &["v"]).unwrap();
        assert!((just_v - 20.0 / 28.0).abs() < 1e-9);
        let both = ctx.attr_fraction(array, &["v", "w"]).unwrap();
        assert!((both - 1.0).abs() < 1e-9);
        assert!(ctx.attr_fraction(array, &["nope"]).is_err());
    }

    #[test]
    fn replicated_arrays_read_locally() {
        let mut cluster = Cluster::new(3, u64::MAX, CostModel::default()).unwrap();
        cluster.add_nodes(0, 0);
        let schema = ArraySchema::parse("V<t:int32>[id=0:9,10]").unwrap();
        let a = Array::new(ArrayId(7), schema);
        let stored = StoredArray::from_array(a).replicated();
        let mut cat = Catalog::new();
        cat.register(stored);
        let ctx = ExecutionContext::new(&cluster, &cat);
        let arr = cat.array(ArrayId(7)).unwrap();
        let coords = ChunkCoords::new([0]);
        assert_eq!(ctx.node_of(arr, &coords, Some(NodeId(2))).unwrap(), NodeId(2));
        assert_eq!(ctx.node_of(arr, &coords, None).unwrap(), cluster.coordinator());
    }
}
