//! Incremental materialized views: O(|Δ|) maintenance over the placed
//! array (the delta-propagation layer ISSUE 8 builds on PR 3–7's
//! incremental ingest and retraction paths).
//!
//! A [`MaterializedView`] is a small dataflow over one array's logical
//! change stream ([`array_model::DeltaSet`]): filter/map stages run in
//! O(|Δ|); a hash join keeps an indexed Z-set per key and side; group
//! aggregates keep per-group accumulators (count/sum/avg exact under
//! retraction, min/max with rescan-on-retraction of the affected group
//! — see [`GroupState`]). The [`ViewRegistry`] routes each cycle's
//! deltas to every registered view, so the workload runner updates
//! views *per cycle* instead of re-running them.
//!
//! Determinism is load-bearing: view state depends only on the logical
//! delta stream, never on placement — rebalances, scale-in drains,
//! failovers, and tombstone compactions move bytes without producing a
//! delta — and every float fold happens in a fixed sorted order. An
//! incrementally maintained view is therefore **bit-identical** to a
//! from-scratch recompute ([`MaterializedView::snapshot`] is the
//! comparison form the differential suites pin).

mod state;

pub use state::{from_ord_bits, ord_bits, row_key, GroupState, KeyScalar, Row, RowKey, ZSet};

use array_model::{ArrayId, DeltaSet, ScalarValue};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A row predicate: keep or drop.
pub type PredFn = Arc<dyn Fn(&[i64], &[ScalarValue]) -> bool + Send + Sync>;
/// A row transform. Must be a pure function: retractions replay through
/// the same transform to cancel the rows it produced.
pub type MapFn = Arc<dyn Fn(&[i64], &[ScalarValue]) -> Row + Send + Sync>;
/// Grouping key extractor (dimension coarsening, attribute buckets, …).
pub type GroupKeyFn = Arc<dyn Fn(&[i64], &[ScalarValue]) -> Vec<i64> + Send + Sync>;
/// The aggregated value of a row.
pub type ValueFn = Arc<dyn Fn(&[i64], &[ScalarValue]) -> f64 + Send + Sync>;
/// Join-key extractor for one side of a hash join.
pub type JoinKeyFn = Arc<dyn Fn(&[i64], &[ScalarValue]) -> Vec<KeyScalar> + Send + Sync>;
/// Combines one left and one right row into an output row.
pub type EmitFn = Arc<dyn Fn(&Row, &Row) -> Row + Send + Sync>;

/// One linear stage of a view's dataflow.
#[derive(Clone)]
pub enum RowOp {
    /// Keep rows the predicate accepts — O(|Δ|), stateless.
    Filter(PredFn),
    /// Transform each row — O(|Δ|), stateless.
    Map(MapFn),
}

/// The aggregate a grouped view maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Net row count (integer-exact under retraction).
    Count,
    /// Sum of the value fn, re-folded sorted at finalization.
    Sum,
    /// Mean of the value fn (sorted-fold sum over integer count).
    Avg,
    /// Minimum — cached extremum, rescan-on-retraction.
    Min,
    /// Maximum — cached extremum, rescan-on-retraction.
    Max,
}

/// The shape of a view's dataflow.
#[derive(Clone)]
pub enum ViewKind {
    /// filter/map pipeline; output is the transformed Z-set.
    Select {
        /// The linear stages, applied in order.
        ops: Vec<RowOp>,
    },
    /// filter/map pipeline feeding grouped accumulators.
    Aggregate {
        /// The linear stages, applied in order.
        ops: Vec<RowOp>,
        /// Grouping key per (transformed) row.
        group_by: GroupKeyFn,
        /// Aggregated value per (transformed) row.
        value: ValueFn,
        /// Which aggregate to maintain.
        agg: AggKind,
    },
    /// Hash join with indexed per-key state on both sides.
    Join {
        /// Stages on the left (source-array) stream.
        ops: Vec<RowOp>,
        /// The right input array.
        right: ArrayId,
        /// Stages on the right stream.
        right_ops: Vec<RowOp>,
        /// Left join key.
        left_key: JoinKeyFn,
        /// Right join key.
        right_key: JoinKeyFn,
        /// Output-row constructor.
        emit: EmitFn,
    },
}

/// A view definition: a name, the source array, and the dataflow shape.
/// Cloneable (stages are `Arc`s), so the differential suites instantiate
/// a second, fresh copy for from-scratch recompute.
#[derive(Clone)]
pub struct ViewDef {
    /// Registry-unique name.
    pub name: String,
    /// The array whose delta stream drives the view (the *left* input
    /// of a join view).
    pub source: ArrayId,
    /// The dataflow shape.
    pub kind: ViewKind,
}

impl std::fmt::Debug for ViewDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            ViewKind::Select { .. } => "select",
            ViewKind::Aggregate { .. } => "aggregate",
            ViewKind::Join { .. } => "join",
        };
        write!(f, "ViewDef({} over {} [{kind}])", self.name, self.source)
    }
}

impl ViewDef {
    /// A filter/map view.
    pub fn select(name: impl Into<String>, source: ArrayId, ops: Vec<RowOp>) -> Self {
        ViewDef { name: name.into(), source, kind: ViewKind::Select { ops } }
    }

    /// A grouped-aggregate view.
    pub fn aggregate(
        name: impl Into<String>,
        source: ArrayId,
        ops: Vec<RowOp>,
        group_by: GroupKeyFn,
        value: ValueFn,
        agg: AggKind,
    ) -> Self {
        ViewDef {
            name: name.into(),
            source,
            kind: ViewKind::Aggregate { ops, group_by, value, agg },
        }
    }

    /// A hash-join view between `source` (left) and `right`.
    #[allow(clippy::too_many_arguments)]
    pub fn join(
        name: impl Into<String>,
        source: ArrayId,
        right: ArrayId,
        ops: Vec<RowOp>,
        right_ops: Vec<RowOp>,
        left_key: JoinKeyFn,
        right_key: JoinKeyFn,
        emit: EmitFn,
    ) -> Self {
        ViewDef {
            name: name.into(),
            source,
            kind: ViewKind::Join { ops, right, right_ops, left_key, right_key, emit },
        }
    }

    /// A fresh, empty view over this definition.
    pub fn instantiate(&self) -> MaterializedView {
        MaterializedView::new(self.clone())
    }

    /// The arrays whose deltas this view consumes.
    pub fn inputs(&self) -> Vec<ArrayId> {
        match &self.kind {
            ViewKind::Join { right, .. } if *right != self.source => vec![self.source, *right],
            _ => vec![self.source],
        }
    }
}

/// One finalized group row of an aggregate view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggRow {
    /// The finalized aggregate value.
    pub value: f64,
    /// Net rows in the group.
    pub cells: u64,
}

/// Cumulative maintenance counters for one view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Delta rows consumed (inserts + retractions).
    pub delta_rows: u64,
    /// Output rows/groups written or removed.
    pub rows_changed: u64,
    /// `apply` invocations.
    pub applies: u64,
}

/// What one `apply` call did, summed across views by the registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewApplyStats {
    /// Delta rows consumed.
    pub delta_rows: u64,
    /// Output rows/groups changed.
    pub rows_changed: u64,
}

impl ViewApplyStats {
    fn absorb(&mut self, other: ViewApplyStats) {
        self.delta_rows += other.delta_rows;
        self.rows_changed += other.rows_changed;
    }
}

/// The bit-exact comparison form of a view's output: floats as raw
/// bits, rows in key order. Two views with equal snapshots hold
/// identical state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewSnapshot {
    /// Select/join output rows: (coords, value key image, weight).
    pub rows: Vec<(Vec<i64>, Vec<KeyScalar>, i64)>,
    /// Aggregate output: (group key, value bits, net cells).
    pub groups: Vec<(Vec<i64>, u64, i64)>,
}

enum ViewState {
    Select { out: ZSet },
    Aggregate { groups: BTreeMap<Vec<i64>, GroupState>, out: BTreeMap<Vec<i64>, AggRow> },
    Join { left: BTreeMap<Vec<KeyScalar>, ZSet>, right: BTreeMap<Vec<KeyScalar>, ZSet>, out: ZSet },
}

/// A registered incremental view: definition, per-node state, and the
/// materialized output. Updated in O(|Δ|) per [`MaterializedView::apply`].
pub struct MaterializedView {
    def: ViewDef,
    state: ViewState,
    stats: ViewStats,
}

/// Run a row through the linear stages; `None` when a filter drops it.
fn apply_ops(ops: &[RowOp], coords: &[i64], values: &[ScalarValue]) -> Option<Row> {
    let mut row: Option<Row> = None;
    for op in ops {
        let (c, v) = match &row {
            Some((c, v)) => (c.as_slice(), v.as_slice()),
            None => (coords, values),
        };
        match op {
            RowOp::Filter(p) => {
                if !p(c, v) {
                    return None;
                }
            }
            RowOp::Map(m) => row = Some(m(c, v)),
        }
    }
    Some(row.unwrap_or_else(|| (coords.to_vec(), values.to_vec())))
}

impl MaterializedView {
    /// A fresh, empty view.
    pub fn new(def: ViewDef) -> Self {
        let state = match &def.kind {
            ViewKind::Select { .. } => ViewState::Select { out: ZSet::default() },
            ViewKind::Aggregate { .. } => {
                ViewState::Aggregate { groups: BTreeMap::new(), out: BTreeMap::new() }
            }
            ViewKind::Join { .. } => ViewState::Join {
                left: BTreeMap::new(),
                right: BTreeMap::new(),
                out: ZSet::default(),
            },
        };
        MaterializedView { def, state, stats: ViewStats::default() }
    }

    /// The definition this view maintains.
    pub fn def(&self) -> &ViewDef {
        &self.def
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// Cumulative maintenance counters.
    pub fn stats(&self) -> ViewStats {
        self.stats
    }

    /// Fold one array's delta into the view. Work is O(|Δ|) for
    /// filter/map, O(|Δ| · matches) for joins, and O(|Δ| log g) plus a
    /// sorted re-fold of each *touched* group for aggregates — never a
    /// function of the base array's size.
    pub fn apply(&mut self, array: ArrayId, delta: &DeltaSet) -> ViewApplyStats {
        let mut stats = ViewApplyStats::default();
        let is_left = array == self.def.source;
        let is_right = matches!(&self.def.kind, ViewKind::Join { right, .. } if *right == array);
        if !is_left && !is_right {
            return stats;
        }
        match (&self.def.kind, &mut self.state) {
            (ViewKind::Select { ops }, ViewState::Select { out }) => {
                for rd in delta.rows() {
                    stats.delta_rows += 1;
                    if let Some((c, v)) = apply_ops(ops, &rd.coords, &rd.values) {
                        out.add(&c, &v, rd.weight);
                        stats.rows_changed += 1;
                    }
                }
            }
            (
                ViewKind::Aggregate { ops, group_by, value, agg },
                ViewState::Aggregate { groups, out },
            ) => {
                let mut touched: BTreeSet<Vec<i64>> = BTreeSet::new();
                for rd in delta.rows() {
                    stats.delta_rows += 1;
                    if let Some((c, v)) = apply_ops(ops, &rd.coords, &rd.values) {
                        let gk = group_by(&c, &v);
                        groups.entry(gk.clone()).or_default().update(value(&c, &v), rd.weight);
                        touched.insert(gk);
                    }
                }
                for gk in touched {
                    stats.rows_changed += 1;
                    let finalized = groups.get(&gk).and_then(|g| {
                        if g.is_empty() {
                            return None;
                        }
                        let value = match agg {
                            AggKind::Count => g.count as f64,
                            AggKind::Sum => g.fold_sum(),
                            AggKind::Avg => g.fold_sum() / g.count as f64,
                            AggKind::Min => g.min()?,
                            AggKind::Max => g.max()?,
                        };
                        Some(AggRow { value, cells: g.count as u64 })
                    });
                    match finalized {
                        Some(row) => {
                            out.insert(gk, row);
                        }
                        None => {
                            groups.remove(&gk);
                            out.remove(&gk);
                        }
                    }
                }
            }
            (
                ViewKind::Join { ops, right_ops, left_key, right_key, emit, .. },
                ViewState::Join { left, right, out },
            ) => {
                // Bilinear update: ΔL ⋈ R, fold ΔL into L, then
                // (L+ΔL) ⋈ ΔR, fold ΔR into R. When the same array
                // feeds both sides this ordering computes
                // ΔL⋈R + L'⋈ΔR exactly — no double counting.
                if is_left {
                    stats.rows_changed +=
                        join_side(delta, ops, left_key, left, right, emit, false, out);
                    stats.delta_rows += delta.len() as u64;
                }
                if is_right {
                    stats.rows_changed +=
                        join_side(delta, right_ops, right_key, right, left, emit, true, out);
                    stats.delta_rows += delta.len() as u64;
                }
            }
            _ => unreachable!("state matches the definition by construction"),
        }
        self.stats.delta_rows += stats.delta_rows;
        self.stats.rows_changed += stats.rows_changed;
        self.stats.applies += 1;
        stats
    }

    /// The bit-exact comparison form of the current output.
    pub fn snapshot(&self) -> ViewSnapshot {
        match &self.state {
            ViewState::Select { out } | ViewState::Join { out, .. } => {
                ViewSnapshot { rows: out.keyed_entries(), groups: Vec::new() }
            }
            ViewState::Aggregate { out, .. } => ViewSnapshot {
                rows: Vec::new(),
                groups: out
                    .iter()
                    .map(|(k, r)| (k.clone(), r.value.to_bits(), r.cells as i64))
                    .collect(),
            },
        }
    }

    /// The materialized output of a select/join view (empty for
    /// aggregates — see [`MaterializedView::group_rows`]).
    pub fn output_rows(&self) -> Vec<(Row, i64)> {
        match &self.state {
            ViewState::Select { out } | ViewState::Join { out, .. } => {
                out.entries().map(|(r, w)| (r.clone(), w)).collect()
            }
            ViewState::Aggregate { .. } => Vec::new(),
        }
    }

    /// The finalized group table of an aggregate view.
    pub fn group_rows(&self) -> Vec<(Vec<i64>, AggRow)> {
        match &self.state {
            ViewState::Aggregate { out, .. } => out.iter().map(|(k, r)| (k.clone(), *r)).collect(),
            _ => Vec::new(),
        }
    }
}

/// Process one side's delta against the other side's index, then fold
/// the delta into this side's index. Returns output rows changed.
#[allow(clippy::too_many_arguments)]
fn join_side(
    delta: &DeltaSet,
    ops: &[RowOp],
    key_fn: &JoinKeyFn,
    my_index: &mut BTreeMap<Vec<KeyScalar>, ZSet>,
    other_index: &BTreeMap<Vec<KeyScalar>, ZSet>,
    emit: &EmitFn,
    swapped: bool,
    out: &mut ZSet,
) -> u64 {
    let mut changed = 0;
    for rd in delta.rows() {
        let Some((c, v)) = apply_ops(ops, &rd.coords, &rd.values) else { continue };
        let key = key_fn(&c, &v);
        let row = (c, v);
        if let Some(partners) = other_index.get(&key) {
            for (other, w_other) in partners.entries() {
                let (l, r) = if swapped { (other, &row) } else { (&row, other) };
                let (oc, ov) = emit(l, r);
                out.add(&oc, &ov, rd.weight * w_other);
                changed += 1;
            }
        }
        let slot = my_index.entry(key.clone()).or_default();
        slot.add(&row.0, &row.1, rd.weight);
        if slot.is_empty() {
            my_index.remove(&key);
        }
    }
    changed
}

/// The set of views the workload runner maintains: routes each cycle's
/// per-array deltas to every view that reads that array.
#[derive(Default)]
pub struct ViewRegistry {
    views: Vec<MaterializedView>,
}

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ViewRegistry::default()
    }

    /// Register a view; replaces any existing view with the same name.
    pub fn register(&mut self, def: ViewDef) {
        self.views.retain(|v| v.name() != def.name);
        self.views.push(MaterializedView::new(def));
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Registered views, in registration order.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// Look a view up by name.
    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.name() == name)
    }

    /// True when some view consumes `array`'s deltas — lets the runner
    /// skip delta extraction entirely for unwatched arrays.
    pub fn reads(&self, array: ArrayId) -> bool {
        self.views.iter().any(|v| v.def().inputs().contains(&array))
    }

    /// Fold one array's delta into every view that reads it.
    pub fn apply(&mut self, array: ArrayId, delta: &DeltaSet) -> ViewApplyStats {
        let mut stats = ViewApplyStats::default();
        for v in &mut self.views {
            stats.absorb(v.apply(array, delta));
        }
        stats
    }
}

// ---------------------------------------------------------------------
// Durable codecs. View *state* serializes; view *definitions* do not
// (stages are closures) — recovery re-supplies the same `ViewDef`s from
// configuration and lays the exported state over them, keyed by name.
// ---------------------------------------------------------------------

use durability::{ByteReader, ByteWriter, CodecError};

fn put_group_key(w: &mut ByteWriter, key: &[i64]) {
    w.put_usize(key.len());
    for &k in key {
        w.put_i64(k);
    }
}

fn read_group_key(r: &mut ByteReader<'_>) -> Result<Vec<i64>, CodecError> {
    let n = r.usize("group key len")?;
    let mut out = Vec::with_capacity(n.min(1 << 8));
    for _ in 0..n {
        out.push(r.i64("group key part")?);
    }
    Ok(out)
}

fn put_join_index(w: &mut ByteWriter, index: &BTreeMap<Vec<KeyScalar>, ZSet>) {
    w.put_usize(index.len());
    for (key, rows) in index {
        w.put_usize(key.len());
        for k in key {
            k.encode_into(w);
        }
        rows.encode_into(w);
    }
}

fn read_join_index(r: &mut ByteReader<'_>) -> Result<BTreeMap<Vec<KeyScalar>, ZSet>, CodecError> {
    let n = r.usize("join index len")?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let parts = r.usize("join key len")?;
        let mut key = Vec::with_capacity(parts.min(1 << 8));
        for _ in 0..parts {
            key.push(KeyScalar::decode_from(r)?);
        }
        out.insert(key, ZSet::decode_from(r)?);
    }
    Ok(out)
}

impl MaterializedView {
    /// Serialize this view's state and counters (not its definition).
    pub fn export_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.stats.delta_rows);
        w.put_u64(self.stats.rows_changed);
        w.put_u64(self.stats.applies);
        match &self.state {
            ViewState::Select { out } => {
                w.put_u8(0);
                out.encode_into(w);
            }
            ViewState::Aggregate { groups, out } => {
                w.put_u8(1);
                w.put_usize(groups.len());
                for (key, state) in groups {
                    put_group_key(w, key);
                    state.encode_into(w);
                }
                w.put_usize(out.len());
                for (key, row) in out {
                    put_group_key(w, key);
                    w.put_f64(row.value);
                    w.put_u64(row.cells);
                }
            }
            ViewState::Join { left, right, out } => {
                w.put_u8(2);
                put_join_index(w, left);
                put_join_index(w, right);
                out.encode_into(w);
            }
        }
    }

    /// Rebuild a view from `def` plus state exported by
    /// [`MaterializedView::export_state`]. The state tag must match the
    /// definition's shape — a mismatch is a typed error, not a guess.
    pub fn import_state(def: ViewDef, r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let stats = ViewStats {
            delta_rows: r.u64("view delta rows")?,
            rows_changed: r.u64("view rows changed")?,
            applies: r.u64("view applies")?,
        };
        let tag = r.u8("view state tag")?;
        let state = match (tag, &def.kind) {
            (0, ViewKind::Select { .. }) => ViewState::Select { out: ZSet::decode_from(r)? },
            (1, ViewKind::Aggregate { .. }) => {
                let n = r.usize("view group count")?;
                let mut groups = BTreeMap::new();
                for _ in 0..n {
                    let key = read_group_key(r)?;
                    groups.insert(key, GroupState::decode_from(r)?);
                }
                let n = r.usize("view agg row count")?;
                let mut out = BTreeMap::new();
                for _ in 0..n {
                    let key = read_group_key(r)?;
                    let value = r.f64("agg row value")?;
                    let cells = r.u64("agg row cells")?;
                    out.insert(key, AggRow { value, cells });
                }
                ViewState::Aggregate { groups, out }
            }
            (2, ViewKind::Join { .. }) => ViewState::Join {
                left: read_join_index(r)?,
                right: read_join_index(r)?,
                out: ZSet::decode_from(r)?,
            },
            (tag @ 0..=2, _) => {
                return Err(CodecError::Invalid {
                    context: "view state tag",
                    detail: format!("state tag {tag} does not match the shape of {def:?}"),
                })
            }
            (tag, _) => {
                return Err(CodecError::Invalid {
                    context: "view state tag",
                    detail: format!("unknown tag {tag}"),
                })
            }
        };
        Ok(MaterializedView { def, state, stats })
    }
}

impl ViewRegistry {
    /// Serialize every view's name and state, in registration order.
    pub fn export_states(&self, w: &mut ByteWriter) {
        w.put_usize(self.views.len());
        for view in &self.views {
            w.put_str(view.name());
            view.export_state(w);
        }
    }

    /// Rebuild a registry from re-supplied definitions plus states
    /// exported by [`ViewRegistry::export_states`]. Every serialized
    /// state must find its definition by name and vice versa — a missing
    /// or extra definition is a typed error (the recovered run would
    /// silently diverge otherwise).
    pub fn import_states(defs: Vec<ViewDef>, r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.usize("registry view count")?;
        if n != defs.len() {
            return Err(CodecError::Invalid {
                context: "registry view count",
                detail: format!("snapshot holds {n} views, caller supplied {} defs", defs.len()),
            });
        }
        let mut defs: Vec<Option<ViewDef>> = defs.into_iter().map(Some).collect();
        let mut views = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str("registry view name")?;
            let def = defs
                .iter_mut()
                .find(|d| d.as_ref().is_some_and(|d| d.name == name))
                .and_then(Option::take)
                .ok_or_else(|| CodecError::Invalid {
                    context: "registry view name",
                    detail: format!("no definition supplied for snapshotted view {name:?}"),
                })?;
            views.push(MaterializedView::import_state(def, r)?);
        }
        Ok(ViewRegistry { views })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ArrayId = ArrayId(1);
    const B: ArrayId = ArrayId(2);

    fn delta(rows: &[(i64, f64, i64)]) -> DeltaSet {
        let mut d = DeltaSet::new();
        for &(x, v, w) in rows {
            d.push(vec![x], vec![ScalarValue::Double(v)], w);
        }
        d
    }

    fn speed_filter() -> ViewDef {
        let pred: PredFn = Arc::new(|_, v| matches!(v[0], ScalarValue::Double(d) if d >= 10.0));
        ViewDef::select("fast", A, vec![RowOp::Filter(pred)])
    }

    #[test]
    fn filter_view_tracks_inserts_and_retractions() {
        let mut view = speed_filter().instantiate();
        view.apply(A, &delta(&[(1, 5.0, 1), (2, 12.0, 1), (3, 30.0, 1)]));
        assert_eq!(view.output_rows().len(), 2);
        view.apply(A, &delta(&[(2, 12.0, -1)]));
        assert_eq!(view.output_rows().len(), 1);
        // A delta for some other array is ignored.
        let s = view.apply(B, &delta(&[(9, 99.0, 1)]));
        assert_eq!(s, ViewApplyStats::default());
    }

    #[test]
    fn aggregate_views_are_exact_under_retraction() {
        let group: GroupKeyFn = Arc::new(|c, _| vec![c[0].div_euclid(10)]);
        let value: ValueFn =
            Arc::new(|_, v| if let ScalarValue::Double(d) = v[0] { d } else { 0.0 });
        for agg in [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
            let def = ViewDef::aggregate("g", A, Vec::new(), group.clone(), value.clone(), agg);
            let mut inc = def.instantiate();
            inc.apply(A, &delta(&[(1, 4.0, 1), (2, -1.0, 1), (11, 7.0, 1), (3, 9.0, 1)]));
            inc.apply(A, &delta(&[(2, -1.0, -1), (11, 7.0, -1)]));
            inc.apply(A, &delta(&[(12, 2.0, 1), (4, 9.0, 1)]));
            // From-scratch over the surviving rows, single batch.
            let mut scratch = def.instantiate();
            scratch.apply(A, &delta(&[(1, 4.0, 1), (3, 9.0, 1), (12, 2.0, 1), (4, 9.0, 1)]));
            assert_eq!(inc.snapshot(), scratch.snapshot(), "{agg:?}");
        }
    }

    #[test]
    fn min_rescan_survives_extremum_retraction() {
        let group: GroupKeyFn = Arc::new(|_, _| vec![0]);
        let value: ValueFn =
            Arc::new(|_, v| if let ScalarValue::Double(d) = v[0] { d } else { 0.0 });
        let def = ViewDef::aggregate("m", A, Vec::new(), group, value, AggKind::Min);
        let mut view = def.instantiate();
        view.apply(A, &delta(&[(1, 3.0, 1), (2, -5.0, 1), (3, 8.0, 1)]));
        assert_eq!(view.group_rows()[0].1.value, -5.0);
        view.apply(A, &delta(&[(2, -5.0, -1)]));
        assert_eq!(view.group_rows()[0].1.value, 3.0);
    }

    #[test]
    fn join_views_multiply_weights_and_cancel() {
        let key: JoinKeyFn = Arc::new(|c, _| vec![KeyScalar::Int(c[0])]);
        let emit: EmitFn = Arc::new(|l, r| (l.0.clone(), vec![l.1[0].clone(), r.1[0].clone()]));
        let def = ViewDef::join("j", A, B, Vec::new(), Vec::new(), key.clone(), key.clone(), emit);
        let mut view = def.instantiate();
        view.apply(A, &delta(&[(1, 1.5, 1), (2, 2.5, 1)]));
        assert!(view.output_rows().is_empty(), "no right side yet");
        view.apply(B, &delta(&[(1, 10.0, 1)]));
        assert_eq!(view.output_rows().len(), 1);
        // Retract the left partner: the joined row cancels.
        view.apply(A, &delta(&[(1, 1.5, -1)]));
        assert!(view.output_rows().is_empty());
        // Late left arrival joins the indexed right state.
        view.apply(A, &delta(&[(1, 9.0, 1)]));
        assert_eq!(view.output_rows().len(), 1);
    }

    /// One of each view shape, with history that exercises cancelled
    /// rows, retracted extrema, and indexed join state.
    fn eventful_registry() -> (ViewRegistry, Vec<ViewDef>) {
        let group: GroupKeyFn = Arc::new(|c, _| vec![c[0].div_euclid(10)]);
        let value: ValueFn =
            Arc::new(|_, v| if let ScalarValue::Double(d) = v[0] { d } else { 0.0 });
        let key: JoinKeyFn = Arc::new(|c, _| vec![KeyScalar::Int(c[0])]);
        let emit: EmitFn = Arc::new(|l, r| (l.0.clone(), vec![l.1[0].clone(), r.1[0].clone()]));
        let defs = vec![
            speed_filter(),
            ViewDef::aggregate("sums", A, Vec::new(), group, value, AggKind::Min),
            ViewDef::join("j", A, B, Vec::new(), Vec::new(), key.clone(), key, emit),
        ];
        let mut reg = ViewRegistry::new();
        for def in &defs {
            reg.register(def.clone());
        }
        reg.apply(A, &delta(&[(1, 4.0, 1), (2, -1.0, 1), (11, 7.0, 1), (3, 30.0, 1)]));
        reg.apply(B, &delta(&[(1, 10.0, 1), (3, 20.0, 1)]));
        reg.apply(A, &delta(&[(2, -1.0, -1), (11, 7.0, -1)]));
        (reg, defs)
    }

    #[test]
    fn registry_state_round_trips_and_continues_bit_identically() {
        let (mut reg, defs) = eventful_registry();
        let mut w = durability::ByteWriter::new();
        reg.export_states(&mut w);
        let bytes = w.into_bytes();

        let mut r = durability::ByteReader::new(&bytes);
        let mut restored = ViewRegistry::import_states(defs, &mut r).expect("import");
        assert!(r.is_empty(), "state fully consumed");
        for (a, b) in reg.views().iter().zip(restored.views()) {
            assert_eq!(a.snapshot(), b.snapshot(), "{}: snapshot diverged", a.name());
            assert_eq!(a.stats(), b.stats(), "{}: stats diverged", a.name());
        }
        // The restored registry keeps evolving identically — including
        // join-index hits and a min-extremum retraction.
        for (array, rows) in
            [(A, vec![(3, 30.0, -1), (12, 2.0, 1)]), (B, vec![(1, 10.0, -1), (12, 5.0, 1)])]
        {
            let d = delta(&rows);
            reg.apply(array, &d);
            restored.apply(array, &d);
        }
        for (a, b) in reg.views().iter().zip(restored.views()) {
            assert_eq!(a.snapshot(), b.snapshot(), "{}: diverged after resume", a.name());
        }
        // Re-export of the restored registry is byte-identical... only
        // before the extra deltas; assert on a fresh export pair instead.
        let (mut w1, mut w2) = (durability::ByteWriter::new(), durability::ByteWriter::new());
        reg.export_states(&mut w1);
        restored.export_states(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes(), "exports diverged after resume");
    }

    #[test]
    fn registry_import_rejects_corruption_and_def_mismatch_typed() {
        let (reg, defs) = eventful_registry();
        let mut w = durability::ByteWriter::new();
        reg.export_states(&mut w);
        let bytes = w.into_bytes();

        // Every strict prefix fails typed, never panics.
        for cut in 0..bytes.len() {
            let mut r = durability::ByteReader::new(&bytes[..cut]);
            assert!(
                ViewRegistry::import_states(defs.clone(), &mut r).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // A def-set that does not match the snapshot is rejected.
        let mut r = durability::ByteReader::new(&bytes);
        assert!(ViewRegistry::import_states(defs[..2].to_vec(), &mut r).is_err());
        let mut renamed = defs.clone();
        renamed[0].name = "somebody-else".to_string();
        let mut r = durability::ByteReader::new(&bytes);
        assert!(ViewRegistry::import_states(renamed, &mut r).is_err());
        // A state tag laid over the wrong shape is rejected: feed the
        // aggregate view's state to the select definition by swapping
        // names in the def set.
        let mut swapped = defs.clone();
        let (a, b) = (swapped[0].name.clone(), swapped[1].name.clone());
        swapped[0].name = b;
        swapped[1].name = a;
        let mut r = durability::ByteReader::new(&bytes);
        assert!(ViewRegistry::import_states(swapped, &mut r).is_err());
    }

    #[test]
    fn registry_routes_by_array_and_replaces_by_name() {
        let mut reg = ViewRegistry::new();
        reg.register(speed_filter());
        assert!(reg.reads(A));
        assert!(!reg.reads(B));
        let s = reg.apply(A, &delta(&[(1, 11.0, 1)]));
        assert_eq!(s.delta_rows, 1);
        assert_eq!(reg.view("fast").unwrap().output_rows().len(), 1);
        // Re-registering under the same name resets state.
        reg.register(speed_filter());
        assert!(reg.view("fast").unwrap().output_rows().is_empty());
        assert_eq!(reg.views().len(), 1);
    }
}
