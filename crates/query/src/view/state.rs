//! Per-view state: Z-sets, deterministic row keys, and per-group
//! accumulators. Everything here is keyed and folded in a fixed total
//! order so that an incrementally maintained view and a from-scratch
//! recompute build *bit-identical* state — integer weights are exact,
//! and float aggregates are finalized by the same sorted fold over the
//! same multiset on both paths.

use array_model::ScalarValue;
use std::collections::BTreeMap;

/// A deterministic, totally ordered image of a [`ScalarValue`]: integers
/// widen to `i64`, floats become their raw bit patterns, strings stay
/// themselves. Two values map to the same `KeyScalar` iff they are
/// bit-identical — which is exactly the equivalence incremental
/// retraction needs (a retracted row must cancel the inserted row, bit
/// for bit).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KeyScalar {
    /// `int32` / `int64` / `char`, widened.
    Int(i64),
    /// An `f32`'s raw bits.
    F32(u32),
    /// An `f64`'s raw bits.
    F64(u64),
    /// A string, verbatim.
    Str(String),
}

impl KeyScalar {
    /// The deterministic key image of `v`.
    pub fn of(v: &ScalarValue) -> KeyScalar {
        match v {
            ScalarValue::Int32(i) => KeyScalar::Int(*i as i64),
            ScalarValue::Int64(i) => KeyScalar::Int(*i),
            ScalarValue::Char(c) => KeyScalar::Int(*c as i64),
            ScalarValue::Float(f) => KeyScalar::F32(f.to_bits()),
            ScalarValue::Double(d) => KeyScalar::F64(d.to_bits()),
            ScalarValue::Str(s) => KeyScalar::Str(s.clone()),
        }
    }
}

/// Map an `f64` to a `u64` whose unsigned order equals the float's
/// numeric total order (negatives before positives, `-0.0 < +0.0`,
/// NaNs at the extremes) — the standard sign-flip trick. Lossless.
pub fn ord_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1u64 << 63)
    }
}

/// Inverse of [`ord_bits`].
pub fn from_ord_bits(o: u64) -> f64 {
    let b = if o >> 63 == 1 { o ^ (1u64 << 63) } else { !o };
    f64::from_bits(b)
}

/// A logical row flowing through a view: cell coordinates plus attribute
/// values (possibly transformed by map stages).
pub type Row = (Vec<i64>, Vec<ScalarValue>);

/// The deterministic identity of a [`Row`].
pub type RowKey = (Vec<i64>, Vec<KeyScalar>);

/// The key image of a row.
pub fn row_key(coords: &[i64], values: &[ScalarValue]) -> RowKey {
    (coords.to_vec(), values.iter().map(KeyScalar::of).collect())
}

/// A Z-set: rows with signed integer multiplicities. Weights sum on
/// insertion; a row whose weight reaches zero vanishes (so a view over
/// a consistent insert/retract stream converges to exactly the
/// surviving rows). Iteration order is the total order of [`RowKey`].
#[derive(Debug, Clone, Default)]
pub struct ZSet {
    rows: BTreeMap<RowKey, (Row, i64)>,
}

impl ZSet {
    /// Add `weight` copies of the row; returns the row's new net weight.
    pub fn add(&mut self, coords: &[i64], values: &[ScalarValue], weight: i64) -> i64 {
        if weight == 0 {
            return self.weight_of(coords, values);
        }
        let key = row_key(coords, values);
        let entry = self.rows.entry(key).or_insert_with(|| ((coords.to_vec(), values.to_vec()), 0));
        entry.1 += weight;
        let w = entry.1;
        if w == 0 {
            self.rows.remove(&row_key(coords, values));
        }
        w
    }

    /// The net weight of a row (0 when absent).
    pub fn weight_of(&self, coords: &[i64], values: &[ScalarValue]) -> i64 {
        self.rows.get(&row_key(coords, values)).map_or(0, |(_, w)| *w)
    }

    /// Distinct rows carried.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are carried.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows and their weights, in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&Row, i64)> {
        self.rows.values().map(|(row, w)| (row, *w))
    }

    /// The deterministic identity of every row with its weight, in key
    /// order — the bit-exact comparison form.
    pub fn keyed_entries(&self) -> Vec<(Vec<i64>, Vec<KeyScalar>, i64)> {
        self.rows.iter().map(|((c, v), (_, w))| (c.clone(), v.clone(), *w)).collect()
    }
}

/// One group's accumulator: an exact row count plus a sorted multiset of
/// the aggregated value (keyed by [`ord_bits`], so iteration order is
/// numeric order) and cached extrema.
///
/// * `count`/`sum`/`avg` are exact under retraction: the count is integer
///   arithmetic, and sums are **re-folded from the multiset** in
///   ascending numeric order at finalization — never maintained as a
///   running float — so the incremental path and a from-scratch
///   recompute produce bit-identical doubles.
/// * `min`/`max` are served from cached extrema; retracting the last
///   copy of the extremum triggers a rescan of the affected group's
///   multiset (O(log n) here, since the multiset is sorted — the rescan
///   cost the paper-adjacent IVM literature pays per affected group).
#[derive(Debug, Clone, Default)]
pub struct GroupState {
    /// Net row count (Z-set weight sum) — exact.
    pub count: i64,
    /// Sorted multiset: [`ord_bits`] of each value → net multiplicity.
    values: BTreeMap<u64, i64>,
    min_bits: Option<u64>,
    max_bits: Option<u64>,
}

impl GroupState {
    /// Fold `weight` copies of `value` into the group.
    pub fn update(&mut self, value: f64, weight: i64) {
        self.count += weight;
        let bits = ord_bits(value);
        let slot = self.values.entry(bits).or_insert(0);
        *slot += weight;
        let emptied = *slot == 0;
        if emptied {
            self.values.remove(&bits);
        }
        if weight > 0 && !emptied {
            // Cheap cached-extremum maintenance on insert.
            self.min_bits = Some(self.min_bits.map_or(bits, |m| m.min(bits)));
            self.max_bits = Some(self.max_bits.map_or(bits, |m| m.max(bits)));
        } else if emptied && (self.min_bits == Some(bits) || self.max_bits == Some(bits)) {
            // The retraction killed the cached extremum: rescan the
            // affected group. The multiset is sorted by numeric order,
            // so the rescan is its first/last key.
            self.min_bits = self.values.keys().next().copied();
            self.max_bits = self.values.keys().next_back().copied();
        }
    }

    /// True when the group carries no rows and can be dropped.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.values.is_empty()
    }

    /// Deterministic sum: ascending-numeric-order fold over the multiset.
    /// Shared verbatim by the incremental and recompute paths, which is
    /// what makes them bit-identical.
    pub fn fold_sum(&self) -> f64 {
        let mut sum = 0.0;
        for (&bits, &mult) in &self.values {
            sum += from_ord_bits(bits) * mult as f64;
        }
        sum
    }

    /// Cached minimum (numeric), if the group is non-empty.
    pub fn min(&self) -> Option<f64> {
        self.min_bits.map(from_ord_bits)
    }

    /// Cached maximum (numeric), if the group is non-empty.
    pub fn max(&self) -> Option<f64> {
        self.max_bits.map(from_ord_bits)
    }
}

// ---------------------------------------------------------------------
// Durable codecs. A Z-set is serialized as its rows-with-weights and
// rebuilt through `add`, so the decoded set re-derives every RowKey from
// the same bytes — bit-identical by the same argument that makes
// incremental maintenance equal recompute. Group accumulators serialize
// all four fields verbatim (the cached extrema are part of the state the
// crash interrupted, not something to re-guess).
// ---------------------------------------------------------------------

use durability::{ByteReader, ByteWriter, CodecError};

impl KeyScalar {
    /// Serialize as a one-byte tag plus the payload.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            KeyScalar::Int(v) => {
                w.put_u8(0);
                w.put_i64(*v);
            }
            KeyScalar::F32(b) => {
                w.put_u8(1);
                w.put_u32(*b);
            }
            KeyScalar::F64(b) => {
                w.put_u8(2);
                w.put_u64(*b);
            }
            KeyScalar::Str(s) => {
                w.put_u8(3);
                w.put_str(s);
            }
        }
    }

    /// Decode a key scalar written by [`KeyScalar::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8("key scalar tag")? {
            0 => KeyScalar::Int(r.i64("key int")?),
            1 => KeyScalar::F32(r.u32("key f32 bits")?),
            2 => KeyScalar::F64(r.u64("key f64 bits")?),
            3 => KeyScalar::Str(r.str("key string")?),
            t => {
                return Err(CodecError::Invalid {
                    context: "key scalar tag",
                    detail: format!("unknown tag {t}"),
                })
            }
        })
    }
}

impl ZSet {
    /// Serialize every row with its net weight, in key order.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.rows.len());
        for ((coords, values), weight) in self.rows.values() {
            w.put_usize(coords.len());
            for &c in coords {
                w.put_i64(c);
            }
            w.put_usize(values.len());
            for v in values {
                v.encode_into(w);
            }
            w.put_i64(*weight);
        }
    }

    /// Decode a Z-set written by [`ZSet::encode_into`], rebuilding each
    /// row key through [`ZSet::add`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.usize("zset row count")?;
        let mut out = ZSet::default();
        for _ in 0..n {
            let nc = r.usize("zset coord count")?;
            let mut coords = Vec::with_capacity(nc.min(1 << 8));
            for _ in 0..nc {
                coords.push(r.i64("zset coord")?);
            }
            let nv = r.usize("zset value count")?;
            let mut values = Vec::with_capacity(nv.min(1 << 8));
            for _ in 0..nv {
                values.push(ScalarValue::decode_from(r)?);
            }
            let weight = r.i64("zset weight")?;
            if weight == 0 {
                return Err(CodecError::Invalid {
                    context: "zset weight",
                    detail: "zero-weight row in snapshot (cancelled rows are never stored)"
                        .to_string(),
                });
            }
            out.add(&coords, &values, weight);
        }
        Ok(out)
    }
}

impl GroupState {
    /// Serialize the accumulator verbatim: count, the sorted multiset,
    /// and the cached extrema.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_i64(self.count);
        w.put_usize(self.values.len());
        for (&bits, &mult) in &self.values {
            w.put_u64(bits);
            w.put_i64(mult);
        }
        for opt in [self.min_bits, self.max_bits] {
            match opt {
                Some(bits) => {
                    w.put_bool(true);
                    w.put_u64(bits);
                }
                None => w.put_bool(false),
            }
        }
    }

    /// Decode an accumulator written by [`GroupState::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let count = r.i64("group count")?;
        let n = r.usize("group multiset len")?;
        let mut values = BTreeMap::new();
        for _ in 0..n {
            let bits = r.u64("group value bits")?;
            let mult = r.i64("group multiplicity")?;
            values.insert(bits, mult);
        }
        let mut extrema = [None, None];
        for slot in &mut extrema {
            if r.bool("group extremum flag")? {
                *slot = Some(r.u64("group extremum bits")?);
            }
        }
        Ok(GroupState { count, values, min_bits: extrema[0], max_bits: extrema[1] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_bits_is_a_numeric_total_order() {
        let xs = [-f64::INFINITY, -3.5, -0.0, 0.0, 1.0e-300, 2.5, f64::INFINITY];
        let mapped: Vec<u64> = xs.iter().map(|&v| ord_bits(v)).collect();
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        assert_eq!(mapped, sorted, "order preserved");
        for &v in &xs {
            assert_eq!(from_ord_bits(ord_bits(v)).to_bits(), v.to_bits(), "lossless");
        }
    }

    #[test]
    fn zset_weights_cancel() {
        let mut z = ZSet::default();
        let v = [ScalarValue::Double(1.5)];
        assert_eq!(z.add(&[3], &v, 1), 1);
        assert_eq!(z.add(&[3], &v, 1), 2);
        assert_eq!(z.add(&[3], &v, -1), 1);
        assert_eq!(z.add(&[3], &v, -1), 0);
        assert!(z.is_empty());
    }

    #[test]
    fn group_extrema_rescan_on_retraction() {
        let mut g = GroupState::default();
        for v in [4.0, -1.0, 9.0, 9.0] {
            g.update(v, 1);
        }
        assert_eq!((g.min(), g.max()), (Some(-1.0), Some(9.0)));
        g.update(9.0, -1); // one copy left: extremum survives
        assert_eq!(g.max(), Some(9.0));
        g.update(9.0, -1); // last copy: rescan finds 4.0
        assert_eq!(g.max(), Some(4.0));
        g.update(-1.0, -1);
        assert_eq!((g.min(), g.max()), (Some(4.0), Some(4.0)));
        assert_eq!(g.count, 1);
        g.update(4.0, -1);
        assert!(g.is_empty());
        assert_eq!((g.min(), g.max()), (None, None));
    }

    #[test]
    fn fold_sum_is_order_independent_of_arrival() {
        let mut a = GroupState::default();
        let mut b = GroupState::default();
        let vals = [0.1, 0.7, 1.0e16, -0.3, 2.5e-7];
        for &v in &vals {
            a.update(v, 1);
        }
        for &v in vals.iter().rev() {
            b.update(v, 1);
        }
        assert_eq!(a.fold_sum().to_bits(), b.fold_sum().to_bits());
    }
}
