//! The typed error surface of the durability layer. Every failure mode
//! a damaged log or checkpoint can produce maps to exactly one variant
//! — recovery never guesses and never fabricates state.

use crate::codec::CodecError;
use std::fmt;

/// What went wrong while logging, checkpointing, or recovering.
#[derive(Debug)]
pub enum DurabilityError {
    /// An I/O failure in a storage backend.
    Io {
        /// The operation that failed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The log ends mid-record: a torn append. `offset` is the last
    /// valid record boundary — everything before it is intact, and
    /// recovery truncates there.
    Torn {
        /// Byte offset of the last valid record boundary.
        offset: u64,
    },
    /// A fully-present record failed validation (bad magic, insane
    /// length, or checksum mismatch). Unlike a torn tail this is not
    /// safely truncatable — it is surfaced, never silently skipped.
    Corruption {
        /// Byte offset of the damaged record.
        offset: u64,
        /// Which check failed.
        detail: String,
    },
    /// A record or checkpoint payload failed to decode.
    Codec {
        /// What was being decoded.
        context: String,
        /// The underlying codec failure.
        source: CodecError,
    },
    /// Recovered state disagrees with a logged cross-check (ledger
    /// totals, config fingerprints, replayed fault schedules).
    Mismatch {
        /// What disagreed.
        what: String,
        /// The value the log promised.
        expected: String,
        /// The value recovery produced.
        actual: String,
    },
    /// A checkpoint the log referenced is missing from the store.
    MissingCheckpoint {
        /// The checkpoint sequence number.
        seq: u64,
    },
}

impl Clone for DurabilityError {
    /// `std::io::Error` is not `Clone`; the clone preserves its kind and
    /// rendered message, which is everything the typed surface promises.
    fn clone(&self) -> Self {
        match self {
            DurabilityError::Io { context, source } => DurabilityError::Io {
                context: context.clone(),
                source: std::io::Error::new(source.kind(), source.to_string()),
            },
            DurabilityError::Torn { offset } => DurabilityError::Torn { offset: *offset },
            DurabilityError::Corruption { offset, detail } => {
                DurabilityError::Corruption { offset: *offset, detail: detail.clone() }
            }
            DurabilityError::Codec { context, source } => {
                DurabilityError::Codec { context: context.clone(), source: source.clone() }
            }
            DurabilityError::Mismatch { what, expected, actual } => DurabilityError::Mismatch {
                what: what.clone(),
                expected: expected.clone(),
                actual: actual.clone(),
            },
            DurabilityError::MissingCheckpoint { seq } => {
                DurabilityError::MissingCheckpoint { seq: *seq }
            }
        }
    }
}

impl PartialEq for DurabilityError {
    /// Structural equality; I/O errors compare by operation and kind
    /// (the payload message is platform wording, not identity).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                DurabilityError::Io { context: a, source: sa },
                DurabilityError::Io { context: b, source: sb },
            ) => a == b && sa.kind() == sb.kind(),
            (DurabilityError::Torn { offset: a }, DurabilityError::Torn { offset: b }) => a == b,
            (
                DurabilityError::Corruption { offset: a, detail: da },
                DurabilityError::Corruption { offset: b, detail: db },
            ) => a == b && da == db,
            (
                DurabilityError::Codec { context: a, source: sa },
                DurabilityError::Codec { context: b, source: sb },
            ) => a == b && sa == sb,
            (
                DurabilityError::Mismatch { what: a, expected: ea, actual: aa },
                DurabilityError::Mismatch { what: b, expected: eb, actual: ab },
            ) => a == b && ea == eb && aa == ab,
            (
                DurabilityError::MissingCheckpoint { seq: a },
                DurabilityError::MissingCheckpoint { seq: b },
            ) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { context, source } => write!(f, "io during {context}: {source}"),
            DurabilityError::Torn { offset } => {
                write!(f, "torn log tail after valid record boundary at byte {offset}")
            }
            DurabilityError::Corruption { offset, detail } => {
                write!(f, "corrupt record at byte {offset}: {detail}")
            }
            DurabilityError::Codec { context, source } => {
                write!(f, "undecodable {context}: {source}")
            }
            DurabilityError::Mismatch { what, expected, actual } => {
                write!(f, "recovery mismatch on {what}: log says {expected}, rebuilt {actual}")
            }
            DurabilityError::MissingCheckpoint { seq } => {
                write!(f, "checkpoint {seq} missing from store")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }
}
