//! IEEE CRC-32 (reflected, polynomial `0xEDB88320`) over a const
//! lookup table — the checksum every framed record carries.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_sum() {
        let base = b"the quick brown fox".to_vec();
        let sum = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), sum, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
