//! Hand-rolled little-endian binary codec: the primitive layer every
//! durable payload (log events, checkpoint sections) is built from.
//! Reads are cursor-based and total — malformed input yields a typed
//! [`CodecError`], never a panic or a partial value.

use std::fmt;

/// A growing little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value it promised.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the value needed.
        wanted: usize,
        /// Bytes the input still had.
        remaining: usize,
    },
    /// The input decoded but the value is out of range or malformed.
    Invalid {
        /// What was being decoded.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context, wanted, remaining } => {
                write!(f, "truncated {context}: wanted {wanted} bytes, {remaining} remain")
            }
            CodecError::Invalid { context, detail } => {
                write!(f, "invalid {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked little-endian cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Require the cursor to sit exactly at the end of the input.
    pub fn finish(&self, context: &'static str) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Invalid {
                context,
                detail: format!("{} trailing bytes", self.remaining()),
            })
        }
    }

    fn take(&mut self, context: &'static str, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context, wanted: n, remaining: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(context, 1)?[0])
    }

    /// Read a bool byte; anything but 0/1 is invalid.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::Invalid { context, detail: format!("bool byte {b}") }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(context, 4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(context, 8)?.try_into().unwrap()))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self, context: &'static str) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(context, 16)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(context, 8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read a `u64` narrowed to `usize`.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let v = self.u64(context)?;
        usize::try_from(v)
            .map_err(|_| CodecError::Invalid { context, detail: format!("{v} overflows usize") })
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.u32(context)? as usize;
        self.take(context, len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<String, CodecError> {
        let raw = self.bytes(context)?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| CodecError::Invalid { context, detail: format!("utf8: {e}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_usize(99);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.u128("e").unwrap(), u128::MAX / 3);
        assert_eq!(r.i64("f").unwrap(), -42);
        assert_eq!(r.f64("g").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.usize("h").unwrap(), 99);
        assert_eq!(r.bytes("i").unwrap(), &[1, 2, 3]);
        assert_eq!(r.str("j").unwrap(), "héllo");
        r.finish("tail").unwrap();
    }

    #[test]
    fn truncation_is_typed_not_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let err = r.u64("value").unwrap_err();
            assert!(matches!(err, CodecError::Truncated { wanted: 8, .. }), "{err}");
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool("flag"), Err(CodecError::Invalid { .. })));
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str("name"), Err(CodecError::Invalid { .. })));
    }
}
