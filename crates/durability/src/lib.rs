//! Crash-consistent durability primitives: a checksummed write-ahead
//! log, a checkpoint store, and the torn-write recovery rules the rest
//! of the workspace builds on.
//!
//! # Record format
//!
//! Every log record and every checkpoint blob is framed identically:
//!
//! ```text
//! +-------------+-------------+-------------+------------------+
//! | magic (u32) | len   (u32) | crc32 (u32) | payload (len B)  |
//! +-------------+-------------+-------------+------------------+
//! ```
//!
//! All integers are little-endian. `magic` is [`RECORD_MAGIC`]
//! (`"WAL1"`), `len` is the payload byte count (capped at
//! [`MAX_RECORD_LEN`] as a sanity bound against corrupted lengths), and
//! `crc32` is the IEEE CRC-32 of the payload bytes. The payload itself
//! is an opaque event encoding owned by the caller (the workload runner
//! logs cycle boundaries, placed cell batches, retraction scripts,
//! scale decisions, and node lifecycle transitions).
//!
//! # Torn tails vs corruption
//!
//! A crash can tear the final append: the durable image ends with a
//! *prefix* of a record. [`RecordReader`] classifies every anomaly:
//!
//! * a tail shorter than the 12-byte header, or a fully-headered record
//!   whose payload runs past end-of-log, is **torn** —
//!   [`DurabilityError::Torn`] names the last valid record boundary and
//!   recovery truncates there, keeping every complete record;
//! * a wrong magic, an out-of-range length, or a CRC mismatch on a
//!   record that is fully present is **corruption** —
//!   [`DurabilityError::Corruption`] is surfaced as a typed error and
//!   recovery refuses to guess. The log never yields a wrong answer: a
//!   damaged image produces either a valid prefix state or an error.
//!
//! (A bit flip inside the *final* record's length field can masquerade
//! as a torn tail; recovery then truncates to the preceding boundary,
//! which is still a valid prefix state — the invariant holds.)
//!
//! # Checkpoint / replay invariant
//!
//! A checkpoint is a framed snapshot of the full logical state at a
//! commit point (a cycle boundary) plus the log offset it covers.
//! Recovery loads the newest checkpoint that validates, then replays
//! the log suffix from the covered offset, applying only *complete*
//! committed groups (records up to the last commit marker) and
//! discarding any uncommitted tail. The invariant: checkpoint state +
//! replayed suffix is bit-identical to the state an uninterrupted run
//! holds at the same commit point — placements, loads, census,
//! tombstones, and view accumulators included.

#![warn(missing_docs)]

mod codec;
mod crc;
mod error;
mod log;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use crc::crc32;
pub use error::DurabilityError;
pub use log::{
    frame_record, shared, FileLog, FsyncPolicy, LogStore, MemLog, RecordReader, SharedLog,
    MAX_RECORD_LEN, RECORD_HEADER_LEN, RECORD_MAGIC,
};
