//! Record framing, the [`LogStore`] backend trait, a real `std::fs`
//! file backend, and a deterministic in-memory backend that can tear
//! its own tail or flip any byte — the fault injector the recovery
//! tests drive.

use crate::crc::crc32;
use crate::error::DurabilityError;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The four magic bytes opening every record: `"WAL1"` little-endian.
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"WAL1");

/// Framing overhead per record: magic + length + checksum.
pub const RECORD_HEADER_LEN: usize = 12;

/// Sanity cap on a record's payload length. A length field above this
/// is treated as corruption, not as a (absurd) allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// Frame `payload` as a record: magic, length, CRC-32, payload.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD_LEN as usize, "record payload over sanity cap");
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A cursor over a framed log image that yields record payloads and
/// classifies every anomaly as torn (truncatable) or corrupt (typed
/// error) — see the crate docs for the classification rules.
#[derive(Debug)]
pub struct RecordReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    /// A reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// The byte offset of the next record boundary — after an `Ok`,
    /// the end of everything validated so far.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// The next record's payload, `None` at a clean end-of-log.
    ///
    /// `Err(Torn { offset })` means the log ends with a partial append
    /// and `offset` is the last valid boundary; `Err(Corruption)`
    /// means a fully-present record failed validation.
    pub fn next_record(&mut self) -> Result<Option<&'a [u8]>, DurabilityError> {
        let remaining = self.buf.len() - self.pos;
        if remaining == 0 {
            return Ok(None);
        }
        let boundary = self.pos as u64;
        // Check the magic over however many of its bytes are present: a
        // torn append still writes the record prefix in order, so any
        // present prefix byte that mismatches is corruption, not a tear.
        let have = remaining.min(4);
        if self.buf[self.pos..self.pos + have] != RECORD_MAGIC.to_le_bytes()[..have] {
            return Err(DurabilityError::Corruption {
                offset: boundary,
                detail: "bad record magic".into(),
            });
        }
        if remaining < RECORD_HEADER_LEN {
            return Err(DurabilityError::Torn { offset: boundary });
        }
        let len = u32::from_le_bytes(self.buf[self.pos + 4..self.pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Err(DurabilityError::Corruption {
                offset: boundary,
                detail: format!("record length {len} over sanity cap"),
            });
        }
        let total = RECORD_HEADER_LEN + len as usize;
        if remaining < total {
            return Err(DurabilityError::Torn { offset: boundary });
        }
        let expect = u32::from_le_bytes(self.buf[self.pos + 8..self.pos + 12].try_into().unwrap());
        let payload = &self.buf[self.pos + RECORD_HEADER_LEN..self.pos + total];
        if crc32(payload) != expect {
            return Err(DurabilityError::Corruption {
                offset: boundary,
                detail: "payload checksum mismatch".into(),
            });
        }
        self.pos += total;
        Ok(Some(payload))
    }
}

/// When appended log records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Flush after every record append (slowest, no committed record
    /// is ever lost).
    Always,
    /// Flush once per cycle, at the commit marker — a crash loses at
    /// most the uncommitted cycle in flight.
    #[default]
    PerCycle,
    /// Never flush explicitly; a crash may tear anywhere.
    Never,
}

/// A durable backend: one append-only log plus a keyed checkpoint
/// store. Checkpoint writes are atomic (a torn checkpoint write leaves
/// the previous checkpoint intact), log appends are not — that is what
/// [`RecordReader`]'s torn-tail rule exists for.
pub trait LogStore {
    /// Append raw framed bytes to the log tail.
    fn append(&mut self, bytes: &[u8]) -> Result<(), DurabilityError>;
    /// Force everything appended so far to stable storage.
    fn flush(&mut self) -> Result<(), DurabilityError>;
    /// The current durable log image, in full.
    fn read_log(&mut self) -> Result<Vec<u8>, DurabilityError>;
    /// Discard every log byte at and after `len` (torn-tail repair).
    fn truncate_log(&mut self, len: u64) -> Result<(), DurabilityError>;
    /// Atomically store checkpoint `seq`.
    fn write_checkpoint(&mut self, seq: u64, bytes: &[u8]) -> Result<(), DurabilityError>;
    /// Available checkpoint sequence numbers, ascending.
    fn checkpoint_seqs(&mut self) -> Result<Vec<u64>, DurabilityError>;
    /// Read back checkpoint `seq`.
    fn read_checkpoint(&mut self, seq: u64) -> Result<Vec<u8>, DurabilityError>;
}

/// A shareable handle to a [`LogStore`]: the runner appends through it
/// while tests keep a clone to crash, corrupt, and recover from.
pub type SharedLog = Arc<Mutex<dyn LogStore + Send>>;

/// Wrap a backend in a [`SharedLog`] handle.
pub fn shared<L: LogStore + Send + 'static>(log: L) -> SharedLog {
    Arc::new(Mutex::new(log))
}

fn io_err(context: &str, source: std::io::Error) -> DurabilityError {
    DurabilityError::Io { context: context.to_string(), source }
}

/// The real `std::fs` backend: `wal.log` plus `ckpt-<seq>.bin` files
/// in one directory. Checkpoints are written to a temp file and
/// renamed into place, so a crash mid-checkpoint never damages an
/// older checkpoint.
#[derive(Debug)]
pub struct FileLog {
    dir: PathBuf,
    wal: fs::File,
}

impl FileLog {
    /// Open (creating if needed) a log directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create log dir", e))?;
        let wal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join("wal.log"))
            .map_err(|e| io_err("open wal.log", e))?;
        Ok(Self { dir, wal })
    }

    fn checkpoint_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq}.bin"))
    }
}

impl LogStore for FileLog {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DurabilityError> {
        self.wal.write_all(bytes).map_err(|e| io_err("append wal.log", e))
    }

    fn flush(&mut self) -> Result<(), DurabilityError> {
        self.wal.sync_data().map_err(|e| io_err("fsync wal.log", e))
    }

    fn read_log(&mut self) -> Result<Vec<u8>, DurabilityError> {
        let mut buf = Vec::new();
        self.wal.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek wal.log", e))?;
        self.wal.read_to_end(&mut buf).map_err(|e| io_err("read wal.log", e))?;
        Ok(buf)
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), DurabilityError> {
        self.wal.set_len(len).map_err(|e| io_err("truncate wal.log", e))?;
        self.wal.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal.log", e))?;
        Ok(())
    }

    fn write_checkpoint(&mut self, seq: u64, bytes: &[u8]) -> Result<(), DurabilityError> {
        let tmp = self.dir.join(format!("ckpt-{seq}.tmp"));
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create checkpoint tmp", e))?;
        f.write_all(bytes).map_err(|e| io_err("write checkpoint tmp", e))?;
        f.sync_data().map_err(|e| io_err("fsync checkpoint tmp", e))?;
        drop(f);
        fs::rename(&tmp, self.checkpoint_path(seq))
            .map_err(|e| io_err("rename checkpoint into place", e))
    }

    fn checkpoint_seqs(&mut self) -> Result<Vec<u64>, DurabilityError> {
        let mut seqs = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("list log dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list log dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".bin")) {
                if let Ok(seq) = seq.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn read_checkpoint(&mut self, seq: u64) -> Result<Vec<u8>, DurabilityError> {
        match fs::read(self.checkpoint_path(seq)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(DurabilityError::MissingCheckpoint { seq })
            }
            Err(e) => Err(io_err("read checkpoint", e)),
        }
    }
}

/// The deterministic in-memory backend. It models the flushed/buffered
/// boundary explicitly: [`MemLog::crash`] discards everything past the
/// last flush, [`MemLog::crash_truncate`] tears the image at *any*
/// byte offset (partial flush), and [`MemLog::corrupt_byte`] flips
/// bits in place — the three fault shapes recovery must survive.
#[derive(Debug, Default, Clone)]
pub struct MemLog {
    data: Vec<u8>,
    flushed: usize,
    checkpoints: BTreeMap<u64, Vec<u8>>,
}

impl MemLog {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes appended (flushed or not).
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// True when the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes guaranteed durable by the last [`LogStore::flush`].
    pub fn flushed_len(&self) -> u64 {
        self.flushed as u64
    }

    /// The raw log image, for offline inspection.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Simulate a crash: everything past the last flush is lost.
    pub fn crash(&mut self) {
        self.data.truncate(self.flushed);
    }

    /// Simulate a torn write: the durable image ends at exactly
    /// `offset` bytes, regardless of flush state.
    pub fn crash_truncate(&mut self, offset: u64) {
        self.data.truncate(offset as usize);
        self.flushed = self.flushed.min(self.data.len());
    }

    /// Flip every set bit of `mask` in the byte at `offset`.
    pub fn corrupt_byte(&mut self, offset: u64, mask: u8) {
        let i = offset as usize;
        assert!(i < self.data.len(), "corrupt_byte past end of log");
        self.data[i] ^= mask;
    }

    /// Drop a stored checkpoint (simulating a checkpoint file lost or
    /// never renamed into place).
    pub fn drop_checkpoint(&mut self, seq: u64) {
        self.checkpoints.remove(&seq);
    }

    /// Flip every set bit of `mask` at `offset` inside checkpoint
    /// `seq` — the recovery scan must skip it to an older survivor.
    pub fn corrupt_checkpoint(&mut self, seq: u64, offset: u64, mask: u8) {
        let blob = self.checkpoints.get_mut(&seq).expect("checkpoint exists");
        blob[offset as usize] ^= mask;
    }
}

impl LogStore for MemLog {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DurabilityError> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DurabilityError> {
        self.flushed = self.data.len();
        Ok(())
    }

    fn read_log(&mut self) -> Result<Vec<u8>, DurabilityError> {
        Ok(self.data.clone())
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), DurabilityError> {
        self.data.truncate(len as usize);
        self.flushed = self.flushed.min(self.data.len());
        Ok(())
    }

    fn write_checkpoint(&mut self, seq: u64, bytes: &[u8]) -> Result<(), DurabilityError> {
        self.checkpoints.insert(seq, bytes.to_vec());
        Ok(())
    }

    fn checkpoint_seqs(&mut self) -> Result<Vec<u64>, DurabilityError> {
        Ok(self.checkpoints.keys().copied().collect())
    }

    fn read_checkpoint(&mut self, seq: u64) -> Result<Vec<u8>, DurabilityError> {
        self.checkpoints.get(&seq).cloned().ok_or(DurabilityError::MissingCheckpoint { seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            buf.extend_from_slice(&frame_record(p));
        }
        buf
    }

    #[test]
    fn frames_round_trip_in_order() {
        let buf = log_of(&[b"alpha", b"", b"gamma rays"]);
        let mut r = RecordReader::new(&buf);
        assert_eq!(r.next_record().unwrap(), Some(&b"alpha"[..]));
        assert_eq!(r.next_record().unwrap(), Some(&b""[..]));
        assert_eq!(r.next_record().unwrap(), Some(&b"gamma rays"[..]));
        assert_eq!(r.next_record().unwrap(), None);
        assert_eq!(r.offset(), buf.len() as u64);
    }

    #[test]
    fn every_truncation_is_clean_or_torn_at_a_boundary() {
        let buf = log_of(&[b"one", b"two", b"three"]);
        let boundaries: Vec<u64> = {
            let mut b = vec![0u64];
            let mut r = RecordReader::new(&buf);
            while r.next_record().unwrap().is_some() {
                b.push(r.offset());
            }
            b
        };
        for cut in 0..=buf.len() {
            let mut r = RecordReader::new(&buf[..cut]);
            let mut last = 0u64;
            loop {
                match r.next_record() {
                    Ok(Some(_)) => last = r.offset(),
                    Ok(None) => {
                        assert!(boundaries.contains(&(cut as u64)), "clean end off-boundary");
                        break;
                    }
                    Err(DurabilityError::Torn { offset }) => {
                        assert_eq!(offset, last, "torn offset names the last valid boundary");
                        assert!(boundaries.contains(&offset));
                        break;
                    }
                    Err(e) => panic!("truncation must never read as corruption: {e}"),
                }
            }
        }
    }

    #[test]
    fn interior_bit_flips_are_corruption_never_wrong_payloads() {
        let buf = log_of(&[b"first record", b"second record"]);
        let first_total = RECORD_HEADER_LEN + b"first record".len();
        for offset in 0..first_total {
            for mask in [0x01u8, 0x80u8] {
                let mut damaged = buf.clone();
                damaged[offset] ^= mask;
                let mut r = RecordReader::new(&damaged);
                match r.next_record() {
                    Err(DurabilityError::Corruption { offset: at, .. }) => assert_eq!(at, 0),
                    // A flip in the length field can masquerade as a
                    // torn tail — allowed, it still truncates safely.
                    Err(DurabilityError::Torn { offset: at }) => {
                        assert_eq!(at, 0);
                        assert!((4..8).contains(&offset), "only len flips may read torn");
                    }
                    Ok(Some(p)) => panic!("damaged record yielded payload {p:?}"),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn memlog_crash_respects_flush_boundary() {
        let mut log = MemLog::new();
        log.append(&frame_record(b"committed")).unwrap();
        log.flush().unwrap();
        log.append(&frame_record(b"in flight")).unwrap();
        log.crash();
        let img = log.read_log().unwrap();
        let mut r = RecordReader::new(&img);
        assert_eq!(r.next_record().unwrap(), Some(&b"committed"[..]));
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn file_log_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut log = FileLog::open(&dir).unwrap();
            log.append(&frame_record(b"alpha")).unwrap();
            log.append(&frame_record(b"beta")).unwrap();
            log.flush().unwrap();
            log.write_checkpoint(1, b"snap-one").unwrap();
            log.write_checkpoint(3, b"snap-three").unwrap();
        }
        {
            // Reopen: appends and checkpoints survive the handle.
            let mut log = FileLog::open(&dir).unwrap();
            let img = log.read_log().unwrap();
            let mut r = RecordReader::new(&img);
            assert_eq!(r.next_record().unwrap(), Some(&b"alpha"[..]));
            let after_alpha = r.offset();
            assert_eq!(r.next_record().unwrap(), Some(&b"beta"[..]));
            assert_eq!(log.checkpoint_seqs().unwrap(), vec![1, 3]);
            assert_eq!(log.read_checkpoint(3).unwrap(), b"snap-three");
            assert!(matches!(
                log.read_checkpoint(2),
                Err(DurabilityError::MissingCheckpoint { seq: 2 })
            ));
            log.truncate_log(after_alpha).unwrap();
            log.append(&frame_record(b"gamma")).unwrap();
            let img = log.read_log().unwrap();
            let mut r = RecordReader::new(&img);
            assert_eq!(r.next_record().unwrap(), Some(&b"alpha"[..]));
            assert_eq!(r.next_record().unwrap(), Some(&b"gamma"[..]));
            assert_eq!(r.next_record().unwrap(), None);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
