//! Balance and cost metrics.
//!
//! The paper's two headline metrics live here:
//!
//! * **relative standard deviation** (RSD) of per-node storage — the
//!   balance labels of Figure 4 ("standard deviation divided by the mean,
//!   as a percent of the average host load");
//! * **node hours** — Equation 1's provisioning cost,
//!   `cost = Σ_i N_i (I_i + r_i + w_i)`.

use serde::{Deserialize, Serialize};

/// Relative standard deviation of node loads, as a *fraction* (0.13 =
/// 13 %). Uses the population standard deviation, matching the paper's
/// per-insert census of every host. Returns 0 for empty or all-zero input.
pub fn relative_std_dev(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let n = loads.len() as f64;
    let mean = loads.iter().map(|&b| b as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = loads
        .iter()
        .map(|&b| {
            let d = b as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// The phases of one workload cycle (§3.4), plus crash-repair time —
/// zero in fault-free runs, so Equation 1 is unchanged there, and costed
/// like reorganization when faults are injected (recovery holds the
/// provisioned nodes busy just as a rebalance does).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Ingest duration `I_i` (seconds).
    pub insert_secs: f64,
    /// Reorganization duration `r_i` (seconds).
    pub reorg_secs: f64,
    /// Query workload duration `w_i` (seconds).
    pub query_secs: f64,
    /// Crash-repair duration (seconds): recovery flows through the
    /// contention solver plus retry backoff.
    pub repair_secs: f64,
}

impl PhaseBreakdown {
    /// Total seconds across all phases (repair included).
    pub fn total_secs(&self) -> f64 {
        self.insert_secs + self.reorg_secs + self.query_secs + self.repair_secs
    }
}

/// Accumulates Equation 1 over workload cycles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeHoursLedger {
    cycles: Vec<(usize, PhaseBreakdown)>,
}

impl NodeHoursLedger {
    /// Start an empty ledger.
    pub fn new() -> Self {
        NodeHoursLedger::default()
    }

    /// Record one cycle executed on `nodes` provisioned nodes.
    pub fn record(&mut self, nodes: usize, phases: PhaseBreakdown) {
        self.cycles.push((nodes, phases));
    }

    /// Number of cycles recorded (φ).
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }

    /// Equation 1: Σ N_i (I_i + r_i + w_i), in node-hours.
    pub fn node_hours(&self) -> f64 {
        self.cycles.iter().map(|(n, p)| *n as f64 * p.total_secs()).sum::<f64>() / 3600.0
    }

    /// Total elapsed seconds regardless of node count.
    pub fn elapsed_secs(&self) -> f64 {
        self.cycles.iter().map(|(_, p)| p.total_secs()).sum()
    }

    /// Per-cycle view for reporting.
    pub fn cycles(&self) -> &[(usize, PhaseBreakdown)] {
        &self.cycles
    }

    /// Sum of each phase across all cycles, in seconds.
    pub fn phase_totals(&self) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::default();
        for (_, p) in &self.cycles {
            out.insert_secs += p.insert_secs;
            out.reorg_secs += p.reorg_secs;
            out.query_secs += p.query_secs;
            out.repair_secs += p.repair_secs;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsd_of_uniform_loads_is_zero() {
        assert_eq!(relative_std_dev(&[100, 100, 100]), 0.0);
        assert_eq!(relative_std_dev(&[]), 0.0);
        assert_eq!(relative_std_dev(&[0, 0]), 0.0);
    }

    #[test]
    fn rsd_matches_hand_computation() {
        // loads 50,150: mean 100, pop std dev 50 -> RSD 0.5
        let rsd = relative_std_dev(&[50, 150]);
        assert!((rsd - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rsd_grows_with_skew() {
        let balanced = relative_std_dev(&[90, 100, 110, 100]);
        let skewed = relative_std_dev(&[10, 10, 10, 370]);
        assert!(skewed > balanced * 5.0);
    }

    #[test]
    fn ledger_computes_equation_one() {
        let mut ledger = NodeHoursLedger::new();
        // 2 nodes busy for 1800 s each phase sum -> 1 node-hour
        ledger.record(
            2,
            PhaseBreakdown {
                insert_secs: 600.0,
                reorg_secs: 600.0,
                query_secs: 600.0,
                repair_secs: 0.0,
            },
        );
        assert!((ledger.node_hours() - 1.0).abs() < 1e-12);
        ledger.record(
            4,
            PhaseBreakdown {
                insert_secs: 900.0,
                reorg_secs: 0.0,
                query_secs: 900.0,
                repair_secs: 0.0,
            },
        );
        assert!((ledger.node_hours() - 3.0).abs() < 1e-12);
        assert_eq!(ledger.cycle_count(), 2);
        let totals = ledger.phase_totals();
        assert!((totals.insert_secs - 1500.0).abs() < 1e-12);
        assert!((ledger.elapsed_secs() - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn repair_time_is_costed_in_node_hours() {
        let mut ledger = NodeHoursLedger::new();
        ledger.record(
            2,
            PhaseBreakdown {
                insert_secs: 600.0,
                reorg_secs: 600.0,
                query_secs: 0.0,
                repair_secs: 600.0,
            },
        );
        // Repair holds the fleet busy exactly like reorganization does.
        assert!((ledger.node_hours() - 1.0).abs() < 1e-12);
        assert!((ledger.phase_totals().repair_secs - 600.0).abs() < 1e-12);
    }
}
