//! Error type for cluster simulation.

use crate::node::NodeState;
use array_model::ChunkKey;
use std::fmt;

/// Errors raised by cluster state transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Referenced a node that does not exist.
    UnknownNode(u32),
    /// Placed a chunk that is already resident somewhere.
    DuplicateChunk(ChunkKey),
    /// Moved or looked up a chunk that is not resident.
    MissingChunk(ChunkKey),
    /// A move's `from` node disagrees with the chunk's actual location.
    WrongSource {
        /// The chunk being moved.
        key: ChunkKey,
        /// Where the plan claimed it was.
        claimed: u32,
        /// Where it actually is.
        actual: u32,
    },
    /// The cluster must keep at least one node.
    EmptyCluster,
    /// A materialized payload disagreed with the placed descriptor's
    /// byte or cell count (the metadata model and the cells drifted
    /// apart). Boxed: the detail is error-path-only and would otherwise
    /// fatten every `Result` on the ingest path.
    PayloadMismatch(Box<PayloadMismatch>),
    /// An operation targeted a node whose lifecycle state cannot serve
    /// it (e.g. attaching a payload to a `Crashed` node, or an invalid
    /// lifecycle transition).
    NodeUnavailable {
        /// The node that was targeted.
        node: u32,
        /// Its lifecycle state at the time.
        state: NodeState,
    },
    /// A payload was attached twice for the same chunk on the same node;
    /// re-attachment would silently shadow cells already being served.
    PayloadExists(ChunkKey),
    /// A replica operation targeted a node that does not hold a replica
    /// descriptor for the chunk.
    NotAReplica {
        /// The chunk whose replica was addressed.
        key: ChunkKey,
        /// The node that holds no such replica.
        node: u32,
    },
    /// Every node in the cluster is out of service; the operation needs
    /// at least one surviving node.
    NoHealthyNodes,
    /// Tried to retire a node that still holds primary chunks; drain it
    /// (rebalance the chunks away) first.
    RetireNonEmpty {
        /// The node that was targeted.
        node: u32,
        /// Primary chunks still resident there.
        chunks: usize,
    },
    /// A cell-level operation needs the chunk's materialized payload, but
    /// only its metadata descriptor is resident (metadata-scale runs
    /// retract through descriptor shrinks instead).
    NoPayload(ChunkKey),
}

/// How a payload drifted from its placed descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadMismatch {
    /// The chunk whose payload was attached.
    pub key: ChunkKey,
    /// Bytes the resident descriptor declares.
    pub descriptor_bytes: u64,
    /// Bytes the payload actually stores.
    pub payload_bytes: u64,
    /// Cells the resident descriptor declares.
    pub descriptor_cells: u64,
    /// Cells the payload actually stores.
    pub payload_cells: u64,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ClusterError::DuplicateChunk(key) => write!(f, "chunk {key} already placed"),
            ClusterError::MissingChunk(key) => write!(f, "chunk {key} is not resident"),
            ClusterError::WrongSource { key, claimed, actual } => {
                write!(f, "move of {key} claims source node {claimed} but it lives on {actual}")
            }
            ClusterError::EmptyCluster => write!(f, "cluster requires at least one node"),
            ClusterError::PayloadMismatch(m) => write!(
                f,
                "payload of {} stores {} bytes / {} cells but its descriptor declares \
                 {} bytes / {} cells",
                m.key, m.payload_bytes, m.payload_cells, m.descriptor_bytes, m.descriptor_cells
            ),
            ClusterError::NodeUnavailable { node, state } => {
                write!(f, "node {node} is {state} and cannot serve this operation")
            }
            ClusterError::PayloadExists(key) => {
                write!(f, "payload of {key} is already attached on its node")
            }
            ClusterError::NotAReplica { key, node } => {
                write!(f, "node {node} holds no replica of chunk {key}")
            }
            ClusterError::NoHealthyNodes => {
                write!(f, "no node in the cluster is in service")
            }
            ClusterError::RetireNonEmpty { node, chunks } => {
                write!(f, "node {node} still holds {chunks} primary chunks and cannot retire")
            }
            ClusterError::NoPayload(key) => {
                write!(f, "chunk {key} has no materialized payload to retract cells from")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
