//! # cluster-sim
//!
//! A deterministic shared-nothing cluster simulator: the substrate that
//! stands in for the paper's 8-node SciDB testbed. Nodes hold chunk
//! descriptors against a storage budget; all data movement (insert
//! distribution, rebalances, query shuffles) reduces to [`FlowSet`]s whose
//! elapsed time comes from an explicit byte-flow cost model with
//! half-duplex endpoints and a fabric bisection floor.
//!
//! ```
//! use cluster_sim::{Cluster, CostModel, NodeId};
//! use array_model::{ArrayId, ChunkCoords, ChunkDescriptor, ChunkKey};
//!
//! let mut cluster = Cluster::new(2, 100_000_000_000, CostModel::default()).unwrap();
//! let key = ChunkKey::new(ArrayId(0), ChunkCoords::new([0, 0]));
//! cluster.place(ChunkDescriptor::new(key, 50_000_000, 1_000), NodeId(1)).unwrap();
//! assert_eq!(cluster.locate(&key), Some(NodeId(1)));
//! ```

#![warn(missing_docs)]

mod cluster;
mod cost;
mod durable;
mod error;
mod metrics;
mod node;
mod placement;
mod rebalance;
mod recovery;
mod transfer;

pub use cluster::{
    ChunkCompaction, ChunkEviction, ChunkRetraction, Cluster, CrashReport, DecommissionReport,
    PayloadRead, ReplicaCensus,
};
pub use cost::{gb, CostModel, BYTES_PER_GB};
pub use error::{ClusterError, PayloadMismatch, Result};
pub use metrics::{relative_std_dev, NodeHoursLedger, PhaseBreakdown};
pub use node::{Node, NodeId, NodeState};
pub use rebalance::{ChunkMove, RebalancePlan};
pub use recovery::{BackoffPolicy, Flakiness, MidCrash, RecoveryOutcome, RepairJob, RepairPlan};
pub use transfer::{Flow, FlowSet};
