//! Rebalance plans: the chunk moves a partitioner emits at scale-out.

use crate::node::NodeId;
use crate::transfer::FlowSet;
use array_model::ChunkKey;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One chunk relocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMove {
    /// The chunk to relocate.
    pub key: ChunkKey,
    /// Node currently holding it.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload size, for cost accounting.
    pub bytes: u64,
}

/// An ordered batch of chunk moves produced by one scale-out decision.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalancePlan {
    /// The moves, in emission order.
    pub moves: Vec<ChunkMove>,
}

impl RebalancePlan {
    /// An empty plan (what Append produces — §4.2: "it requires no data
    /// movement").
    pub fn empty() -> Self {
        RebalancePlan::default()
    }

    /// Add a move, dropping degenerate self-moves.
    pub fn push(&mut self, key: ChunkKey, from: NodeId, to: NodeId, bytes: u64) {
        if from != to {
            self.moves.push(ChunkMove { key, from, to, bytes });
        }
    }

    /// Number of chunk moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True when no data moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Total bytes relocated.
    pub fn moved_bytes(&self) -> u64 {
        self.moves.iter().map(|m| m.bytes).sum()
    }

    /// The Table-1 *incremental scale-out* property: data is only
    /// transferred from preexisting nodes to `new_nodes`, never between
    /// preexisting nodes.
    pub fn is_incremental(&self, new_nodes: &[NodeId]) -> bool {
        let new: BTreeSet<NodeId> = new_nodes.iter().copied().collect();
        self.moves.iter().all(|m| new.contains(&m.to) && !new.contains(&m.from))
    }

    /// Distinct destination nodes.
    pub fn destinations(&self) -> BTreeSet<NodeId> {
        self.moves.iter().map(|m| m.to).collect()
    }

    /// Convert to a concurrent flow set for timing.
    pub fn flow_set(&self) -> FlowSet {
        let mut fs = FlowSet::new();
        for m in &self.moves {
            fs.push(m.from, m.to, m.bytes);
        }
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_model::{ArrayId, ChunkCoords};

    fn key(i: i64) -> ChunkKey {
        ChunkKey::new(ArrayId(0), ChunkCoords::new([i]))
    }

    #[test]
    fn self_moves_are_dropped() {
        let mut plan = RebalancePlan::empty();
        plan.push(key(1), NodeId(0), NodeId(0), 100);
        assert!(plan.is_empty());
        plan.push(key(1), NodeId(0), NodeId(1), 100);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.moved_bytes(), 100);
    }

    #[test]
    fn incremental_property_detects_old_to_old_traffic() {
        let new = vec![NodeId(2), NodeId(3)];
        let mut incremental = RebalancePlan::empty();
        incremental.push(key(1), NodeId(0), NodeId(2), 10);
        incremental.push(key(2), NodeId(1), NodeId(3), 10);
        assert!(incremental.is_incremental(&new));

        let mut global = RebalancePlan::empty();
        global.push(key(3), NodeId(0), NodeId(1), 10); // old -> old
        assert!(!global.is_incremental(&new));

        let mut out_of_new = RebalancePlan::empty();
        out_of_new.push(key(4), NodeId(2), NodeId(0), 10); // new -> old
        assert!(!out_of_new.is_incremental(&new));
    }

    #[test]
    fn flow_set_mirrors_moves() {
        let mut plan = RebalancePlan::empty();
        plan.push(key(1), NodeId(0), NodeId(2), 7);
        plan.push(key(2), NodeId(1), NodeId(2), 9);
        let fs = plan.flow_set();
        assert_eq!(fs.total_bytes(), 16);
        assert_eq!(fs.network_bytes(), 16);
        assert_eq!(fs.chunk_count(), 2);
        assert_eq!(plan.destinations().len(), 1);
    }
}
