//! The cluster's chunk→node placement index, sharded for parallel ingest.
//!
//! PR 1 replaced the original `BTreeMap<ChunkKey, NodeId>` with a
//! per-array dense grid (flat row-major `Vec<u32>`), making insert and
//! lookup O(1). This revision splits every dense grid into
//! **coordinate-range shards**: shard `s` owns the disjoint row-major
//! slab `[s << slab_shift, (s+1) << slab_shift)` of the slot vector,
//! plus its own spill map for everything that cannot live in a slab
//! (coordinates past the registered extents, unregistered arrays, and
//! array ids beyond the indexed range, which hash onto a shard).
//!
//! Because a chunk's shard is a pure function of its key
//! ([`PlacementIndex::shard_of`]), a batch of placements can be
//! partitioned by shard and executed by one thread per shard group with
//! no synchronization: every write lands in shard-owned state. The
//! sequential API (`get`/`insert`) is unchanged and routes through the
//! same shards, so single-chunk and batched placement see one
//! authoritative map.

use crate::node::NodeId;
use array_model::{ArrayId, ChunkCoords, ChunkKey, MAX_DIMS};
use std::collections::HashMap;

/// Vacant-slot sentinel in dense slabs (`NodeId`s are join-order indices
/// and can never reach it: clusters hold well under 4 billion nodes).
const VACANT: u32 = u32::MAX;

/// Largest dense grid we will allocate, in slots (16M slots = 64 MB).
/// Bigger registrations silently stay sparse.
const DENSE_SLOT_CAP: u128 = 1 << 24;

/// Highest `ArrayId` that gets its own indexed slot; stranger ids share
/// the sharded spill maps.
const ARRAY_ID_CAP: u32 = 4096;

/// Number of coordinate-range shards. A power of two so spill hashing is
/// a mask; also the upper bound on useful placement-phase parallelism.
pub(crate) const SHARD_COUNT: usize = 16;

/// SplitMix64 finalizer, local so `cluster-sim` stays dependency-free.
/// Shared with replica routing and deterministic fault injection.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Full 64-bit deterministic hash of a chunk key. Replica routing and
/// fault injection derive their per-chunk decisions from this, so every
/// secondary placement is a pure function of the key and the roster.
#[inline]
pub(crate) fn key_hash(key: &ChunkKey) -> u64 {
    let mut h = splitmix64(u64::from(key.array.0) ^ (key.coords.ndims() as u64) << 32);
    for &c in key.coords.as_slice() {
        h = splitmix64(h ^ c as u64);
    }
    h
}

/// Deterministic shard hash for keys with no dense slab.
#[inline]
fn spill_shard(key: &ChunkKey) -> usize {
    (key_hash(key) as usize) & (SHARD_COUNT - 1)
}

/// Registered dense-grid geometry for one array. Immutable after
/// registration, so the parallel phase shares it read-only.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DenseMeta {
    /// Chunk-count extents per dimension.
    extents: [i64; MAX_DIMS],
    ndims: u8,
    /// Shard `s` owns linear slots `[s << slab_shift, (s+1) << slab_shift)`.
    slab_shift: u32,
}

impl DenseMeta {
    /// Row-major linearization of `coords`, or `None` when outside the
    /// registered extents.
    #[inline]
    fn linearize(&self, coords: &ChunkCoords) -> Option<usize> {
        if coords.ndims() != self.ndims as usize {
            return None;
        }
        let mut lin: usize = 0;
        for (d, &c) in coords.iter().enumerate() {
            let extent = self.extents[d];
            if c < 0 || c >= extent {
                return None;
            }
            lin = lin * extent as usize + c as usize;
        }
        Some(lin)
    }

    /// Inverse of [`DenseMeta::linearize`] (reporting paths only).
    fn delinearize(&self, mut lin: usize) -> ChunkCoords {
        let ndims = self.ndims as usize;
        let mut out = ChunkCoords::zeros(ndims);
        for d in (0..ndims).rev() {
            let extent = self.extents[d] as usize;
            out[d] = (lin % extent) as i64;
            lin /= extent;
        }
        out
    }

    #[inline]
    fn shard_of_lin(&self, lin: usize) -> usize {
        lin >> self.slab_shift
    }

    #[inline]
    fn slab_offset(&self, lin: usize) -> usize {
        lin & ((1usize << self.slab_shift) - 1)
    }
}

/// One shard's slab of an array's row-major slot vector.
#[derive(Debug, Clone)]
struct Slab {
    /// `NodeId.0` per owned slot, or [`VACANT`].
    slots: Vec<u32>,
    /// Occupied entries in `slots`.
    resident: usize,
}

/// One coordinate-range shard: disjoint slabs of every registered dense
/// grid plus a spill map for sparse keys hashed here. A shard is the unit
/// of single-writer ownership during parallel batch placement.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlacementShard {
    /// Slab per array id; present iff the array is registered dense and
    /// this shard's slot range intersects its volume.
    slabs: Vec<Option<Slab>>,
    /// Sparse entries hashed to this shard.
    spill: HashMap<ChunkKey, NodeId>,
}

impl PlacementShard {
    fn slab_mut(&mut self, array: ArrayId) -> Option<&mut Slab> {
        self.slabs.get_mut(array.0 as usize).and_then(Option::as_mut)
    }

    /// Check-then-insert for batch placement: never overwrites, so a
    /// duplicate leaves the original untouched. `Err` reports the prior
    /// occupant. The caller guarantees this shard owns `key`.
    #[inline]
    pub(crate) fn try_insert(
        &mut self,
        dense: &[Option<DenseMeta>],
        key: ChunkKey,
        node: NodeId,
    ) -> Result<(), NodeId> {
        if let Some(meta) = dense.get(key.array.0 as usize).and_then(Option::as_ref) {
            if let Some(lin) = meta.linearize(&key.coords) {
                let off = meta.slab_offset(lin);
                let slab = self.slab_mut(key.array).expect("dense meta implies a slab");
                let prev = slab.slots[off];
                if prev != VACANT {
                    return Err(NodeId(prev));
                }
                slab.slots[off] = node.0;
                slab.resident += 1;
                return Ok(());
            }
        }
        match self.spill.get(&key) {
            Some(&prev) => Err(prev),
            None => {
                self.spill.insert(key, node);
                Ok(())
            }
        }
    }

    /// Undo a [`PlacementShard::try_insert`] (duplicate-rollback path).
    fn remove(&mut self, dense: &[Option<DenseMeta>], key: &ChunkKey) {
        if let Some(meta) = dense.get(key.array.0 as usize).and_then(Option::as_ref) {
            if let Some(lin) = meta.linearize(&key.coords) {
                let off = meta.slab_offset(lin);
                let slab = self.slab_mut(key.array).expect("dense meta implies a slab");
                if slab.slots[off] != VACANT {
                    slab.slots[off] = VACANT;
                    slab.resident -= 1;
                }
                return;
            }
        }
        self.spill.remove(key);
    }
}

/// The authoritative chunk→node map across all arrays, sharded by
/// coordinate range.
#[derive(Debug, Clone)]
pub(crate) struct PlacementIndex {
    /// Dense geometry per array id below [`ARRAY_ID_CAP`]; `None` for
    /// unregistered (sparse) arrays.
    dense: Vec<Option<DenseMeta>>,
    /// The coordinate-range shards ([`SHARD_COUNT`] of them).
    shards: Vec<PlacementShard>,
    len: usize,
}

impl Default for PlacementIndex {
    fn default() -> Self {
        PlacementIndex {
            dense: Vec::new(),
            shards: (0..SHARD_COUNT).map(|_| PlacementShard::default()).collect(),
            len: 0,
        }
    }
}

impl PlacementIndex {
    pub(crate) fn new() -> Self {
        PlacementIndex::default()
    }

    fn meta(&self, array: ArrayId) -> Option<&DenseMeta> {
        self.dense.get(array.0 as usize).and_then(Option::as_ref)
    }

    /// Register the chunk-grid extents of `array`, switching it to the
    /// sharded dense representation. Returns `true` when the slabs were
    /// installed (extent product within the allocation cap, id in range).
    /// Existing placements are migrated. Unbounded dimensions should pass
    /// their expected chunk-count hint; coordinates beyond it spill to a
    /// hash map, so the hint affects only performance.
    pub(crate) fn register_dense(&mut self, array: ArrayId, extents: &[i64]) -> bool {
        assert!(
            !extents.is_empty() && extents.len() <= MAX_DIMS,
            "extents must cover 1..={MAX_DIMS} dimensions"
        );
        assert!(extents.iter().all(|&e| e >= 1), "extents must be positive");
        if array.0 >= ARRAY_ID_CAP {
            return false;
        }
        let volume: u128 = extents.iter().map(|&e| e as u128).product();
        if volume > DENSE_SLOT_CAP {
            return false;
        }
        if self.meta(array).is_some() {
            // Already dense: keep the existing slabs (re-registration with
            // different extents would have to re-linearize; no caller
            // needs that).
            return false;
        }
        let volume = volume as usize;
        let mut ext = [1i64; MAX_DIMS];
        ext[..extents.len()].copy_from_slice(extents);
        // Slab size: the smallest power of two that covers the volume in
        // at most SHARD_COUNT slabs (so every shard owns one contiguous
        // coordinate range and spill hashing stays a mask).
        let slab_shift = volume.div_ceil(SHARD_COUNT).next_power_of_two().trailing_zeros();
        let meta = DenseMeta { extents: ext, ndims: extents.len() as u8, slab_shift };
        let idx = array.0 as usize;
        if idx >= self.dense.len() {
            self.dense.resize(idx + 1, None);
        }
        self.dense[idx] = Some(meta);
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let start = s << slab_shift;
            if start >= volume {
                break;
            }
            let len = (volume - start).min(1usize << slab_shift);
            if idx >= shard.slabs.len() {
                shard.slabs.resize(idx + 1, None);
            }
            shard.slabs[idx] = Some(Slab { slots: vec![VACANT; len], resident: 0 });
        }
        // Migrate sparse entries of this array out of the spill maps: the
        // in-extent ones move to their slab (and possibly to a different
        // shard, since sparse placement hashes while dense slices).
        let mut migrate: Vec<(ChunkKey, NodeId)> = Vec::new();
        for shard in &mut self.shards {
            shard.spill.retain(|key, node| {
                if key.array == array && meta.linearize(&key.coords).is_some() {
                    migrate.push((*key, *node));
                    false
                } else {
                    true
                }
            });
        }
        for (key, node) in migrate {
            self.len -= 1; // insert() re-counts it
            let prev = self.insert(key, node);
            debug_assert!(prev.is_none(), "migration cannot collide");
        }
        true
    }

    /// The shard that owns `key`: its row-major slab for registered
    /// in-extent coordinates, a deterministic hash shard otherwise. Pure
    /// in `key`, so batches can be partitioned by shard up front.
    #[inline]
    pub(crate) fn shard_of(&self, key: &ChunkKey) -> usize {
        match self.meta(key.array).and_then(|m| m.linearize(&key.coords).map(|l| (m, l))) {
            Some((meta, lin)) => meta.shard_of_lin(lin),
            None => spill_shard(key),
        }
    }

    /// Split borrow for the parallel placement phase: read-only dense
    /// geometry plus single-writer access to each shard.
    pub(crate) fn parts_mut(&mut self) -> (&[Option<DenseMeta>], &mut [PlacementShard]) {
        (&self.dense, &mut self.shards)
    }

    /// Account for `n` entries inserted through [`PlacementShard`]s.
    pub(crate) fn add_len(&mut self, n: usize) {
        self.len += n;
    }

    /// Undo the first `done` insertions of each listed shard's `bucket`
    /// (indices into `batch`) after a failed parallel batch.
    pub(crate) fn rollback(
        &mut self,
        keys: &[ChunkKey],
        buckets: &[Vec<u32>],
        progress: &[(usize, usize)],
    ) {
        for &(s, done) in progress {
            for &i in &buckets[s][..done] {
                let key = keys[i as usize];
                debug_assert_eq!(self.shard_of(&key), s);
                let (dense, shards) = self.parts_mut();
                shards[s].remove(dense, &key);
            }
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: &ChunkKey) -> Option<NodeId> {
        match self.meta(key.array).and_then(|m| m.linearize(&key.coords).map(|l| (m, l))) {
            Some((meta, lin)) => {
                let shard = &self.shards[meta.shard_of_lin(lin)];
                let slab = shard.slabs[key.array.0 as usize].as_ref()?;
                match slab.slots[meta.slab_offset(lin)] {
                    VACANT => None,
                    id => Some(NodeId(id)),
                }
            }
            None => self.shards[spill_shard(key)].spill.get(key).copied(),
        }
    }

    /// Insert or overwrite; returns the previous occupant. The sequential
    /// path — batches go through the shards directly.
    #[inline]
    pub(crate) fn insert(&mut self, key: ChunkKey, node: NodeId) -> Option<NodeId> {
        let prev = match self
            .meta(key.array)
            .and_then(|m| m.linearize(&key.coords).map(|l| (m.shard_of_lin(l), m.slab_offset(l))))
        {
            Some((shard_idx, off)) => {
                let slab = self.shards[shard_idx].slabs[key.array.0 as usize]
                    .as_mut()
                    .expect("dense meta implies a slab");
                let prev = slab.slots[off];
                slab.slots[off] = node.0;
                if prev == VACANT {
                    slab.resident += 1;
                    None
                } else {
                    Some(NodeId(prev))
                }
            }
            None => self.shards[spill_shard(&key)].spill.insert(key, node),
        };
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove a placement entirely (chunk eviction, the retraction path's
    /// end state); returns the node it lived on. Dense slots go back to
    /// [`VACANT`], sparse entries leave their spill map, and the length
    /// decrements exactly — the inverse of [`PlacementIndex::insert`].
    pub(crate) fn remove(&mut self, key: &ChunkKey) -> Option<NodeId> {
        let prev = match self
            .meta(key.array)
            .and_then(|m| m.linearize(&key.coords).map(|l| (m.shard_of_lin(l), m.slab_offset(l))))
        {
            Some((shard_idx, off)) => {
                let slab = self.shards[shard_idx].slabs[key.array.0 as usize]
                    .as_mut()
                    .expect("dense meta implies a slab");
                match slab.slots[off] {
                    VACANT => None,
                    id => {
                        slab.slots[off] = VACANT;
                        slab.resident -= 1;
                        Some(NodeId(id))
                    }
                }
            }
            None => self.shards[spill_shard(key)].spill.remove(key),
        };
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Registered dense grids as `(array, extents)` pairs, in array-id
    /// order. Checkpointing serializes these so recovery can re-run
    /// [`PlacementIndex::register_dense`] before replaying placements —
    /// the slab geometry itself is derived, not stored.
    pub(crate) fn dense_registrations(&self) -> Vec<(ArrayId, Vec<i64>)> {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(idx, meta)| {
                let meta = meta.as_ref()?;
                Some((ArrayId(idx as u32), meta.extents[..meta.ndims as usize].to_vec()))
            })
            .collect()
    }

    /// Every `(key, node)` pair in ascending key order — the same
    /// deterministic order the original `BTreeMap` iteration produced.
    /// O(n) over dense slabs plus O(s log s) over sparse entries; intended
    /// for reorganization and reporting, not the per-chunk hot path.
    pub(crate) fn collect_sorted(&self) -> Vec<(ChunkKey, NodeId)> {
        // Dense arrays in id order, slabs in shard order: ascending
        // row-major linear index is ascending lexicographic coordinates.
        let mut dense_out: Vec<(ChunkKey, NodeId)> = Vec::new();
        for (idx, meta) in self.dense.iter().enumerate() {
            let Some(meta) = meta else { continue };
            let array = ArrayId(idx as u32);
            let mut remaining: usize = self
                .shards
                .iter()
                .filter_map(|s| s.slabs.get(idx)?.as_ref())
                .map(|s| s.resident)
                .sum();
            if remaining == 0 {
                continue;
            }
            dense_out.reserve(remaining);
            'slabs: for (s, shard) in self.shards.iter().enumerate() {
                let Some(Some(slab)) = shard.slabs.get(idx) else { continue };
                if slab.resident == 0 {
                    continue;
                }
                let start = s << meta.slab_shift;
                let mut cur = meta.delinearize(start);
                let ndims = meta.ndims as usize;
                for &slot in &slab.slots {
                    if slot != VACANT {
                        dense_out.push((ChunkKey::new(array, cur), NodeId(slot)));
                        remaining -= 1;
                        if remaining == 0 {
                            break 'slabs;
                        }
                    }
                    // Odometer over the extents, row-major.
                    for d in (0..ndims).rev() {
                        cur[d] += 1;
                        if cur[d] < meta.extents[d] {
                            break;
                        }
                        cur[d] = 0;
                    }
                }
            }
        }
        // Sparse entries from every shard, sorted, then a two-run merge.
        let mut sparse: Vec<(ChunkKey, NodeId)> =
            self.shards.iter().flat_map(|s| s.spill.iter().map(|(&k, &n)| (k, n))).collect();
        if sparse.is_empty() {
            return dense_out;
        }
        sparse.sort_unstable_by_key(|e| e.0);
        let mut out = Vec::with_capacity(self.len);
        let (mut di, mut si) = (0, 0);
        while di < dense_out.len() && si < sparse.len() {
            if dense_out[di].0 <= sparse[si].0 {
                out.push(dense_out[di]);
                di += 1;
            } else {
                out.push(sparse[si]);
                si += 1;
            }
        }
        out.extend_from_slice(&dense_out[di..]);
        out.extend_from_slice(&sparse[si..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(array: u32, coords: &[i64]) -> ChunkKey {
        ChunkKey::new(ArrayId(array), ChunkCoords::new(coords))
    }

    #[test]
    fn sparse_roundtrip() {
        let mut idx = PlacementIndex::new();
        assert_eq!(idx.get(&key(0, &[1, 2])), None);
        assert_eq!(idx.insert(key(0, &[1, 2]), NodeId(3)), None);
        assert_eq!(idx.get(&key(0, &[1, 2])), Some(NodeId(3)));
        assert_eq!(idx.insert(key(0, &[1, 2]), NodeId(5)), Some(NodeId(3)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn dense_registration_migrates_existing_entries() {
        let mut idx = PlacementIndex::new();
        idx.insert(key(0, &[1, 1]), NodeId(7));
        assert!(idx.register_dense(ArrayId(0), &[4, 4]));
        assert_eq!(idx.get(&key(0, &[1, 1])), Some(NodeId(7)));
        idx.insert(key(0, &[3, 2]), NodeId(1));
        assert_eq!(idx.get(&key(0, &[3, 2])), Some(NodeId(1)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn dense_spills_beyond_extents() {
        let mut idx = PlacementIndex::new();
        assert!(idx.register_dense(ArrayId(1), &[4, 4]));
        idx.insert(key(1, &[100, 0]), NodeId(2)); // beyond the hint
        idx.insert(key(1, &[-1, 0]), NodeId(4)); // negative -> spill
        assert_eq!(idx.get(&key(1, &[100, 0])), Some(NodeId(2)));
        assert_eq!(idx.get(&key(1, &[-1, 0])), Some(NodeId(4)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn oversized_grids_stay_sparse() {
        let mut idx = PlacementIndex::new();
        assert!(!idx.register_dense(ArrayId(0), &[1 << 20, 1 << 20]));
        idx.insert(key(0, &[9, 9]), NodeId(0));
        assert_eq!(idx.get(&key(0, &[9, 9])), Some(NodeId(0)));
    }

    #[test]
    fn huge_array_ids_use_the_spill_maps() {
        let mut idx = PlacementIndex::new();
        let k = key(u32::MAX - 1, &[0]);
        assert!(!idx.register_dense(ArrayId(u32::MAX - 1), &[8]));
        assert_eq!(idx.insert(k, NodeId(1)), None);
        assert_eq!(idx.get(&k), Some(NodeId(1)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_clears_dense_and_sparse_entries() {
        let mut idx = PlacementIndex::new();
        idx.register_dense(ArrayId(0), &[4, 4]);
        idx.insert(key(0, &[1, 1]), NodeId(2));
        idx.insert(key(0, &[9, 9]), NodeId(3)); // spill
        assert_eq!(idx.remove(&key(0, &[1, 1])), Some(NodeId(2)));
        assert_eq!(idx.get(&key(0, &[1, 1])), None);
        assert_eq!(idx.remove(&key(0, &[1, 1])), None, "double remove is a no-op");
        assert_eq!(idx.remove(&key(0, &[9, 9])), Some(NodeId(3)));
        assert_eq!(idx.len(), 0);
        // The vacated slot is reusable.
        assert_eq!(idx.insert(key(0, &[1, 1]), NodeId(5)), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn collect_sorted_is_globally_ordered() {
        let mut idx = PlacementIndex::new();
        idx.register_dense(ArrayId(1), &[4, 4]);
        idx.insert(key(1, &[2, 1]), NodeId(0));
        idx.insert(key(1, &[0, 3]), NodeId(1));
        idx.insert(key(1, &[9, 9]), NodeId(2)); // spill
        idx.insert(key(0, &[5]), NodeId(3)); // sparse array
        idx.insert(key(u32::MAX - 1, &[1]), NodeId(4)); // overflow id
        let all = idx.collect_sorted();
        assert_eq!(all.len(), idx.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "unsorted: {all:?}");
    }

    #[test]
    fn shard_of_is_stable_and_partitions_dense_grids_by_range() {
        let mut idx = PlacementIndex::new();
        assert!(idx.register_dense(ArrayId(0), &[64, 64])); // 4096 slots
                                                            // Row-major slabs: consecutive linear indices share shards, and
                                                            // shards are visited in ascending order.
        let mut last = 0usize;
        for x in 0..64 {
            let s = idx.shard_of(&key(0, &[x, 0]));
            assert!(s >= last, "shards must ascend with row-major order");
            last = s;
        }
        assert_eq!(last, SHARD_COUNT - 1, "a full grid uses every shard");
        // Sparse keys hash deterministically.
        let k = key(7, &[3, 3]);
        assert_eq!(idx.shard_of(&k), idx.shard_of(&k));
        assert!(idx.shard_of(&k) < SHARD_COUNT);
    }

    #[test]
    fn try_insert_reports_duplicates_and_rollback_restores() {
        let mut idx = PlacementIndex::new();
        assert!(idx.register_dense(ArrayId(0), &[8, 8]));
        idx.insert(key(0, &[1, 1]), NodeId(9));
        let keys = [key(0, &[1, 2]), key(0, &[1, 1]), key(0, &[1, 3])];
        let shard = idx.shard_of(&keys[0]);
        let buckets: Vec<Vec<u32>> = {
            let mut b = vec![Vec::new(); SHARD_COUNT];
            for (i, k) in keys.iter().enumerate() {
                b[idx.shard_of(k)].push(i as u32);
            }
            b
        };
        // All three land in the same slab shard (same row).
        assert!(buckets[shard].len() == 3);
        let (dense, shards) = idx.parts_mut();
        assert!(shards[shard].try_insert(dense, keys[0], NodeId(1)).is_ok());
        assert_eq!(shards[shard].try_insert(dense, keys[1], NodeId(1)), Err(NodeId(9)));
        idx.rollback(&keys, &buckets, &[(shard, 1)]);
        assert_eq!(idx.get(&keys[0]), None, "rolled back");
        assert_eq!(idx.get(&keys[1]), Some(NodeId(9)), "original survives");
    }
}
